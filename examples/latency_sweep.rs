//! Beyond the paper: sweeping the network latency.
//!
//! The paper fixes a 100-cycle network and notes that its paired-simulator
//! technique "has a wide range of applications beyond the direct
//! comparison in this paper." This example uses that capability: how does
//! the message-passing vs. shared-memory verdict for EM3D change as the
//! network gets faster or slower than the CM-5's?
//!
//! ```text
//! cargo run --release --example latency_sweep
//! ```

use wwt::apps::em3d::{self, Em3dParams};
use wwt::mp::MpConfig;
use wwt::sm::SmConfig;

fn main() {
    let p = Em3dParams {
        e_per_proc: 200,
        h_per_proc: 200,
        degree: 8,
        iters: 8,
        procs: 8,
        ..Em3dParams::small()
    };

    println!(
        "EM3D, {} nodes/side/proc, {} procs — elapsed cycles vs. one-way latency\n",
        p.e_per_proc, p.procs
    );
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "latency", "MP elapsed", "SM elapsed", "SM/MP"
    );

    let mut prev_ratio = None;
    for latency in [25u64, 50, 100, 200, 400] {
        // Both machines share one hardware base; varying it in one place
        // keeps the comparison apples-to-apples.
        let arch = wwt::arch::ArchParams {
            net_latency: latency,
            ..wwt::arch::ArchParams::default()
        };
        let mcfg = MpConfig {
            arch,
            ..MpConfig::default()
        };
        let scfg = SmConfig {
            arch,
            ..SmConfig::default()
        };
        let mp = em3d::mp::run(&p, mcfg);
        let sm = em3d::sm::run(&p, scfg);
        assert!(mp.validation.passed && sm.validation.passed);
        // The answer never depends on the network.
        assert_eq!(mp.artifact, sm.artifact);
        let ratio = sm.report.elapsed() as f64 / mp.report.elapsed() as f64;
        println!(
            "{:>10} {:>14} {:>14} {:>8.2}",
            latency,
            mp.report.elapsed(),
            sm.report.elapsed(),
            ratio
        );
        if let Some(prev) = prev_ratio {
            assert!(
                ratio >= prev - 0.15,
                "SM should not gain on MP as latency grows for EM3D"
            );
        }
        prev_ratio = Some(ratio);
    }

    println!(
        "\nEM3D's shared-memory version pays one network round trip per\n\
         invalidated block, so its disadvantage widens with latency; the\n\
         message-passing version amortizes latency over bulk messages.\n\
         This is the trade space the paper's conclusion points at when it\n\
         argues machines should provide both mechanisms."
    );
}
