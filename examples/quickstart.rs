//! Quickstart: run one message-passing/shared-memory program pair and
//! print the paper-style execution-time breakdowns.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wwt::sim::SimConfig;
use wwt::{render_timeline, run_experiment, run_experiment_with, Experiment, Scale};

fn main() {
    // Gauss at test scale runs in well under a second; pass --paper for
    // the full 512-variable, 32-processor workload of the paper.
    let scale = if std::env::args().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Test
    };

    let mp = run_experiment(Experiment::GaussMp, scale);
    let sm = run_experiment(Experiment::GaussSm, scale);

    println!("Both versions solve the same dense linear system:");
    println!("  MP: {}", mp.run.validation.detail);
    println!("  SM: {}\n", sm.run.validation.detail);

    for out in [&mp, &sm] {
        println!("{}", out.tables[0]);
        println!("{}", out.events[0]);
    }

    let t_mp = mp.tables[0].total;
    let t_sm = sm.tables[0].total;
    println!(
        "Shared memory ran at {:.0}% of the message-passing time — the\n\
         paper's surprise: three of its four shared-memory programs ran at\n\
         roughly the same speed as their message-passing equivalents.",
        100.0 * t_sm / t_mp
    );

    // To see *where in time* the cycles went, re-run with time-resolved
    // profiling. render_timeline refuses a run without a profile, so
    // SimConfig::profile_bucket must be set (the bucket is the profile
    // resolution in cycles; the same value is passed to the renderer).
    let bucket = match scale {
        Scale::Paper => 200_000,
        Scale::Test => 2_000,
    };
    let sim = SimConfig {
        profile_bucket: Some(bucket),
        ..SimConfig::default()
    };
    let profiled = run_experiment_with(Experiment::GaussSm, scale, sim);
    match render_timeline(&profiled.run.report, bucket, 100) {
        Ok(t) => println!("\n{t}"),
        Err(e) => eprintln!("no timeline: {e}"),
    }
}
