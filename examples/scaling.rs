//! Machine-size sweep: how the LCP pair scales from 4 to 32 processors
//! (the paper's simulator supported 1–128; its experiments used 32).
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use wwt::apps::lcp::{self, LcpMode, LcpParams};
use wwt::mp::MpConfig;
use wwt::sm::SmConfig;

fn main() {
    let base = LcpParams {
        n: 1024,
        band: 8,
        diag: 18.0,
        ..LcpParams::default()
    };

    println!(
        "LCP, n = {}, {} sweeps/step — elapsed target cycles\n",
        base.n, base.sweeps_per_step
    );
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "procs", "MP elapsed", "SM elapsed", "SM/MP", "MP speedup", "SM speedup"
    );

    let mut first: Option<(u64, u64)> = None;
    for procs in [4usize, 8, 16, 32] {
        let p = LcpParams {
            procs,
            ..base.clone()
        };
        let mp = lcp::mp::run(&p, MpConfig::default(), LcpMode::Synchronous);
        let sm = lcp::sm::run(&p, SmConfig::default(), LcpMode::Synchronous);
        assert!(mp.validation.passed && sm.validation.passed);
        // Same algorithm, same trajectory, at every machine size.
        assert_eq!(mp.stat("steps"), sm.stat("steps"));

        let (e_mp, e_sm) = (mp.report.elapsed(), sm.report.elapsed());
        let (b_mp, b_sm) = *first.get_or_insert((e_mp * procs as u64 / 4, e_sm * procs as u64 / 4));
        println!(
            "{procs:>6} {e_mp:>14} {e_sm:>14} {:>8.2} {:>9.1}x {:>9.1}x",
            e_sm as f64 / e_mp as f64,
            b_mp as f64 * 4.0 / procs as f64 / e_mp as f64 * (procs as f64 / 4.0),
            b_sm as f64 * 4.0 / procs as f64 / e_sm as f64 * (procs as f64 / 4.0),
        );
    }

    println!(
        "\nBoth versions scale similarly until communication stops\n\
         amortizing; the shared-memory version's barrier and reduction\n\
         costs grow with machine size, the message-passing version's\n\
         exchange adds a stage per doubling."
    );
}
