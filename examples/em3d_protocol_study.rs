//! The EM3D design-space study (Sections 5.3.3–5.3.4 of the paper):
//! how cache size, allocation policy, and coherence protocol change the
//! shared-memory version's standing against message passing.
//!
//! ```text
//! cargo run --release --example em3d_protocol_study
//! ```

use wwt::apps::em3d::{self, Em3dParams};
use wwt::mem::CacheGeometry;
use wwt::mp::MpConfig;
use wwt::sim::{Counter, Kind};
use wwt::sm::{AllocPolicy, ArchParams, ProtocolMode, SmConfig};

fn main() {
    // A mid-size workload: big enough for capacity effects, small enough
    // to run all five configurations in a few seconds.
    let p = Em3dParams {
        e_per_proc: 250,
        h_per_proc: 250,
        degree: 8,
        remote_pct: 20,
        span: 1,
        iters: 10,
        procs: 8,
        ..Em3dParams::default()
    };
    // A small cache makes the capacity-miss story visible at this scale,
    // as the paper's 256 KB cache did for its 1000-node workload.
    let small_cache = CacheGeometry {
        size_bytes: 16 * 1024,
        ways: 4,
        block_bytes: 32,
    };

    println!(
        "EM3D, {} nodes/side/proc, {} procs, {} iterations\n",
        p.e_per_proc, p.procs, p.iters
    );
    println!(
        "{:<44} {:>12} {:>10} {:>10}",
        "configuration", "elapsed", "remote%", "wr-faults"
    );

    let mp = em3d::mp::run(&p, MpConfig::default());
    assert!(mp.validation.passed);
    println!(
        "{:<44} {:>12} {:>10} {:>10}",
        "message passing (ghost nodes + channels)",
        mp.report.elapsed(),
        "-",
        "-"
    );

    let configs = [
        (
            "SM, round-robin allocation (paper default)",
            SmConfig {
                arch: ArchParams {
                    cache: small_cache,
                    ..ArchParams::default()
                },
                ..SmConfig::default()
            },
        ),
        ("SM, 4x larger cache (Table 16)", SmConfig::default()),
        (
            "SM, local allocation (Table 17)",
            SmConfig {
                arch: ArchParams {
                    cache: small_cache,
                    ..ArchParams::default()
                },
                alloc_policy: AllocPolicy::Local,
                ..SmConfig::default()
            },
        ),
        (
            "SM, bulk-update protocol (Section 5.3.4)",
            SmConfig {
                arch: ArchParams {
                    cache: small_cache,
                    ..ArchParams::default()
                },
                protocol: ProtocolMode::BulkUpdate,
                ..SmConfig::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        let r = em3d::sm::run(&p, cfg);
        assert!(r.validation.passed, "{label}: {}", r.validation.detail);
        let rem = r.report.total_counter(Counter::ShMissesRemote) as f64;
        let loc = r.report.total_counter(Counter::ShMissesLocal) as f64;
        println!(
            "{:<44} {:>12} {:>9.0}% {:>10}",
            label,
            r.report.elapsed(),
            100.0 * rem / (rem + loc).max(1.0),
            r.report.total_counter(Counter::WriteFaults),
        );
        // All variants compute identical values.
        assert_eq!(r.artifact, mp.artifact);
        let _ = Kind::Compute;
    }

    println!(
        "\nEvery configuration computes bit-identical field values; only\n\
         the time and traffic change. The paper's conclusions: the\n\
         invalidation protocol is an expensive way to move producer-\n\
         consumer data, and both a larger cache and locality-aware\n\
         allocation recover much of the gap without touching the program."
    );
}
