//! Writing your own target programs against both machine models.
//!
//! This example implements the same tiny workload twice — a global sum of
//! per-node values followed by a broadcast of the result — once with
//! message passing (software reduction/broadcast trees over active
//! messages) and once with shared memory (MCS-style collectives), then
//! prints where each machine spent its cycles.
//!
//! ```text
//! cargo run --release --example custom_app
//! ```

use std::rc::Rc;

use wwt::mp::{MpConfig, MpMachine, TreeShape};
use wwt::sim::{Engine, Kind, Scope, SimConfig};
use wwt::sm::{SmCollectives, SmConfig, SmMachine};

const PROCS: usize = 16;
const ROUNDS: usize = 20;
const WORK: u64 = 5_000;

fn run_mp() -> (f64, wwt::sim::SimReport) {
    let mut engine = Engine::new(PROCS, SimConfig::default());
    let machine = MpMachine::new(&engine, MpConfig::default());
    let result = Rc::new(std::cell::Cell::new(0.0f64));
    for p in engine.proc_ids() {
        let m = Rc::clone(&machine);
        let cpu = engine.cpu(p);
        let result = Rc::clone(&result);
        engine.spawn(p, async move {
            let mut acc = 0.0;
            for round in 0..ROUNDS {
                // Local work, then a global sum + broadcast.
                cpu.compute(WORK + (p.index() as u64) * 100);
                let mine = (p.index() + round) as f64;
                let sum = m
                    .reduce_sum_f64(&cpu, TreeShape::Lopsided, 0, mine)
                    .await
                    .unwrap_or(0.0);
                acc = m.bcast_f64(&cpu, TreeShape::Lopsided, 0, sum).await;
            }
            m.barrier(&cpu).await;
            if p.index() == 0 {
                result.set(acc);
            }
        });
    }
    let report = engine.run();
    (result.get(), report)
}

fn run_sm() -> (f64, wwt::sim::SimReport) {
    let mut engine = Engine::new(PROCS, SimConfig::default());
    let machine = SmMachine::new(&engine, SmConfig::default());
    let coll = Rc::new(SmCollectives::new(&machine));
    let result = Rc::new(std::cell::Cell::new(0.0f64));
    for p in engine.proc_ids() {
        let m = Rc::clone(&machine);
        let coll = Rc::clone(&coll);
        let cpu = engine.cpu(p);
        let result = Rc::clone(&result);
        engine.spawn(p, async move {
            let mut acc = 0.0;
            for round in 0..ROUNDS {
                cpu.compute(WORK + (p.index() as u64) * 100);
                let mine = (p.index() + round) as f64;
                let sum = coll.reduce_sum_f64(&m, &cpu, mine).await.unwrap_or(0.0);
                acc = coll.bcast_f64(&m, &cpu, 0, sum).await;
            }
            m.barrier(&cpu).await;
            if p.index() == 0 {
                result.set(acc);
            }
        });
    }
    let report = engine.run();
    (result.get(), report)
}

fn main() {
    let (v_mp, r_mp) = run_mp();
    let (v_sm, r_sm) = run_sm();
    assert_eq!(v_mp, v_sm, "both machines compute the same global sums");
    println!("final broadcast value on both machines: {v_mp}\n");

    let expect: f64 = (0..PROCS).map(|p| (p + ROUNDS - 1) as f64).sum();
    assert_eq!(v_mp, expect);

    println!(
        "{:<34} {:>14} {:>14}",
        "", "message passing", "shared memory"
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "elapsed (cycles)",
        r_mp.elapsed(),
        r_sm.elapsed()
    );
    type RowFn = Box<dyn Fn(&wwt::sim::SimReport) -> u64>;
    let rows: [(&str, RowFn); 4] = [
        (
            "computation",
            Box::new(|r| r.avg_matrix().get(Scope::App, Kind::Compute)),
        ),
        (
            "collectives (reduce+bcast)",
            Box::new(|r| {
                let m = r.avg_matrix();
                m.by_scope(Scope::Reduction) + m.by_scope(Scope::Broadcast)
            }),
        ),
        (
            "network interface access",
            Box::new(|r| r.avg_matrix().by_kind(Kind::NetAccess)),
        ),
        (
            "shared-memory misses",
            Box::new(|r| {
                let m = r.avg_matrix();
                m.by_kind(Kind::ShMissLocal)
                    + m.by_kind(Kind::ShMissRemote)
                    + m.by_kind(Kind::WriteFault)
            }),
        ),
    ];
    for (label, f) in rows {
        println!("{label:<34} {:>14} {:>14}", f(&r_mp), f(&r_sm));
    }
    println!(
        "\nThe message-passing collectives pay software send/receive\n\
         overhead per tree edge; the shared-memory ones pay coherence\n\
         misses per flag and value. At this scale neither dominates —\n\
         the paper's central observation."
    );
}
