//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates registry, so this vendors the
//! subset of proptest's surface the workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), `name in
//! strategy` and `name: type` parameters, half-open range strategies,
//! tuple strategies, `collection::vec`, `prop_assert!`/`prop_assert_eq!`,
//! and `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs `cases` iterations of deterministic random sampling
//! (seeded from the test's name), which keeps runs reproducible — the same
//! property the simulator under test guarantees.

use std::ops::Range;

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (only `cases` is honoured).
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic per-test rng (macro plumbing; avoids
/// requiring `rand` in the caller's dependency graph).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod strategy {
    use super::*;

    /// A sampleable input source.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: rand::SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::*;

    /// Types usable with the `name: type` parameter form.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    pub fn sample<T: Arbitrary>(rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a property over sampled inputs (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality over sampled inputs (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Binds one comma-separated parameter list entry per recursion step.
/// Two forms: `name in strategy-expr` and `name: type` (Arbitrary).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::sample(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::sample(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Expands each `fn` in the block into a `#[test]` running `cases`
/// deterministic sampling iterations.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_rng($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                let _ = case;
                $crate::__proptest_bind!(rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// The proptest entry macro: an optional `#![proptest_config(...)]`
/// followed by `#[test] fn` items with strategy parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            <$crate::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 3usize..17, b in -2i64..9, f in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2..9).contains(&b));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        /// Vec strategies respect element and length bounds; tuple
        /// strategies sample both sides.
        #[test]
        fn vecs_and_tuples(v in crate::collection::vec((0usize..10, 0u64..1000), 1..50)) {
            prop_assert!((1..50).contains(&v.len()));
            for (k, c) in v {
                prop_assert!(k < 10);
                prop_assert!(c < 1000);
            }
        }

        /// The `name: type` form binds via Arbitrary.
        #[test]
        fn typed_params_bind(flag: bool, word: u64) {
            prop_assert!(flag as u64 <= 1);
            prop_assert!(word.leading_zeros() <= 64);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("alpha"), crate::seed_for("alpha"));
        assert_ne!(crate::seed_for("alpha"), crate::seed_for("beta"));
    }
}
