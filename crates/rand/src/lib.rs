//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to a crates registry, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}` over half-open ranges, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid for simulation workloads and, most
//! importantly here, fully deterministic for a given seed.
//!
//! The numeric streams differ from upstream `rand`; nothing in this
//! workspace depends on upstream's exact streams, only on seed-stable
//! determinism.

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry point (`seed_from_u64` is all this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniformly sampleable value type for [`Rng::gen`].
pub trait Standard: Sized {
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}
impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}
impl Standard for usize {
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}
impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits >> 63 == 1
    }
}
impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        unit_f64(bits)
    }
}

/// Maps 64 random bits to a uniform f64 in [0, 1) with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type uniformly sampleable over a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in(low: Self, high: Self, bits: u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(low: Self, high: Self, bits: u64) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Widening multiply avoids modulo bias skew for the span
                // sizes used here (all far below 2^64).
                let off = ((bits as u128 * span) >> 64) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in(low: Self, high: Self, bits: u64) -> Self {
        low + (high - low) * unit_f64(bits)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, bits: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, bits: u64) -> T {
        T::sample_in(self.start, self.end, bits)
    }
}

/// Convenience sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform sample from a half-open range.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small-state generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (`SliceRandom::shuffle` is all this workspace uses).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
