//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crates registry, so this vendors the
//! small API surface the workspace's benches use: `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! plain wall-clock mean over a handful of iterations — good enough to spot
//! order-of-magnitude host-side regressions, with none of criterion's
//! statistics.

use std::time::Instant;

/// Number of timed iterations per benchmark (upstream criterion's sample
/// counts would make simulator benches take minutes in CI).
const DEFAULT_SAMPLES: usize = 3;

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `f` once as warmup and `samples` times timed, recording the
    /// mean wall-clock nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs and reports one named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    let nanos = b.nanos_per_iter;
    if nanos >= 1e9 {
        println!("bench {id:<50} {:>10.3} s/iter", nanos / 1e9);
    } else if nanos >= 1e6 {
        println!("bench {id:<50} {:>10.3} ms/iter", nanos / 1e6);
    } else {
        println!("bench {id:<50} {:>10.1} ns/iter", nanos);
    }
}

/// Prevents the optimizer from deleting a benchmark's work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body_and_records_time() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 1 warmup + 2 timed.
        assert_eq!(runs, 3);
    }
}
