//! Cross-process store discipline: two `make_tables` processes racing
//! the same cold cache key must simulate it once between them, print
//! identical reports, and leave a store that fsck calls clean.
//!
//! Ignored by default: it spawns two full `make_tables` processes (via
//! `CARGO_BIN_EXE_make_tables`), which is slow next to the unit suites.
//! Run with `cargo test -p wwt-bench -- --ignored`.

use std::path::Path;
use std::process::{Command, Output};

fn make_tables(workdir: &Path, extra: &[&str]) -> std::process::Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_make_tables"));
    // The run cache lives at results/cache relative to the working
    // directory, so pointing both processes at one scratch dir makes
    // them share (and race) a store.
    cmd.current_dir(workdir)
        .args(["--test-scale", "--jobs", "1", "gauss-mp"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped());
    cmd.spawn().expect("spawning make_tables")
}

fn text(out: &Output) -> (String, String) {
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
#[ignore = "spawns two make_tables processes; run with -- --ignored"]
fn two_processes_racing_one_key_simulate_once_and_agree() {
    let dir = std::env::temp_dir().join(format!("wwt-proc-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let a = make_tables(&dir, &[]);
    let b = make_tables(&dir, &[]);
    let a = a.wait_with_output().unwrap();
    let b = b.wait_with_output().unwrap();
    assert!(a.status.success(), "first racer failed: {:?}", text(&a).1);
    assert!(b.status.success(), "second racer failed: {:?}", text(&b).1);

    let (stdout_a, stderr_a) = text(&a);
    let (stdout_b, stderr_b) = text(&b);
    assert_eq!(
        stdout_a, stdout_b,
        "racing processes must print identical reports"
    );
    assert!(stdout_a.contains("### gauss-mp"));

    // The per-experiment timing line carries "(cached)" when the run
    // replayed from the store: the lock made exactly one process
    // simulate, and the loser replayed the winner's bytes. (If the
    // winner finished before the loser even started, both observations
    // still hold.)
    let cached = |stderr: &str| {
        stderr
            .lines()
            .any(|l| l.starts_with("timing: gauss-mp") && l.contains("(cached)"))
    };
    assert!(
        cached(&stderr_a) || cached(&stderr_b),
        "at least one racer must replay from the store\nA: {stderr_a}\nB: {stderr_b}"
    );
    assert!(
        !(cached(&stderr_a) && cached(&stderr_b)),
        "someone has to have simulated the key\nA: {stderr_a}\nB: {stderr_b}"
    );

    // A follow-up --fsck invocation finds a healthy store: nothing to
    // quarantine, no leftover temp or lock files — and the same report.
    let fsck = make_tables(&dir, &["--fsck"]).wait_with_output().unwrap();
    let (stdout_f, stderr_f) = text(&fsck);
    assert!(fsck.status.success(), "{stderr_f}");
    assert_eq!(stdout_f, stdout_a, "fsck must not change the report");
    assert!(
        stderr_f.contains("0 quarantined, 0 tmp + 0 stale lock files swept"),
        "store left dirty: {stderr_f}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
