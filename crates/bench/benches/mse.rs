//! Benchmarks regenerating the MSE experiments (Tables 4–7 of the paper).
//!
//! Criterion measures the host cost of simulating each program version;
//! the simulated measurements themselves (the tables) are printed once per
//! bench so a bench run doubles as a table regeneration at this scale.
//! Run `make_tables mse` for the full paper-scale tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwt_core::{run_experiment, Experiment, Scale};

fn bench_mse(c: &mut Criterion) {
    let mut g = c.benchmark_group("mse");
    g.sample_size(10);
    for e in [Experiment::MseMp, Experiment::MseSm] {
        // Print the simulated breakdown once (tables 4 / 5 shape).
        let out = run_experiment(e, Scale::Test);
        assert!(out.run.validation.passed, "{}", out.run.validation.detail);
        println!("{}", out.tables[0]);
        g.bench_function(e.id(), |b| {
            b.iter(|| {
                let out = run_experiment(black_box(e), Scale::Test);
                assert!(out.run.validation.passed);
                black_box(out.run.report.elapsed())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mse);
criterion_main!(benches);
