//! Benchmarks regenerating the LCP experiments (Tables 18–23), covering
//! the synchronous and asynchronous (ALCP) variants on both machines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwt_core::{run_experiment, Experiment, Scale};

fn bench_lcp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lcp");
    g.sample_size(10);
    for e in [
        Experiment::LcpMp,
        Experiment::LcpSm,
        Experiment::AlcpMp,
        Experiment::AlcpSm,
    ] {
        let out = run_experiment(e, Scale::Test);
        assert!(out.run.validation.passed, "{}", out.run.validation.detail);
        println!(
            "{}: {} steps, {} simulated cycles",
            e.id(),
            out.run.stat("steps").unwrap_or(0.0),
            out.run.report.elapsed()
        );
        g.bench_function(e.id(), |b| {
            b.iter(|| {
                let out = run_experiment(black_box(e), Scale::Test);
                assert!(out.run.validation.passed);
                black_box(out.run.report.elapsed())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lcp);
criterion_main!(benches);
