//! The Section 5.2 collective-implementation ablation: flat and binary
//! trees over CMMD-level messages vs. the lop-sided tree over active
//! messages (paper: 119.3M / 40.9M / 30.1M cycles in Gauss).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwt_core::apps::gauss::{mp, GaussParams};
use wwt_core::mp::{MpConfig, TreeShape};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("gauss-collective-ablation");
    g.sample_size(10);
    let p = GaussParams::small();
    let cmmd = MpConfig {
        collective_msg_overhead: 250,
        ..MpConfig::default()
    };
    let variants: [(&str, MpConfig, TreeShape); 3] = [
        ("flat-cmmd", cmmd, TreeShape::Flat),
        ("binary-cmmd", cmmd, TreeShape::Binary),
        ("lopsided-am", MpConfig::default(), TreeShape::Lopsided),
    ];
    // Print the simulated ordering once.
    let mut elapsed = Vec::new();
    for (name, cfg, shape) in &variants {
        let r = mp::run(&p, *cfg, *shape);
        assert!(r.validation.passed);
        println!("{name}: simulated {} cycles", r.report.elapsed());
        elapsed.push(r.report.elapsed());
    }
    assert!(
        elapsed[0] > elapsed[1] && elapsed[1] > elapsed[2],
        "ablation ordering must match the paper: {elapsed:?}"
    );
    for (name, cfg, shape) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = mp::run(black_box(&p), cfg, shape);
                black_box(r.report.elapsed())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
