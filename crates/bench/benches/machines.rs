//! Microbenchmarks of the machine substrates themselves: how fast the
//! simulator executes the primitive operations whose costs the paper's
//! Tables 2 and 3 define. These guard the host-side performance of the
//! engine (events per second), not target-machine cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;

use wwt_core::mp::{MpConfig, MpMachine, TreeShape};
use wwt_core::sim::{Engine, ProcId, SimConfig};
use wwt_core::sm::{McsLock, SmConfig, SmMachine};

/// One round-trip active message per iteration pair, 10k messages.
fn am_ping_pong(c: &mut Criterion) {
    c.bench_function("mp/active-message-ping-pong-10k", |b| {
        b.iter(|| {
            let mut e = Engine::new(2, SimConfig::default());
            let m = MpMachine::new(&e, MpConfig::default());
            m.set_handler(wwt_core::mp::tag::USER_BASE, |_| {});
            for p in e.proc_ids() {
                let m = Rc::clone(&m);
                let cpu = e.cpu(p);
                e.spawn(p, async move {
                    let peer = ProcId::new(1 - p.index());
                    for k in 0..5_000u32 {
                        if p.index() == 0 {
                            m.am_send(&cpu, peer, wwt_core::mp::tag::USER_BASE, 0, [k, 0, 0, 0])
                                .await;
                            m.poll_until(&cpu, |n| n >= (k + 1) as u64).await;
                        } else {
                            m.poll_until(&cpu, |n| n >= (k + 1) as u64).await;
                            m.am_send(&cpu, peer, wwt_core::mp::tag::USER_BASE, 0, [k, 0, 0, 0])
                                .await;
                        }
                    }
                });
            }
            black_box(e.run().elapsed())
        })
    });
}

/// Coherence transactions: a producer-consumer pair bouncing one block.
fn sm_block_bounce(c: &mut Criterion) {
    c.bench_function("sm/producer-consumer-bounce-5k", |b| {
        b.iter(|| {
            let mut e = Engine::new(2, SimConfig::default());
            let m = SmMachine::new(&e, SmConfig::default());
            let x = m.gmalloc_on(0, 8, 8);
            let flag = m.gmalloc_on(1, 8, 8);
            let m0 = Rc::clone(&m);
            let c0 = e.cpu(ProcId::new(0));
            e.spawn(ProcId::new(0), async move {
                for k in 1..=5_000u64 {
                    m0.write_f64(&c0, x, k as f64).await;
                    m0.write_u64(&c0, flag, k).await;
                }
            });
            let m1 = Rc::clone(&m);
            let c1 = e.cpu(ProcId::new(1));
            e.spawn(ProcId::new(1), async move {
                for k in 1..=5_000u64 {
                    m1.flag_wait(&c1, flag, k, wwt_core::sim::Kind::Wait).await;
                    black_box(m1.read_f64(&c1, x).await);
                }
            });
            black_box(e.run().elapsed())
        })
    });
}

/// Software collectives across 32 nodes.
fn collectives_32(c: &mut Criterion) {
    c.bench_function("mp/allreduce-32procs-100rounds", |b| {
        b.iter(|| {
            let mut e = Engine::new(32, SimConfig::default());
            let m = MpMachine::new(&e, MpConfig::default());
            for p in e.proc_ids() {
                let m = Rc::clone(&m);
                let cpu = e.cpu(p);
                e.spawn(p, async move {
                    for r in 0..100 {
                        let v = (p.index() + r) as f64;
                        let s = m
                            .reduce_sum_f64(&cpu, TreeShape::Lopsided, 0, v)
                            .await
                            .unwrap_or(0.0);
                        black_box(m.bcast_f64(&cpu, TreeShape::Lopsided, 0, s).await);
                    }
                });
            }
            black_box(e.run().elapsed())
        })
    });
}

/// Contended MCS lock with 16 processors.
fn mcs_contention(c: &mut Criterion) {
    c.bench_function("sm/mcs-lock-16procs-50rounds", |b| {
        b.iter(|| {
            let mut e = Engine::new(16, SimConfig::default());
            let m = SmMachine::new(&e, SmConfig::default());
            let lock = Rc::new(McsLock::new(&m));
            let counter = m.gmalloc_on(0, 8, 8);
            for p in e.proc_ids() {
                let m = Rc::clone(&m);
                let lock = Rc::clone(&lock);
                let cpu = e.cpu(p);
                e.spawn(p, async move {
                    for _ in 0..50 {
                        lock.acquire(&m, &cpu).await;
                        let v = m.read_u64(&cpu, counter).await;
                        m.write_u64(&cpu, counter, v + 1).await;
                        lock.release(&m, &cpu).await;
                    }
                });
            }
            black_box(e.run().elapsed())
        })
    });
}

criterion_group!(
    benches,
    am_ping_pong,
    sm_block_bounce,
    collectives_32,
    mcs_contention
);
criterion_main!(benches);
