//! Benchmarks regenerating the EM3D experiments (Tables 12–17 and the
//! Section 5.3.4 bulk-update extension).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwt_core::{run_experiment, Experiment, Scale};

fn bench_em3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("em3d");
    g.sample_size(10);
    for e in [
        Experiment::Em3dMp,
        Experiment::Em3dSm,
        Experiment::Em3dSm1Mb,
        Experiment::Em3dSmLocal,
        Experiment::Em3dSmBulk,
    ] {
        let out = run_experiment(e, Scale::Test);
        assert!(out.run.validation.passed, "{}", out.run.validation.detail);
        // Print the main-loop table (the paper's per-phase presentation).
        if let Some(t) = out.tables.iter().find(|t| t.title.contains("main loop")) {
            println!("{t}");
        }
        g.bench_function(e.id(), |b| {
            b.iter(|| {
                let out = run_experiment(black_box(e), Scale::Test);
                assert!(out.run.validation.passed);
                black_box(out.run.report.elapsed())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_em3d);
criterion_main!(benches);
