//! Benchmarks regenerating the Gauss experiments (Tables 8–11).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwt_core::{run_experiment, Experiment, Scale};

fn bench_gauss(c: &mut Criterion) {
    let mut g = c.benchmark_group("gauss");
    g.sample_size(10);
    for e in [Experiment::GaussMp, Experiment::GaussSm] {
        let out = run_experiment(e, Scale::Test);
        assert!(out.run.validation.passed, "{}", out.run.validation.detail);
        println!("{}", out.tables[0]);
        println!("{}", out.events[0]);
        g.bench_function(e.id(), |b| {
            b.iter(|| {
                let out = run_experiment(black_box(e), Scale::Test);
                assert!(out.run.validation.passed);
                black_box(out.run.report.elapsed())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gauss);
criterion_main!(benches);
