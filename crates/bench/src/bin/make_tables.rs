//! Regenerates every table of the paper at paper scale.
//!
//! Usage:
//!
//! ```text
//! make_tables [--test-scale] [--timeline] [--trace OUT.json]
//!             [--metrics OUT.json] [--json OUT.json] [experiment-id ...]
//! ```
//!
//! With no experiment ids, every experiment runs (this takes a few
//! minutes at paper scale). Ids are the values of `Experiment::id`, e.g.
//! `mse-mp`, `gauss-ablation`, `em3d-sm-1mb`; the prefixes `mse`,
//! `gauss`, `em3d`, `lcp` select the matching group. With `--timeline`,
//! each selected experiment additionally prints a per-processor activity
//! timeline (where in time the cycles went).
//!
//! `--trace` re-runs each selected experiment with structured tracing and
//! writes a Perfetto-loadable Chrome trace-event file per experiment (the
//! experiment id is inserted before the extension: `out.json` becomes
//! `out-em3d-mp.json`). `--metrics` writes the latency histograms as JSON
//! the same way and prints them as ASCII tables; `--json` writes the
//! result tables and run summary as JSON.

use wwt_bench::{full_report, timeline_report};
use wwt_core::{Experiment, Scale};

/// Inserts `-{id}` before the path's extension: `out.json` + `mse-mp`
/// becomes `out-mse-mp.json`.
fn with_id(path: &str, id: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() && !stem.ends_with('/') => {
            format!("{stem}-{id}.{ext}")
        }
        _ => format!("{path}-{id}"),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: make_tables [--test-scale] [--timeline] [--trace OUT.json] \
         [--metrics OUT.json] [--json OUT.json] [experiment-id ...]"
    );
    eprintln!("experiments:");
    for e in Experiment::ALL {
        eprintln!("  {:<16} {}", e.id(), e.paper_tables());
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut timeline = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut selected: Vec<Experiment> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--test-scale" => scale = Scale::Test,
            "--timeline" => timeline = true,
            "--trace" => trace_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics" => metrics_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--json" => json_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            id => {
                let matches: Vec<Experiment> = Experiment::ALL
                    .into_iter()
                    .filter(|e| {
                        e.id() == id
                            || e.id().starts_with(&format!("{id}-"))
                            || e.id().starts_with(id)
                    })
                    .collect();
                if matches.is_empty() {
                    eprintln!("unknown experiment '{id}' (try --help)");
                    std::process::exit(2);
                }
                selected.extend(matches);
            }
        }
    }
    if selected.is_empty() {
        selected = Experiment::ALL.to_vec();
    }
    selected.dedup();
    print!("{}", full_report(&selected, scale));
    if timeline {
        for &e in &selected {
            print!("{}", timeline_report(e, scale));
        }
    }

    let tracing_requested = trace_out.is_some() || metrics_out.is_some() || json_out.is_some();
    #[cfg(not(feature = "trace-json"))]
    if tracing_requested {
        eprintln!("make_tables was built without the `trace-json` feature; --trace/--metrics/--json are unavailable");
        std::process::exit(2);
    }
    #[cfg(feature = "trace-json")]
    if tracing_requested {
        for &e in &selected {
            let tr = wwt_bench::trace_report(e, scale);
            if let Some(base) = &trace_out {
                let path = with_id(base, e.id());
                std::fs::write(&path, &tr.perfetto)
                    .unwrap_or_else(|err| panic!("writing {path}: {err}"));
                eprintln!("wrote trace {path}");
            }
            if let Some(base) = &metrics_out {
                let path = with_id(base, e.id());
                std::fs::write(&path, &tr.metrics_json)
                    .unwrap_or_else(|err| panic!("writing {path}: {err}"));
                eprintln!("wrote metrics {path}");
                println!("\n### {} — {}", e.id(), tr.metrics_table);
            }
            if let Some(base) = &json_out {
                let path = with_id(base, e.id());
                std::fs::write(&path, &tr.experiment_json)
                    .unwrap_or_else(|err| panic!("writing {path}: {err}"));
                eprintln!("wrote result json {path}");
            }
        }
    }
}
