//! Regenerates every table of the paper at paper scale.
//!
//! Usage:
//!
//! ```text
//! make_tables [--test-scale] [--timeline] [experiment-id ...]
//! ```
//!
//! With no experiment ids, every experiment runs (this takes a few
//! minutes at paper scale). Ids are the values of `Experiment::id`, e.g.
//! `mse-mp`, `gauss-ablation`, `em3d-sm-1mb`; the prefixes `mse`,
//! `gauss`, `em3d`, `lcp` select the matching group. With `--timeline`,
//! each selected experiment additionally prints a per-processor activity
//! timeline (where in time the cycles went).

use wwt_bench::{full_report, timeline_report};
use wwt_core::{Experiment, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut timeline = false;
    let mut selected: Vec<Experiment> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--test-scale" => scale = Scale::Test,
            "--timeline" => timeline = true,
            "--help" | "-h" => {
                eprintln!("usage: make_tables [--test-scale] [--timeline] [experiment-id ...]");
                eprintln!("experiments:");
                for e in Experiment::ALL {
                    eprintln!("  {:<16} {}", e.id(), e.paper_tables());
                }
                return;
            }
            id => {
                let matches: Vec<Experiment> = Experiment::ALL
                    .into_iter()
                    .filter(|e| e.id() == id || e.id().starts_with(&format!("{id}-")) || e.id().starts_with(id))
                    .collect();
                if matches.is_empty() {
                    eprintln!("unknown experiment '{id}' (try --help)");
                    std::process::exit(2);
                }
                selected.extend(matches);
            }
        }
    }
    if selected.is_empty() {
        selected = Experiment::ALL.to_vec();
    }
    selected.dedup();
    print!("{}", full_report(&selected, scale));
    if timeline {
        for &e in &selected {
            print!("{}", timeline_report(e, scale));
        }
    }
}
