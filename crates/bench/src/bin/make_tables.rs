//! Regenerates every table of the paper at paper scale.
//!
//! Usage:
//!
//! ```text
//! make_tables [--test-scale] [--jobs N] [--sim-threads N] [--no-cache]
//!             [--timeline] [--trace OUT.json] [--metrics OUT.json]
//!             [--json OUT.json] [--faults SPEC] [--arch SPEC]
//!             [--arch-sweep KEY=V1,V2,...] [--sweep-delta] [--diff A B]
//!             [--diff-json OUT.json] [--obs] [--obs-json OUT.json]
//!             [--obs-prom OUT.txt] [--fsck] [--retries N]
//!             [--store-faults SPEC] [experiment-id ...]
//! ```
//!
//! With no experiment ids, every experiment runs. An id is either an
//! exact `Experiment::id` (`em3d-sm` — selects exactly that experiment)
//! or a group prefix at a `-` boundary (`em3d` — selects every `em3d-*`
//! experiment). Each selected experiment is simulated **exactly once**
//! with the union engine configuration for everything requested: the
//! breakdown tables, the `--timeline` activity timelines, and the
//! `--trace`/`--metrics`/`--json` exports all derive from that single
//! run.
//!
//! `--jobs N` fans the grid out over N worker threads (default: all
//! available cores). `--sim-threads N` shards each simulation's event
//! scheduler into N quantum-synchronized per-processor queues (default 1;
//! it composes with `--jobs`). The simulator is deterministic and results
//! are reassembled in selection order, so stdout is byte-identical for
//! any job count **and any `--sim-threads` value**. Per-experiment
//! wall-clock timings go to **stderr** and to `results/BENCH_grid.json`
//! (appended per invocation) so the report text stays deterministic.
//!
//! Runs are cached under `results/cache/`, keyed by (experiment, scale,
//! engine-config hash): a repeated invocation with unchanged inputs
//! replays from disk. `--no-cache` bypasses the cache entirely. Entries
//! live in checksummed `wwt-store` containers committed atomically, so a
//! damaged entry (torn write, bit rot, a crashed writer's leftovers) is a
//! warned miss that re-simulates — never wrong output. `--fsck` runs a
//! store scan first: corrupt entries are quarantined under
//! `results/cache/quarantine/` and orphaned temp/stale lock files are
//! garbage-collected, with a report on stderr.
//!
//! Transiently-failed grid jobs (watchdog expiry) are retried with
//! exponential backoff — `--retries N` bounds the attempts (default 2,
//! `--retries 0` disables). A panicking experiment is caught at the job
//! boundary and reported as a failed cell; the grid always finishes and
//! summarizes unrecovered cells on stderr.
//!
//! `--store-faults SPEC` (e.g. `seed=7,torn=0.2,flip=0.2,eio=0.2,
//! rename=0.2`; also readable from the `WWT_STORE_FAULTS` env var) arms
//! the deterministic *host*-fault harness on the result store: commits
//! tear at a seeded byte, flip a bit, or fail their rename, and reads
//! hit one transient `EIO` per path. Every mode degrades to a warned
//! miss plus re-simulation, so stdout stays byte-identical — the CI
//! crash-recovery smoke drives exactly this path.
//!
//! `--faults SPEC` runs every experiment under a deterministic
//! fault-injection plan, e.g.
//! `--faults seed=7,drop=0.01,dup=0.001,reorder=0.005,jitter=500`,
//! optionally with `fail=PROC@FROM..UNTIL` (a processor's packets are
//! dropped in both directions inside the window) and
//! `slow=PROC@FROM..UNTILxFACTOR` (its computation runs FACTOR× slower).
//! The MP machine recovers through its reliable-delivery layer (the
//! `Retries` table row); the SM machine degrades the plan into shared-miss
//! latency jitter. The plan is part of the engine configuration, so it
//! participates in the run-cache key and identical seeds replay
//! byte-identically.
//!
//! `--arch SPEC` runs every experiment on a different hardware base:
//! a preset (`paper`, `1mb-cache`, `low-latency`, `high-latency`),
//! `key=value` overrides, or both — `--arch 1mb-cache,net_latency=50`.
//! The default (`--arch paper`) reproduces the paper's Table-1 machine
//! and its output is byte-identical to omitting the flag.
//!
//! `--arch-sweep KEY=V1,V2,...` (repeatable) runs the selected
//! experiments at every point of the axes' cross product, on top of the
//! `--arch` base, and prints one MP-vs-SM comparison row per point
//! instead of the full per-experiment report. Every point goes through
//! the parallel grid runner and the run cache under its own key, so
//! re-sweeping replays from disk and stdout is byte-identical for any
//! `--jobs` count. Sweeps produce no per-experiment artifact files, so
//! `--timeline`/`--trace`/`--metrics`/`--json` cannot combine with them.
//!
//! `--diff A B` compares two runs instead of printing the report: each
//! side is an experiment id with optional `@arch=SPEC` / `@faults=SPEC`
//! qualifiers (`em3d-mp@arch=net_latency=400`) or a path to a
//! `results/cache/*.run` entry recorded with phase profiles. Sides given
//! as experiment ids run with phase marks enabled, through the run cache
//! — a warm diff never re-simulates. Stdout carries *only* the rendered
//! diff (phase-aligned, cluster-summarized, attributing the total-cycle
//! delta to (phase, category, processor-group) entries); a self-diff
//! prints nothing, and the text is byte-identical for any `--jobs`
//! value. `--diff-json OUT.json` additionally writes the machine-readable
//! diff. `--sweep-delta` adds a delta-vs-base column to `--arch-sweep`
//! rows.
//!
//! `--trace` writes a Perfetto-loadable Chrome trace-event file per
//! experiment (the experiment id is inserted before the extension:
//! `out.json` becomes `out-em3d-mp.json`). `--metrics` writes the latency
//! histograms as JSON the same way and prints them as ASCII tables;
//! `--json` writes the result tables and run summary as JSON.
//!
//! `--obs` turns on **host**-side self-observability (`wwt_obs`): while
//! the guest flags above attribute *simulated* cycles, `--obs` profiles
//! the simulator itself — events/sec per scheduler shard, calendar-queue
//! depths, `SmallCall` inline ratio, WaitCell pool recycling, run-cache
//! traffic, per-experiment wall time — and prints a self-profile table on
//! **stderr** (stdout stays byte-identical with or without the flag, at
//! any `--jobs`/`--sim-threads`, clean or faulted). A background sampler
//! also feeds a flight recorder whose last snapshots attach to any
//! `SimError` diagnostic. `--obs-json OUT.json` writes the recorded
//! snapshots as JSON; `--obs-prom OUT.txt` writes the final snapshot as
//! Prometheus text exposition (both imply `--obs`). Grid invocations with
//! `--obs` also record the snapshots to `results/OBS_grid.json` next to
//! `BENCH_grid.json`.

use std::path::PathBuf;

use wwt_bench::bench_log;
use wwt_bench::{select_experiments, timing_line, timing_total};
use wwt_core::arch::{sweep_points, ArchParams, ArchSweep, KEYS, PRESETS};
use wwt_core::{
    render_report, render_sweep_report, run_grid, run_sweep, Experiment, RunnerConfig, Scale,
};

/// Inserts `-{id}` before the final path component's extension:
/// `out.json` + `mse-mp` becomes `out-mse-mp.json`. Dots in directory
/// names are not extensions (`results/v1.0/out` stays in
/// `results/v1.0/`), and neither is the leading dot of a hidden file.
fn with_id(path: &str, id: &str) -> String {
    let (dir, file) = match path.rsplit_once('/') {
        Some((dir, file)) => (Some(dir), file),
        None => (None, path),
    };
    let tagged = match file.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{id}.{ext}"),
        _ => format!("{file}-{id}"),
    };
    match dir {
        Some(dir) => format!("{dir}/{tagged}"),
        None => tagged,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: make_tables [--test-scale] [--jobs N] [--sim-threads N] [--no-cache] [--timeline] \
         [--trace OUT.json] [--metrics OUT.json] [--json OUT.json] \
         [--faults seed=S,drop=P,dup=P,reorder=P,jitter=CYCLES,\
         fail=PROC@FROM..UNTIL,slow=PROC@FROM..UNTILxFACTOR] \
         [--arch preset[,key=value,...]] [--arch-sweep key=v1,v2,...]... \
         [--sweep-delta] [--diff A B] [--diff-json OUT.json] \
         [--obs] [--obs-json OUT.json] [--obs-prom OUT.txt] \
         [--fsck] [--retries N] \
         [--store-faults seed=S,torn=P,flip=P,eio=P,rename=P] \
         [experiment-id ...]"
    );
    eprintln!(
        "diff sides: an experiment id with optional @arch=SPEC/@faults=SPEC \
         qualifiers, or a path to a results/cache/*.run entry"
    );
    eprintln!("experiments:");
    for e in Experiment::ALL {
        eprintln!("  {:<16} {}", e.id(), e.paper_tables());
    }
    eprintln!("arch presets:");
    for (name, what) in PRESETS {
        eprintln!("  {name:<16} {what}");
    }
    eprintln!("arch keys (for --arch overrides and --arch-sweep axes):");
    for (name, what) in KEYS {
        eprintln!("  {name:<16} {what}");
    }
    std::process::exit(2);
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves one `--diff` side into a labeled run profile.
///
/// A spec containing `/` or ending in `.run` is a cached-run path; it is
/// loaded as-is and never re-simulated. Anything else is an experiment
/// id with optional `@arch=SPEC` / `@faults=SPEC` qualifiers, run
/// through the grid runner (and the run cache) with phase marks on.
fn resolve_diff_side(
    spec: &str,
    base: &RunnerConfig,
) -> Result<(String, bool, wwt_core::diff::RunProfile), String> {
    if spec.contains('/') || spec.ends_with(".run") {
        let art = wwt_core::cache::load_path(std::path::Path::new(spec))
            .ok_or_else(|| format!("cannot load cached run '{spec}'"))?;
        let prof = art.phases.ok_or_else(|| {
            format!("cached run '{spec}' carries no phase profile; re-record it via --diff with experiment ids")
        })?;
        return Ok((format!("{spec} ({})", art.experiment.id()), true, prof));
    }
    let mut parts = spec.split('@');
    let id = parts.next().unwrap_or("");
    let e = Experiment::from_id(id)
        .ok_or_else(|| format!("unknown experiment '{id}' in diff side '{spec}'"))?;
    let mut cfg = RunnerConfig {
        phases: true,
        timeline: false,
        trace: false,
        ..base.clone()
    };
    for q in parts {
        if let Some(s) = q.strip_prefix("arch=") {
            cfg.arch = ArchParams::parse(s)
                .map_err(|err| format!("invalid arch in diff side '{spec}': {err}"))?;
        } else if let Some(s) = q.strip_prefix("faults=") {
            cfg.faults = Some(
                wwt_core::sim::FaultConfig::parse(s)
                    .map_err(|err| format!("invalid faults in diff side '{spec}': {err}"))?,
            );
        } else {
            return Err(format!(
                "unknown qualifier '@{q}' in diff side '{spec}' (use @arch=SPEC or @faults=SPEC)"
            ));
        }
    }
    let arts = run_grid(&[e], &cfg);
    let art = arts
        .into_iter()
        .next()
        .expect("one experiment in, one artifact out");
    let prof = art
        .phases
        .expect("phase profiles were requested for this run");
    Ok((spec.to_string(), art.from_cache, prof))
}

/// One-line end-of-run cache effectiveness summary on stderr
/// (always-on counters, so this works without `--obs`). Deduplicated
/// corrupt-entry warnings surface here as a suppressed-repeats count, so
/// a quiet stderr is never mistaken for a healthy store.
fn cache_summary() {
    let (hits, misses, bytes, corrupt) = wwt_core::cache::stats();
    let suppressed = wwt_core::store::suppressed_warnings();
    let suffix = if suppressed > 0 {
        format!(" ({suppressed} repeat warnings suppressed)")
    } else {
        String::new()
    };
    eprintln!(
        "cache: {hits} hits, {misses} misses, {bytes} bytes read, {corrupt} corrupt entries recovered{suffix}"
    );
}

/// With `--obs --sim-threads N` (N ≥ 2), runs a short synthetic ring
/// workload on the threaded `ParEngine` at that shard count so the
/// self-profile includes measured quantum-barrier costs — the machine
/// models still run on the single-threaded sharded scheduler (ROADMAP
/// item 1), so this calibration is the only way to see what the parallel
/// harness itself will cost at the requested width. Stderr only; the
/// simulated experiment output is untouched.
fn obs_calibrate_parengine(sim_threads: usize) {
    use wwt_core::sim::parallel::{workloads, ParConfig, ParEngine};
    let nprocs = sim_threads * 4;
    let mut eng = ParEngine::new(
        nprocs,
        ParConfig {
            shards: sim_threads,
            lookahead: 100,
            quantum: 100,
        },
    );
    workloads::install_ring(&mut eng, nprocs, 200, 50);
    let report = eng.run();
    eprintln!(
        "obs: parengine calibration ring ({sim_threads} shards, {nprocs} procs, {} deliveries)",
        report.delivered()
    );
}

/// Emits the end-of-run host-metrics outputs: the self-profile table on
/// stderr plus the optional JSON / Prometheus files. Returns the recorded
/// snapshots as JSON (flight recorder + one final snapshot) so the grid
/// path can also drop it next to `BENCH_grid.json`. Stdout is never
/// touched — simulated output must stay byte-identical under `--obs`.
fn obs_finish(
    sim_threads: usize,
    obs_json_out: Option<&str>,
    obs_prom_out: Option<&str>,
) -> String {
    use wwt_core::obs;
    if sim_threads >= 2 {
        obs_calibrate_parengine(sim_threads);
    }
    let last = obs::snapshot_now();
    eprint!("{}", obs::render_table(&last));
    let mut snaps = obs::recent_snapshots();
    snaps.push(last.clone());
    let json = obs::render_json(&snaps);
    if let Some(path) = obs_json_out {
        std::fs::write(path, &json).unwrap_or_else(|err| panic!("writing {path}: {err}"));
        eprintln!("wrote obs json {path}");
    }
    if let Some(path) = obs_prom_out {
        std::fs::write(path, obs::render_prometheus(&last))
            .unwrap_or_else(|err| panic!("writing {path}: {err}"));
        eprintln!("wrote obs prometheus {path}");
    }
    json
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut jobs = default_jobs();
    let mut sim_threads = 1usize;
    let mut use_cache = true;
    let mut timeline = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut faults: Option<wwt_core::sim::FaultConfig> = None;
    let mut faults_spec: Option<String> = None;
    let mut arch = ArchParams::default();
    let mut sweeps: Vec<ArchSweep> = Vec::new();
    let mut sweep_delta = false;
    let mut diff: Option<(String, String)> = None;
    let mut diff_json_out: Option<String> = None;
    let mut obs = false;
    let mut obs_json_out: Option<String> = None;
    let mut obs_prom_out: Option<String> = None;
    let mut fsck = false;
    let mut retries = 2u32;
    let mut selectors: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--test-scale" => scale = Scale::Test,
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--sim-threads" => {
                sim_threads = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--no-cache" => use_cache = false,
            "--timeline" => timeline = true,
            "--trace" => trace_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics" => metrics_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--json" => json_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--faults" => {
                let spec = it.next().unwrap_or_else(|| usage());
                match wwt_core::sim::FaultConfig::parse(spec) {
                    Ok(cfg) => {
                        faults = Some(cfg);
                        faults_spec = Some(spec.clone());
                    }
                    Err(err) => {
                        eprintln!("invalid --faults spec: {err}");
                        usage();
                    }
                }
            }
            "--arch" => {
                let spec = it.next().unwrap_or_else(|| usage());
                match ArchParams::parse(spec) {
                    Ok(a) => arch = a,
                    Err(err) => {
                        eprintln!("invalid --arch spec: {err}");
                        usage();
                    }
                }
            }
            "--arch-sweep" => {
                let spec = it.next().unwrap_or_else(|| usage());
                match ArchSweep::parse(spec) {
                    Ok(s) => sweeps.push(s),
                    Err(err) => {
                        eprintln!("invalid --arch-sweep spec: {err}");
                        usage();
                    }
                }
            }
            "--sweep-delta" => sweep_delta = true,
            "--diff" => {
                let a = it.next().cloned().unwrap_or_else(|| usage());
                let b = it.next().cloned().unwrap_or_else(|| usage());
                diff = Some((a, b));
            }
            "--diff-json" => diff_json_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--fsck" => fsck = true,
            "--retries" => {
                retries = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--store-faults" => {
                let spec = it.next().unwrap_or_else(|| usage());
                match wwt_core::store::StoreFaults::parse(spec) {
                    Ok(f) => wwt_core::store::set_global_faults(Some(f)),
                    Err(err) => {
                        eprintln!("invalid --store-faults spec: {err}");
                        usage();
                    }
                }
            }
            "--obs" => obs = true,
            "--obs-json" => {
                obs = true;
                obs_json_out = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--obs-prom" => {
                obs = true;
                obs_prom_out = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            id => selectors.push(id.to_string()),
        }
    }
    let selected = select_experiments(&selectors).unwrap_or_else(|bad| {
        eprintln!("unknown experiment '{bad}' (try --help)");
        std::process::exit(2);
    });

    if obs {
        // Enable before any engine exists: the sharded queue caches the
        // flag at construction. The sampler feeds the flight recorder
        // that SimError diagnostics attach.
        wwt_core::obs::enable();
        wwt_core::obs::start_sampler(100);
    }

    let tracing_requested = trace_out.is_some() || metrics_out.is_some() || json_out.is_some();
    #[cfg(not(feature = "trace-json"))]
    if tracing_requested {
        eprintln!("make_tables was built without the `trace-json` feature; --trace/--metrics/--json are unavailable");
        std::process::exit(2);
    }

    let cfg = RunnerConfig {
        scale,
        jobs,
        timeline,
        trace: tracing_requested,
        cache_dir: use_cache.then(|| PathBuf::from("results/cache")),
        faults,
        arch,
        phases: false,
        sim_threads,
        retries,
        ..RunnerConfig::new(scale)
    };

    if fsck {
        // Scan-and-repair the store before anything reads it: corrupt
        // entries move to quarantine/ (each then re-simulates as a plain
        // miss), crash leftovers are swept. The scan reads what is really
        // on disk — an armed --store-faults plan does not apply to it.
        let Some(dir) = &cfg.cache_dir else {
            eprintln!("--fsck needs the run cache; drop --no-cache");
            std::process::exit(2);
        };
        let report = wwt_core::store::Store::with_config(
            dir.clone(),
            wwt_core::store::StoreConfig::default(),
        )
        .fsck();
        eprintln!("{report}");
        // Quarantined entries are corrupt entries recovered (the grid
        // re-simulates and recommits them): surface them in the always-on
        // cache counters so the end-of-run summary reflects the repair.
        wwt_core::obs::count_always(
            wwt_core::obs::Ctr::CacheCorruptRecovered,
            report.quarantined.len() as u64,
        );
    }

    if let Some((spec_a, spec_b)) = diff {
        // Diff mode: stdout carries only the rendered diff (a self-diff
        // prints nothing), so it stays byte-identical across job counts
        // and cache states; everything else goes to stderr.
        if !sweeps.is_empty() || timeline || tracing_requested {
            eprintln!(
                "--diff cannot combine with --arch-sweep/--timeline/--trace/--metrics/--json"
            );
            std::process::exit(2);
        }
        if !selectors.is_empty() {
            eprintln!("--diff takes its experiments from its two sides; drop the extra ids");
            std::process::exit(2);
        }
        let start = std::time::Instant::now();
        let resolve = |spec: &str| {
            let side_start = std::time::Instant::now();
            let side = resolve_diff_side(spec, &cfg).unwrap_or_else(|err| {
                eprintln!("{err}");
                std::process::exit(2);
            });
            (side, side_start.elapsed().as_secs_f64())
        };
        let ((label_a, cached_a, prof_a), secs_a) = resolve(&spec_a);
        let ((label_b, cached_b, prof_b), secs_b) = resolve(&spec_b);
        let d = wwt_core::diff::diff_profiles(&prof_a, &prof_b);
        print!("{}", wwt_core::diff::render_diff(&d, &prof_a, &prof_b));
        if let Some(path) = &diff_json_out {
            let body = wwt_core::diff::diff_json(&d, &prof_a, &prof_b);
            std::fs::write(path, body).unwrap_or_else(|err| panic!("writing {path}: {err}"));
            eprintln!("wrote diff json {path}");
        }
        let cached = |c: bool| if c { " (cached)" } else { "" };
        eprintln!(
            "{}",
            timing_line(&format!("A={label_a}"), secs_a, cached(cached_a))
        );
        eprintln!(
            "{}",
            timing_line(&format!("B={label_b}"), secs_b, cached(cached_b))
        );
        eprintln!(
            "{}",
            timing_total(
                "2 diff sides",
                start.elapsed().as_secs_f64(),
                cfg.jobs,
                cached_a as usize + cached_b as usize,
                2,
            )
        );
        if use_cache {
            cache_summary();
        }
        if obs {
            obs_finish(
                sim_threads,
                obs_json_out.as_deref(),
                obs_prom_out.as_deref(),
            );
        }
        return;
    }

    if diff_json_out.is_some() {
        eprintln!("--diff-json requires --diff");
        std::process::exit(2);
    }

    if !sweeps.is_empty() {
        // Sweeps print one comparison row per point, not per-experiment
        // artifacts; the artifact flags have nothing to attach to.
        if timeline || tracing_requested {
            eprintln!("--arch-sweep cannot combine with --timeline/--trace/--metrics/--json");
            std::process::exit(2);
        }
        let points = sweep_points(&arch, &sweeps).unwrap_or_else(|err| {
            eprintln!("invalid sweep: {err}");
            std::process::exit(2);
        });
        let start = std::time::Instant::now();
        let outcomes = run_sweep(&selected, &cfg, &points);
        let total_secs = start.elapsed().as_secs_f64();
        print!(
            "{}",
            render_sweep_report(&outcomes, scale, &arch, sweep_delta)
        );
        // Timings go to stderr, never stdout: sweep output must be
        // byte-identical across job counts and cache states.
        for o in &outcomes {
            let hits = o.artifacts.iter().filter(|a| a.from_cache).count();
            let secs: f64 = o.artifacts.iter().map(|a| a.wall_secs).sum();
            eprintln!(
                "{}",
                timing_line(
                    &o.label,
                    secs,
                    &format!(" (cache hits {hits}/{})", o.artifacts.len()),
                )
            );
        }
        let total_runs: usize = outcomes.iter().map(|o| o.artifacts.len()).sum();
        let total_hits: usize = outcomes
            .iter()
            .flat_map(|o| &o.artifacts)
            .filter(|a| a.from_cache)
            .count();
        eprintln!(
            "{}",
            timing_total(
                &format!("{} points x {} experiments", outcomes.len(), selected.len()),
                total_secs,
                cfg.jobs,
                total_hits,
                total_runs,
            )
        );
        if use_cache {
            cache_summary();
        }
        if obs {
            obs_finish(
                sim_threads,
                obs_json_out.as_deref(),
                obs_prom_out.as_deref(),
            );
        }
        return;
    }

    let start = std::time::Instant::now();
    let artifacts = run_grid(&selected, &cfg);
    let total_secs = start.elapsed().as_secs_f64();

    // A non-default hardware base is announced above the report so its
    // numbers can never be mistaken for the paper machine's; the default
    // prints nothing, keeping `--arch paper` byte-identical to the
    // pre-sweep output.
    if !arch.is_paper() {
        println!("arch: {}", arch.canonical());
    }
    print!("{}", render_report(&artifacts, scale));
    if timeline {
        for a in &artifacts {
            if let Some(t) = &a.timeline {
                print!("{t}");
            }
        }
    }

    #[cfg(feature = "trace-json")]
    if tracing_requested {
        for a in &artifacts {
            let e = a.experiment;
            // A stalled simulation has no trace to export; the failure is
            // reported (and the exit code set) below.
            let Some(tr) = a.trace.as_ref() else {
                continue;
            };
            if let Some(base) = &trace_out {
                let path = with_id(base, e.id());
                std::fs::write(&path, &tr.perfetto)
                    .unwrap_or_else(|err| panic!("writing {path}: {err}"));
                eprintln!("wrote trace {path}");
            }
            if let Some(base) = &metrics_out {
                let path = with_id(base, e.id());
                std::fs::write(&path, &tr.metrics_json)
                    .unwrap_or_else(|err| panic!("writing {path}: {err}"));
                eprintln!("wrote metrics {path}");
                println!("\n### {} — {}", e.id(), tr.metrics_table);
            }
            if let Some(base) = &json_out {
                let path = with_id(base, e.id());
                std::fs::write(&path, &tr.experiment_json)
                    .unwrap_or_else(|err| panic!("writing {path}: {err}"));
                eprintln!("wrote result json {path}");
            }
        }
    }

    // Wall-clock timings go to stderr and BENCH_grid.json, never stdout:
    // the report text must be byte-identical across job counts and runs.
    let hits = artifacts.iter().filter(|a| a.from_cache).count();
    for a in &artifacts {
        eprintln!(
            "{}",
            timing_line(
                a.experiment.id(),
                a.wall_secs,
                if a.from_cache { " (cached)" } else { "" },
            )
        );
    }
    eprintln!(
        "{}",
        timing_total(
            &format!("{} experiments", artifacts.len()),
            total_secs,
            cfg.jobs,
            hits,
            artifacts.len(),
        )
    );
    if use_cache {
        cache_summary();
    }
    let record = bench_log::bench_record(
        scale,
        cfg.jobs,
        cfg.sim_threads,
        use_cache,
        &arch,
        faults_spec.as_deref(),
        total_secs,
        &artifacts,
    );
    if let Err(err) = bench_log::append_bench_record("results/BENCH_grid.json", &record) {
        eprintln!("could not record results/BENCH_grid.json: {err}");
    }
    if obs {
        let snaps_json = obs_finish(
            sim_threads,
            obs_json_out.as_deref(),
            obs_prom_out.as_deref(),
        );
        // The self-profile artifact rides along with the grid's timing
        // record (same best-effort discipline as BENCH_grid.json).
        // Atomic temp + rename: a killed run leaves the previous
        // snapshot file intact, never a truncated one.
        let path = "results/OBS_grid.json";
        if let Err(err) = wwt_core::store::atomic_write(path, snaps_json.as_bytes()) {
            eprintln!("could not record {path}: {err}");
        } else {
            eprintln!("wrote obs snapshots {path}");
        }
    }

    // A stalled simulation (deadlock, livelock, watchdog expiry) renders
    // its structured failure report in the grid output above and must not
    // look like success: name the casualties and exit nonzero, after every
    // healthy experiment has finished and every artifact is written.
    let failed: Vec<_> = artifacts
        .iter()
        .filter(|a| a.summary.engine_failed())
        .collect();
    if !failed.is_empty() {
        for a in &failed {
            eprintln!(
                "error: {} did not complete: {}",
                a.experiment.id(),
                a.summary
                    .validation_detail
                    .lines()
                    .next()
                    .unwrap_or("simulation stalled")
            );
        }
        eprintln!(
            "error: {}/{} experiments failed (full reports above)",
            failed.len(),
            artifacts.len()
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_id_inserts_before_the_extension() {
        assert_eq!(with_id("out.json", "mse-mp"), "out-mse-mp.json");
        assert_eq!(with_id("a/b/out.json", "em3d-sm"), "a/b/out-em3d-sm.json");
    }

    #[test]
    fn with_id_ignores_dots_in_directories() {
        assert_eq!(
            with_id("results/v1.0/out", "mse-mp"),
            "results/v1.0/out-mse-mp"
        );
        assert_eq!(
            with_id("results/v1.0/out.json", "mse-mp"),
            "results/v1.0/out-mse-mp.json"
        );
    }

    #[test]
    fn with_id_handles_extensionless_and_hidden_files() {
        assert_eq!(with_id("trace", "lcp-mp"), "trace-lcp-mp");
        assert_eq!(with_id(".hidden", "lcp-mp"), ".hidden-lcp-mp");
        assert_eq!(with_id("dir/.hidden", "lcp-mp"), "dir/.hidden-lcp-mp");
        assert_eq!(
            with_id("dir/.hidden.json", "lcp-mp"),
            "dir/.hidden-lcp-mp.json"
        );
    }
}
