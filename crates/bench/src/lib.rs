//! Benchmark support for the WWT reproduction: shared helpers used by the
//! Criterion benches and by the `make_tables` table-regeneration binary.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;

use wwt_core::{
    headline_checks, paper_reference, render_timeline, run_experiment_with, Experiment,
    ExperimentOutput, Scale,
};

/// Runs a set of experiments and renders the full report: measured tables,
/// the paper's published values alongside, and the headline shape checks.
pub fn full_report(experiments: &[Experiment], scale: Scale) -> String {
    let mut results: HashMap<Experiment, ExperimentOutput> = HashMap::new();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "WWT reproduction — {} scale\n{}",
        match scale {
            Scale::Paper => "paper",
            Scale::Test => "test",
        },
        "=".repeat(70)
    );
    for &e in experiments {
        let r = wwt_core::run_experiment(e, scale);
        let _ = writeln!(out, "\n### {} ({})", e.id(), e.paper_tables());
        let _ = writeln!(
            out,
            "validation: {} — {}",
            if r.run.validation.passed {
                "PASS"
            } else {
                "FAIL"
            },
            r.run.validation.detail
        );
        for (name, v) in &r.run.stats {
            let _ = writeln!(out, "stat: {name} = {v}");
        }
        let _ = writeln!(
            out,
            "load imbalance: {:.1}%; waiting: {:.0}% of all cycles",
            100.0 * r.run.report.imbalance(),
            100.0 * r.run.report.wait_fraction()
        );
        for t in &r.tables {
            let _ = writeln!(out, "\n{t}");
        }
        for t in &r.events {
            let _ = writeln!(out, "\n{t}");
        }
        results.insert(e, r);
    }

    let _ = writeln!(
        out,
        "\n{}\nPaper-published values (for comparison)\n{0}",
        "-".repeat(70)
    );
    for t in paper_reference() {
        if results.contains_key(&t.experiment) {
            let _ = writeln!(
                out,
                "\nPaper Table {}: {} (total {:.1}M)",
                t.number, t.title, t.total
            );
            for (label, v) in t.rows {
                let _ = writeln!(out, "  {label:<28} {v:>8.1}M {:>4.0}%", 100.0 * v / t.total);
            }
        }
    }

    let _ = writeln!(out, "\n{}\nHeadline shape checks\n{0}", "-".repeat(70));
    let checks = headline_checks(&results);
    let passed = checks.iter().filter(|c| c.pass).count();
    for c in &checks {
        let _ = writeln!(out, "\n{c}");
    }
    let _ = writeln!(out, "\n{passed}/{} headline checks pass", checks.len());
    out
}

/// Re-runs one experiment with time-resolved profiling and renders its
/// per-processor activity timeline.
pub fn timeline_report(e: Experiment, scale: Scale) -> String {
    // Pick a bucket that yields a few hundred samples at either scale.
    let bucket = match scale {
        Scale::Paper => 200_000,
        Scale::Test => 2_000,
    };
    let sim = wwt_core::sim::SimConfig {
        profile_bucket: Some(bucket),
        ..wwt_core::sim::SimConfig::default()
    };
    let out = run_experiment_with(e, scale, sim);
    let timeline = render_timeline(&out.run.report, bucket, 100)
        .expect("run was profiled, so a timeline must render");
    format!(
        "
### {} — timeline
{}",
        e.id(),
        timeline
    )
}

/// Everything a trace-enabled run exports (the `--trace`/`--metrics`
/// outputs of `make_tables`).
#[cfg(feature = "trace-json")]
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Chrome trace-event / Perfetto JSON.
    pub perfetto: String,
    /// Latency histograms as JSON.
    pub metrics_json: String,
    /// Latency histograms as an ASCII table.
    pub metrics_table: String,
    /// The experiment result (tables, validation, summary) as JSON.
    pub experiment_json: String,
}

/// Re-runs one experiment with structured tracing enabled and exports the
/// trace, the latency histograms, and the result tables.
#[cfg(feature = "trace-json")]
pub fn trace_report(e: Experiment, scale: Scale) -> TraceReport {
    use wwt_core::trace;

    let sim = wwt_core::sim::SimConfig {
        trace: true,
        ..wwt_core::sim::SimConfig::default()
    };
    let out = run_experiment_with(e, scale, sim);
    let report = &out.run.report;
    let data = report.trace().expect("tracing was enabled");
    TraceReport {
        perfetto: trace::chrome_trace_json(report).expect("tracing was enabled"),
        metrics_json: trace::metrics_json(&data.metrics),
        metrics_table: trace::metrics_table(&data.metrics),
        experiment_json: wwt_core::experiment_json(&out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_report_renders() {
        let t = timeline_report(Experiment::LcpMp, Scale::Test);
        assert!(t.contains("timeline"));
        assert!(t.contains('|'));
    }

    #[test]
    fn report_renders_for_a_small_experiment_set() {
        let s = full_report(&[Experiment::GaussMp, Experiment::GaussSm], Scale::Test);
        assert!(s.contains("gauss-mp"));
        assert!(s.contains("Computation"));
        assert!(s.contains("headline checks pass"));
        assert!(s.contains("Paper Table 8"));
    }
}
