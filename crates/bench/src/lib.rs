//! Benchmark support for the WWT reproduction: shared helpers used by the
//! Criterion benches and by the `make_tables` table-regeneration binary.
//!
//! The heavy lifting lives in [`wwt_core::runner`]: experiments are
//! simulated once each (with the union engine configuration for every
//! requested artifact), optionally in parallel and through the run
//! cache. This crate keeps the stable convenience API — [`full_report`],
//! [`timeline_report`], [`trace_report`] — plus the command-line
//! experiment selection used by `make_tables`.

#![warn(missing_docs)]

pub mod bench_log;

use wwt_core::{render_report, run_grid, Experiment, RunnerConfig, Scale};

/// Resolves command-line experiment selectors into a run list.
///
/// An exact [`Experiment::id`] (`em3d-sm`) selects exactly that
/// experiment; anything else is a group prefix that must match at a `-`
/// boundary (`em3d` selects every `em3d-*` experiment, but `em3d-s`
/// selects nothing). Duplicates are dropped while preserving
/// first-occurrence order; an empty selector list selects every
/// experiment. Unknown selectors return `Err` with the offending string.
pub fn select_experiments<S: AsRef<str>>(selectors: &[S]) -> Result<Vec<Experiment>, String> {
    let mut selected: Vec<Experiment> = Vec::new();
    for sel in selectors {
        let sel = sel.as_ref();
        let matches: Vec<Experiment> = match Experiment::from_id(sel) {
            Some(e) => vec![e],
            None => {
                let prefix = format!("{sel}-");
                Experiment::ALL
                    .into_iter()
                    .filter(|e| e.id().starts_with(&prefix))
                    .collect()
            }
        };
        if matches.is_empty() {
            return Err(sel.to_string());
        }
        for e in matches {
            if !selected.contains(&e) {
                selected.push(e);
            }
        }
    }
    if selected.is_empty() {
        selected = Experiment::ALL.to_vec();
    }
    Ok(selected)
}

/// One stderr per-item timing line, in the single format shared by the
/// grid, `--arch-sweep`, and `--diff` paths:
/// `timing: <label padded to 28> <secs>s<note>`. `note` carries cache
/// provenance (`" (cached)"`, `" (cache hits H/N)"`) or is empty.
pub fn timing_line(label: &str, secs: f64, note: &str) -> String {
    format!("timing: {label:<28} {secs:>8.2}s{note}")
}

/// The stderr end-of-run timing summary, in the single format shared by
/// every `make_tables` path:
/// `timing: total <items> in <secs>s (jobs=N, cache hits H/N)`.
/// `items` names what was timed (`"18 experiments"`,
/// `"6 points x 2 experiments"`, `"2 diff sides"`).
pub fn timing_total(items: &str, secs: f64, jobs: usize, hits: usize, total: usize) -> String {
    format!("timing: total {items} in {secs:.2}s (jobs={jobs}, cache hits {hits}/{total})")
}

/// Runs a set of experiments and renders the full report: measured tables,
/// the paper's published values alongside, and the headline shape checks.
pub fn full_report(experiments: &[Experiment], scale: Scale) -> String {
    let cfg = RunnerConfig::new(scale);
    let artifacts = run_grid(experiments, &cfg);
    render_report(&artifacts, scale)
}

/// Runs one experiment with time-resolved profiling and renders its
/// per-processor activity timeline.
pub fn timeline_report(e: Experiment, scale: Scale) -> String {
    let cfg = RunnerConfig {
        timeline: true,
        ..RunnerConfig::new(scale)
    };
    let artifacts = run_grid(&[e], &cfg);
    artifacts
        .into_iter()
        .next()
        .and_then(|a| a.timeline)
        .expect("timeline was requested, so the artifact must carry one")
}

/// Everything a trace-enabled run exports (the `--trace`/`--metrics`
/// outputs of `make_tables`).
#[cfg(feature = "trace-json")]
pub use wwt_core::TraceArtifacts as TraceReport;

/// Runs one experiment with structured tracing enabled and exports the
/// trace, the latency histograms, and the result tables.
#[cfg(feature = "trace-json")]
pub fn trace_report(e: Experiment, scale: Scale) -> TraceReport {
    let cfg = RunnerConfig {
        trace: true,
        ..RunnerConfig::new(scale)
    };
    let artifacts = run_grid(&[e], &cfg);
    artifacts
        .into_iter()
        .next()
        .and_then(|a| a.trace)
        .expect("tracing was requested, so the artifact must carry exports")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_report_renders() {
        let t = timeline_report(Experiment::LcpMp, Scale::Test);
        assert!(t.contains("timeline"));
        assert!(t.contains('|'));
    }

    #[test]
    fn report_renders_for_a_small_experiment_set() {
        let s = full_report(&[Experiment::GaussMp, Experiment::GaussSm], Scale::Test);
        assert!(s.contains("gauss-mp"));
        assert!(s.contains("Computation"));
        assert!(s.contains("headline checks pass"));
        assert!(s.contains("Paper Table 8"));
    }

    #[cfg(feature = "trace-json")]
    #[test]
    fn trace_report_exports_every_artifact() {
        let tr = trace_report(Experiment::LcpMp, Scale::Test);
        assert!(tr.perfetto.contains("traceEvents"));
        assert!(tr.metrics_json.starts_with('{'));
        assert!(!tr.metrics_table.is_empty());
        assert!(tr.experiment_json.starts_with("{\"experiment\":\"lcp-mp\""));
    }

    #[test]
    fn exact_id_selects_exactly_one_experiment() {
        assert_eq!(
            select_experiments(&["em3d-sm"]).unwrap(),
            vec![Experiment::Em3dSm]
        );
        assert_eq!(
            select_experiments(&["gauss-sm"]).unwrap(),
            vec![Experiment::GaussSm],
            "gauss-sm must not drag in gauss-sm-push"
        );
    }

    #[test]
    fn group_prefix_selects_the_whole_group_at_dash_boundaries() {
        let em3d = select_experiments(&["em3d"]).unwrap();
        assert_eq!(em3d.len(), 8, "{em3d:?}");
        assert!(em3d.iter().all(|e| e.id().starts_with("em3d-")));
        // A partial word is not a group.
        assert_eq!(select_experiments(&["em3d-s"]), Err("em3d-s".to_string()));
        assert_eq!(select_experiments(&["em3"]), Err("em3".to_string()));
    }

    #[test]
    fn duplicates_are_dropped_preserving_first_occurrence_order() {
        let got = select_experiments(&["mse-mp", "gauss-mp", "mse-mp"]).unwrap();
        assert_eq!(got, vec![Experiment::MseMp, Experiment::GaussMp]);
        // Overlapping group + exact id dedups too.
        let got = select_experiments(&["gauss-mp", "gauss"]).unwrap();
        assert_eq!(got[0], Experiment::GaussMp);
        assert_eq!(got.len(), 4, "{got:?}");
    }

    #[test]
    fn empty_selection_runs_everything() {
        let got = select_experiments::<&str>(&[]).unwrap();
        assert_eq!(got, Experiment::ALL.to_vec());
    }
}
