//! The wall-clock trajectory log: `results/BENCH_grid.json`.
//!
//! Every `make_tables` grid invocation appends one single-line JSON
//! record (`{"runs":[...]}` overall) so successive runs — `--jobs 1` vs
//! `--jobs 4`, `--sim-threads 1` vs `--sim-threads 8`, before vs after an
//! engine change — can be compared from one file.
//!
//! # Schema
//!
//! The current record schema is [`SCHEMA`] (3). Relative to schema 2 it
//! adds the `"sim_threads"` field (the engine's scheduler shard count).
//! On every append the whole file is normalized:
//!
//! * **schema-2 records are migrated in place** — they gain
//!   `"sim_threads":1` (the only value those builds could run) and their
//!   schema number is bumped, so one file never mixes field layouts;
//! * **legacy records** (no `"schema"` field at all — the pre-schema era
//!   that also lacked `"arch_hash"` and `"faults"`) **are dropped**: they
//!   cannot be attributed to an architecture point or fault plan, which
//!   makes their timings incomparable with everything the file is for;
//! * records are compacted to the newest [`KEEP_PER_KEY`] per
//!   configuration key so the file stays bounded forever.
//!
//! An unreadable or foreign file starts over with just the new record.

use std::fmt::Write as _;

use wwt_core::arch::ArchParams;
use wwt_core::{ExperimentArtifacts, Scale};

/// The record schema this build writes.
pub const SCHEMA: u32 = 3;

/// Compaction: keep only the latest this-many records per
/// (scale, jobs, sim_threads, cache, experiment-set) key, so the log
/// stays bounded no matter how many invocations accumulate.
pub const KEEP_PER_KEY: usize = 8;

/// The compaction key of one record line. Extracted textually (records
/// are single-line JSON this module wrote itself).
fn bench_key(rec: &str) -> String {
    let field = |name: &str| -> String {
        rec.split(&format!("\"{name}\":"))
            .nth(1)
            .map(|r| r.chars().take_while(|c| !",}".contains(*c)).collect())
            .unwrap_or_default()
    };
    let ids: Vec<&str> = rec
        .split("\"id\":\"")
        .skip(1)
        .filter_map(|r| r.split('"').next())
        .collect();
    format!(
        "{}|{}|{}|{}|{}",
        field("scale"),
        field("jobs"),
        field("sim_threads"),
        field("cache"),
        ids.join(",")
    )
}

/// Renders one invocation's timing record (single-line JSON, schema
/// [`SCHEMA`]).
#[allow(clippy::too_many_arguments)]
pub fn bench_record(
    scale: Scale,
    jobs: usize,
    sim_threads: usize,
    cache: bool,
    arch: &ArchParams,
    faults_spec: Option<&str>,
    total_secs: f64,
    artifacts: &[ExperimentArtifacts],
) -> String {
    let faults = match faults_spec {
        Some(f) => format!("\"{f}\""),
        None => "null".to_string(),
    };
    let mut rec = format!(
        "{{\"schema\":{SCHEMA},\"scale\":\"{}\",\"jobs\":{jobs},\"sim_threads\":{sim_threads},\"cache\":{cache},\"arch_hash\":\"{:016x}\",\"faults\":{faults},\"total_wall_secs\":{total_secs:.6},\"experiments\":[",
        scale.name(),
        arch.stable_hash()
    );
    for (i, a) in artifacts.iter().enumerate() {
        if i > 0 {
            rec.push(',');
        }
        let _ = write!(
            rec,
            "{{\"id\":\"{}\",\"wall_secs\":{:.6},\"cached\":{}}}",
            a.experiment.id(),
            a.wall_secs,
            a.from_cache
        );
    }
    rec.push_str("]}");
    rec
}

/// Normalizes one existing record to the current schema.
///
/// Returns `None` for legacy records (no `"schema"` field, or an
/// unparseable one): they predate `"arch_hash"`/`"faults"` and cannot be
/// attributed to a configuration, so they are dropped rather than given
/// invented values. Records stamped with a **future** schema (a newer
/// build wrote them) are skipped with a stderr warning instead of being
/// reinterpreted — this build cannot know what their fields mean. A
/// record at or below the current schema that lacks `"sim_threads"`
/// (schema 2, or a hand-damaged schema-3 line) gains `"sim_threads":1`
/// — the only value those builds could run — and a restamped schema
/// number; current records pass through unchanged.
fn migrate(rec: &str) -> Option<String> {
    let schema: u32 = rec
        .split("\"schema\":")
        .nth(1)?
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .ok()?;
    if schema > SCHEMA {
        eprintln!(
            "warning: BENCH_grid.json record with schema {schema} was written by a \
             newer build (this one writes {SCHEMA}); skipping it"
        );
        return None;
    }
    if rec.contains("\"sim_threads\":") {
        return Some(rec.to_string());
    }
    // Schema 2: single-threaded engine, so sim_threads was always 1.
    // Splice the field in right after "jobs" (every schema-2 record has
    // it) and restamp the schema number.
    let migrated = rec
        .replacen("\"schema\":2,", &format!("\"schema\":{SCHEMA},"), 1)
        .replacen("\"cache\":", "\"sim_threads\":1,\"cache\":", 1);
    Some(migrated)
}

/// Appends `record` to the log at `path`, migrating or dropping old
/// records and compacting to [`KEEP_PER_KEY`] per configuration key.
/// The rewrite is atomic (temp + rename via [`wwt_core::store`]): a run
/// killed mid-append leaves the previous log intact, never a truncated
/// document. A truncated or foreign file found on disk — a crash from a
/// build predating atomic appends, a hand edit — starts the log over
/// with just the new record rather than erroring forever.
pub fn append_bench_record(path: &str, record: &str) -> std::io::Result<()> {
    let mut records: Vec<String> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| {
            let body = s
                .trim_end()
                .strip_prefix("{\"runs\":[")?
                .strip_suffix("]}")?
                .to_string();
            Some(
                body.split(",\n")
                    .map(str::trim)
                    .filter(|l| !l.is_empty())
                    .filter_map(migrate)
                    .collect(),
            )
        })
        .unwrap_or_default();
    records.push(record.to_string());
    let keys: Vec<String> = records.iter().map(|r| bench_key(r)).collect();
    let mut keep = vec![false; records.len()];
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for i in (0..records.len()).rev() {
        let c = counts.entry(keys[i].as_str()).or_insert(0);
        if *c < KEEP_PER_KEY {
            keep[i] = true;
            *c += 1;
        }
    }
    let kept: Vec<&str> = records
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(r, _)| r.as_str())
        .collect();
    wwt_core::store::atomic_write(
        path,
        format!("{{\"runs\":[\n{}]}}\n", kept.join(",\n")).as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> (std::path::PathBuf, String) {
        let dir = std::env::temp_dir().join(format!("wwt-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_grid.json");
        let path_s = path.to_str().unwrap().to_string();
        (dir, path_s)
    }

    const SCHEMA2: &str = "{\"schema\":2,\"scale\":\"test\",\"jobs\":4,\"cache\":true,\
         \"arch_hash\":\"00deadbeef000000\",\"faults\":null,\"total_wall_secs\":1.5,\
         \"experiments\":[{\"id\":\"em3d-mp\",\"wall_secs\":0.1,\"cached\":false}]}";
    const LEGACY: &str = "{\"scale\":\"test\",\"jobs\":4,\"cache\":true,\
         \"experiments\":[{\"id\":\"em3d-mp\",\"wall_secs\":0.1,\"cached\":false}]}";
    const SCHEMA3: &str = "{\"schema\":3,\"scale\":\"test\",\"jobs\":4,\"sim_threads\":2,\
         \"cache\":true,\"arch_hash\":\"00deadbeef000000\",\"faults\":null,\
         \"total_wall_secs\":1.5,\
         \"experiments\":[{\"id\":\"em3d-mp\",\"wall_secs\":0.1,\"cached\":false}]}";

    #[test]
    fn bench_records_accumulate_as_one_json_document() {
        let (dir, path) = temp_log("accumulate");
        append_bench_record(&path, "{\"schema\":3,\"jobs\":1}").unwrap();
        append_bench_record(&path, "{\"schema\":3,\"jobs\":4}").unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            s,
            "{\"runs\":[\n{\"schema\":3,\"jobs\":1},\n{\"schema\":3,\"jobs\":4}]}\n"
        );
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema2_records_gain_sim_threads_on_append() {
        let (dir, path) = temp_log("migrate2");
        std::fs::write(&path, format!("{{\"runs\":[\n{SCHEMA2}]}}\n")).unwrap();
        append_bench_record(&path, SCHEMA3).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        // The old record survives, migrated in place…
        assert!(
            s.contains(
                "\"schema\":3,\"scale\":\"test\",\"jobs\":4,\"sim_threads\":1,\"cache\":true"
            ),
            "{s}"
        );
        // …and nothing in the file is left at schema 2.
        assert!(!s.contains("\"schema\":2"), "{s}");
        assert_eq!(s.matches("\"sim_threads\":").count(), 2, "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_records_without_schema_are_dropped_on_append() {
        let (dir, path) = temp_log("legacy");
        std::fs::write(
            &path,
            format!("{{\"runs\":[\n{LEGACY},\n{SCHEMA2},\n{LEGACY}]}}\n"),
        )
        .unwrap();
        append_bench_record(&path, SCHEMA3).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        // Legacy rows (no arch/fault attribution) are gone; the schema-2
        // row was migrated; the new row was appended.
        assert!(!s.contains("\"total_wall_secs\":1.5,\"experiments\"") || s.contains("arch_hash"));
        assert_eq!(s.matches("\"schema\":3").count(), 2, "{s}");
        assert_eq!(s.matches("arch_hash").count(), 2, "{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migration_is_idempotent_across_appends() {
        let (dir, path) = temp_log("idempotent");
        std::fs::write(&path, format!("{{\"runs\":[\n{SCHEMA2}]}}\n")).unwrap();
        append_bench_record(&path, SCHEMA3).unwrap();
        let once = std::fs::read_to_string(&path).unwrap();
        append_bench_record(&path, SCHEMA3).unwrap();
        let twice = std::fs::read_to_string(&path).unwrap();
        // The migrated row is byte-stable; only the duplicate new row and
        // compaction differ.
        assert_eq!(once.matches("\"sim_threads\":1,").count(), 1);
        assert_eq!(twice.matches("\"sim_threads\":1,").count(), 1);
        assert!(
            !twice.contains("\"sim_threads\":1,\"sim_threads\":1"),
            "{twice}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_records_compact_to_the_latest_n_per_key() {
        let (dir, path) = temp_log("compact");
        for i in 0..(KEEP_PER_KEY + 5) {
            let rec = format!(
                "{{\"schema\":3,\"scale\":\"test\",\"jobs\":4,\"sim_threads\":1,\"cache\":true,\"seq\":{i},\
                 \"experiments\":[{{\"id\":\"em3d-mp\",\"wall_secs\":0.1,\"cached\":false}}]}}"
            );
            append_bench_record(&path, &rec).unwrap();
        }
        // A different key (other jobs count) must not be evicted by the
        // first key's overflow.
        append_bench_record(
            &path,
            "{\"schema\":3,\"scale\":\"test\",\"jobs\":1,\"sim_threads\":1,\"cache\":true,\
             \"experiments\":[{\"id\":\"em3d-mp\",\"wall_secs\":0.2,\"cached\":false}]}",
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s.matches("\"jobs\":4").count(), KEEP_PER_KEY, "{s}");
        assert_eq!(s.matches("\"jobs\":1,").count(), 1, "{s}");
        assert!(!s.contains("\"seq\":0,"), "{s}");
        assert!(s.contains(&format!("\"seq\":{},", KEEP_PER_KEY + 4)), "{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_schema_records_are_skipped_not_mangled() {
        let (dir, path) = temp_log("future");
        // A hypothetical schema-4 record without sim_threads: a naive
        // migration would splice fields into a layout it cannot know.
        let future = "{\"schema\":4,\"scale\":\"test\",\"jobs\":4,\"cache\":true,\
             \"new_field\":\"?\",\"experiments\":[]}";
        std::fs::write(&path, format!("{{\"runs\":[\n{future},\n{SCHEMA2}]}}\n")).unwrap();
        append_bench_record(&path, SCHEMA3).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(!s.contains("\"schema\":4"), "future record kept: {s}");
        assert!(!s.contains("new_field"), "{s}");
        // The rest of the file is still normalized as usual.
        assert_eq!(s.matches("\"schema\":3").count(), 2, "{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn current_schema_record_missing_sim_threads_gains_the_default() {
        let (dir, path) = temp_log("missing-field");
        // A schema-3 line whose sim_threads field went missing (hand
        // edit, partial write): degrade to the schema-2 default rather
        // than leaving the file with mixed layouts.
        let damaged = SCHEMA3.replace("\"sim_threads\":2,", "");
        std::fs::write(&path, format!("{{\"runs\":[\n{damaged}]}}\n")).unwrap();
        append_bench_record(&path, SCHEMA3).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"sim_threads\":1,\"cache\":true"), "{s}");
        assert_eq!(s.matches("\"sim_threads\":").count(), 2, "{s}");
        assert!(!s.contains("\"schema\":2"), "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_log_recovers_with_just_the_new_record() {
        let (dir, path) = temp_log("truncated");
        append_bench_record(&path, SCHEMA3).unwrap();
        let healthy = std::fs::read_to_string(&path).unwrap();
        // A crash mid-write under the old non-atomic scheme could leave
        // any prefix of the document. Every truncation point must
        // recover: the next append starts the log over with its record.
        for cut in [0, 1, healthy.len() / 2, healthy.len() - 2] {
            std::fs::write(&path, &healthy[..cut]).unwrap();
            append_bench_record(&path, SCHEMA3).unwrap();
            let s = std::fs::read_to_string(&path).unwrap();
            assert_eq!(s.matches("\"schema\":3").count(), 1, "cut at {cut}: {s}");
            assert!(s.starts_with("{\"runs\":[\n"), "cut at {cut}: {s}");
            assert!(s.ends_with("]}\n"), "cut at {cut}: {s}");
            assert_eq!(s.matches('{').count(), s.matches('}').count());
        }
        // And no temp files linger from the atomic rewrites.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "leaked temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_threads_separates_compaction_keys() {
        let one = SCHEMA3.replace("\"sim_threads\":2", "\"sim_threads\":1");
        assert_ne!(bench_key(SCHEMA3), bench_key(&one));
        let other_jobs = SCHEMA3.replace("\"jobs\":4", "\"jobs\":1");
        assert_ne!(bench_key(SCHEMA3), bench_key(&other_jobs));
        let other_ids = SCHEMA3.replace("em3d-mp", "em3d-sm");
        assert_ne!(bench_key(SCHEMA3), bench_key(&other_ids));
        assert_eq!(bench_key(SCHEMA3), bench_key(SCHEMA3));
    }
}
