//! The shared hardware cost model of the paired simulators.
//!
//! The paper's central methodological point is that its message-passing
//! and shared-memory simulators share one hardware base (Table 1): the
//! same processor, cache, TLB, DRAM, network latency, and barrier. This
//! crate single-sources that base as [`ArchParams`], which both
//! machine configurations (`wwt-mp`'s `MpConfig` and `wwt-sm`'s
//! `SmConfig`) embed. The machine-specific cost tables — Table 2's
//! network-interface and library costs, Table 3's coherence-protocol
//! costs — stay in their machine crates; everything the paper holds
//! constant across the comparison lives here, exactly once.
//!
//! Beyond the struct itself, the crate makes every parameter a point in
//! a parameter space rather than a pinned constant:
//!
//! * **Presets** ([`ArchParams::preset`]): named starting points —
//!   `paper`, `1mb-cache` (the Table-16 variant), `low-latency`,
//!   `high-latency`.
//! * **Overrides** ([`ArchParams::parse`]): `preset,key=value,...`
//!   specs, as accepted by `make_tables --arch`.
//! * **Sweeps** ([`ArchSweep`], [`sweep_points`]): `key=v1,v2,...`
//!   axes whose cross product fans an experiment grid out across
//!   architecture points (`make_tables --arch-sweep`).
//! * **A canonical form** ([`ArchParams::canonical`]) with a stable
//!   hash ([`ArchParams::stable_hash`]): field order is fixed, so two
//!   specs that set the same values hash identically regardless of the
//!   order their `key=value` pairs were written in. The run cache keys
//!   on it, so results from different architecture points never mix.
//!
//! # Example
//!
//! ```
//! use wwt_arch::ArchParams;
//!
//! let paper = ArchParams::default();
//! assert_eq!(paper.net_latency, 100);
//! assert_eq!(paper.latency(3, 3), 10);   // self-messages bypass the network
//! assert_eq!(paper.latency(3, 4), 100);
//!
//! let fast = ArchParams::parse("low-latency,dram=5").unwrap();
//! assert_eq!(fast.net_latency, 10);
//! assert_eq!(fast.dram, 5);
//! assert_ne!(fast.stable_hash(), paper.stable_hash());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use wwt_mem::CacheGeometry;
use wwt_sim::Cycles;

/// The common hardware base of both machines (Table 1 of the paper),
/// plus the shared network-latency logic.
///
/// Defaults are the paper's values; see [`ArchParams::parse`] for the
/// `preset,key=value,...` override syntax.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ArchParams {
    /// Cache geometry (Table 1: 256 KB, 4-way, 32 B blocks).
    pub cache: CacheGeometry,
    /// TLB entries (Table 1: 64).
    pub tlb_entries: usize,
    /// One-way network latency between distinct nodes (Table 1: 100).
    pub net_latency: Cycles,
    /// Latency of a message a node sends to itself (Table 3: 10) —
    /// protocol traffic that never crosses the network.
    pub msg_to_self: Cycles,
    /// Barrier latency from last arrival (Table 1: 100).
    pub barrier_latency: Cycles,
    /// Private cache miss cost excluding DRAM (Table 1: 11).
    pub priv_miss: Cycles,
    /// DRAM access (Table 1: 10).
    pub dram: Cycles,
    /// Replacement cost of a private block with the infinite write
    /// buffer (Table 2 and Table 3 agree: 1).
    pub replacement: Cycles,
    /// TLB refill cost (not specified by the paper; calibrated).
    pub tlb_miss: Cycles,
}

impl Default for ArchParams {
    fn default() -> Self {
        ArchParams {
            cache: CacheGeometry::paper_default(),
            tlb_entries: 64,
            net_latency: 100,
            msg_to_self: 10,
            barrier_latency: 100,
            priv_miss: 11,
            dram: 10,
            replacement: 1,
            tlb_miss: 20,
        }
    }
}

/// The sweepable keys, in canonical order. Each entry is
/// `(key, what it sets)`; the order defines [`ArchParams::canonical`].
pub const KEYS: [(&str, &str); 12] = [
    ("cache_kb", "cache capacity in KB"),
    ("cache_bytes", "cache capacity in bytes"),
    ("cache_ways", "cache associativity"),
    ("cache_block", "cache block size in bytes"),
    ("tlb_entries", "TLB entries"),
    ("net_latency", "one-way network latency in cycles"),
    ("msg_to_self", "latency of a node's message to itself"),
    ("barrier_latency", "barrier latency from last arrival"),
    ("priv_miss", "private miss cost excluding DRAM"),
    ("dram", "DRAM access cycles"),
    ("replacement", "private-block replacement cost"),
    ("tlb_miss", "TLB refill cost"),
];

/// The named presets, with one-line descriptions.
pub const PRESETS: [(&str, &str); 4] = [
    ("paper", "the paper's Table-1 machine (the default)"),
    (
        "1mb-cache",
        "paper base with a 1 MB cache (the Table-16 variant)",
    ),
    (
        "low-latency",
        "paper base with a 10-cycle network and barrier",
    ),
    (
        "high-latency",
        "paper base with a 400-cycle network and barrier",
    ),
];

impl ArchParams {
    /// Looks up a named preset (see [`PRESETS`]).
    pub fn preset(name: &str) -> Option<ArchParams> {
        let paper = ArchParams::default();
        match name {
            "paper" => Some(paper),
            "1mb-cache" => Some(ArchParams {
                cache: CacheGeometry::one_megabyte(),
                ..paper
            }),
            "low-latency" => Some(ArchParams {
                net_latency: 10,
                barrier_latency: 10,
                ..paper
            }),
            "high-latency" => Some(ArchParams {
                net_latency: 400,
                barrier_latency: 400,
                ..paper
            }),
            _ => None,
        }
    }

    /// Parses a `preset[,key=value,...]` spec. A spec whose first
    /// segment contains `=` starts from the `paper` base; an empty spec
    /// is the `paper` base itself. Later assignments override earlier
    /// ones, and the result is validated as a whole.
    pub fn parse(spec: &str) -> Result<ArchParams, ArchError> {
        let spec = spec.trim();
        let mut parts = spec.split(',').map(str::trim).filter(|s| !s.is_empty());
        let mut arch = ArchParams::default();
        let mut first = true;
        for part in &mut parts {
            if first && !part.contains('=') {
                arch = ArchParams::preset(part)
                    .ok_or_else(|| ArchError::UnknownPreset(part.to_string()))?;
                first = false;
                continue;
            }
            first = false;
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| ArchError::BadAssignment(part.to_string()))?;
            arch.set(key.trim(), value.trim())?;
        }
        arch.validate()?;
        Ok(arch)
    }

    /// Sets one parameter by key (see [`KEYS`]). Does not validate the
    /// resulting geometry; [`ArchParams::validate`] does.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ArchError> {
        let num = |value: &str| -> Result<u64, ArchError> {
            value.parse().map_err(|_| ArchError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            })
        };
        match key {
            "cache_kb" => self.cache.size_bytes = num(value)? * 1024,
            "cache_bytes" => self.cache.size_bytes = num(value)?,
            "cache_ways" => self.cache.ways = num(value)? as usize,
            "cache_block" => self.cache.block_bytes = num(value)?,
            "tlb_entries" => self.tlb_entries = num(value)? as usize,
            "net_latency" => self.net_latency = num(value)?,
            "msg_to_self" => self.msg_to_self = num(value)?,
            "barrier_latency" => self.barrier_latency = num(value)?,
            "priv_miss" => self.priv_miss = num(value)?,
            "dram" => self.dram = num(value)?,
            "replacement" => self.replacement = num(value)?,
            "tlb_miss" => self.tlb_miss = num(value)?,
            _ => return Err(ArchError::UnknownKey(key.to_string())),
        }
        Ok(())
    }

    /// Checks that the parameters describe a realizable machine: a
    /// non-degenerate cache geometry and at least one TLB entry.
    pub fn validate(&self) -> Result<(), ArchError> {
        let g = &self.cache;
        let bad = |why: &str| Err(ArchError::BadGeometry(format!("{why} ({g:?})")));
        if g.ways == 0 {
            return bad("cache must have at least one way");
        }
        if g.block_bytes == 0 {
            return bad("cache block size must be positive");
        }
        let per_way = g.size_bytes / g.ways as u64;
        if per_way == 0 || !per_way.is_multiple_of(g.block_bytes) {
            return bad("capacity must divide into ways x block-size sets");
        }
        if !(per_way / g.block_bytes).is_power_of_two() {
            return bad("set count must be a power of two");
        }
        if self.tlb_entries == 0 {
            return Err(ArchError::BadGeometry(
                "TLB must have at least one entry".into(),
            ));
        }
        Ok(())
    }

    /// One-way latency between nodes `a` and `b` — the single shared
    /// implementation of the paper's network model: messages a node
    /// sends to itself bypass the network.
    pub fn latency(&self, a: usize, b: usize) -> Cycles {
        if a == b {
            self.msg_to_self
        } else {
            self.net_latency
        }
    }

    /// Full cost of a private cache miss (miss handling plus DRAM).
    pub fn priv_miss_total(&self) -> Cycles {
        self.priv_miss + self.dram
    }

    /// The canonical `key=value,...` rendering: fixed field order,
    /// exact values. Two equal parameter sets render identically no
    /// matter how they were produced, so this is the cache-key form.
    pub fn canonical(&self) -> String {
        format!(
            "cache_bytes={},cache_ways={},cache_block={},tlb_entries={},\
             net_latency={},msg_to_self={},barrier_latency={},priv_miss={},\
             dram={},replacement={},tlb_miss={}",
            self.cache.size_bytes,
            self.cache.ways,
            self.cache.block_bytes,
            self.tlb_entries,
            self.net_latency,
            self.msg_to_self,
            self.barrier_latency,
            self.priv_miss,
            self.dram,
            self.replacement,
            self.tlb_miss,
        )
    }

    /// A stable 64-bit hash of [`ArchParams::canonical`] (FNV-1a).
    /// Stable across processes and runs; safe to embed in cache keys
    /// and file names.
    pub fn stable_hash(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// Whether this is exactly the paper's machine.
    pub fn is_paper(&self) -> bool {
        *self == ArchParams::default()
    }
}

/// 64-bit FNV-1a over raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One sweep axis: a key and the values it takes, as parsed from
/// `--arch-sweep key=v1,v2,...`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchSweep {
    /// The swept key (one of [`KEYS`]).
    pub key: String,
    /// The values, in the order given.
    pub values: Vec<String>,
}

impl ArchSweep {
    /// Parses a `key=v1,v2,...` axis. The key must be sweepable and
    /// every value must apply cleanly to the paper base (full-point
    /// validation happens later, in [`sweep_points`], where axes
    /// combine).
    pub fn parse(spec: &str) -> Result<ArchSweep, ArchError> {
        let (key, rest) = spec
            .trim()
            .split_once('=')
            .ok_or_else(|| ArchError::BadAssignment(spec.trim().to_string()))?;
        let key = key.trim().to_string();
        let values: Vec<String> = rest
            .split(',')
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .collect();
        if values.is_empty() {
            return Err(ArchError::EmptySweep(key));
        }
        let mut scratch = ArchParams::default();
        for v in &values {
            scratch.set(&key, v)?;
        }
        Ok(ArchSweep { key, values })
    }
}

/// The cross product of sweep axes applied to a base parameter set.
///
/// Returns `(label, params)` pairs in deterministic order: the first
/// axis varies slowest. Labels are the swept assignments only
/// (`net_latency=50` or `net_latency=50,dram=5`), since the base is
/// common to every point. Each point is validated.
pub fn sweep_points(
    base: &ArchParams,
    sweeps: &[ArchSweep],
) -> Result<Vec<(String, ArchParams)>, ArchError> {
    let mut points: Vec<(String, ArchParams)> = vec![(String::new(), *base)];
    for sweep in sweeps {
        let mut next = Vec::with_capacity(points.len() * sweep.values.len());
        for (label, params) in &points {
            for v in &sweep.values {
                let mut p = *params;
                p.set(&sweep.key, v)?;
                let label = if label.is_empty() {
                    format!("{}={v}", sweep.key)
                } else {
                    format!("{label},{}={v}", sweep.key)
                };
                next.push((label, p));
            }
        }
        points = next;
    }
    for (_, p) in &points {
        p.validate()?;
    }
    Ok(points)
}

/// Everything that can go wrong turning a spec into parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArchError {
    /// The first spec segment named no known preset.
    UnknownPreset(String),
    /// A `key=value` pair used an unknown key.
    UnknownKey(String),
    /// A segment that should have been `key=value` wasn't.
    BadAssignment(String),
    /// A value failed to parse for its key.
    BadValue {
        /// The key being assigned.
        key: String,
        /// The offending value.
        value: String,
    },
    /// The combined parameters describe no realizable machine.
    BadGeometry(String),
    /// A sweep axis listed no values.
    EmptySweep(String),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnknownPreset(p) => {
                write!(f, "unknown preset '{p}' (known: ")?;
                for (i, (name, _)) in PRESETS.iter().enumerate() {
                    write!(f, "{}{name}", if i > 0 { ", " } else { "" })?;
                }
                write!(f, ")")
            }
            ArchError::UnknownKey(k) => {
                write!(f, "unknown parameter '{k}' (known: ")?;
                for (i, (name, _)) in KEYS.iter().enumerate() {
                    write!(f, "{}{name}", if i > 0 { ", " } else { "" })?;
                }
                write!(f, ")")
            }
            ArchError::BadAssignment(s) => write!(f, "expected key=value, got '{s}'"),
            ArchError::BadValue { key, value } => {
                write!(f, "invalid value '{value}' for '{key}'")
            }
            ArchError::BadGeometry(why) => write!(f, "invalid machine: {why}"),
            ArchError::EmptySweep(key) => write!(f, "sweep of '{key}' lists no values"),
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_machine() {
        let a = ArchParams::default();
        assert_eq!(a.cache.size_bytes, 256 * 1024);
        assert_eq!(a.cache.ways, 4);
        assert_eq!(a.cache.block_bytes, 32);
        assert_eq!(a.tlb_entries, 64);
        assert_eq!(a.net_latency, 100);
        assert_eq!(a.msg_to_self, 10);
        assert_eq!(a.barrier_latency, 100);
        assert_eq!(a.priv_miss, 11);
        assert_eq!(a.dram, 10);
        assert_eq!(a.replacement, 1);
        assert_eq!(a.priv_miss_total(), 21);
        assert!(a.is_paper());
    }

    #[test]
    fn latency_distinguishes_self_messages() {
        let a = ArchParams::default();
        assert_eq!(a.latency(3, 3), 10);
        assert_eq!(a.latency(3, 4), 100);
    }

    #[test]
    fn presets_parse_and_differ_from_paper() {
        for (name, _) in PRESETS.iter().skip(1) {
            let p = ArchParams::parse(name).unwrap();
            assert!(!p.is_paper(), "{name} must differ from the paper base");
            assert_ne!(p.stable_hash(), ArchParams::default().stable_hash());
        }
        assert_eq!(ArchParams::parse("paper").unwrap(), ArchParams::default());
        assert_eq!(ArchParams::parse("").unwrap(), ArchParams::default());
        assert_eq!(
            ArchParams::parse("1mb-cache").unwrap().cache.size_bytes,
            1024 * 1024
        );
    }

    #[test]
    fn overrides_apply_on_top_of_presets() {
        let a = ArchParams::parse("1mb-cache,net_latency=50,dram=5").unwrap();
        assert_eq!(a.cache.size_bytes, 1024 * 1024);
        assert_eq!(a.net_latency, 50);
        assert_eq!(a.dram, 5);
        // Bare overrides start from the paper base.
        let b = ArchParams::parse("net_latency=50").unwrap();
        assert_eq!(b.cache.size_bytes, 256 * 1024);
        assert_eq!(b.net_latency, 50);
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(matches!(
            ArchParams::parse("warp-drive"),
            Err(ArchError::UnknownPreset(_))
        ));
        assert!(matches!(
            ArchParams::parse("paper,flux=12"),
            Err(ArchError::UnknownKey(_))
        ));
        assert!(matches!(
            ArchParams::parse("net_latency=fast"),
            Err(ArchError::BadValue { .. })
        ));
        assert!(matches!(
            ArchParams::parse("paper,net_latency"),
            Err(ArchError::BadAssignment(_))
        ));
        // 100 KB / 4 ways / 32 B blocks → 800 sets: not a power of two.
        assert!(matches!(
            ArchParams::parse("cache_kb=100"),
            Err(ArchError::BadGeometry(_))
        ));
        assert!(matches!(
            ArchParams::parse("cache_ways=0"),
            Err(ArchError::BadGeometry(_))
        ));
        assert!(matches!(
            ArchParams::parse("tlb_entries=0"),
            Err(ArchError::BadGeometry(_))
        ));
    }

    #[test]
    fn canonical_hash_is_order_insensitive() {
        let a = ArchParams::parse("net_latency=50,dram=5").unwrap();
        let b = ArchParams::parse("dram=5,net_latency=50").unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.stable_hash(), b.stable_hash());
        // And sensitive to every value.
        let c = ArchParams::parse("net_latency=51,dram=5").unwrap();
        assert_ne!(a.stable_hash(), c.stable_hash());
    }

    #[test]
    fn sweep_cross_product_is_ordered_and_labeled() {
        let base = ArchParams::default();
        let sweeps = [
            ArchSweep::parse("net_latency=50,100").unwrap(),
            ArchSweep::parse("dram=5,10").unwrap(),
        ];
        let points = sweep_points(&base, &sweeps).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].0, "net_latency=50,dram=5");
        assert_eq!(points[3].0, "net_latency=100,dram=10");
        assert_eq!(points[0].1.net_latency, 50);
        assert_eq!(points[0].1.dram, 5);
        assert_eq!(points[3].1, base, "paper point must equal the base");
    }

    #[test]
    fn sweep_parse_rejects_bad_axes() {
        assert!(matches!(
            ArchSweep::parse("net_latency"),
            Err(ArchError::BadAssignment(_))
        ));
        assert!(matches!(
            ArchSweep::parse("net_latency="),
            Err(ArchError::EmptySweep(_))
        ));
        assert!(matches!(
            ArchSweep::parse("flux=1,2"),
            Err(ArchError::UnknownKey(_))
        ));
    }

    #[test]
    fn cache_kb_and_cache_bytes_agree() {
        let kb = ArchParams::parse("cache_kb=512").unwrap();
        let bytes = ArchParams::parse("cache_bytes=524288").unwrap();
        assert_eq!(kb, bytes);
        assert_eq!(kb.stable_hash(), bytes.stable_hash());
    }
}
