//! Shared harness types for application runs.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use wwt_sim::{Counters, CycleMatrix, Cycles, Sim, SimReport};

/// A named measurement snapshot taken at a phase boundary.
///
/// Snapshots are *cumulative*; the harness computes per-phase values by
/// subtracting consecutive snapshots (the paper's EM3D tables split
/// initialization from the main loop this way).
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase name ("init", "main", ...): the phase *ending* at this
    /// snapshot.
    pub name: String,
    /// Per-processor (clock, cycle matrix, counters) at the boundary.
    pub snapshot: Vec<(Cycles, CycleMatrix, Counters)>,
}

/// Records phase-boundary snapshots during a run.
///
/// One processor (conventionally node 0) calls [`PhaseRecorder::mark`]
/// immediately after a barrier, when all processors are at the same
/// program point.
pub struct PhaseRecorder {
    sim: Rc<Sim>,
    phases: RefCell<Vec<Phase>>,
}

impl fmt::Debug for PhaseRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhaseRecorder")
            .field("marked", &self.phases.borrow().len())
            .finish()
    }
}

impl PhaseRecorder {
    /// Creates a recorder bound to `sim`.
    pub fn new(sim: Rc<Sim>) -> Rc<Self> {
        Rc::new(PhaseRecorder {
            sim,
            phases: RefCell::new(Vec::new()),
        })
    }

    /// Snapshots all processors, ending the phase called `name`.
    pub fn mark(&self, name: &str) {
        self.phases.borrow_mut().push(Phase {
            name: name.to_owned(),
            snapshot: self.sim.snapshot(),
        });
    }

    /// The snapshots recorded so far.
    pub fn phases(&self) -> Vec<Phase> {
        self.phases.borrow().clone()
    }
}

/// Result of an application's built-in self check.
#[derive(Clone, Debug, PartialEq)]
pub struct Validation {
    /// Whether the computed answer is correct.
    pub passed: bool,
    /// Human-readable detail (residuals, error norms).
    pub detail: String,
}

impl Validation {
    /// A passing validation with detail text.
    pub fn pass(detail: impl Into<String>) -> Self {
        Validation {
            passed: true,
            detail: detail.into(),
        }
    }

    /// A failing validation with detail text.
    pub fn fail(detail: impl Into<String>) -> Self {
        Validation {
            passed: false,
            detail: detail.into(),
        }
    }

    /// Builds a validation from an error bounded by a tolerance.
    pub fn from_error(name: &str, err: f64, tol: f64) -> Self {
        Validation {
            passed: err.is_finite() && err <= tol,
            detail: format!("{name} = {err:.3e} (tolerance {tol:.1e})"),
        }
    }
}

/// Everything a single application run produces.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// The full simulator measurement report.
    pub report: SimReport,
    /// Cumulative phase-boundary snapshots.
    pub phases: Vec<Phase>,
    /// Outcome of the application's self check.
    pub validation: Validation,
    /// Application-specific scalar statistics (e.g. `steps` for LCP).
    pub stats: Vec<(String, f64)>,
    /// Application-specific result vector (e.g. the computed solution),
    /// for examples and cross-version comparison.
    pub artifact: Vec<f64>,
}

impl AppRun {
    /// Looks up a named statistic.
    pub fn stat(&self, name: &str) -> Option<f64> {
        self.stats.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The phase snapshot with the given name, if recorded.
    pub fn phase(&self, name: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.name == name)
    }
}

/// Deterministically splits `total` items into `parts` contiguous chunks,
/// returning the `[start, end)` range of chunk `i` (block distribution).
pub fn block_range(total: usize, parts: usize, i: usize) -> (usize, usize) {
    let base = total / parts;
    let rem = total % parts;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_partitions_exactly() {
        for (total, parts) in [(512, 32), (100, 7), (5, 8), (0, 3)] {
            let mut covered = 0;
            let mut prev_end = 0;
            for i in 0..parts {
                let (s, e) = block_range(total, parts, i);
                assert_eq!(s, prev_end);
                assert!(e >= s);
                covered += e - s;
                prev_end = e;
            }
            assert_eq!(covered, total);
            assert_eq!(prev_end, total);
        }
    }

    #[test]
    fn validation_from_error_bounds() {
        assert!(Validation::from_error("x", 1e-9, 1e-6).passed);
        assert!(!Validation::from_error("x", 1e-3, 1e-6).passed);
        assert!(!Validation::from_error("x", f64::NAN, 1e-6).passed);
    }
}
