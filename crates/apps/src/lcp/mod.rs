//! LCP: the linear complementarity problem by multi-sweep successive
//! over-relaxation (Section 5.4).
//!
//! Find `z` with `Mz + q >= 0`, `z >= 0`, and `z'(Mz + q) = 0`, where `M`
//! is a symmetric, diagonally dominant banded sparse matrix (uniform
//! non-zeros per row, as in the paper) and `q` is dense. The solver is
//! projected SOR (De Leone et al.): rows are statically block-distributed;
//! each *step* runs a fixed number of Gauss–Seidel sweeps over the local
//! rows against a local copy of the solution vector, then updates the
//! global solution and tests convergence with a maximum-reduction.
//!
//! Two coordination disciplines, each in MP and SM flavors:
//!
//! * **synchronous** (`LCP-*`): the local copy is refreshed once per step
//!   (all-to-all exchange in MP; write-barrier-read of the global vector
//!   in SM);
//! * **asynchronous** (`ALCP-*`): updates become visible after every
//!   sweep (a star of bulk messages in MP; direct writes to the global
//!   vector in SM). Fewer steps to converge, far more communication — the
//!   paper's Tables 20–23 trade-off.

pub mod mp;
pub mod sm;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::Validation;

/// Synchronization discipline of a run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LcpMode {
    /// The solution vector is exchanged once per step (LCP).
    Synchronous,
    /// Updates propagate after every sweep (ALCP).
    Asynchronous,
}

/// Workload and cost parameters for LCP.
#[derive(Clone, Debug, PartialEq)]
pub struct LcpParams {
    /// Number of variables (the paper runs 4096).
    pub n: usize,
    /// Half the target off-diagonal count per row: rows aim for
    /// `2 * band` off-diagonal non-zeros at *scattered* symmetric
    /// positions (uniform non-zeros per row, as the paper notes).
    pub band: usize,
    /// Diagonal value (must exceed `2 * band` for diagonal dominance).
    pub diag: f64,
    /// SOR over-relaxation factor. Values much above 1.1 make the
    /// *asynchronous* variant oscillate under message-delivery staleness,
    /// matching De Leone's convergence conditions.
    pub omega: f64,
    /// Gauss–Seidel sweeps per step (the paper runs 5).
    pub sweeps_per_step: usize,
    /// Convergence threshold on the per-step max solution change.
    pub tol: f64,
    /// Safety cap on steps.
    pub max_steps: usize,
    /// Number of processors (a power of two; the paper runs 32).
    pub procs: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Cycles per non-zero in the row-update kernel.
    pub nnz_cost: u64,
    /// Cycles of per-row overhead in the row-update kernel.
    pub row_cost: u64,
}

impl Default for LcpParams {
    fn default() -> Self {
        LcpParams {
            n: 4096,
            band: 16,
            diag: 34.0,
            omega: 1.1,
            sweeps_per_step: 5,
            tol: 1e-7,
            max_steps: 300,
            procs: 32,
            seed: 0x1c9_0001,
            nnz_cost: 40,
            row_cost: 20,
        }
    }
}

impl LcpParams {
    /// A scaled-down workload for unit tests.
    pub fn small() -> Self {
        LcpParams {
            n: 256,
            band: 8,
            diag: 18.0,
            procs: 4,
            ..Self::default()
        }
    }
}

/// The sparse symmetric matrix `M`: `diag` on the diagonal, -1.0 at the
/// scattered symmetric off-diagonal positions in `off`.
#[derive(Clone, Debug, PartialEq)]
pub struct LcpMatrix {
    /// Sorted off-diagonal column indices per row.
    pub off: Vec<Vec<usize>>,
    /// The (uniform) diagonal value.
    pub diag: f64,
}

impl LcpMatrix {
    /// Non-zeros in row `i` (off-diagonals plus the diagonal).
    pub fn nnz(&self, i: usize) -> usize {
        self.off[i].len() + 1
    }
}

/// Generates the deterministic sparse symmetric matrix: each row targets
/// `2 * band` off-diagonal entries of value -1 at scattered positions
/// (so sweeps reference the whole solution vector, as the paper's
/// communication volumes imply).
pub fn gen_matrix(p: &LcpParams) -> LcpMatrix {
    assert!(
        p.diag > (2 * p.band) as f64,
        "diagonal must dominate the row sum"
    );
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0x4d41_5452);
    let target = 2 * p.band;
    let mut off: Vec<Vec<usize>> = vec![Vec::new(); p.n];
    for i in 0..p.n {
        let mut attempts = 0;
        while off[i].len() < target && attempts < 20 * target {
            attempts += 1;
            let j = rng.gen_range(0..p.n);
            if j == i || off[j].len() >= target || off[i].contains(&j) {
                continue;
            }
            off[i].push(j);
            off[j].push(i);
        }
    }
    for row in &mut off {
        row.sort_unstable();
    }
    LcpMatrix { off, diag: p.diag }
}

/// Generates the dense `q` vector (deterministic).
pub fn gen_q(p: &LcpParams) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    (0..p.n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// One projected-SOR update of row `i` against the current values in `z`.
/// Returns the new `z[i]`.
pub(crate) fn psor_row(mat: &LcpMatrix, omega: f64, q: &[f64], z: &[f64], i: usize) -> f64 {
    let mut dot = mat.diag * z[i];
    for &j in &mat.off[i] {
        dot -= z[j];
    }
    let r = dot + q[i];
    (z[i] - omega * r / mat.diag).max(0.0)
}

/// Checks the LCP optimality conditions for a computed solution.
pub fn validate_lcp(mat: &LcpMatrix, q: &[f64], z: &[f64]) -> Validation {
    let mut worst = 0.0f64;
    for i in 0..q.len() {
        let mut dot = mat.diag * z[i];
        for &j in &mat.off[i] {
            dot -= z[j];
        }
        let r = dot + q[i];
        // z >= 0, Mz + q >= 0, complementary slackness.
        worst = worst.max(-z[i]).max(-r).max((z[i] * r).abs());
    }
    Validation::from_error("max LCP condition violation", worst, 1e-3)
}

/// Host-side sequential synchronous reference; returns (z, steps).
pub fn reference_sync(p: &LcpParams) -> (Vec<f64>, usize) {
    let q = gen_q(p);
    let mat = gen_matrix(p);
    let nloc = p.n / p.procs;
    let mut z = vec![0.0f64; p.n];
    for step in 1..=p.max_steps {
        let z_before = z.clone();
        // Each processor sweeps against its stale local copy; emulate by
        // sweeping each block against a snapshot of the others.
        let snapshot = z.clone();
        let mut z_next = z.clone();
        for proc in 0..p.procs {
            let mut local = snapshot.clone();
            for _ in 0..p.sweeps_per_step {
                for i in proc * nloc..(proc + 1) * nloc {
                    local[i] = psor_row(&mat, p.omega, &q, &local, i);
                }
            }
            z_next[proc * nloc..(proc + 1) * nloc]
                .copy_from_slice(&local[proc * nloc..(proc + 1) * nloc]);
        }
        z = z_next;
        let diff = z
            .iter()
            .zip(&z_before)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        if diff < p.tol {
            return (z, step);
        }
    }
    (z, p.max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric_and_diag_dominant() {
        let p = LcpParams::small();
        let m = gen_matrix(&p);
        for i in 0..p.n {
            assert!(p.diag > m.off[i].len() as f64, "row {i} not dominant");
            for &j in &m.off[i] {
                assert!(m.off[j].contains(&i), "asymmetric entry ({i},{j})");
            }
        }
    }

    #[test]
    fn nnz_is_roughly_uniform_and_scattered() {
        let p = LcpParams::small();
        let m = gen_matrix(&p);
        let target = 2 * p.band;
        let avg: f64 = m.off.iter().map(|r| r.len() as f64).sum::<f64>() / p.n as f64;
        assert!(avg > 0.8 * target as f64, "avg nnz {avg}");
        // Scattered: some row references a column far outside any band.
        assert!(m
            .off
            .iter()
            .enumerate()
            .any(|(i, r)| r.iter().any(|&j| i.abs_diff(j) > p.n / 4)));
    }

    #[test]
    fn reference_converges_to_a_valid_solution() {
        let p = LcpParams::small();
        let (z, steps) = reference_sync(&p);
        assert!(steps < p.max_steps, "did not converge");
        let q = gen_q(&p);
        let v = validate_lcp(&gen_matrix(&p), &q, &z);
        assert!(v.passed, "{}", v.detail);
        // A complementarity problem with mixed q has active constraints.
        assert!(z.contains(&0.0), "some z pinned at zero");
        assert!(z.iter().any(|&v| v > 0.0), "some z strictly positive");
    }

    #[test]
    fn q_is_deterministic() {
        let p = LcpParams::small();
        assert_eq!(gen_q(&p), gen_q(&p));
    }
}
