//! LCP-SM and ALCP-SM: shared-memory projected SOR.
//!
//! The global solution vector lives in shared memory, distributed in
//! per-owner chunks. Synchronous mode sweeps against a *private* local
//! copy, then copies the owned portion into the global vector, crosses a
//! barrier, and re-reads the whole vector — the request-response misses
//! the paper measures in Table 19. Asynchronous mode (ALCP-SM) reads and
//! writes the global vector directly during every sweep, so updates are
//! visible as soon as they are computed — De Leone's faster-converging
//! discipline whose invalidation traffic swamps the gain (Tables 21/23).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use wwt_mem::GAddr;
use wwt_sim::{Engine, SimError};
use wwt_sm::{SmCollectives, SmConfig, SmMachine};

use crate::common::{AppRun, PhaseRecorder, Validation};
use crate::lcp::{gen_matrix, gen_q, psor_row, validate_lcp, LcpMode, LcpParams};

/// Runs LCP-SM (synchronous) or ALCP-SM (asynchronous) and returns the
/// measurements (Tables 19, 21, and 23).
pub fn run(p: &LcpParams, scfg: SmConfig, mode: LcpMode) -> AppRun {
    try_run(p, scfg, mode).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`run`]: surfaces an engine failure (deadlock,
/// livelock, watchdog) as a structured [`SimError`] instead of
/// panicking, so a grid run can report the failing experiment and let
/// the others finish.
pub fn try_run(p: &LcpParams, scfg: SmConfig, mode: LcpMode) -> Result<AppRun, SimError> {
    assert_eq!(p.n % p.procs, 0, "rows must divide evenly");
    let mut engine = Engine::new(p.procs, scfg.sim);
    let m = SmMachine::new(&engine, scfg);
    let coll = Rc::new(SmCollectives::new(&m));
    let rec = PhaseRecorder::new(Rc::clone(engine.sim()));
    let q = Rc::new(gen_q(p));
    let mat = Rc::new(gen_matrix(p));
    let nloc = p.n / p.procs;

    // The global solution vector, distributed chunk-wise over its owners.
    let chunks: Rc<Vec<GAddr>> = Rc::new(
        (0..p.procs)
            .map(|qp| m.gmalloc_on(qp, (nloc * 8) as u64, 32))
            .collect(),
    );

    let solution: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; p.n]));
    let steps_taken: Rc<Cell<usize>> = Rc::default();

    for proc in engine.proc_ids() {
        let m = Rc::clone(&m);
        let coll = Rc::clone(&coll);
        let cpu = engine.cpu(proc);
        let rec = Rc::clone(&rec);
        let q = Rc::clone(&q);
        let mat = Rc::clone(&mat);
        let chunks = Rc::clone(&chunks);
        let solution = Rc::clone(&solution);
        let steps_taken = Rc::clone(&steps_taken);
        let p = p.clone();
        engine.spawn(proc, async move {
            let me = proc.index();
            let my_lo = me * nloc;
            let block_bytes = (nloc * 8) as u64;

            // Private working storage: local copy (sync mode), matrix rows, q.
            let z_loc = m.alloc_private(me, (p.n * 8) as u64, 32);
            let nnz_total: usize = (my_lo..my_lo + nloc).map(|i| mat.nnz(i)).sum();
            let m_rows = m.alloc_private(me, (nnz_total * 8) as u64, 32);
            let q_buf = m.alloc_private(me, block_bytes, 32);

            // Address of global element i.
            let g_addr = |i: usize| chunks[i / nloc].offset_by(((i % nloc) * 8) as u64);

            // --- initialization ------------------------------------------------
            m.touch_write(&cpu, m_rows, (nnz_total * 8) as u64).await;
            m.touch_write(&cpu, q_buf, block_bytes).await;
            m.touch_write(&cpu, z_loc, (p.n * 8) as u64).await;
            m.touch_write(&cpu, chunks[me], block_bytes).await;
            cpu.compute(8 * nnz_total as u64);
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("init");
            }

            // --- solve ------------------------------------------------------------
            let mut z = vec![0.0f64; p.n];
            let mut steps = 0usize;
            loop {
                steps += 1;
                let prev_block: Vec<f64> = z[my_lo..my_lo + nloc].to_vec();
                for _ in 0..p.sweeps_per_step {
                    let mut m_cursor = 0u64;
                    for i in my_lo..my_lo + nloc {
                        let nnz = mat.nnz(i) as u64;
                        m.touch_read(&cpu, m_rows.offset_by(m_cursor * 8), nnz * 8)
                            .await;
                        m_cursor += nnz;
                        match mode {
                            LcpMode::Synchronous => {
                                // Scattered reads of the private copy.
                                for &j in &mat.off[i] {
                                    m.touch_read(&cpu, z_loc.offset_by((j * 8) as u64), 8).await;
                                }
                            }
                            LcpMode::Asynchronous => {
                                // Scattered reads of the *global* vector —
                                // the producer-consumer misses of Table 23.
                                // A cached (possibly stale) copy keeps its
                                // old value; a miss brings the whole cache
                                // block current (4 elements).
                                for &j in &mat.off[i] {
                                    if m.touch_read(&cpu, g_addr(j), 8).await > 0 {
                                        let rel = j % nloc;
                                        let b0 = rel & !3;
                                        let run = 4.min(nloc - b0);
                                        let base = j - rel + b0;
                                        let mut vals = vec![0.0f64; run];
                                        m.peek_f64s(g_addr(base), &mut vals);
                                        z[base..base + run].copy_from_slice(&vals);
                                    }
                                }
                            }
                        }
                        m.touch_read(&cpu, q_buf.offset_by(((i - my_lo) * 8) as u64), 8)
                            .await;
                        z[i] = psor_row(&mat, p.omega, &q, &z, i);
                        match mode {
                            LcpMode::Synchronous => {
                                m.touch_write(&cpu, z_loc.offset_by((i * 8) as u64), 8)
                                    .await;
                            }
                            LcpMode::Asynchronous => {
                                m.touch_write(&cpu, g_addr(i), 8).await;
                                m.poke_f64(g_addr(i), z[i]);
                            }
                        }
                        cpu.compute(p.row_cost + p.nnz_cost * nnz);
                    }
                    cpu.resync_if_ahead().await;
                }
                if mode == LcpMode::Synchronous {
                    // Publish our block, then re-read the whole vector.
                    m.poke_f64s(chunks[me], &z[my_lo..my_lo + nloc]);
                    m.touch_write(&cpu, chunks[me], block_bytes).await;
                    m.barrier(&cpu).await;
                    for qp in 0..p.procs {
                        m.touch_read(&cpu, chunks[qp], block_bytes).await;
                        let mut vals = vec![0.0f64; nloc];
                        m.peek_f64s(chunks[qp], &mut vals);
                        z[qp * nloc..(qp + 1) * nloc].copy_from_slice(&vals);
                    }
                    m.touch_write(&cpu, z_loc, (p.n * 8) as u64).await;
                }

                let diff = z[my_lo..my_lo + nloc]
                    .iter()
                    .zip(&prev_block)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                cpu.compute(2 * nloc as u64);
                let red = coll.reduce_max_f64_index(&m, &cpu, diff, me).await;
                let done = match red {
                    Some((global_diff, _)) => {
                        f64::from(u8::from(global_diff < p.tol || steps >= p.max_steps))
                    }
                    None => 0.0,
                };
                let flag = coll.bcast_f64(&m, &cpu, 0, done).await;
                if flag == 1.0 {
                    break;
                }
            }
            solution.borrow_mut()[my_lo..my_lo + nloc].copy_from_slice(&z[my_lo..my_lo + nloc]);
            if me == 0 {
                steps_taken.set(steps);
                rec.mark("main");
            }
        });
    }

    let report = engine.try_run()?;
    let z = solution.borrow().clone();
    let qv = gen_q(p);
    let validation = if steps_taken.get() < p.max_steps {
        validate_lcp(&mat, &qv, &z)
    } else {
        Validation::fail(format!("no convergence within {} steps", p.max_steps))
    };
    Ok(AppRun {
        report,
        phases: rec.phases(),
        validation,
        stats: vec![("steps".into(), steps_taken.get() as f64)],
        artifact: z,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::reference_sync;
    use wwt_mp::MpConfig;
    use wwt_sim::{Counter, Kind};

    #[test]
    fn synchronous_matches_host_reference_bitwise() {
        let p = LcpParams::small();
        let r = run(&p, SmConfig::default(), LcpMode::Synchronous);
        assert!(r.validation.passed, "{}", r.validation.detail);
        let (zref, steps_ref) = reference_sync(&p);
        assert_eq!(r.stat("steps"), Some(steps_ref as f64));
        assert_eq!(r.artifact, zref);
    }

    #[test]
    fn sync_sm_and_mp_take_identical_trajectories() {
        let p = LcpParams::small();
        let sm = run(&p, SmConfig::default(), LcpMode::Synchronous);
        let mp = crate::lcp::mp::run(&p, MpConfig::default(), LcpMode::Synchronous);
        assert_eq!(sm.artifact, mp.artifact);
        assert_eq!(sm.stat("steps"), mp.stat("steps"));
    }

    #[test]
    fn asynchronous_converges_in_fewer_steps_with_more_misses() {
        let p = LcpParams::small();
        let s = run(&p, SmConfig::default(), LcpMode::Synchronous);
        let a = run(&p, SmConfig::default(), LcpMode::Asynchronous);
        assert!(a.validation.passed, "{}", a.validation.detail);
        assert!(
            a.stat("steps").unwrap() < s.stat("steps").unwrap(),
            "async {} !< sync {}",
            a.stat("steps").unwrap(),
            s.stat("steps").unwrap()
        );
        let misses = |r: &AppRun| {
            r.report.total_counter(Counter::ShMissesRemote)
                + r.report.total_counter(Counter::ShMissesLocal)
        };
        assert!(
            misses(&a) > misses(&s),
            "async misses {} !> sync misses {}",
            misses(&a),
            misses(&s)
        );
    }

    #[test]
    fn sync_costs_split_into_misses_and_synchronization() {
        let p = LcpParams::small();
        let r = run(&p, SmConfig::default(), LcpMode::Synchronous);
        let avg = r.report.avg_matrix();
        assert!(avg.by_kind(Kind::ShMissRemote) > 0);
        assert!(avg.by_kind(Kind::BarrierWait) > 0);
        assert!(avg.by_scope(wwt_sim::Scope::Reduction) > 0);
    }
}
