//! LCP-MP and ALCP-MP: message-passing projected SOR.
//!
//! Synchronous mode refreshes the local solution copy once per step with a
//! recursive-doubling all-to-all exchange over CMMD channels
//! (`log2(P)` stages of point-to-point block exchanges, as the paper
//! describes). Asynchronous mode (ALCP) sends the freshly swept block to
//! every other processor after *each* sweep — a star of bulk messages —
//! and incorporates arriving blocks by polling; convergence needs fewer
//! steps but communication grows several-fold (Tables 20 and 22).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use wwt_mp::{ChannelId, MpConfig, MpMachine, SendChannel, TreeShape};
use wwt_sim::{Engine, ProcId, SimError};

use crate::common::{AppRun, PhaseRecorder, Validation};
use crate::lcp::{gen_matrix, gen_q, psor_row, validate_lcp, LcpMode, LcpParams};

/// Runs LCP-MP (synchronous) or ALCP-MP (asynchronous) and returns the
/// measurements (Tables 18, 20, and 22).
pub fn run(p: &LcpParams, mcfg: MpConfig, mode: LcpMode) -> AppRun {
    try_run(p, mcfg, mode).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`run`]: surfaces an engine failure (deadlock,
/// livelock, watchdog) as a structured [`SimError`] instead of
/// panicking, so a grid run can report the failing experiment and let
/// the others finish.
pub fn try_run(p: &LcpParams, mcfg: MpConfig, mode: LcpMode) -> Result<AppRun, SimError> {
    assert!(
        p.procs.is_power_of_two(),
        "exchange needs a power-of-two machine"
    );
    assert_eq!(p.n % p.procs, 0, "rows must divide evenly");
    let mut engine = Engine::new(p.procs, mcfg.sim);
    let m = MpMachine::new(&engine, mcfg);
    let rec = PhaseRecorder::new(Rc::clone(engine.sim()));
    let q = Rc::new(gen_q(p));
    let mat = Rc::new(gen_matrix(p));
    let nloc = p.n / p.procs;
    let stages = p.procs.trailing_zeros() as usize;

    let solution: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; p.n]));
    let steps_taken: Rc<Cell<usize>> = Rc::default();

    for proc in engine.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = engine.cpu(proc);
        let rec = Rc::clone(&rec);
        let q = Rc::clone(&q);
        let mat = Rc::clone(&mat);
        let solution = Rc::clone(&solution);
        let steps_taken = Rc::clone(&steps_taken);
        let p = p.clone();
        engine.spawn(proc, async move {
            let me = proc.index();
            let np = p.procs;
            let my_lo = me * nloc;
            let block_bytes = (nloc * 8) as u64;

            // --- memory and channels ----------------------------------------
            let z_buf = m.alloc(proc, (p.n * 8) as u64, 32);
            let nnz_total: usize = (my_lo..my_lo + nloc).map(|i| mat.nnz(i)).sum();
            let m_rows = m.alloc(proc, (nnz_total * 8) as u64, 32);
            let q_buf = m.alloc(proc, block_bytes, 32);

            // Synchronous mode: one channel per exchange stage, receiving
            // the partner's accumulated segment straight into our copy.
            let mut stage_in: Vec<ChannelId> = Vec::new();
            let mut stage_out: Vec<SendChannel> = Vec::new();
            // Asynchronous mode: a star of per-source channels landing in
            // the source's block of our copy.
            let mut star_in: Vec<Option<ChannelId>> = vec![None; np];
            let mut star_out: Vec<Option<SendChannel>> = vec![None; np];
            match mode {
                LcpMode::Synchronous => {
                    for k in 0..stages {
                        let partner = me ^ (1 << k);
                        let seg = nloc << k;
                        let pg = ((me >> k) << k) ^ (1 << k);
                        stage_in.push(
                            m.channel_open_recv(
                                &cpu,
                                ProcId::new(partner),
                                z_buf + (pg * nloc * 8) as u64,
                                (seg * 8) as u32,
                            )
                            .expect("capacity within the channel limit"),
                        );
                    }
                    for k in 0..stages {
                        let partner = me ^ (1 << k);
                        stage_out.push(m.channel_bind(&cpu, ProcId::new(partner)).await);
                    }
                }
                LcpMode::Asynchronous => {
                    for src in 0..np {
                        if src != me {
                            star_in[src] = Some(
                                m.channel_open_recv(
                                    &cpu,
                                    ProcId::new(src),
                                    z_buf + (src * nloc * 8) as u64,
                                    block_bytes as u32,
                                )
                                .expect("capacity within the channel limit"),
                            );
                        }
                    }
                    for dst in 0..np {
                        if dst != me {
                            star_out[dst] = Some(m.channel_bind(&cpu, ProcId::new(dst)).await);
                        }
                    }
                }
            }

            // --- initialization: matrix rows and q block ---------------------
            m.touch_write(&cpu, m_rows, (nnz_total * 8) as u64);
            m.touch_write(&cpu, q_buf, block_bytes);
            m.touch_write(&cpu, z_buf, (p.n * 8) as u64);
            cpu.compute(8 * nnz_total as u64);
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("init");
            }

            // --- solve --------------------------------------------------------
            let mut z = vec![0.0f64; p.n];
            let mut steps = 0usize;
            loop {
                steps += 1;
                let prev_block: Vec<f64> = z[my_lo..my_lo + nloc].to_vec();
                for _ in 0..p.sweeps_per_step {
                    let mut m_cursor = 0u64;
                    for i in my_lo..my_lo + nloc {
                        let nnz = mat.nnz(i) as u64;
                        // Stream the matrix row, then gather the scattered
                        // solution entries it references.
                        m.touch_read(&cpu, m_rows + m_cursor * 8, nnz * 8);
                        m_cursor += nnz;
                        for &j in &mat.off[i] {
                            m.touch_read(&cpu, z_buf + (j * 8) as u64, 8);
                        }
                        m.touch_read(&cpu, q_buf + ((i - my_lo) * 8) as u64, 8);
                        z[i] = psor_row(&mat, p.omega, &q, &z, i);
                        m.touch_write(&cpu, z_buf + (i * 8) as u64, 8);
                        cpu.compute(p.row_cost + p.nnz_cost * nnz);
                    }
                    cpu.resync_if_ahead().await;
                    if mode == LcpMode::Asynchronous {
                        // Publish this sweep's block to everyone.
                        m.poke_f64s(proc, z_buf + (my_lo * 8) as u64, &z[my_lo..my_lo + nloc]);
                        for ch in star_out.iter().flatten() {
                            m.channel_write(
                                &cpu,
                                ch,
                                z_buf + (my_lo * 8) as u64,
                                block_bytes as u32,
                            );
                        }
                        // Incorporate whatever has arrived.
                        while m.poll_once(&cpu) {}
                        m.peek_f64s(proc, z_buf, &mut z);
                        // Our own block is authoritative locally.
                        // (peek re-read it unchanged.)
                    }
                }
                if mode == LcpMode::Synchronous {
                    // Recursive-doubling all-to-all of the new blocks.
                    m.poke_f64s(proc, z_buf + (my_lo * 8) as u64, &z[my_lo..my_lo + nloc]);
                    for k in 0..stages {
                        let seg_bytes = ((nloc << k) * 8) as u32;
                        let g = (me >> k) << k;
                        m.channel_write(
                            &cpu,
                            &stage_out[k],
                            z_buf + (g * nloc * 8) as u64,
                            seg_bytes,
                        );
                        m.channel_wait(&cpu, stage_in[k]).await;
                    }
                    m.peek_f64s(proc, z_buf, &mut z);
                }

                // Convergence: global max of per-block change.
                let diff = z[my_lo..my_lo + nloc]
                    .iter()
                    .zip(&prev_block)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                cpu.compute(2 * nloc as u64);
                let red = m
                    .reduce_max_f64_index(&cpu, TreeShape::Lopsided, 0, diff, me)
                    .await;
                let done = match red {
                    Some((global_diff, _)) => {
                        u32::from(global_diff < p.tol || steps >= p.max_steps)
                    }
                    None => 0,
                };
                let flag = m
                    .bcast_raw(&cpu, TreeShape::Lopsided, 0, [done, 0, 0, 0])
                    .await[0];
                m.barrier(&cpu).await;
                if flag == 1 {
                    break;
                }
            }
            solution.borrow_mut()[my_lo..my_lo + nloc].copy_from_slice(&z[my_lo..my_lo + nloc]);
            if me == 0 {
                steps_taken.set(steps);
                rec.mark("main");
            }
        });
    }

    let report = engine.try_run()?;
    let z = solution.borrow().clone();
    let qv = gen_q(p);
    let validation = if steps_taken.get() < p.max_steps {
        validate_lcp(&mat, &qv, &z)
    } else {
        Validation::fail(format!("no convergence within {} steps", p.max_steps))
    };
    Ok(AppRun {
        report,
        phases: rec.phases(),
        validation,
        stats: vec![("steps".into(), steps_taken.get() as f64)],
        artifact: z,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::reference_sync;
    use wwt_sim::Counter;

    #[test]
    fn synchronous_matches_host_reference_bitwise() {
        let p = LcpParams::small();
        let r = run(&p, MpConfig::default(), LcpMode::Synchronous);
        assert!(r.validation.passed, "{}", r.validation.detail);
        let (zref, steps_ref) = reference_sync(&p);
        assert_eq!(r.stat("steps"), Some(steps_ref as f64));
        assert_eq!(r.artifact, zref);
    }

    #[test]
    fn asynchronous_converges_in_fewer_steps() {
        let p = LcpParams::small();
        let s = run(&p, MpConfig::default(), LcpMode::Synchronous);
        let a = run(&p, MpConfig::default(), LcpMode::Asynchronous);
        assert!(a.validation.passed, "{}", a.validation.detail);
        assert!(
            a.stat("steps").unwrap() < s.stat("steps").unwrap(),
            "async {} !< sync {}",
            a.stat("steps").unwrap(),
            s.stat("steps").unwrap()
        );
    }

    #[test]
    fn asynchronous_sends_far_more_data() {
        let p = LcpParams::small();
        let s = run(&p, MpConfig::default(), LcpMode::Synchronous);
        let a = run(&p, MpConfig::default(), LcpMode::Asynchronous);
        let data = |r: &AppRun| r.report.total_counter(Counter::BytesData);
        assert!(
            data(&a) > 2 * data(&s),
            "async bytes {} vs sync bytes {}",
            data(&a),
            data(&s)
        );
    }

    #[test]
    fn channel_writes_match_exchange_structure() {
        let p = LcpParams::small();
        let s = run(&p, MpConfig::default(), LcpMode::Synchronous);
        let steps = s.stat("steps").unwrap();
        // log2(P) channel writes per step per processor.
        let expect = steps * (p.procs.trailing_zeros() as f64);
        let got = s.report.avg_counter(Counter::ChannelWrites);
        assert!(
            (got - expect).abs() < 1e-9,
            "channel writes {got}, expected {expect}"
        );
    }
}
