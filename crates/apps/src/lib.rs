//! The four tuned application pairs from the ASPLOS 1994 study.
//!
//! Each application exists in a message-passing (`*-MP`) and a
//! shared-memory (`*-SM`) version that use the *same algorithm* and the
//! same deterministic workload, differing only in how they communicate —
//! exactly the paper's experimental design:
//!
//! * [`mse`] — Microstructure Electrostatics: boundary-integral Laplace
//!   solver, parallel asynchronous Jacobi with distance-based exchange
//!   schedules (Section 5.1).
//! * [`gauss`] — Gaussian elimination with partial pivoting; software
//!   reductions and broadcasts dominate communication (Section 5.2).
//! * [`em3d`] — electromagnetic wave propagation on a bipartite E/H graph;
//!   ghost nodes + bulk channel messages vs. invalidation-based
//!   producer-consumer sharing (Section 5.3).
//! * [`lcp`] — linear complementarity via multi-sweep SOR, in synchronous
//!   and asynchronous (ALCP) variants (Section 5.4).
//!
//! Every run returns an [`AppRun`] carrying the full simulator report,
//! named phase snapshots (for the paper's init/main-loop splits) and a
//! self-check that the computed answer is actually correct.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The kernels mirror the paper's C-style loops: an index walks several
// parallel arrays (values, weights, masks) at once, which reads more
// clearly than zipped iterator chains here.
#![allow(clippy::needless_range_loop)]

pub mod common;
pub mod em3d;
pub mod gauss;
pub mod lcp;
pub mod mse;

pub use common::{AppRun, Phase, PhaseRecorder, Validation};
