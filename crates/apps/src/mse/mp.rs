//! MSE-MP: request/reply solution exchange over active messages and
//! channels.
//!
//! Every processor keeps a full local copy of the solution vector. At the
//! start of an iteration it sends an asynchronous request (one active
//! message) to each owner the schedule makes due, then waits for the bulk
//! channel replies — servicing *other* processors' requests from the same
//! dispatch loop, which is exactly how the paper's version overlaps
//! service with waiting (its load imbalance shows up as library time).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use wwt_mp::{packet::tag, ChannelId, MpConfig, MpMachine, SendChannel};
use wwt_sim::{Engine, ProcId, SimError};

use crate::common::{AppRun, PhaseRecorder};
use crate::mse::{build_system, validate_solution, MseParams};

/// Application tag for solution requests.
const MSE_REQ: u8 = tag::USER_BASE;

/// Whether any (requester-local, owner-local) body pair is due at `it`
/// (then the requester asks `o` for its whole block).
fn due_req(p: &MseParams, me: usize, o: usize, it: usize) -> bool {
    p.bodies_of(me)
        .any(|i| p.bodies_of(o).any(|j| p.due(i, j, it)))
}

/// Per-node servicing state shared with the request handler.
struct NodeSvc {
    /// Bound reply channels, per requester.
    out: Vec<Option<SendChannel>>,
    /// This node's block in its own z array (offset, bytes).
    block_off: u64,
    block_bytes: u32,
    /// Requests served by this node so far.
    served: Cell<u64>,
}

/// Runs MSE-MP and returns the measurements (Tables 4 and 6).
pub fn run(p: &MseParams, mcfg: MpConfig) -> AppRun {
    try_run(p, mcfg).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`run`]: surfaces an engine failure (deadlock,
/// livelock, watchdog) as a structured [`SimError`] instead of
/// panicking, so a grid run can report the failing experiment and let
/// the others finish.
pub fn try_run(p: &MseParams, mcfg: MpConfig) -> Result<AppRun, SimError> {
    assert_eq!(p.grid * p.grid, p.bodies, "bodies must fill the grid");
    assert_eq!(p.bodies % p.procs, 0, "bodies must divide evenly");
    let mut engine = Engine::new(p.procs, mcfg.sim);
    let m = MpMachine::new(&engine, mcfg);
    let rec = PhaseRecorder::new(Rc::clone(engine.sim()));
    let sys = Rc::new(build_system(p));
    let nm = p.unknowns();
    let mm = p.elems;

    let expected_served: Rc<Vec<u64>> = Rc::new(
        (0..p.procs)
            .map(|o| {
                (0..p.procs)
                    .filter(|&r| r != o)
                    .map(|r| (0..p.iters).filter(|&it| due_req(p, r, o, it)).count() as u64)
                    .sum()
            })
            .collect(),
    );

    let svc: Rc<RefCell<Vec<NodeSvc>>> = Rc::new(RefCell::new(
        (0..p.procs)
            .map(|_| NodeSvc {
                out: (0..p.procs).map(|_| None).collect(),
                block_off: 0,
                block_bytes: 0,
                served: Cell::new(0),
            })
            .collect(),
    ));
    {
        // The request handler: runs on the owner when it polls; replies
        // with the owner's current block over the requester's channel.
        let svc = Rc::clone(&svc);
        m.set_handler(MSE_REQ, move |args| {
            let me = args.cpu.id().index();
            let (ch, off, bytes) = {
                let s = &svc.borrow()[me];
                s.served.set(s.served.get() + 1);
                (
                    s.out[args.src.index()].expect("reply channel bound"),
                    s.block_off,
                    s.block_bytes,
                )
            };
            args.machine.touch_read(args.cpu, off, bytes as u64);
            args.machine.channel_write(args.cpu, &ch, off, bytes);
        });
    }

    let solution: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; nm]));

    for proc in engine.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = engine.cpu(proc);
        let rec = Rc::clone(&rec);
        let sys = Rc::clone(&sys);
        let svc = Rc::clone(&svc);
        let solution = Rc::clone(&solution);
        let expected_served = Rc::clone(&expected_served);
        let p = p.clone();
        engine.spawn(proc, async move {
            let me = proc.index();
            let np = p.procs;
            let nb = p.bodies / np;
            let my_bodies: Vec<usize> = p.bodies_of(me).collect();
            let body_bytes = (mm * 8) as u64;

            // --- memory ------------------------------------------------------
            let z_all = m.alloc(proc, (nm * 8) as u64, 32);
            // Cached per-(local body, source body) contribution vectors.
            let s_cache = m.alloc(proc, (nb * p.bodies * mm * 8) as u64, 32);
            let rhs_buf = m.alloc(proc, (nb * mm * 8) as u64, 32);
            {
                let mut s = svc.borrow_mut();
                s[me].block_off = z_all + (me * nb * mm * 8) as u64;
                s[me].block_bytes = (nb * mm * 8) as u32;
            }

            // --- channels: replies from each owner land directly in the
            // owner's region of our z copy. --------------------------------
            let mut chan_in: Vec<Option<ChannelId>> = vec![None; np];
            for o in 0..np {
                if o != me {
                    chan_in[o] = Some(
                        m.channel_open_recv(
                            &cpu,
                            ProcId::new(o),
                            z_all + (o * nb * mm * 8) as u64,
                            (nb * mm * 8) as u32,
                        )
                        .expect("capacity within the channel limit"),
                    );
                }
            }
            for r in 0..np {
                if r != me {
                    let ch = m.channel_bind(&cpu, ProcId::new(r)).await;
                    svc.borrow_mut()[me].out[r] = Some(ch);
                }
            }
            m.barrier(&cpu).await;

            // --- initialization: diagonal and right-hand side ---------------
            // (Every processor participates, unlike the SM version.)
            cpu.compute(p.pair_cost / 2 * (nb * mm * p.bodies * mm) as u64);
            m.touch_write(&cpu, rhs_buf, (nb * mm * 8) as u64);
            m.touch_write(&cpu, z_all, (nm * 8) as u64);
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("init");
            }

            // --- asynchronous Jacobi with the exchange schedule --------------
            let mut z = vec![0.0f64; nm];
            let mut s_host = vec![vec![vec![0.0f64; mm]; p.bodies]; nb];
            for it in 0..p.iters {
                // Request fresh blocks from every due owner, then wait for
                // the replies (servicing others' requests while we wait).
                let mut pending = Vec::new();
                for o in 0..np {
                    if o != me && due_req(&p, me, o, it) {
                        m.am_send(&cpu, ProcId::new(o), MSE_REQ, 0, [0; 4]).await;
                        pending.push(o);
                    }
                }
                for &o in &pending {
                    let id = chan_in[o].expect("channel open");
                    m.channel_wait(&cpu, id).await;
                    let base = o * nb * mm;
                    let mut vals = vec![0.0f64; nb * mm];
                    m.peek_f64s(proc, z_all + (base * 8) as u64, &mut vals);
                    z[base..base + nb * mm].copy_from_slice(&vals);
                }

                // Recompute the due contributions; sum cached vectors.
                for li in 0..nb {
                    let i = my_bodies[li];
                    for j in 0..p.bodies {
                        if !(j == i || p.due(i, j, it)) {
                            continue;
                        }
                        let js = p.slot(j);
                        m.touch_read(&cpu, z_all + (js * mm * 8) as u64, body_bytes);
                        let sij = &mut s_host[li][j];
                        for e in 0..mm {
                            let mut acc = 0.0;
                            for f in 0..mm {
                                if (i, e) != (j, f) {
                                    acc += p.kernel(i, e, j, f) * z[js * mm + f];
                                }
                            }
                            sij[e] = acc;
                        }
                        let s_off = s_cache + ((li * p.bodies + j) * mm * 8) as u64;
                        m.touch_write(&cpu, s_off, body_bytes);
                        cpu.compute(p.pair_cost * (mm * mm) as u64);
                    }
                    // Jacobi update of this body's elements.
                    m.touch_read(
                        &cpu,
                        s_cache + (li * p.bodies * mm * 8) as u64,
                        (p.bodies * mm * 8) as u64,
                    );
                    m.touch_read(&cpu, rhs_buf + (li * mm * 8) as u64, body_bytes);
                    let is = p.slot(i);
                    for e in 0..mm {
                        let row = i * mm + e;
                        let total: f64 = (0..p.bodies).map(|j| s_host[li][j][e]).sum();
                        z[is * mm + e] = (sys.rhs[row] - total) / sys.diag[row];
                    }
                    cpu.compute(4 * (p.bodies * mm) as u64);
                    let my_off = z_all + (is * mm * 8) as u64;
                    m.poke_f64s(proc, my_off, &z[is * mm..(is + 1) * mm]);
                    m.touch_write(&cpu, my_off, body_bytes);
                    cpu.resync_if_ahead().await;
                }
            }

            // Drain: keep servicing requests until every request that will
            // ever reach us has been served, then synchronize.
            {
                let expect = expected_served[me];
                let svc = Rc::clone(&svc);
                m.poll_until_with(&cpu, move || svc.borrow()[me].served.get() >= expect)
                    .await;
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("main");
            }
            {
                let mut sol = solution.borrow_mut();
                for &k in &my_bodies {
                    let ks = p.slot(k);
                    sol[k * mm..(k + 1) * mm].copy_from_slice(&z[ks * mm..(ks + 1) * mm]);
                }
            }
        });
    }

    let report = engine.try_run()?;
    let z = solution.borrow().clone();
    let validation = validate_solution(p, &z);
    Ok(AppRun {
        report,
        phases: rec.phases(),
        validation,
        stats: vec![("iters".into(), p.iters as f64)],
        artifact: z,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_sim::{Counter, Kind, Scope};

    #[test]
    fn converges_to_ones() {
        let p = MseParams::small();
        let r = run(&p, MpConfig::default());
        assert!(r.validation.passed, "{}", r.validation.detail);
    }

    #[test]
    fn computation_dominates() {
        let p = MseParams::small();
        let r = run(&p, MpConfig::default());
        let avg = r.report.avg_matrix();
        let compute = avg.get(Scope::App, Kind::Compute);
        assert!(
            compute * 2 > avg.total(),
            "computation {} of total {}",
            compute,
            avg.total()
        );
    }

    #[test]
    fn requests_and_replies_are_counted() {
        let p = MseParams::small();
        let r = run(&p, MpConfig::default());
        let ams = r.report.total_counter(Counter::ActiveMessages);
        let writes = r.report.total_counter(Counter::ChannelWrites);
        assert!(ams > 0, "requests are active messages");
        // One bulk reply per request.
        assert_eq!(ams, writes);
    }

    #[test]
    fn distant_pairs_request_less_often() {
        let mut near = MseParams::small();
        near.d_scale = 1000.0; // everything due every iteration
        let far = MseParams::small(); // schedule throttles distant pairs
        let r_near = run(&near, MpConfig::default());
        let r_far = run(&far, MpConfig::default());
        assert!(
            r_far.report.total_counter(Counter::ActiveMessages)
                <= r_near.report.total_counter(Counter::ActiveMessages),
            "schedule must not increase requests"
        );
        assert!(
            r_far.report.avg_matrix().get(Scope::App, Kind::Compute)
                < r_near.report.avg_matrix().get(Scope::App, Kind::Compute),
            "schedule reduces recomputation"
        );
    }
}
