//! MSE-SM: solution exchange through the shared solution vector.
//!
//! The solution vector lives in shared memory, distributed over its body
//! owners; processors read current values directly when the schedule
//! makes a pair due. The program's only explicit synchronization is the
//! parmacs start-up gate (node 0's serial initialization, the paper's
//! Start-up Wait) and a single barrier between initialization and the
//! main loop, which costs ~80M cycles because node 0 performs extra
//! initialization work while the others wait (Table 5).

use std::cell::RefCell;
use std::rc::Rc;

use wwt_mem::GAddr;
use wwt_sim::{Engine, SimError};
use wwt_sm::{CreateGate, SmConfig, SmMachine};

use crate::common::{AppRun, PhaseRecorder};
use crate::mse::{build_system, validate_solution, MseParams};

/// Runs MSE-SM and returns the measurements (Tables 5 and 7).
pub fn run(p: &MseParams, scfg: SmConfig) -> AppRun {
    try_run(p, scfg).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`run`]: surfaces an engine failure (deadlock,
/// livelock, watchdog) as a structured [`SimError`] instead of
/// panicking, so a grid run can report the failing experiment and let
/// the others finish.
pub fn try_run(p: &MseParams, scfg: SmConfig) -> Result<AppRun, SimError> {
    assert_eq!(p.grid * p.grid, p.bodies, "bodies must fill the grid");
    assert_eq!(p.bodies % p.procs, 0, "bodies must divide evenly");
    let mut engine = Engine::new(p.procs, scfg.sim);
    let m = SmMachine::new(&engine, scfg);
    let gate = Rc::new(CreateGate::new());
    let rec = PhaseRecorder::new(Rc::clone(engine.sim()));
    let sys = Rc::new(build_system(p));
    let nm = p.unknowns();
    let mm = p.elems;

    // The shared solution vector, distributed over body owners.
    let nb_chunk = p.bodies / p.procs;
    let z_chunks: Rc<Vec<GAddr>> = Rc::new(
        (0..p.procs)
            .map(|q| m.gmalloc_on(q, (nb_chunk * mm * 8) as u64, 32))
            .collect(),
    );

    let solution: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; nm]));

    for proc in engine.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = engine.cpu(proc);
        let gate = Rc::clone(&gate);
        let rec = Rc::clone(&rec);
        let sys = Rc::clone(&sys);
        let z_chunks = Rc::clone(&z_chunks);
        let solution = Rc::clone(&solution);
        let p = p.clone();
        engine.spawn(proc, async move {
            let me = proc.index();
            let np = p.procs;
            let nb = p.bodies / np;
            let my_bodies: Vec<usize> = p.bodies_of(me).collect();
            let body_bytes = (mm * 8) as u64;
            // Address of body j's element block in the shared vector
            // (owner-major slot layout).
            let body_addr = |j: usize| z_chunks[p.owner(j)].offset_by(((j / np) * mm * 8) as u64);

            // --- start-up: node 0 initializes serially, then creates the
            // worker processes (the paper's parmacs model). ----------------
            if me == 0 {
                cpu.compute(p.serial_init_cycles);
                gate.release(&m, &cpu);
            } else {
                gate.wait(&cpu).await;
            }

            // Private working storage.
            let s_cache = m.alloc_private(me, (nb * p.bodies * mm * 8) as u64, 32);
            let rhs_buf = m.alloc_private(me, (nb * mm * 8) as u64, 32);

            // Parallel initialization: each node computes its diagonal and
            // right-hand-side entries; node 0 additionally initializes
            // global structures, which unbalances the barrier.
            cpu.compute(p.pair_cost / 2 * (nb * mm * p.bodies * mm) as u64);
            m.touch_write(&cpu, rhs_buf, (nb * mm * 8) as u64).await;
            m.touch_write(&cpu, z_chunks[me], (nb * mm * 8) as u64)
                .await;
            if me == 0 {
                cpu.compute(p.unbalanced_init_cycles);
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("init");
            }

            // --- asynchronous Jacobi with the exchange schedule --------------
            let mut z = vec![0.0f64; nm];
            let mut s_host = vec![vec![vec![0.0f64; mm]; p.bodies]; nb];
            for it in 0..p.iters {
                for li in 0..nb {
                    let i = my_bodies[li];
                    for j in 0..p.bodies {
                        if !(j == i || p.due(i, j, it)) {
                            continue;
                        }
                        // Read body j's current values straight from
                        // shared memory (a miss only if the owner updated
                        // them since we last looked).
                        let jaddr = body_addr(j);
                        m.touch_read(&cpu, jaddr, body_bytes).await;
                        let mut vals = vec![0.0f64; mm];
                        m.peek_f64s(jaddr, &mut vals);
                        let js = p.slot(j);
                        z[js * mm..(js + 1) * mm].copy_from_slice(&vals);

                        let sij = &mut s_host[li][j];
                        for e in 0..mm {
                            let mut acc = 0.0;
                            for f in 0..mm {
                                if (i, e) != (j, f) {
                                    acc += p.kernel(i, e, j, f) * z[js * mm + f];
                                }
                            }
                            sij[e] = acc;
                        }
                        let s_off = s_cache.offset_by(((li * p.bodies + j) * mm * 8) as u64);
                        m.touch_write(&cpu, s_off, body_bytes).await;
                        cpu.compute(p.pair_cost * (mm * mm) as u64);
                    }
                    // Jacobi update, written to the shared vector.
                    m.touch_read(
                        &cpu,
                        s_cache.offset_by((li * p.bodies * mm * 8) as u64),
                        (p.bodies * mm * 8) as u64,
                    )
                    .await;
                    m.touch_read(&cpu, rhs_buf.offset_by((li * mm * 8) as u64), body_bytes)
                        .await;
                    let is = p.slot(i);
                    for e in 0..mm {
                        let row = i * mm + e;
                        let total: f64 = (0..p.bodies).map(|j| s_host[li][j][e]).sum();
                        z[is * mm + e] = (sys.rhs[row] - total) / sys.diag[row];
                    }
                    cpu.compute(4 * (p.bodies * mm) as u64);
                    let my_addr = body_addr(i);
                    m.poke_f64s(my_addr, &z[is * mm..(is + 1) * mm]);
                    m.touch_write(&cpu, my_addr, body_bytes).await;
                }
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("main");
            }
            {
                let mut sol = solution.borrow_mut();
                for &k in &my_bodies {
                    let ks = p.slot(k);
                    sol[k * mm..(k + 1) * mm].copy_from_slice(&z[ks * mm..(ks + 1) * mm]);
                }
            }
        });
    }

    let report = engine.try_run()?;
    let z = solution.borrow().clone();
    let validation = validate_solution(p, &z);
    Ok(AppRun {
        report,
        phases: rec.phases(),
        validation,
        stats: vec![("iters".into(), p.iters as f64)],
        artifact: z,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_mp::MpConfig;
    use wwt_sim::{Counter, Kind, Scope};

    #[test]
    fn converges_to_ones() {
        let p = MseParams::small();
        let r = run(&p, SmConfig::default());
        assert!(r.validation.passed, "{}", r.validation.detail);
    }

    #[test]
    fn startup_wait_and_barrier_show_load_imbalance() {
        let p = MseParams::small();
        let r = run(&p, SmConfig::default());
        // Non-zero nodes wait out the serial init in the Startup scope.
        let waiter = r.report.proc(1.into());
        assert!(
            waiter.matrix.by_scope(Scope::Startup) >= p.serial_init_cycles,
            "startup wait {} < serial init {}",
            waiter.matrix.by_scope(Scope::Startup),
            p.serial_init_cycles
        );
        // The init barrier absorbs node 0's extra work on the others.
        assert!(
            waiter.matrix.by_kind(Kind::BarrierWait) >= p.unbalanced_init_cycles,
            "barrier wait {} < unbalanced init {}",
            waiter.matrix.by_kind(Kind::BarrierWait),
            p.unbalanced_init_cycles
        );
        // Node 0 itself waits at neither.
        let zero = r.report.proc(0.into());
        assert_eq!(zero.matrix.by_scope(Scope::Startup), 0);
    }

    #[test]
    fn shared_misses_are_a_small_fraction() {
        let p = MseParams::small();
        let r = run(&p, SmConfig::default());
        let avg = r.report.avg_matrix();
        let shared = avg.by_kind(Kind::ShMissLocal) + avg.by_kind(Kind::ShMissRemote);
        let compute = avg.by_kind(Kind::Compute);
        assert!(shared * 4 < compute, "shared {shared} vs compute {compute}");
        assert!(r.report.total_counter(Counter::ShMissesRemote) > 0);
    }

    #[test]
    fn mp_and_sm_both_converge_with_comparable_quality() {
        let p = MseParams::small();
        let sm = run(&p, SmConfig::default());
        let mp = crate::mse::mp::run(&p, MpConfig::default());
        assert!(sm.validation.passed && mp.validation.passed);
        // Different staleness patterns: solutions agree loosely.
        let diff = sm
            .artifact
            .iter()
            .zip(&mp.artifact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 0.1, "solutions diverge: {diff}");
    }
}
