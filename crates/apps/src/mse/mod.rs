//! MSE: microstructure electrostatics (Section 5.1).
//!
//! A boundary-integral solution of the Laplace equation over `N` bodies,
//! each discretized into `M` boundary elements. The `(NM)^2` system
//! matrix is too large to store and is *recomputed as needed*; the system
//! is solved with parallel asynchronous Jacobi iterations whose
//! communication is governed by a distance-based *schedule*: distant
//! bodies interact weakly, so their contributions are refreshed less
//! often. This makes MSE the study's computation-bound program (90% of
//! time computing in MSE-MP, Table 4).
//!
//! * MSE-MP keeps a per-processor copy of the solution vector; when the
//!   schedule calls for updates it sends asynchronous requests to body
//!   owners, which service them (from the CMMD dispatch loop) with bulk
//!   channel replies.
//! * MSE-SM keeps the solution vector in shared memory and simply reads
//!   current values; its extra costs are the start-up wait for node 0's
//!   serial initialization and one load-imbalanced barrier (Table 5).

pub mod mp;
pub mod sm;

use crate::common::Validation;

/// Workload and cost parameters for MSE.
#[derive(Clone, Debug, PartialEq)]
pub struct MseParams {
    /// Number of bodies (the paper runs 256). Must be divisible by
    /// `procs` and arranged on a `grid x grid` layout (`grid^2 == bodies`).
    pub bodies: usize,
    /// Boundary elements per body (the paper runs 20).
    pub elems: usize,
    /// Jacobi iterations (the paper runs 20).
    pub iters: usize,
    /// Number of processors (the paper runs 32).
    pub procs: usize,
    /// Grid side (bodies are centered on integer grid positions).
    pub grid: usize,
    /// Distance divisor of the exchange schedule: bodies at distance `d`
    /// refresh every `1 + floor(d / d_scale)` iterations.
    pub d_scale: f64,
    /// Cycles per element pair in the interaction kernel (the matrix
    /// entry is recomputed: distance, log, divide).
    pub pair_cost: u64,
    /// Serial initialization on node 0 before `create` (shared-memory
    /// version only; the paper's Start-up Wait row).
    pub serial_init_cycles: u64,
    /// Extra initialization node 0 performs after `create` (the source of
    /// the load-imbalanced barrier in Table 5).
    pub unbalanced_init_cycles: u64,
}

impl Default for MseParams {
    fn default() -> Self {
        MseParams {
            bodies: 256,
            elems: 20,
            iters: 20,
            procs: 32,
            grid: 16,
            d_scale: 8.0,
            pair_cost: 90,
            serial_init_cycles: 80_000_000,
            unbalanced_init_cycles: 76_000_000,
        }
    }
}

impl MseParams {
    /// A scaled-down workload for unit tests.
    pub fn small() -> Self {
        MseParams {
            bodies: 16,
            elems: 4,
            iters: 8,
            procs: 4,
            grid: 4,
            d_scale: 2.0,
            serial_init_cycles: 60_000,
            unbalanced_init_cycles: 50_000,
            ..Self::default()
        }
    }

    /// Unknowns in the system.
    pub fn unknowns(&self) -> usize {
        self.bodies * self.elems
    }

    /// Owner processor of body `k`. Bodies are dealt round-robin so every
    /// processor's mix of near and far bodies (and hence its schedule
    /// workload) is balanced.
    pub fn owner(&self, k: usize) -> usize {
        k % self.procs
    }

    /// Storage slot of body `k` in the owner-major solution layout (each
    /// owner's bodies are contiguous, which lets bulk replies land in
    /// place).
    pub fn slot(&self, k: usize) -> usize {
        (k % self.procs) * (self.bodies / self.procs) + k / self.procs
    }

    /// Bodies owned by processor `p`, in slot order.
    pub fn bodies_of(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.bodies / self.procs).map(move |t| p + t * self.procs)
    }

    /// Center of body `k` on the grid.
    pub fn center(&self, k: usize) -> (f64, f64) {
        ((k % self.grid) as f64, (k / self.grid) as f64)
    }

    /// Position of element `e` of body `k` (a circle of radius 0.3).
    pub fn elem_pos(&self, k: usize, e: usize) -> (f64, f64) {
        let (cx, cy) = self.center(k);
        let theta = 2.0 * std::f64::consts::PI * e as f64 / self.elems as f64;
        (cx + 0.3 * theta.cos(), cy + 0.3 * theta.sin())
    }

    /// Distance between body centers.
    pub fn body_dist(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.center(a);
        let (bx, by) = self.center(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Refresh period of the (a, b) body pair under the schedule.
    pub fn period(&self, a: usize, b: usize) -> usize {
        1 + (self.body_dist(a, b) / self.d_scale) as usize
    }

    /// Whether the (a, b) interaction is refreshed at `iter`.
    pub fn due(&self, a: usize, b: usize, iter: usize) -> bool {
        iter.is_multiple_of(self.period(a, b))
    }

    /// The off-diagonal matrix entry coupling elements `(body a, e)` and
    /// `(body b, f)`: the 2D Laplace single-layer kernel, recomputed on
    /// every use as in the paper.
    pub fn kernel(&self, a: usize, e: usize, b: usize, f: usize) -> f64 {
        let (px, py) = self.elem_pos(a, e);
        let (qx, qy) = self.elem_pos(b, f);
        let d2 = (px - qx).powi(2) + (py - qy).powi(2);
        if d2 == 0.0 {
            0.0
        } else {
            -d2.sqrt().ln() / (2.0 * std::f64::consts::PI)
        }
    }
}

/// Per-element data precomputed at initialization: the (diagonally
/// dominant) diagonal and the right-hand side chosen so the exact
/// solution is all ones.
#[derive(Clone, Debug)]
pub struct MseSystem {
    /// Diagonal entries, one per unknown.
    pub diag: Vec<f64>,
    /// Right-hand side, one per unknown.
    pub rhs: Vec<f64>,
}

/// Builds the diagonal and right-hand side (host side; both program
/// versions charge the equivalent computation to the simulated clock).
pub fn build_system(p: &MseParams) -> MseSystem {
    let nm = p.unknowns();
    let mut diag = vec![0.0f64; nm];
    let mut rhs = vec![0.0f64; nm];
    for a in 0..p.bodies {
        for e in 0..p.elems {
            let row = a * p.elems + e;
            let mut abs_sum = 0.0;
            let mut sum = 0.0;
            for b in 0..p.bodies {
                for f in 0..p.elems {
                    if (a, e) == (b, f) {
                        continue;
                    }
                    let v = p.kernel(a, e, b, f);
                    abs_sum += v.abs();
                    sum += v;
                }
            }
            // Diagonal dominance guarantees Jacobi convergence, even with
            // the schedule's bounded staleness.
            diag[row] = 1.5 * abs_sum;
            rhs[row] = sum + diag[row]; // exact solution = all ones
        }
    }
    MseSystem { diag, rhs }
}

/// Validates a computed solution against the all-ones exact answer.
/// Twenty Jacobi iterations with contraction factor ~2/3 leave an error
/// around `(2/3)^iters`; the tolerance accounts for schedule staleness.
pub fn validate_solution(p: &MseParams, z: &[f64]) -> Validation {
    let err = z.iter().map(|&v| (v - 1.0).abs()).fold(0.0f64, f64::max);
    let tol = (2.0f64 / 3.0).powi(p.iters as i32 / 2).max(1e-6);
    Validation::from_error("max |z - 1|", err, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_periods_grow_with_distance() {
        let p = MseParams::default();
        assert_eq!(p.period(0, 0), 1);
        assert_eq!(p.period(0, 1), 1);
        let far = p.period(0, p.bodies - 1);
        assert!(far > 2, "far period {far}");
        assert_eq!(p.period(3, 200), p.period(200, 3), "symmetric");
    }

    #[test]
    fn kernel_is_symmetric_and_finite() {
        let p = MseParams::small();
        for (a, e, b, f) in [(0, 0, 1, 2), (3, 1, 14, 3), (5, 2, 5, 3)] {
            let v = p.kernel(a, e, b, f);
            assert!(v.is_finite());
            assert_eq!(v, p.kernel(b, f, a, e));
        }
    }

    #[test]
    fn system_is_diagonally_dominant() {
        let p = MseParams::small();
        let sys = build_system(&p);
        // diag = 1.5 * sum |offdiag| by construction: spot check row 0.
        let mut abs_sum = 0.0;
        for b in 0..p.bodies {
            for f in 0..p.elems {
                if (b, f) != (0, 0) {
                    abs_sum += p.kernel(0, 0, b, f).abs();
                }
            }
        }
        assert!((sys.diag[0] - 1.5 * abs_sum).abs() < 1e-12);
    }

    #[test]
    fn sequential_jacobi_converges_to_ones() {
        let p = MseParams::small();
        let sys = build_system(&p);
        let nm = p.unknowns();
        let mut z = vec![0.0f64; nm];
        for _ in 0..p.iters {
            let old = z.clone();
            for a in 0..p.bodies {
                for e in 0..p.elems {
                    let row = a * p.elems + e;
                    let mut s = 0.0;
                    for b in 0..p.bodies {
                        for f in 0..p.elems {
                            if (a, e) != (b, f) {
                                s += p.kernel(a, e, b, f) * old[b * p.elems + f];
                            }
                        }
                    }
                    z[row] = (sys.rhs[row] - s) / sys.diag[row];
                }
            }
        }
        let v = validate_solution(&p, &z);
        assert!(v.passed, "{}", v.detail);
    }
}
