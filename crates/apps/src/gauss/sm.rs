//! Gauss-SM: the shared-memory version.
//!
//! Rows live in shared memory homed on their owning node; pivot selection
//! uses an MCS-style tree reduction; the pivot's identity is broadcast by
//! the write-barrier-read idiom; and the pivot row itself is *read in
//! place* from the owner's memory by every processor — the fine-grain,
//! low-latency access pattern whose directory contention the paper
//! measures in Table 11.

use std::cell::RefCell;
use std::rc::Rc;

use wwt_sim::{Engine, SimError};
use wwt_sm::{SmCollectives, SmConfig, SmMachine};

use crate::common::{block_range, AppRun, PhaseRecorder, Validation};
use crate::gauss::mp::{dec_pivot, enc_pivot};
use crate::gauss::{gen_row, validate_solution, GaussParams};

/// Runs Gauss-SM and returns the measurements (Tables 9 and 11).
pub fn run(p: &GaussParams, scfg: SmConfig) -> AppRun {
    try_run(p, scfg).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`run`]: surfaces an engine failure (deadlock,
/// livelock, watchdog) as a structured [`SimError`] instead of
/// panicking, so a grid run can report the failing experiment and let
/// the others finish.
pub fn try_run(p: &GaussParams, scfg: SmConfig) -> Result<AppRun, SimError> {
    let mut engine = Engine::new(p.procs, scfg.sim);
    let m = SmMachine::new(&engine, scfg);
    let coll = Rc::new(SmCollectives::new(&m));
    let rec = PhaseRecorder::new(Rc::clone(engine.sim()));
    let n = p.n;
    let row_bytes = ((n + 1) * 8) as u64;

    // Rows are shared, homed on their owner (they are written only by the
    // owner; remote processors read pivot rows in place).
    let rows_base: Rc<Vec<_>> = Rc::new(
        (0..p.procs)
            .map(|proc| {
                let (s, e) = block_range(n, p.procs, proc);
                m.gmalloc_on(proc, (e - s) as u64 * row_bytes, 32)
            })
            .collect(),
    );

    let solution: Rc<RefCell<Vec<f64>>> = Rc::default();

    for proc in engine.proc_ids() {
        let m = Rc::clone(&m);
        let coll = Rc::clone(&coll);
        let cpu = engine.cpu(proc);
        let rec = Rc::clone(&rec);
        let rows_base = Rc::clone(&rows_base);
        let solution = Rc::clone(&solution);
        let p = p.clone();
        engine.spawn(proc, async move {
            let me = proc.index();
            let (start, end) = block_range(n, p.procs, me);
            let nloc = end - start;
            let row_addr =
                |owner: usize, li: usize| rows_base[owner].offset_by(li as u64 * row_bytes);

            // --- initialization: fill local rows -------------------------
            for li in 0..nloc {
                let row = gen_row(&p, start + li);
                m.poke_f64s(row_addr(me, li), &row);
                m.touch_write(&cpu, row_addr(me, li), row_bytes).await;
                cpu.compute(4 * (n as u64 + 1));
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("init");
            }

            // --- forward elimination --------------------------------------
            let mut used = vec![false; nloc];
            let mut my_pivot = vec![usize::MAX; n];
            let mut owner_of = vec![usize::MAX; n];
            for k in 0..n {
                let mut best = (-1.0f64, 0usize);
                let mut scanned = 0u64;
                for li in 0..nloc {
                    if used[li] {
                        continue;
                    }
                    let a = row_addr(me, li).offset_by((k * 8) as u64);
                    let v = m.read_f64(&cpu, a).await.abs();
                    if v > best.0 {
                        best = (v, li);
                    }
                    scanned += 1;
                }
                cpu.compute(p.search_cost * scanned.max(1));

                // MCS-style reduction to node 0, then write/barrier/read
                // broadcast of the winning (owner, row).
                let red = coll
                    .reduce_max_f64_index(&m, &cpu, best.0, enc_pivot(me, best.1))
                    .await;
                let root_val = red.map(|(_, e)| e as f64).unwrap_or(0.0);
                let enc = coll.bcast_f64(&m, &cpu, 0, root_val).await as usize;
                let (owner, li_piv) = dec_pivot(enc);
                owner_of[k] = owner;
                let active = n + 1 - k;
                let active_bytes = (active * 8) as u64;
                let piv_addr = row_addr(owner, li_piv).offset_by((k * 8) as u64);
                if owner == me {
                    used[li_piv] = true;
                    my_pivot[k] = li_piv;
                    if p.sm_push_broadcast {
                        // Application-specific protocol: push the pivot row
                        // to every cache before anyone asks (Section 5.3.4).
                        m.push_broadcast(&cpu, piv_addr, active_bytes).await;
                    }
                }
                if p.sm_push_broadcast {
                    // The pushed copies land while processors regroup at
                    // the broadcast barrier; reads below mostly hit.
                    m.barrier(&cpu).await;
                }

                // Everyone reads the pivot row's active part straight from
                // the owner's shared memory (a hit if it was pushed;
                // remote misses + directory contention at the owner
                // otherwise).
                m.touch_read(&cpu, piv_addr, active_bytes).await;
                let mut pivrow = vec![0.0f64; active];
                m.peek_f64s(piv_addr, &mut pivrow);

                let mut row = vec![0.0f64; active];
                for li in 0..nloc {
                    if used[li] {
                        continue;
                    }
                    let off = row_addr(me, li).offset_by((k * 8) as u64);
                    m.peek_f64s(off, &mut row);
                    let f = row[0] / pivrow[0];
                    for (r, pv) in row.iter_mut().zip(&pivrow) {
                        *r -= f * pv;
                    }
                    m.poke_f64s(off, &row);
                    m.touch_write(&cpu, off, active_bytes).await;
                    cpu.compute(p.factor_cost + p.elim_cost * active as u64);
                }
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("forward");
            }

            // --- back substitution ----------------------------------------
            let mut x = vec![0.0f64; n];
            for k in (0..n).rev() {
                let owner = owner_of[k];
                let mine = if owner == me {
                    let li = my_pivot[k];
                    let active = n + 1 - k;
                    let off = row_addr(me, li).offset_by((k * 8) as u64);
                    let mut row = vec![0.0f64; active];
                    m.peek_f64s(off, &mut row);
                    m.touch_read(&cpu, off, (active * 8) as u64).await;
                    let mut s = row[active - 1];
                    for j in k + 1..n {
                        s -= row[j - k] * x[j];
                    }
                    cpu.compute(p.backsub_cost * (n - k) as u64);
                    s / row[0]
                } else {
                    0.0
                };
                x[k] = coll.bcast_f64(&m, &cpu, owner, mine).await;
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("backward");
                *solution.borrow_mut() = x;
            }
        });
    }

    let report = engine.try_run()?;
    let x = solution.borrow().clone();
    let validation = if x.len() == n {
        validate_solution(&x)
    } else {
        Validation::fail("no solution produced")
    };
    Ok(AppRun {
        report,
        phases: rec.phases(),
        validation,
        stats: vec![("n".into(), n as f64)],
        artifact: x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_mp::{MpConfig, TreeShape};
    use wwt_sim::{Counter, Kind, Scope};

    #[test]
    fn solves_small_system() {
        let p = GaussParams::small();
        let r = run(&p, SmConfig::default());
        assert!(r.validation.passed, "{}", r.validation.detail);
    }

    #[test]
    fn matches_mp_solution_bitwise() {
        let p = GaussParams {
            n: 32,
            procs: 4,
            ..GaussParams::small()
        };
        let sm = run(&p, SmConfig::default());
        let mp = crate::gauss::mp::run(&p, MpConfig::default(), TreeShape::Lopsided);
        assert!(sm.validation.passed && mp.validation.passed);
        // Same algorithm, same arithmetic order: the validations agree.
        assert_eq!(sm.validation.detail, mp.validation.detail);
    }

    #[test]
    fn costs_split_into_misses_reductions_barriers() {
        let p = GaussParams::small();
        let r = run(&p, SmConfig::default());
        let avg = r.report.avg_matrix();
        assert!(avg.by_kind(Kind::ShMissRemote) > 0, "remote pivot reads");
        assert!(avg.by_scope(Scope::Reduction) > 0, "MCS reductions");
        assert!(avg.by_kind(Kind::BarrierWait) > 0, "broadcast barriers");
        assert!(r.report.total_counter(Counter::ShMissesRemote) > 0);
        // No message-passing machinery on this machine.
        assert_eq!(r.report.total_counter(Counter::PacketsSent), 0);
    }

    #[test]
    fn is_deterministic() {
        let p = GaussParams::small();
        let a = run(&p, SmConfig::default());
        let b = run(&p, SmConfig::default());
        assert_eq!(a.report.elapsed(), b.report.elapsed());
    }
}

#[cfg(test)]
mod push_broadcast_tests {
    use super::*;
    use wwt_sim::{Counter, Kind};

    #[test]
    fn push_broadcast_cuts_pivot_read_stall() {
        let base = GaussParams {
            n: 64,
            procs: 8,
            ..GaussParams::small()
        };
        let pushed = GaussParams {
            sm_push_broadcast: true,
            ..base.clone()
        };
        let a = run(&base, SmConfig::default());
        let b = run(&pushed, SmConfig::default());
        assert!(a.validation.passed && b.validation.passed);
        // Same algorithm, same answer.
        assert_eq!(a.artifact, b.artifact);
        // The consumers' demand misses on pivot rows largely disappear.
        let stall = |r: &crate::common::AppRun| {
            let m = r.report.avg_matrix();
            m.by_kind(Kind::ShMissRemote)
        };
        assert!(
            stall(&b) < stall(&a) / 2,
            "pushed stall {} !<< base {}",
            stall(&b),
            stall(&a)
        );
        // The data still moves (as protocol pushes, counted as messages).
        assert!(b.report.total_counter(Counter::MessagesSent) > 0);
    }
}
