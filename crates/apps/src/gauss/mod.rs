//! Gaussian elimination with partial pivoting (Section 5.2).
//!
//! The program solves a dense linear system of `n` equations distributed
//! blockwise by rows. Communication is entirely collective:
//!
//! * pivot selection — a *reduction* of (|candidate|, owner) pairs,
//! * pivot announcement — a *broadcast* of the winning (owner, row),
//! * pivot row distribution — a *bulk broadcast* from the owner,
//! * back substitution — one value broadcast per variable.
//!
//! The message-passing version implements these with software trees over
//! active messages (flat / binary / lop-sided, the paper's ablation); the
//! shared-memory version uses MCS-style reductions and the
//! write-barrier-read broadcast idiom, with the pivot row read in place
//! from the owner's shared memory.
//!
//! Rows are never redistributed; a host-side mask tracks which rows have
//! been consumed as pivots, exactly as in the paper.

pub mod mp;
pub mod sm;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::Validation;

/// Workload and cost parameters for Gauss.
#[derive(Clone, Debug, PartialEq)]
pub struct GaussParams {
    /// Number of equations (the paper runs 512).
    pub n: usize,
    /// Number of processors (the paper runs 32).
    pub procs: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Cycles per element in the pivot-search scan.
    pub search_cost: u64,
    /// Cycles per element in the elimination inner loop.
    pub elim_cost: u64,
    /// Cycles per element in back substitution.
    pub backsub_cost: u64,
    /// Cycles for the per-row factor computation (a divide).
    pub factor_cost: u64,
    /// Shared-memory version only: distribute pivot rows with the
    /// application-specific push-broadcast protocol (the Section 5.3.4
    /// suggestion) instead of letting every processor read them from the
    /// owner.
    pub sm_push_broadcast: bool,
}

impl Default for GaussParams {
    fn default() -> Self {
        GaussParams {
            n: 512,
            procs: 32,
            seed: 0xa5a5_0001,
            search_cost: 8,
            elim_cost: 28,
            backsub_cost: 16,
            factor_cost: 40,
            sm_push_broadcast: false,
        }
    }
}

impl GaussParams {
    /// A scaled-down workload for unit tests.
    pub fn small() -> Self {
        GaussParams {
            n: 48,
            procs: 8,
            ..Self::default()
        }
    }
}

/// Generates the dense system: row `r` of the coefficient matrix followed
/// by the right-hand side entry, as one `n + 1` element vector. The RHS is
/// chosen so the exact solution is all ones.
pub(crate) fn gen_row(p: &GaussParams, r: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(p.seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut row: Vec<f64> = (0..p.n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    // Mild diagonal strengthening keeps random systems well conditioned
    // without changing the communication pattern.
    row[r] += if row[r] >= 0.0 { 2.0 } else { -2.0 };
    let b = row.iter().sum();
    row.push(b);
    row
}

/// Checks a computed solution against the known all-ones answer.
pub(crate) fn validate_solution(x: &[f64]) -> Validation {
    let err = x.iter().map(|&v| (v - 1.0).abs()).fold(0.0f64, f64::max);
    Validation::from_error("max |x - 1|", err, 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_rows_are_deterministic() {
        let p = GaussParams::small();
        assert_eq!(gen_row(&p, 3), gen_row(&p, 3));
        assert_ne!(gen_row(&p, 3), gen_row(&p, 4));
    }

    #[test]
    fn rhs_makes_ones_the_solution() {
        let p = GaussParams::small();
        let row = gen_row(&p, 0);
        let sum: f64 = row[..p.n].iter().sum();
        assert!((row[p.n] - sum).abs() < 1e-12);
    }

    #[test]
    fn sequential_elimination_solves_the_system() {
        // Host-side reference: the workload itself must be solvable.
        let p = GaussParams {
            n: 24,
            ..GaussParams::small()
        };
        let mut a: Vec<Vec<f64>> = (0..p.n).map(|r| gen_row(&p, r)).collect();
        let n = p.n;
        let mut used = vec![false; n];
        let mut order = Vec::new();
        for k in 0..n {
            let (r, _) = (0..n)
                .filter(|&r| !used[r])
                .map(|r| (r, a[r][k].abs()))
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .expect("pivot exists");
            used[r] = true;
            order.push(r);
            for i in 0..n {
                if !used[i] {
                    let f = a[i][k] / a[r][k];
                    for j in k..=n {
                        let v = a[r][j];
                        a[i][j] -= f * v;
                    }
                }
            }
        }
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let r = order[k];
            let mut s = a[r][n];
            for j in k + 1..n {
                s -= a[r][j] * x[j];
            }
            x[k] = s / a[r][k];
        }
        assert!(validate_solution(&x).passed);
    }
}
