//! Gauss-MP: the message-passing version.
//!
//! Adapted (as in the paper) from an iPSC-style code: pivot selection by a
//! software reduction, pivot value/owner announcement by a software
//! broadcast, and pivot-row distribution by a store-and-forward bulk
//! broadcast, all over the tree shape chosen by the caller (the paper's
//! final version uses the lop-sided tree).

use std::cell::RefCell;
use std::rc::Rc;

use wwt_mp::{MpConfig, MpMachine, TreeShape};
use wwt_sim::{Engine, ProcId, SimError};

use crate::common::{block_range, AppRun, PhaseRecorder, Validation};
use crate::gauss::{gen_row, validate_solution, GaussParams};

/// Encodes (owner processor, owner-local row index) into a reduction tag.
pub(crate) fn enc_pivot(owner: usize, local_row: usize) -> usize {
    owner << 16 | local_row
}

/// Decodes the pivot tag.
pub(crate) fn dec_pivot(enc: usize) -> (usize, usize) {
    (enc >> 16, enc & 0xffff)
}

/// Runs Gauss-MP and returns the measurements (Tables 8 and 10 of the
/// paper for the lop-sided tree; the other shapes reproduce the Section
/// 5.2 collective ablation).
pub fn run(p: &GaussParams, mcfg: MpConfig, shape: TreeShape) -> AppRun {
    try_run(p, mcfg, shape).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`run`]: surfaces an engine failure (deadlock,
/// livelock, watchdog) as a structured [`SimError`] instead of
/// panicking, so a grid run can report the failing experiment and let
/// the others finish.
pub fn try_run(p: &GaussParams, mcfg: MpConfig, shape: TreeShape) -> Result<AppRun, SimError> {
    let mut engine = Engine::new(p.procs, mcfg.sim);
    let m = MpMachine::new(&engine, mcfg);
    let rec = PhaseRecorder::new(Rc::clone(engine.sim()));
    let n = p.n;
    let row_bytes = ((n + 1) * 8) as u64;

    // Deterministic allocation: every node lays out its rows then the
    // pivot buffer at identical offsets.
    let mut rows_off = Vec::new();
    let mut piv_off = Vec::new();
    for proc in 0..p.procs {
        let (s, e) = block_range(n, p.procs, proc);
        rows_off.push(m.alloc(ProcId::new(proc), (e - s) as u64 * row_bytes, 32));
        piv_off.push(m.alloc(ProcId::new(proc), row_bytes, 32));
    }

    let solution: Rc<RefCell<Vec<f64>>> = Rc::default();

    for proc in engine.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = engine.cpu(proc);
        let rec = Rc::clone(&rec);
        let solution = Rc::clone(&solution);
        let p = p.clone();
        let rows = rows_off[proc.index()];
        let piv = piv_off[proc.index()];
        engine.spawn(proc, async move {
            let me = proc.index();
            let (start, end) = block_range(n, p.procs, me);
            let nloc = end - start;
            let row_off = |li: usize| rows + li as u64 * row_bytes;

            // --- initialization: fill local rows -------------------------
            for li in 0..nloc {
                let row = gen_row(&p, start + li);
                m.poke_f64s(proc, row_off(li), &row);
                m.touch_write(&cpu, row_off(li), row_bytes);
                cpu.compute(4 * (n as u64 + 1));
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("init");
            }

            // --- forward elimination --------------------------------------
            let mut used = vec![false; nloc];
            let mut my_pivot = vec![usize::MAX; n];
            let mut owner_of = vec![usize::MAX; n];
            let mut scratch = vec![0.0f64; n + 1];
            for k in 0..n {
                // Local pivot candidate.
                let mut best = (-1.0f64, 0usize);
                let mut scanned = 0u64;
                for li in 0..nloc {
                    if used[li] {
                        continue;
                    }
                    m.touch_read(&cpu, row_off(li) + (k * 8) as u64, 8);
                    let v = m.peek_f64(proc, row_off(li) + (k * 8) as u64).abs();
                    if v > best.0 {
                        best = (v, li);
                    }
                    scanned += 1;
                }
                cpu.compute(p.search_cost * scanned.max(1));

                // Global reduction of (|candidate|, encoded owner+row),
                // then broadcast of the winner.
                let red = m
                    .reduce_max_f64_index(&cpu, shape, 0, best.0, enc_pivot(me, best.1))
                    .await;
                let root_words = red.map(|(_, e)| [e as u32, 0, 0, 0]).unwrap_or([0; 4]);
                let enc = m.bcast_raw(&cpu, shape, 0, root_words).await[0] as usize;
                let (owner, li_piv) = dec_pivot(enc);
                owner_of[k] = owner;

                // The owner freezes the pivot row and stages its active
                // part for the bulk broadcast.
                let active = n + 1 - k;
                let active_bytes = (active * 8) as u64;
                if owner == me {
                    used[li_piv] = true;
                    my_pivot[k] = li_piv;
                    m.peek_f64s(
                        proc,
                        row_off(li_piv) + (k * 8) as u64,
                        &mut scratch[..active],
                    );
                    m.poke_f64s(proc, piv, &scratch[..active]);
                    m.touch_read(&cpu, row_off(li_piv) + (k * 8) as u64, active_bytes);
                    m.touch_write(&cpu, piv, active_bytes);
                    cpu.compute(2 * active as u64);
                }
                let got = m
                    .bcast_bulk(
                        &cpu,
                        shape,
                        owner,
                        piv,
                        if owner == me { active_bytes as u32 } else { 0 },
                    )
                    .await;
                debug_assert_eq!(got as u64, active_bytes);

                // Eliminate the pivot from our remaining rows.
                let mut pivrow = vec![0.0f64; active];
                m.peek_f64s(proc, piv, &mut pivrow);
                m.touch_read(&cpu, piv, active_bytes);
                let mut row = vec![0.0f64; active];
                for li in 0..nloc {
                    if used[li] {
                        continue;
                    }
                    let off = row_off(li) + (k * 8) as u64;
                    m.peek_f64s(proc, off, &mut row);
                    let f = row[0] / pivrow[0];
                    for (r, pv) in row.iter_mut().zip(&pivrow) {
                        *r -= f * pv;
                    }
                    m.poke_f64s(proc, off, &row);
                    m.touch_write(&cpu, off, active_bytes);
                    cpu.compute(p.factor_cost + p.elim_cost * active as u64);
                }
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("forward");
            }

            // --- back substitution ----------------------------------------
            let mut x = vec![0.0f64; n];
            for k in (0..n).rev() {
                let owner = owner_of[k];
                let mine = if owner == me {
                    let li = my_pivot[k];
                    let active = n + 1 - k;
                    let off = row_off(li) + (k * 8) as u64;
                    let mut row = vec![0.0f64; active];
                    m.peek_f64s(proc, off, &mut row);
                    m.touch_read(&cpu, off, (active * 8) as u64);
                    let mut s = row[active - 1];
                    for j in k + 1..n {
                        s -= row[j - k] * x[j];
                    }
                    cpu.compute(p.backsub_cost * (n - k) as u64);
                    s / row[0]
                } else {
                    0.0
                };
                x[k] = m.bcast_f64(&cpu, shape, owner, mine).await;
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("backward");
                *solution.borrow_mut() = x;
            }
        });
    }

    let report = engine.try_run()?;
    let x = solution.borrow().clone();
    let validation = if x.len() == n {
        validate_solution(&x)
    } else {
        Validation::fail("no solution produced")
    };
    Ok(AppRun {
        report,
        phases: rec.phases(),
        validation,
        stats: vec![("n".into(), n as f64)],
        artifact: x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_sim::{Counter, Kind, Scope};

    #[test]
    fn solves_small_system_on_lopsided_tree() {
        let p = GaussParams::small();
        let run = run(&p, MpConfig::default(), TreeShape::Lopsided);
        assert!(run.validation.passed, "{}", run.validation.detail);
    }

    #[test]
    fn all_tree_shapes_agree_on_the_solution() {
        let p = GaussParams {
            n: 24,
            procs: 4,
            ..GaussParams::small()
        };
        for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::Lopsided] {
            let r = run(&p, MpConfig::default(), shape);
            assert!(r.validation.passed, "{shape:?}: {}", r.validation.detail);
        }
    }

    #[test]
    fn collective_ablation_matches_paper_ordering() {
        // The paper's Section 5.2 progression: flat broadcast with
        // CMMD-level messages (119.3M) > binary tree with CMMD-level
        // messages (40.9M) > lop-sided tree with active messages and
        // channels (30.1M).
        let p = GaussParams {
            n: 64,
            procs: 16,
            ..GaussParams::small()
        };
        let cmmd = MpConfig {
            collective_msg_overhead: 250,
            ..MpConfig::default()
        };
        let flat = run(&p, cmmd, TreeShape::Flat).report.elapsed();
        let binary = run(&p, cmmd, TreeShape::Binary).report.elapsed();
        let lop = run(&p, MpConfig::default(), TreeShape::Lopsided)
            .report
            .elapsed();
        assert!(lop < binary, "lop-sided {lop} !< binary {binary}");
        assert!(binary < flat, "binary {binary} !< flat {flat}");
    }

    #[test]
    fn communication_is_collective_traffic() {
        let p = GaussParams::small();
        let r = run(&p, MpConfig::default(), TreeShape::Lopsided);
        let avg = r.report.avg_matrix();
        // Reduction + broadcast scopes must carry real cost, and there is
        // no bare point-to-point Lib traffic besides them.
        assert!(avg.by_scope(Scope::Reduction) > 0);
        assert!(avg.by_scope(Scope::Broadcast) > 0);
        assert!(r.report.total_counter(Counter::ActiveMessages) > 0);
        assert!(avg.by_kind(Kind::NetAccess) > 0);
    }

    #[test]
    fn is_deterministic() {
        let p = GaussParams::small();
        let a = run(&p, MpConfig::default(), TreeShape::Lopsided);
        let b = run(&p, MpConfig::default(), TreeShape::Lopsided);
        assert_eq!(a.report.elapsed(), b.report.elapsed());
        assert_eq!(
            a.report.total_counter(Counter::PacketsSent),
            b.report.total_counter(Counter::PacketsSent)
        );
    }
}
