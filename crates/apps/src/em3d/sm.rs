//! EM3D-SM: in-place sharing under the invalidation protocol.
//!
//! No ghost nodes: caching *is* the replication mechanism, so every
//! producer-consumer update costs the 4-message invalidate/request/reply
//! pattern the paper dissects in Section 5.3.3. Following the paper's
//! tuned version, node *values* live in separate per-processor vectors
//! (better spatial locality than embedding them in node records); the
//! in-edge arrays (weights and pointers) are allocated with `gmalloc`,
//! whose round-robin policy homes them on essentially random nodes — the
//! source of the 97%-remote-miss pathology of Table 15 — or locally under
//! the Table-17 policy. Initialization builds the reverse-edge lists with
//! remote writes protected by locks, exactly the cost structure the paper
//! reports (Table 14's lock row).

use std::rc::Rc;

use wwt_mem::GAddr;
use wwt_sim::{Engine, SimError};
use wwt_sm::{McsLock, SmConfig, SmMachine};

use crate::common::{AppRun, PhaseRecorder};
use crate::em3d::{
    build_in_edges, gen_graph, reference, validate_values, Em3dGraph, Em3dHint, Em3dParams, Side,
};

/// Number of locks per destination processor protecting its in-edge
/// structures (hashed by sink node index).
const LOCKS_PER_PROC: usize = 16;

/// One remote or local in-edge record to install during initialization.
#[derive(Copy, Clone, Debug)]
struct FillRecord {
    dst_proc: usize,
    side: Side,
    /// Flat slot in the destination's (node-major) in-edge arrays.
    slot: usize,
    /// Sink node index (for lock hashing).
    dst_idx: usize,
    weight: f64,
    src_proc: usize,
    src_idx: usize,
}

struct Layout {
    /// Per (proc, side): flat in-edge count.
    in_e_deg: Vec<usize>,
    in_h_deg: Vec<usize>,
    /// Fill records grouped by the *source* processor (who installs them).
    fills: Vec<Vec<FillRecord>>,
}

fn build_layout(p: &Em3dParams, g: &Em3dGraph) -> Layout {
    let (in_e, in_h) = build_in_edges(p, g);
    // Node-major slot bases per (proc, side, node).
    let bases = |ins: &crate::em3d::InEdges| -> Vec<Vec<usize>> {
        ins.iter()
            .map(|nodes| {
                let mut start = 0;
                nodes
                    .iter()
                    .map(|l| {
                        let s = start;
                        start += l.len();
                        s
                    })
                    .collect()
            })
            .collect()
    };
    let base_e = bases(&in_e);
    let base_h = bases(&in_h);
    let mut cursor_e: Vec<Vec<usize>> = base_e.clone();
    let mut cursor_h: Vec<Vec<usize>> = base_h.clone();
    let mut fills: Vec<Vec<FillRecord>> = vec![Vec::new(); p.procs];
    for (edge, &w) in g.edges.iter().zip(&g.weights) {
        let side = edge.from_side.other();
        let cursor = match side {
            Side::E => &mut cursor_e,
            Side::H => &mut cursor_h,
        };
        let slot = cursor[edge.dst_proc][edge.dst_idx];
        cursor[edge.dst_proc][edge.dst_idx] += 1;
        fills[edge.src_proc].push(FillRecord {
            dst_proc: edge.dst_proc,
            side,
            slot,
            dst_idx: edge.dst_idx,
            weight: w,
            src_proc: edge.src_proc,
            src_idx: edge.src_idx,
        });
    }
    Layout {
        in_e_deg: in_e.iter().map(|n| n.iter().map(Vec::len).sum()).collect(),
        in_h_deg: in_h.iter().map(|n| n.iter().map(Vec::len).sum()).collect(),
        fills,
    }
}

/// Shared-memory addresses of one processor's arrays.
#[derive(Clone, Debug)]
struct Arrays {
    e_vals: GAddr,
    h_vals: GAddr,
    /// In-degree count words, E side then H side (one u64 per node).
    counts: GAddr,
    in_e_w: GAddr,
    in_e_ptr: GAddr,
    in_h_w: GAddr,
    in_h_ptr: GAddr,
    /// Per-node in-edge list starts (E side then H side), as u64 slots.
    starts: GAddr,
}

/// Runs EM3D-SM and returns the measurements (Tables 14 and 15; Tables 16
/// and 17 via the cache/allocation fields of [`SmConfig`]), with "init"
/// and "main" phase snapshots.
pub fn run(p: &Em3dParams, scfg: SmConfig) -> AppRun {
    try_run(p, scfg).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`run`]: surfaces an engine failure (deadlock,
/// livelock, watchdog) as a structured [`SimError`] instead of
/// panicking, so a grid run can report the failing experiment and let
/// the others finish.
pub fn try_run(p: &Em3dParams, scfg: SmConfig) -> Result<AppRun, SimError> {
    let mut engine = Engine::new(p.procs, scfg.sim);
    let m = SmMachine::new(&engine, scfg);
    let rec = PhaseRecorder::new(Rc::clone(engine.sim()));
    let g = Rc::new(gen_graph(p));
    let layout = Rc::new(build_layout(p, &g));
    // Built once and shared: every processor task reads only its own row,
    // and rebuilding the full lists per task is quadratic in machine size.
    let ins = Rc::new(build_in_edges(p, &g));

    // Allocate every processor's arrays up front (allocation-policy aware:
    // `gmalloc(q, ..)` homes on q only under the Local policy).
    let arrays: Rc<Vec<Arrays>> = Rc::new(
        (0..p.procs)
            .map(|q| Arrays {
                e_vals: m.gmalloc(q, (p.e_per_proc * 8) as u64, 32),
                h_vals: m.gmalloc(q, (p.h_per_proc * 8) as u64, 32),
                counts: m.gmalloc(q, ((p.e_per_proc + p.h_per_proc) * 8) as u64, 32),
                in_e_w: m.gmalloc(q, (layout.in_e_deg[q] * 8).max(8) as u64, 32),
                in_e_ptr: m.gmalloc(q, (layout.in_e_deg[q] * 8).max(8) as u64, 32),
                in_h_w: m.gmalloc(q, (layout.in_h_deg[q] * 8).max(8) as u64, 32),
                in_h_ptr: m.gmalloc(q, (layout.in_h_deg[q] * 8).max(8) as u64, 32),
                starts: m.gmalloc(q, ((p.e_per_proc + p.h_per_proc) * 8) as u64, 32),
            })
            .collect(),
    );
    let locks: Rc<Vec<Vec<McsLock>>> = Rc::new(
        (0..p.procs)
            .map(|_| (0..LOCKS_PER_PROC).map(|_| McsLock::new(&m)).collect())
            .collect(),
    );

    for proc in engine.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = engine.cpu(proc);
        let rec = Rc::clone(&rec);
        let g = Rc::clone(&g);
        let layout = Rc::clone(&layout);
        let ins = Rc::clone(&ins);
        let arrays = Rc::clone(&arrays);
        let locks = Rc::clone(&locks);
        let p = p.clone();
        engine.spawn(proc, async move {
            let me = proc.index();
            let a = &arrays[me];

            // --- initialization -------------------------------------------
            // Local node values.
            for (i, &v) in g.e0[me].iter().enumerate() {
                m.poke_f64(a.e_vals.offset_by((i * 8) as u64), v);
            }
            for (i, &v) in g.h0[me].iter().enumerate() {
                m.poke_f64(a.h_vals.offset_by((i * 8) as u64), v);
            }
            m.touch_write(&cpu, a.e_vals, (p.e_per_proc * 8) as u64)
                .await;
            m.touch_write(&cpu, a.h_vals, (p.h_per_proc * 8) as u64)
                .await;
            cpu.compute(20 * (p.e_per_proc + p.h_per_proc) as u64 * p.degree as u64);

            // Pass 1: increment in-degree counts at the sinks (remote
            // writes under locks).
            for rec_ in &layout.fills[me] {
                let d = &arrays[rec_.dst_proc];
                let side_off = match rec_.side {
                    Side::E => 0,
                    Side::H => p.e_per_proc,
                };
                let cnt = d.counts.offset_by(((side_off + rec_.dst_idx) * 8) as u64);
                let remote = rec_.dst_proc != me;
                if remote {
                    let lock = &locks[rec_.dst_proc][rec_.dst_idx % LOCKS_PER_PROC];
                    lock.acquire(&m, &cpu).await;
                    let c = m.read_u64(&cpu, cnt).await;
                    m.write_u64(&cpu, cnt, c + 1).await;
                    lock.release(&m, &cpu).await;
                } else {
                    let c = m.read_u64(&cpu, cnt).await;
                    m.write_u64(&cpu, cnt, c + 1).await;
                }
                cpu.compute(6);
            }
            m.barrier(&cpu).await;

            // Owners turn counts into per-node starts (a local scan).
            m.touch_read(&cpu, a.counts, ((p.e_per_proc + p.h_per_proc) * 8) as u64)
                .await;
            m.touch_write(&cpu, a.starts, ((p.e_per_proc + p.h_per_proc) * 8) as u64)
                .await;
            cpu.compute(4 * (p.e_per_proc + p.h_per_proc) as u64);
            m.barrier(&cpu).await;

            // Pass 2: install (weight, source-pointer) records at the
            // sinks, bumping a cursor under the same locks.
            for rec_ in &layout.fills[me] {
                let d = &arrays[rec_.dst_proc];
                let (w_arr, ptr_arr) = match rec_.side {
                    Side::E => (d.in_e_w, d.in_e_ptr),
                    Side::H => (d.in_h_w, d.in_h_ptr),
                };
                // The source value this edge reads in the main loop: E
                // sinks read H sources and vice versa.
                let src_vals = match rec_.side {
                    Side::E => arrays[rec_.src_proc].h_vals,
                    Side::H => arrays[rec_.src_proc].e_vals,
                };
                let src_addr = src_vals.offset_by((rec_.src_idx * 8) as u64);
                let w_slot = w_arr.offset_by((rec_.slot * 8) as u64);
                let p_slot = ptr_arr.offset_by((rec_.slot * 8) as u64);
                let remote = rec_.dst_proc != me;
                if remote {
                    let lock = &locks[rec_.dst_proc][rec_.dst_idx % LOCKS_PER_PROC];
                    lock.acquire(&m, &cpu).await;
                    // Cursor bump (read + write of the count word).
                    let side_off = match rec_.side {
                        Side::E => 0,
                        Side::H => p.e_per_proc,
                    };
                    let cnt = d.counts.offset_by(((side_off + rec_.dst_idx) * 8) as u64);
                    let c = m.read_u64(&cpu, cnt).await;
                    m.write_u64(&cpu, cnt, c + 1).await;
                    m.write_f64(&cpu, w_slot, rec_.weight).await;
                    m.write_u64(&cpu, p_slot, src_addr.raw()).await;
                    lock.release(&m, &cpu).await;
                } else {
                    m.poke_f64(w_slot, rec_.weight);
                    m.poke_u64(p_slot, src_addr.raw());
                    m.touch_write(&cpu, w_slot, 8).await;
                    m.touch_write(&cpu, p_slot, 8).await;
                }
                // Host-side ground truth regardless of simulated timing.
                m.poke_f64(w_slot, rec_.weight);
                m.poke_u64(p_slot, src_addr.raw());
                cpu.compute(10);
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("init");
            }

            // --- main loop --------------------------------------------------
            let (in_e, in_h) = (&ins.0, &ins.1);
            let my_in_e: Vec<usize> = in_e[me].iter().map(Vec::len).collect();
            let my_in_h: Vec<usize> = in_h[me].iter().map(Vec::len).collect();
            // Unique remote source blocks per half (for flush/prefetch
            // hints): H sources feed the E half and vice versa.
            let remote_blocks = |ins: &Vec<Vec<(usize, usize, f64)>>, side: Side| -> Vec<GAddr> {
                let mut blocks: Vec<u64> = ins
                    .iter()
                    .flatten()
                    .filter(|&&(sp, _, _)| sp != me)
                    .map(|&(sp, si, _)| {
                        let vals = match side {
                            Side::H => arrays[sp].h_vals,
                            Side::E => arrays[sp].e_vals,
                        };
                        vals.offset_by((si * 8) as u64).block().raw()
                    })
                    .collect();
                blocks.sort_unstable();
                blocks.dedup();
                blocks.into_iter().map(GAddr::from_raw).collect()
            };
            let remote_h = remote_blocks(&in_e[me], Side::H);
            let remote_e = remote_blocks(&in_h[me], Side::E);
            for _ in 0..p.iters {
                if p.hint == Em3dHint::Prefetch {
                    for b in &remote_h {
                        m.prefetch(&cpu, *b, 32).await;
                    }
                }
                half_step(&m, &cpu, &p, a.e_vals, a.in_e_w, a.in_e_ptr, &my_in_e).await;
                if p.hint == Em3dHint::Flush {
                    for b in &remote_h {
                        m.flush(&cpu, *b, 32).await;
                    }
                }
                m.bulk_publish(&cpu, a.e_vals, (p.e_per_proc * 8) as u64)
                    .await;
                m.barrier(&cpu).await;
                if p.hint == Em3dHint::Prefetch {
                    for b in &remote_e {
                        m.prefetch(&cpu, *b, 32).await;
                    }
                }
                half_step(&m, &cpu, &p, a.h_vals, a.in_h_w, a.in_h_ptr, &my_in_h).await;
                if p.hint == Em3dHint::Flush {
                    for b in &remote_e {
                        m.flush(&cpu, *b, 32).await;
                    }
                }
                m.bulk_publish(&cpu, a.h_vals, (p.h_per_proc * 8) as u64)
                    .await;
                m.barrier(&cpu).await;
            }
            if me == 0 {
                rec.mark("main");
            }
        });
    }

    let report = engine.try_run()?;
    let mut got_e = Vec::new();
    let mut got_h = Vec::new();
    for q in 0..p.procs {
        let mut e = vec![0.0f64; p.e_per_proc];
        m.peek_f64s(arrays[q].e_vals, &mut e);
        let mut h = vec![0.0f64; p.h_per_proc];
        m.peek_f64s(arrays[q].h_vals, &mut h);
        got_e.push(e);
        got_h.push(h);
    }
    let refv = reference(p, &g);
    let validation = validate_values(&refv, &got_e, &got_h);
    Ok(AppRun {
        report,
        phases: rec.phases(),
        validation,
        stats: vec![("iters".into(), p.iters as f64)],
        artifact: got_e.into_iter().flatten().collect(),
    })
}

/// One half-step: stream the in-edge arrays, read each source value in
/// place (local or remote shared memory), and write the updated sinks.
async fn half_step(
    m: &Rc<SmMachine>,
    cpu: &wwt_sim::Cpu,
    p: &Em3dParams,
    sink_vals: GAddr,
    w_arr: GAddr,
    ptr_arr: GAddr,
    degrees: &[usize],
) {
    let mut cursor = 0usize;
    for (i, &deg) in degrees.iter().enumerate() {
        if deg > 0 {
            // Stream the weight and pointer arrays for this node.
            m.touch_read(cpu, w_arr.offset_by((cursor * 8) as u64), (deg * 8) as u64)
                .await;
            m.touch_read(
                cpu,
                ptr_arr.offset_by((cursor * 8) as u64),
                (deg * 8) as u64,
            )
            .await;
        }
        let mut acc = 0.0;
        for k in 0..deg {
            let w = m.peek_f64(w_arr.offset_by(((cursor + k) * 8) as u64));
            let src = GAddr::from_raw(m.peek_u64(ptr_arr.offset_by(((cursor + k) * 8) as u64)));
            m.touch_read(cpu, src, 8).await;
            acc += w * m.peek_f64(src);
        }
        cursor += deg;
        let sink = sink_vals.offset_by((i * 8) as u64);
        let old = m.peek_f64(sink);
        m.touch_write(cpu, sink, 8).await;
        m.poke_f64(sink, old - acc);
        cpu.compute(p.node_cost + p.edge_cost * deg as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_mem::CacheGeometry;
    use wwt_mp::MpConfig;
    use wwt_sim::{Counter, Kind, Scope};
    use wwt_sm::{AllocPolicy, ProtocolMode};

    #[test]
    fn matches_sequential_reference_bitwise() {
        let p = Em3dParams::small();
        let r = run(&p, SmConfig::default());
        assert!(r.validation.passed, "{}", r.validation.detail);
        assert!(
            r.validation.detail.contains("0.000e0"),
            "{}",
            r.validation.detail
        );
    }

    #[test]
    fn sm_and_mp_agree_exactly() {
        let p = Em3dParams::small();
        let a = run(&p, SmConfig::default());
        let b = crate::em3d::mp::run(&p, MpConfig::default());
        assert_eq!(a.artifact, b.artifact);
    }

    #[test]
    fn init_uses_locks_main_loop_does_not() {
        let p = Em3dParams::small();
        let r = run(&p, SmConfig::default());
        let init = r.phase("init").expect("init phase");
        let total_locks: u64 = r.report.total_counter(Counter::LockAcquires);
        let init_locks: u64 = init
            .snapshot
            .iter()
            .map(|(_, _, c)| c.get(Counter::LockAcquires))
            .sum();
        assert!(total_locks > 0);
        assert_eq!(init_locks, total_locks, "all locking happens in init");
        assert!(r.report.avg_matrix().by_scope(Scope::Lock) > 0);
    }

    #[test]
    fn main_loop_is_dominated_by_shared_misses() {
        let p = Em3dParams {
            iters: 6,
            ..Em3dParams::small()
        };
        let r = run(&p, SmConfig::default());
        let avg = r.report.avg_matrix();
        let shared = avg.by_kind(Kind::ShMissRemote) + avg.by_kind(Kind::ShMissLocal);
        assert!(shared > avg.by_kind(Kind::PrivMiss));
        assert!(r.report.total_counter(Counter::WriteFaults) > 0);
    }

    #[test]
    fn round_robin_allocation_makes_misses_remote() {
        let p = Em3dParams::small();
        let rr = run(&p, SmConfig::default());
        let local = run(
            &p,
            SmConfig {
                alloc_policy: AllocPolicy::Local,
                ..SmConfig::default()
            },
        );
        let remote_frac = |r: &AppRun| {
            let rem = r.report.total_counter(Counter::ShMissesRemote) as f64;
            let loc = r.report.total_counter(Counter::ShMissesLocal) as f64;
            rem / (rem + loc)
        };
        assert!(
            remote_frac(&rr) > remote_frac(&local) + 0.15,
            "round-robin {:.2} vs local {:.2}",
            remote_frac(&rr),
            remote_frac(&local)
        );
        assert!(local.report.elapsed() < rr.report.elapsed());
        assert!(local.validation.passed);
    }

    #[test]
    fn bigger_cache_speeds_up_main_loop() {
        let p = Em3dParams {
            e_per_proc: 300,
            h_per_proc: 300,
            degree: 8,
            procs: 4,
            iters: 3,
            ..Em3dParams::small()
        };
        // Shrink the cache to make capacity misses matter at test scale.
        let small_cache = SmConfig {
            arch: wwt_sm::ArchParams {
                cache: CacheGeometry {
                    size_bytes: 8 * 1024,
                    ways: 4,
                    block_bytes: 32,
                },
                ..wwt_sm::ArchParams::default()
            },
            ..SmConfig::default()
        };
        let big_cache = SmConfig::default();
        let small = run(&p, small_cache);
        let big = run(&p, big_cache);
        assert!(big.report.elapsed() < small.report.elapsed());
        assert!(big.validation.passed && small.validation.passed);
    }

    #[test]
    fn bulk_update_protocol_cuts_communication() {
        let p = Em3dParams::small();
        let inval = run(&p, SmConfig::default());
        let bulk = run(
            &p,
            SmConfig {
                protocol: ProtocolMode::BulkUpdate,
                ..SmConfig::default()
            },
        );
        assert!(bulk.validation.passed);
        assert!(
            bulk.report.total_counter(Counter::WriteFaults)
                < inval.report.total_counter(Counter::WriteFaults)
        );
    }
}

#[cfg(test)]
mod hint_tests {
    use super::*;
    use crate::em3d::Em3dHint;
    use wwt_sim::{Counter, Kind};

    fn run_with(hint: Em3dHint) -> AppRun {
        let p = Em3dParams {
            e_per_proc: 120,
            h_per_proc: 120,
            degree: 6,
            iters: 6,
            hint,
            ..Em3dParams::small()
        };
        // Local allocation, so the misses the hints target (the
        // producer-consumer value updates) dominate.
        run(
            &p,
            SmConfig {
                alloc_policy: wwt_sm::AllocPolicy::Local,
                ..SmConfig::default()
            },
        )
    }

    #[test]
    fn flush_hint_cheapens_the_producers_writes() {
        let base = run_with(Em3dHint::None);
        let flush = run_with(Em3dHint::Flush);
        assert!(flush.validation.passed, "{}", flush.validation.detail);
        // Identical values either way.
        assert_eq!(base.artifact, flush.artifact);
        // Consumers flushed, so producers' write upgrades invalidate fewer
        // sharers: the write-fault stall shrinks.
        let wf = |r: &AppRun| r.report.avg_matrix().by_kind(Kind::WriteFault);
        assert!(
            wf(&flush) < wf(&base),
            "flush write-fault cycles {} !< base {}",
            wf(&flush),
            wf(&base)
        );
    }

    #[test]
    fn prefetch_hint_cuts_demand_miss_stall() {
        let base = run_with(Em3dHint::None);
        let pf = run_with(Em3dHint::Prefetch);
        assert!(pf.validation.passed, "{}", pf.validation.detail);
        assert_eq!(base.artifact, pf.artifact);
        // The remote values arrive ahead of the demand reads: the shared
        // miss stall in the main loop shrinks even though the traffic
        // (misses counted) does not.
        let stall = |r: &AppRun| {
            let m = r.report.avg_matrix();
            m.by_kind(Kind::ShMissRemote) + m.by_kind(Kind::ShMissLocal)
        };
        assert!(
            stall(&pf) < stall(&base),
            "prefetch stall {} !< base {}",
            stall(&pf),
            stall(&base)
        );
        assert!(
            pf.report.total_counter(Counter::ShMissesRemote)
                >= base.report.total_counter(Counter::ShMissesRemote),
            "prefetching must not reduce traffic"
        );
    }
}
