//! EM3D-MP: ghost nodes updated by bulk channel messages.
//!
//! Each remote edge gets a *ghost node* on the sink side (the paper's
//! variant of the Split-C code: one ghost per remote edge, which keeps
//! initialization simple at the cost of slightly more data). Before each
//! half-step a processor gathers the values its neighbors need and sends
//! them in one bulk channel message per neighbor; the channel's receive
//! buffer *is* the ghost array, so data lands in place with no copying.
//! All communication is sender-initiated, in bulk, and handshake-free —
//! the three properties the paper credits for EM3D-MP's 2x win.

use std::collections::HashMap;
use std::rc::Rc;

use wwt_mp::{ChannelId, MpConfig, MpMachine, SendChannel};
use wwt_sim::{Engine, ProcId, SimError};

use crate::common::{AppRun, PhaseRecorder};
use crate::em3d::{gen_graph, reference, validate_values, Em3dGraph, Em3dParams, Side};

/// Where an in-edge's source value lives.
#[derive(Copy, Clone, Debug)]
enum SrcRef {
    /// A node on this processor (index within the source side's array).
    Local(usize),
    /// A ghost slot fed by processor `src`.
    Ghost { src: usize, slot: usize },
}

/// Per-processor communication plan derived from the shared graph.
#[derive(Debug, Default)]
struct ProcPlan {
    /// E-side values to send, per destination: my E node indices.
    send_e: Vec<Vec<usize>>,
    /// H-side values to send, per destination.
    send_h: Vec<Vec<usize>>,
    /// Edge-info records to transmit during initialization, per
    /// destination: (sink idx, sink side, weight).
    send_info: Vec<Vec<(u32, Side, f64)>>,
    /// Resolved in-edges of my E nodes: (weight, where the H source is).
    in_e: Vec<Vec<(f64, SrcRef)>>,
    /// Resolved in-edges of my H nodes.
    in_h: Vec<Vec<(f64, SrcRef)>>,
}

fn build_plans(p: &Em3dParams, g: &Em3dGraph) -> Vec<ProcPlan> {
    let mut plans: Vec<ProcPlan> = (0..p.procs)
        .map(|_| ProcPlan {
            send_e: vec![Vec::new(); p.procs],
            send_h: vec![Vec::new(); p.procs],
            send_info: vec![Vec::new(); p.procs],
            in_e: vec![Vec::new(); p.e_per_proc],
            in_h: vec![Vec::new(); p.h_per_proc],
        })
        .collect();
    // Ghost slots are assigned in global edge order, which is also the
    // order senders gather values in, so slot k of the ghost array always
    // receives the k-th value of the bulk message.
    let mut slots: HashMap<(usize, usize, Side), usize> = HashMap::new();
    for (edge, &w) in g.edges.iter().zip(&g.weights) {
        let sink_side = edge.from_side.other();
        let src_ref = if edge.src_proc == edge.dst_proc {
            SrcRef::Local(edge.src_idx)
        } else {
            let ctr = slots
                .entry((edge.src_proc, edge.dst_proc, edge.from_side))
                .or_insert(0);
            let slot = *ctr;
            *ctr += 1;
            let sender = &mut plans[edge.src_proc];
            match edge.from_side {
                Side::E => sender.send_e[edge.dst_proc].push(edge.src_idx),
                Side::H => sender.send_h[edge.dst_proc].push(edge.src_idx),
            }
            sender.send_info[edge.dst_proc].push((edge.dst_idx as u32, sink_side, w));
            SrcRef::Ghost {
                src: edge.src_proc,
                slot,
            }
        };
        let sink = &mut plans[edge.dst_proc];
        match sink_side {
            Side::E => sink.in_e[edge.dst_idx].push((w, src_ref)),
            Side::H => sink.in_h[edge.dst_idx].push((w, src_ref)),
        }
    }
    plans
}

const INFO_BYTES: u64 = 16; // (sink idx, side, weight) record

/// Runs EM3D-MP and returns the measurements (Tables 12 and 13), with
/// "init" and "main" phase snapshots.
pub fn run(p: &Em3dParams, mcfg: MpConfig) -> AppRun {
    try_run(p, mcfg).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible variant of [`run`]: surfaces an engine failure (deadlock,
/// livelock, watchdog) as a structured [`SimError`] instead of
/// panicking, so a grid run can report the failing experiment and let
/// the others finish.
pub fn try_run(p: &Em3dParams, mcfg: MpConfig) -> Result<AppRun, SimError> {
    let mut engine = Engine::new(p.procs, mcfg.sim);
    let m = MpMachine::new(&engine, mcfg);
    let rec = PhaseRecorder::new(Rc::clone(engine.sim()));
    let g = Rc::new(gen_graph(p));
    let plans = Rc::new(build_plans(p, &g));
    // Each task records where its value arrays actually start (allocation
    // is 32-byte aligned, so offsets are not simply array-size multiples).
    let val_offs: Rc<std::cell::RefCell<Vec<(u64, u64)>>> =
        Rc::new(std::cell::RefCell::new(vec![(0, 0); p.procs]));

    for proc in engine.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = engine.cpu(proc);
        let rec = Rc::clone(&rec);
        let g = Rc::clone(&g);
        let plans = Rc::clone(&plans);
        let val_offs = Rc::clone(&val_offs);
        let p = p.clone();
        engine.spawn(proc, async move {
            let me = proc.index();
            let np = p.procs;
            let plan = &plans[me];

            // --- local memory layout --------------------------------------
            let e_vals = m.alloc(proc, (p.e_per_proc * 8) as u64, 32);
            let h_vals = m.alloc(proc, (p.h_per_proc * 8) as u64, 32);
            val_offs.borrow_mut()[me] = (e_vals, h_vals);
            let ghost_len = |q: usize, side: Side| match side {
                Side::E => plans[q].send_e[me].len(),
                Side::H => plans[q].send_h[me].len(),
            };
            let mut ghost_e = vec![0u64; np];
            let mut ghost_h = vec![0u64; np];
            for q in 0..np {
                if q != me {
                    ghost_e[q] = m.alloc(proc, (ghost_len(q, Side::E) * 8).max(8) as u64, 32);
                    ghost_h[q] = m.alloc(proc, (ghost_len(q, Side::H) * 8).max(8) as u64, 32);
                }
            }
            // In-edge stream arrays (weights + pointers, 16 bytes/edge).
            let in_e_deg: usize = plan.in_e.iter().map(Vec::len).sum();
            let in_h_deg: usize = plan.in_h.iter().map(Vec::len).sum();
            let in_e_stream = m.alloc(proc, (in_e_deg as u64 * 16).max(16), 32);
            let in_h_stream = m.alloc(proc, (in_h_deg as u64 * 16).max(16), 32);
            // Send gather buffers.
            let mut buf_e = vec![0u64; np];
            let mut buf_h = vec![0u64; np];
            for q in 0..np {
                buf_e[q] = m.alloc(proc, (plan.send_e[q].len() * 8).max(8) as u64, 32);
                buf_h[q] = m.alloc(proc, (plan.send_h[q].len() * 8).max(8) as u64, 32);
            }
            // Init-phase edge-info scratch.
            let in_info_len: Vec<usize> = (0..np).map(|q| plans[q].send_info[me].len()).collect();
            let info_scratch = m.alloc(
                proc,
                (in_info_len.iter().max().copied().unwrap_or(0) as u64 * INFO_BYTES).max(16),
                32,
            );

            // --- channel setup ---------------------------------------------
            // Open receive channels (announcing to the senders), then bind
            // our send channels. Open/bind orders are symmetric.
            let mut chan_info_in: Vec<Option<ChannelId>> = vec![None; np];
            let mut chan_e_in: Vec<Option<ChannelId>> = vec![None; np];
            let mut chan_h_in: Vec<Option<ChannelId>> = vec![None; np];
            for q in 0..np {
                if q == me {
                    continue;
                }
                if in_info_len[q] > 0 {
                    chan_info_in[q] = Some(
                        m.channel_open_recv(
                            &cpu,
                            ProcId::new(q),
                            info_scratch,
                            (in_info_len[q] as u64 * INFO_BYTES) as u32,
                        )
                        .expect("capacity within the channel limit"),
                    );
                }
                if ghost_len(q, Side::E) > 0 {
                    chan_e_in[q] = Some(
                        m.channel_open_recv(
                            &cpu,
                            ProcId::new(q),
                            ghost_e[q],
                            (ghost_len(q, Side::E) * 8) as u32,
                        )
                        .expect("capacity within the channel limit"),
                    );
                }
                if ghost_len(q, Side::H) > 0 {
                    chan_h_in[q] = Some(
                        m.channel_open_recv(
                            &cpu,
                            ProcId::new(q),
                            ghost_h[q],
                            (ghost_len(q, Side::H) * 8) as u32,
                        )
                        .expect("capacity within the channel limit"),
                    );
                }
            }
            let mut out_info: Vec<Option<SendChannel>> = vec![None; np];
            let mut out_e: Vec<Option<SendChannel>> = vec![None; np];
            let mut out_h: Vec<Option<SendChannel>> = vec![None; np];
            for q in 0..np {
                if q == me {
                    continue;
                }
                if !plan.send_info[q].is_empty() {
                    out_info[q] = Some(m.channel_bind(&cpu, ProcId::new(q)).await);
                }
                if !plan.send_e[q].is_empty() {
                    out_e[q] = Some(m.channel_bind(&cpu, ProcId::new(q)).await);
                }
                if !plan.send_h[q].is_empty() {
                    out_h[q] = Some(m.channel_bind(&cpu, ProcId::new(q)).await);
                }
            }
            m.barrier(&cpu).await;

            // --- initialization ---------------------------------------------
            // Generate local nodes and values.
            for (i, &v) in g.e0[me].iter().enumerate() {
                m.poke_f64(proc, e_vals + (i * 8) as u64, v);
            }
            for (i, &v) in g.h0[me].iter().enumerate() {
                m.poke_f64(proc, h_vals + (i * 8) as u64, v);
            }
            m.touch_write(&cpu, e_vals, (p.e_per_proc * 8) as u64);
            m.touch_write(&cpu, h_vals, (p.h_per_proc * 8) as u64);
            cpu.compute(20 * (p.e_per_proc + p.h_per_proc) as u64 * p.degree as u64);

            // Transmit edge info for our remote out-edges in one bulk
            // message per neighbor (the paper's reverse-edge exchange).
            for q in 0..np {
                if let Some(ch) = &out_info[q] {
                    let recs = &plan.send_info[q];
                    for (k, &(dst, side, w)) in recs.iter().enumerate() {
                        let off = buf_e[q]; // reuse gather buffer as staging
                        let _ = off;
                        let base = info_scratch; // staging in our own scratch
                        let o = base + k as u64 * INFO_BYTES;
                        m.poke_u32(proc, o, dst);
                        m.poke_u32(proc, o + 4, matches!(side, Side::H) as u32);
                        m.poke_f64(proc, o + 8, w);
                    }
                    m.touch_write(&cpu, info_scratch, recs.len() as u64 * INFO_BYTES);
                    cpu.compute(8 * recs.len() as u64);
                    m.channel_write(
                        &cpu,
                        ch,
                        info_scratch,
                        (recs.len() as u64 * INFO_BYTES) as u32,
                    );
                }
            }
            // Receive edge info and build the in-edge stream arrays
            // (reference the data twice: in-degree count, then pointers).
            for q in 0..np {
                if let Some(id) = chan_info_in[q] {
                    let got = m.channel_wait(&cpu, id).await;
                    m.touch_read(&cpu, info_scratch, got as u64);
                    cpu.compute(6 * (got as u64 / INFO_BYTES));
                }
            }
            // Build pass: count in-degrees, then write (weight, pointer)
            // records for every in-edge (local and ghost alike).
            m.touch_write(&cpu, in_e_stream, (in_e_deg as u64 * 16).max(16));
            m.touch_write(&cpu, in_h_stream, (in_h_deg as u64 * 16).max(16));
            cpu.compute(12 * (in_e_deg + in_h_deg) as u64);

            // Prime the H ghosts so the first E half-step sees current
            // remote values.
            for q in 0..np {
                if let Some(ch) = &out_h[q] {
                    gather_send(&m, &cpu, &plan.send_h[q], h_vals, buf_h[q], ch);
                }
            }
            for q in 0..np {
                if let Some(id) = chan_h_in[q] {
                    m.channel_wait(&cpu, id).await;
                }
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("init");
            }

            // --- main loop ----------------------------------------------------
            for _ in 0..p.iters {
                // E half-step: new E from H in-neighbors.
                half_step(
                    &m,
                    &cpu,
                    &p,
                    &plan.in_e,
                    e_vals,
                    h_vals,
                    &ghost_h,
                    in_e_stream,
                )
                .await;
                // Ship new E values to neighbors, then collect ours.
                for q in 0..np {
                    if let Some(ch) = &out_e[q] {
                        gather_send(&m, &cpu, &plan.send_e[q], e_vals, buf_e[q], ch);
                    }
                }
                for q in 0..np {
                    if let Some(id) = chan_e_in[q] {
                        m.channel_wait(&cpu, id).await;
                    }
                }
                // H half-step: new H from E in-neighbors.
                half_step(
                    &m,
                    &cpu,
                    &p,
                    &plan.in_h,
                    h_vals,
                    e_vals,
                    &ghost_e,
                    in_h_stream,
                )
                .await;
                for q in 0..np {
                    if let Some(ch) = &out_h[q] {
                        gather_send(&m, &cpu, &plan.send_h[q], h_vals, buf_h[q], ch);
                    }
                }
                for q in 0..np {
                    if let Some(id) = chan_h_in[q] {
                        m.channel_wait(&cpu, id).await;
                    }
                }
            }
            m.barrier(&cpu).await;
            if me == 0 {
                rec.mark("main");
            }
            // Leave the final values where the harness can find them: they
            // are already in e_vals/h_vals.
            let _ = (e_vals, h_vals);
        });
    }

    let report = engine.try_run()?;

    // Collect final values for validation from the recorded offsets.
    let mut got_e = Vec::new();
    let mut got_h = Vec::new();
    for q in 0..p.procs {
        let (e_off, h_off) = val_offs.borrow()[q];
        let mut e = vec![0.0f64; p.e_per_proc];
        m.peek_f64s(ProcId::new(q), e_off, &mut e);
        let mut h = vec![0.0f64; p.h_per_proc];
        m.peek_f64s(ProcId::new(q), h_off, &mut h);
        got_e.push(e);
        got_h.push(h);
    }
    let refv = reference(p, &g);
    let validation = validate_values(&refv, &got_e, &got_h);
    Ok(AppRun {
        report,
        phases: rec.phases(),
        validation,
        stats: vec![("iters".into(), p.iters as f64)],
        artifact: got_e.into_iter().flatten().collect(),
    })
}

/// One half-step over `sinks` (in-edge lists of the side being updated):
/// streams the in-edge arrays, reads each source value (local array or
/// ghost slot), and writes the updated sink values.
#[allow(clippy::too_many_arguments)]
async fn half_step(
    m: &Rc<MpMachine>,
    cpu: &wwt_sim::Cpu,
    p: &Em3dParams,
    sinks: &[Vec<(f64, SrcRef)>],
    sink_vals: u64,
    src_vals: u64,
    ghosts: &[u64],
    stream: u64,
) {
    let proc = cpu.id();
    let mut edge_cursor = 0u64;
    for (i, ins) in sinks.iter().enumerate() {
        let deg = ins.len() as u64;
        if deg > 0 {
            m.touch_read(cpu, stream + edge_cursor * 16, deg * 16);
            edge_cursor += deg;
        }
        let mut acc = 0.0;
        for &(w, src) in ins {
            let addr = match src {
                SrcRef::Local(si) => src_vals + (si * 8) as u64,
                SrcRef::Ghost { src, slot } => ghosts[src] + (slot * 8) as u64,
            };
            m.touch_read(cpu, addr, 8);
            acc += w * m.peek_f64(proc, addr);
        }
        let sink = sink_vals + (i * 8) as u64;
        let old = m.peek_f64(proc, sink);
        m.poke_f64(proc, sink, old - acc);
        m.touch_write(cpu, sink, 8);
        cpu.compute(p.node_cost + p.edge_cost * deg);
    }
    cpu.resync_if_ahead().await;
}

/// Gathers the listed source values into a contiguous buffer and ships
/// them over the channel in one bulk message.
fn gather_send(
    m: &Rc<MpMachine>,
    cpu: &wwt_sim::Cpu,
    list: &[usize],
    vals: u64,
    buf: u64,
    ch: &SendChannel,
) {
    let proc = cpu.id();
    for (k, &idx) in list.iter().enumerate() {
        let src = vals + (idx * 8) as u64;
        m.touch_read(cpu, src, 8);
        let v = m.peek_f64(proc, src);
        m.poke_f64(proc, buf + (k * 8) as u64, v);
    }
    m.touch_write(cpu, buf, (list.len() * 8) as u64);
    cpu.compute(4 * list.len() as u64);
    m.channel_write(cpu, ch, buf, (list.len() * 8) as u32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_sim::{Counter, Kind, Scope};

    #[test]
    fn matches_sequential_reference_bitwise() {
        let p = Em3dParams::small();
        let r = run(&p, MpConfig::default());
        assert!(r.validation.passed, "{}", r.validation.detail);
        // Same in-edge order as the reference: the error is exactly zero.
        assert!(
            r.validation.detail.contains("0.000e0"),
            "{}",
            r.validation.detail
        );
    }

    #[test]
    fn records_init_and_main_phases() {
        let p = Em3dParams::small();
        let r = run(&p, MpConfig::default());
        assert!(r.phase("init").is_some());
        assert!(r.phase("main").is_some());
        let init_clock = r.phase("init").unwrap().snapshot[0].0;
        let main_clock = r.phase("main").unwrap().snapshot[0].0;
        assert!(main_clock > init_clock);
    }

    #[test]
    fn communication_is_bulk_channel_messages() {
        let p = Em3dParams::small();
        let r = run(&p, MpConfig::default());
        let writes = r.report.avg_counter(Counter::ChannelWrites);
        // Per iteration: at most 2 sides x 2 neighbors, plus init traffic.
        assert!(writes > 0.0);
        let data = r.report.total_counter(Counter::BytesData);
        let ctrl = r.report.total_counter(Counter::BytesControl);
        assert!(
            data > ctrl,
            "bulk transfers are data-dominated: {data} vs {ctrl}"
        );
        // No locks exist in the message-passing version.
        assert_eq!(r.report.total_counter(Counter::LockAcquires), 0);
        assert_eq!(r.report.avg_matrix().by_kind(Kind::LockWait), 0);
    }

    #[test]
    fn span_one_limits_channel_partners() {
        let p = Em3dParams {
            e_per_proc: 100,
            h_per_proc: 100,
            procs: 8,
            span: 1,
            ..Em3dParams::small()
        };
        let r = run(&p, MpConfig::default());
        // Each processor talks only to its 2 neighbors: per iteration at
        // most 4 data channel-writes (2 sides x 2 neighbors).
        let per_iter = (r.report.avg_counter(Counter::ChannelWrites) - 3.0/* init edge-info + priming, roughly */)
            / p.iters as f64;
        assert!(per_iter <= 5.0, "channel writes per iteration: {per_iter}");
    }

    #[test]
    fn lib_time_is_visible_but_moderate() {
        let p = Em3dParams::small();
        let r = run(&p, MpConfig::default());
        let avg = r.report.avg_matrix();
        let lib = avg.by_scope(Scope::Lib);
        assert!(lib > 0, "library time must be charged");
    }
}
