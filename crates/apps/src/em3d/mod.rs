//! EM3D: electromagnetic wave propagation on a bipartite graph
//! (Section 5.3).
//!
//! The problem is a computation over a bipartite graph with directed
//! edges from E nodes (electric field) to H nodes (magnetic field) and
//! vice versa. Each step first computes new E values from the weighted sum
//! of in-neighbor H values, then new H values from the weighted sum of
//! in-neighbor E values. The graph is static; a user-specified percentage
//! of edges cross processor boundaries.
//!
//! * EM3D-MP shadows every remote source with a *ghost node* (one per
//!   remote edge, as the paper's variant of the Split-C code does) and
//!   updates all ghosts with one bulk channel message per neighboring
//!   processor per half-step — sender-initiated, bulk, and handshake-free.
//! * EM3D-SM reads remote values in place; the invalidation-based
//!   protocol turns every producer-consumer update into the 4-message
//!   pattern the paper dissects, and round-robin `gmalloc` makes even
//!   private streaming traffic remote (Tables 14–17 variants).

pub mod mp;
pub mod sm;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::Validation;

/// Workload and cost parameters for EM3D.
#[derive(Clone, Debug, PartialEq)]
pub struct Em3dParams {
    /// E nodes per processor (the paper runs 1000).
    pub e_per_proc: usize,
    /// H nodes per processor (the paper runs 1000).
    pub h_per_proc: usize,
    /// Out-degree of every node (the paper runs 10).
    pub degree: usize,
    /// Fraction of edges with a remote sink, in percent (the paper: 20).
    pub remote_pct: u32,
    /// Maximum processor distance of a remote edge (1 = nearest
    /// neighbors). The paper's per-processor message counts (Table 13:
    /// 200 channel writes over 50 iterations) imply each processor talks
    /// to its two neighbors only.
    pub span: usize,
    /// Iterations of the main loop (the paper runs 50).
    pub iters: usize,
    /// Number of processors (the paper runs 32).
    pub procs: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Cycles per edge in the update kernel (multiply-accumulate plus
    /// index arithmetic).
    pub edge_cost: u64,
    /// Cycles of per-node loop overhead in the update kernel.
    pub node_cost: u64,
    /// Consumer-side cache hint for the shared-memory version.
    pub hint: Em3dHint,
}

impl Default for Em3dParams {
    fn default() -> Self {
        Em3dParams {
            e_per_proc: 1000,
            h_per_proc: 1000,
            degree: 10,
            remote_pct: 20,
            span: 1,
            iters: 50,
            procs: 32,
            seed: 0xe3d_0001,
            edge_cost: 45,
            node_cost: 40,
            hint: Em3dHint::None,
        }
    }
}

impl Em3dParams {
    /// A scaled-down workload for unit tests.
    pub fn small() -> Self {
        Em3dParams {
            e_per_proc: 40,
            h_per_proc: 40,
            degree: 4,
            remote_pct: 25,
            iters: 4,
            procs: 4,
            ..Self::default()
        }
    }
}

/// Consumer-side cache hint used by the shared-memory version (the
/// Section 5.3.4 remedies).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Em3dHint {
    /// Plain invalidation-protocol sharing (the paper's measured runs).
    #[default]
    None,
    /// Consumers flush remote values after each half-step, turning the
    /// producers' 2-message invalidations into local replacements.
    Flush,
    /// Consumers issue non-binding prefetches for the remote values at
    /// the start of each half-step (cooperative prefetch).
    Prefetch,
}

/// Which side of the bipartite graph a node is on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Electric-field node.
    E,
    /// Magnetic-field node.
    H,
}

impl Side {
    /// The opposite side (edges always cross sides).
    pub fn other(self) -> Side {
        match self {
            Side::E => Side::H,
            Side::H => Side::E,
        }
    }
}

/// One directed edge of the generated graph: from a source node (on
/// `from_side` of processor `src_proc`) to a sink on the other side.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Which side the source is on.
    pub from_side: Side,
    /// Source processor.
    pub src_proc: usize,
    /// Source node index within its side and processor.
    pub src_idx: usize,
    /// Sink processor.
    pub dst_proc: usize,
    /// Sink node index within the other side on the sink processor.
    pub dst_idx: usize,
}

/// The full generated workload graph, identical for both program versions.
#[derive(Clone, Debug)]
pub struct Em3dGraph {
    /// All edges, grouped by source processor, in generation order.
    pub edges: Vec<Edge>,
    /// Edge weights, aligned with `edges`.
    pub weights: Vec<f64>,
    /// Initial E values, indexed `[proc][idx]`.
    pub e0: Vec<Vec<f64>>,
    /// Initial H values, indexed `[proc][idx]`.
    pub h0: Vec<Vec<f64>>,
}

/// Generates the deterministic workload graph for `p`.
pub fn gen_graph(p: &Em3dParams) -> Em3dGraph {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    for src_proc in 0..p.procs {
        for (side, count, other_count) in [
            (Side::E, p.e_per_proc, p.h_per_proc),
            (Side::H, p.h_per_proc, p.e_per_proc),
        ] {
            for src_idx in 0..count {
                for _ in 0..p.degree {
                    let remote = p.procs > 1 && rng.gen_range(0..100) < p.remote_pct;
                    let dst_proc = if remote {
                        let span = p.span.clamp(1, p.procs - 1);
                        let mut d = rng.gen_range(0..2 * span) as i64 - span as i64;
                        if d >= 0 {
                            d += 1;
                        }
                        (src_proc as i64 + d).rem_euclid(p.procs as i64) as usize
                    } else {
                        src_proc
                    };
                    let dst_idx = rng.gen_range(0..other_count);
                    edges.push(Edge {
                        from_side: side,
                        src_proc,
                        src_idx,
                        dst_proc,
                        dst_idx,
                    });
                    weights.push(rng.gen_range(0.01..0.99) / (p.degree as f64));
                }
            }
        }
    }
    let mut vals = |count: usize| -> Vec<Vec<f64>> {
        (0..p.procs)
            .map(|_| (0..count).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    };
    let e0 = vals(p.e_per_proc);
    let h0 = vals(p.h_per_proc);
    Em3dGraph {
        edges,
        weights,
        e0,
        h0,
    }
}

/// In-edge lists per (proc, sink idx): `(src_proc, src_idx, weight)`, in
/// deterministic edge order. Returns `(in_e, in_h)` where `in_e` holds the
/// in-edges of E sinks (sources are H nodes) and vice versa.
pub(crate) type InEdges = Vec<Vec<Vec<(usize, usize, f64)>>>;

pub(crate) fn build_in_edges(p: &Em3dParams, g: &Em3dGraph) -> (InEdges, InEdges) {
    let mut in_e: InEdges = vec![vec![Vec::new(); p.e_per_proc]; p.procs];
    let mut in_h: InEdges = vec![vec![Vec::new(); p.h_per_proc]; p.procs];
    for (edge, &w) in g.edges.iter().zip(&g.weights) {
        match edge.from_side {
            // E sources feed H sinks; H sources feed E sinks.
            Side::E => in_h[edge.dst_proc][edge.dst_idx].push((edge.src_proc, edge.src_idx, w)),
            Side::H => in_e[edge.dst_proc][edge.dst_idx].push((edge.src_proc, edge.src_idx, w)),
        }
    }
    (in_e, in_h)
}

/// Host-side sequential reference: runs the same computation and returns
/// the final (E, H) values for every processor's nodes.
pub fn reference(p: &Em3dParams, g: &Em3dGraph) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut e = g.e0.clone();
    let mut h = g.h0.clone();
    let (in_e, in_h) = build_in_edges(p, g);
    for _ in 0..p.iters {
        let mut e_new = e.clone();
        for proc in 0..p.procs {
            for i in 0..p.e_per_proc {
                let mut acc = 0.0;
                for &(sp, si, w) in &in_e[proc][i] {
                    acc += w * h[sp][si];
                }
                e_new[proc][i] = e[proc][i] - acc;
            }
        }
        e = e_new;
        let mut h_new = h.clone();
        for proc in 0..p.procs {
            for i in 0..p.h_per_proc {
                let mut acc = 0.0;
                for &(sp, si, w) in &in_h[proc][i] {
                    acc += w * e[sp][si];
                }
                h_new[proc][i] = h[proc][i] - acc;
            }
        }
        h = h_new;
    }
    (e, h)
}

/// Compares simulated final values against the reference.
pub(crate) fn validate_values(
    reference: &(Vec<Vec<f64>>, Vec<Vec<f64>>),
    got_e: &[Vec<f64>],
    got_h: &[Vec<f64>],
) -> Validation {
    let mut err = 0.0f64;
    for (a, b) in reference.0.iter().zip(got_e) {
        for (x, y) in a.iter().zip(b) {
            err = err.max((x - y).abs());
        }
    }
    for (a, b) in reference.1.iter().zip(got_h) {
        for (x, y) in a.iter().zip(b) {
            err = err.max((x - y).abs());
        }
    }
    Validation::from_error("max |value - reference|", err, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_generation_is_deterministic() {
        let p = Em3dParams::small();
        let a = gen_graph(&p);
        let b = gen_graph(&p);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn edges_respect_requested_remote_fraction() {
        let p = Em3dParams {
            e_per_proc: 400,
            h_per_proc: 400,
            ..Em3dParams::small()
        };
        let g = gen_graph(&p);
        let remote = g.edges.iter().filter(|e| e.src_proc != e.dst_proc).count();
        let frac = remote as f64 / g.edges.len() as f64;
        assert!((frac - 0.25).abs() < 0.03, "remote fraction {frac}");
    }

    #[test]
    fn edge_count_matches_degree() {
        let p = Em3dParams::small();
        let g = gen_graph(&p);
        assert_eq!(
            g.edges.len(),
            p.procs * (p.e_per_proc + p.h_per_proc) * p.degree
        );
    }

    #[test]
    fn reference_values_stay_finite_and_move() {
        let p = Em3dParams::small();
        let g = gen_graph(&p);
        let (e, h) = reference(&p, &g);
        for v in e.iter().chain(&h).flatten() {
            assert!(v.is_finite());
        }
        assert_ne!(e, g.e0, "values must change over iterations");
    }

    #[test]
    fn side_other_flips() {
        assert_eq!(Side::E.other(), Side::H);
        assert_eq!(Side::H.other(), Side::E);
    }
}
