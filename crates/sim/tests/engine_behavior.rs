//! Integration tests of the engine's scheduling guarantees.

use std::cell::RefCell;
use std::rc::Rc;

use wwt_sim::{Counter, Cpu, Engine, HwBarrier, Kind, ProcId, Scope, SimConfig};

#[test]
fn quantum_bounds_run_ahead_skew() {
    // With resync_if_ahead, a processor's observable actions never run
    // more than one quantum past global time.
    let mut e = Engine::new(2, SimConfig::default());
    let quantum = e.sim().config().quantum;
    let log: Rc<RefCell<Vec<(u64, u64)>>> = Rc::default();
    for p in e.proc_ids() {
        let cpu = e.cpu(p);
        let log = Rc::clone(&log);
        e.spawn(p, async move {
            for _ in 0..20 {
                cpu.compute(377);
                cpu.resync_if_ahead().await;
                log.borrow_mut().push((cpu.clock(), cpu.now()));
            }
        });
    }
    e.run();
    for &(clock, now) in log.borrow().iter() {
        assert!(clock <= now + quantum, "skew {clock} vs {now}");
    }
}

#[test]
#[should_panic(expected = "event budget exceeded")]
fn livelock_hits_the_event_budget() {
    let mut e = Engine::new(
        1,
        SimConfig {
            max_events: 50,
            ..SimConfig::default()
        },
    );
    let cpu = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        loop {
            cpu.compute(1);
            cpu.resync().await;
        }
    });
    e.run();
}

#[test]
fn nested_scopes_survive_awaits() {
    let mut e = Engine::new(2, SimConfig::default());
    let barrier = Rc::new(HwBarrier::new(2, 100));
    for p in e.proc_ids() {
        let cpu: Cpu = e.cpu(p);
        let barrier = Rc::clone(&barrier);
        e.spawn(p, async move {
            let _lib = cpu.scope(Scope::Lib);
            cpu.compute(10);
            {
                let _red = cpu.scope(Scope::Reduction);
                // The await suspends the task while both scopes are live.
                barrier.wait(&cpu, Kind::Wait).await;
                cpu.compute(3);
            }
            cpu.compute(5);
        });
    }
    let r = e.run();
    for p in 0..2 {
        let m = &r.proc(ProcId::new(p)).matrix;
        assert_eq!(m.get(Scope::Lib, Kind::Compute), 15);
        assert_eq!(m.get(Scope::Reduction, Kind::Compute), 3);
        assert!(m.get(Scope::Reduction, Kind::Wait) > 0);
    }
}

#[test]
fn snapshot_reflects_midpoint_state() {
    let mut e = Engine::new(1, SimConfig::default());
    let cpu = e.cpu(ProcId::new(0));
    let sim = Rc::clone(e.sim());
    let mid: Rc<RefCell<Option<u64>>> = Rc::default();
    let mid2 = Rc::clone(&mid);
    e.spawn(ProcId::new(0), async move {
        cpu.compute(100);
        cpu.count(Counter::PacketsSent, 1);
        *mid2.borrow_mut() = Some(sim.snapshot()[0].0);
        cpu.compute(900);
    });
    let r = e.run();
    assert_eq!(mid.borrow().unwrap(), 100);
    assert_eq!(r.proc(ProcId::new(0)).clock, 1000);
}

#[test]
fn call_after_never_schedules_into_the_past() {
    // A processor whose clock lags global time (it just sat at a barrier
    // another processor released much later) can still schedule callbacks.
    let mut e = Engine::new(2, SimConfig::default());
    let barrier = Rc::new(HwBarrier::new(2, 100));
    let fired: Rc<RefCell<Vec<u64>>> = Rc::default();
    for p in e.proc_ids() {
        let cpu = e.cpu(p);
        let barrier = Rc::clone(&barrier);
        let fired = Rc::clone(&fired);
        e.spawn(p, async move {
            cpu.compute(if p.index() == 0 { 10 } else { 10_000 });
            barrier.wait(&cpu, Kind::BarrierWait).await;
            let fired = Rc::clone(&fired);
            let now = cpu.now();
            cpu.call_after(5, move || fired.borrow_mut().push(now));
            cpu.resync().await;
        });
    }
    e.run();
    assert_eq!(fired.borrow().len(), 2);
}
