//! The simulation engine: global clock, event loop, and cooperative
//! executor for per-processor target tasks.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, RawWaker, RawWakerVTable, Waker};

use crate::account::{Counter, Counters, CycleMatrix, Scope};
use crate::cpu::Cpu;
use crate::event::{Action, EventQueue};
use crate::report::{ProcReport, SimReport};
use crate::time::{Cycles, ProcId};
use crate::trace::{Metric, TraceBuffer, TraceEvent, TraceSink, TraceWhat};

/// Engine-level configuration.
///
/// Machine-specific parameters (cache geometry, network latency, protocol
/// costs) live in the machine crates; this only controls the engine itself.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Maximum distance (in cycles) a processor may run ahead of global time
    /// before an access to *shared* state forces a re-synchronization.
    ///
    /// This mirrors the Wisconsin Wind Tunnel's quantum, which equals the
    /// 100-cycle minimum network latency: within that window no other
    /// processor's action can be observed, so local execution is safe.
    pub quantum: Cycles,
    /// Seed for all engine-level pseudo-randomness.
    pub seed: u64,
    /// Safety cap on processed events; exceeding it aborts the run.
    pub max_events: u64,
    /// When set, record a time-resolved profile: per processor, a
    /// [`CycleMatrix`] per bucket of this many cycles (the raw material
    /// for "where is time spent" timelines). `None` (the default) records
    /// nothing and costs nothing.
    pub profile_bucket: Option<Cycles>,
    /// When `true`, install the default in-memory trace sink: scope spans,
    /// machine events, and latency histograms are collected and returned
    /// in [`SimReport::trace`]. `false` (the default) records nothing; the
    /// flag is cached in every [`Cpu`] handle so disabled tracing costs a
    /// single branch and no allocation on the hot paths.
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum: 100,
            seed: 0x5eed_0001,
            max_events: u64::MAX,
            profile_bucket: None,
            trace: false,
        }
    }
}

pub(crate) struct Proc {
    pub(crate) clock: Cycles,
    pub(crate) matrix: CycleMatrix,
    pub(crate) counters: Counters,
    pub(crate) scopes: Vec<Scope>,
    pub(crate) done: bool,
    pub(crate) profile: Vec<CycleMatrix>,
}

impl Proc {
    fn new() -> Self {
        Proc {
            clock: 0,
            matrix: CycleMatrix::new(),
            counters: Counters::new(),
            scopes: Vec::new(),
            done: false,
            profile: Vec::new(),
        }
    }
}

pub(crate) struct Inner {
    pub(crate) now: Cycles,
    pub(crate) queue: EventQueue,
    pub(crate) procs: Vec<Proc>,
    pub(crate) config: SimConfig,
    pub(crate) events_processed: u64,
    pub(crate) trace: Option<Box<dyn TraceSink>>,
}

/// Shared simulator state, used through an `Rc<Sim>` by [`Cpu`] handles,
/// machine models, and scheduled events.
pub struct Sim {
    pub(crate) inner: RefCell<Inner>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("pending_events", &inner.queue.len())
            .field("procs", &inner.procs.len())
            .finish()
    }
}

impl Sim {
    fn new(nprocs: usize, config: SimConfig) -> Rc<Self> {
        Rc::new(Sim {
            inner: RefCell::new(Inner {
                now: 0,
                queue: EventQueue::new(),
                procs: (0..nprocs).map(|_| Proc::new()).collect(),
                config,
                events_processed: 0,
                trace: config
                    .trace
                    .then(|| Box::new(TraceBuffer::new()) as Box<dyn TraceSink>),
            }),
        })
    }

    /// Current global simulation time (the timestamp of the event being
    /// processed).
    pub fn now(&self) -> Cycles {
        self.inner.borrow().now
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.inner.borrow().procs.len()
    }

    /// Engine configuration.
    pub fn config(&self) -> SimConfig {
        self.inner.borrow().config
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.borrow().events_processed
    }

    /// Schedules a machine-model callback at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current global time):
    /// causality would be violated.
    pub fn call_at(&self, at: Cycles, f: impl FnOnce() + 'static) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            at >= inner.now,
            "event scheduled in the past: at={at} now={}",
            inner.now
        );
        inner.queue.push(at, Action::Call(Box::new(f)));
    }

    /// Schedules the task of processor `p` to be re-polled at time `at`.
    pub fn wake_at(&self, p: ProcId, at: Cycles) {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        inner.queue.push(at, Action::Resume(p));
    }

    /// Returns the local clock of processor `p`.
    pub fn proc_clock(&self, p: ProcId) -> Cycles {
        self.inner.borrow().procs[p.index()].clock
    }

    /// Snapshots every processor's (clock, cycle matrix, counters).
    ///
    /// Applications use this at phase boundaries (for example, between
    /// initialization and the main loop, as the paper's EM3D tables
    /// require) so the harness can break measurements down per phase by
    /// subtraction.
    pub fn snapshot(&self) -> Vec<(Cycles, CycleMatrix, Counters)> {
        self.inner
            .borrow()
            .procs
            .iter()
            .map(|p| (p.clock, p.matrix.clone(), p.counters.clone()))
            .collect()
    }

    /// Adds `n` to a counter of processor `p`.
    ///
    /// Machine models use this to attribute protocol events (for example,
    /// coherence traffic) to a processor from inside a scheduled callback,
    /// where no [`crate::Cpu`] handle is available.
    pub fn count(&self, p: ProcId, counter: Counter, n: u64) {
        self.with_proc(p, |pr| pr.counters.add(counter, n));
    }

    pub(crate) fn with_proc<R>(&self, p: ProcId, f: impl FnOnce(&mut Proc) -> R) -> R {
        f(&mut self.inner.borrow_mut().procs[p.index()])
    }

    /// Whether a trace sink is installed (cheap, but callers on hot paths
    /// should prefer the `bool` cached in [`Cpu`]).
    pub fn tracing(&self) -> bool {
        self.inner.borrow().trace.is_some()
    }

    /// Emits a trace event on processor `p`'s track. No-op when tracing
    /// is disabled.
    pub fn trace(&self, p: ProcId, at: Cycles, what: TraceWhat) {
        if let Some(sink) = self.inner.borrow_mut().trace.as_mut() {
            sink.record(TraceEvent { proc: p, at, what });
        }
    }

    /// Records a latency sample. No-op when tracing is disabled.
    pub fn trace_sample(&self, metric: Metric, value: Cycles) {
        if let Some(sink) = self.inner.borrow_mut().trace.as_mut() {
            sink.sample(metric, value);
        }
    }
}

type Task = Pin<Box<dyn Future<Output = ()>>>;

/// The simulation engine: owns the per-processor tasks and drives the event
/// loop to completion.
///
/// Typical use: create the engine, build a machine model around
/// [`Engine::sim`], spawn one task per processor with [`Engine::spawn`], and
/// call [`Engine::run`].
pub struct Engine {
    sim: Rc<Sim>,
    tasks: Vec<Option<Task>>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("sim", &self.sim)
            .field("tasks", &self.tasks.iter().filter(|t| t.is_some()).count())
            .finish()
    }
}

impl Engine {
    /// Creates an engine for a machine with `nprocs` processors.
    pub fn new(nprocs: usize, config: SimConfig) -> Self {
        assert!(nprocs > 0, "machine must have at least one processor");
        Engine {
            sim: Sim::new(nprocs, config),
            tasks: (0..nprocs).map(|_| None).collect(),
        }
    }

    /// The shared simulator state handle.
    pub fn sim(&self) -> &Rc<Sim> {
        &self.sim
    }

    /// Iterator over all processor ids of this machine.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.tasks.len()).map(ProcId::new)
    }

    /// Creates a [`Cpu`] handle for processor `p` to move into its task.
    pub fn cpu(&self, p: ProcId) -> Cpu {
        Cpu::new(Rc::clone(&self.sim), p)
    }

    /// Replaces the trace sink (a streaming or filtering sink instead of
    /// the default in-memory [`TraceBuffer`]). Implies tracing is enabled
    /// regardless of [`SimConfig::trace`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sim.inner.borrow_mut().trace = Some(sink);
    }

    /// Installs the target task for processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if a task was already spawned for `p`.
    pub fn spawn(&mut self, p: ProcId, fut: impl Future<Output = ()> + 'static) {
        let slot = &mut self.tasks[p.index()];
        assert!(slot.is_none(), "task already spawned for {p}");
        *slot = Some(Box::pin(fut));
    }

    /// Runs the simulation to completion and returns the measurement report.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (the event queue drains while some processor task
    /// is still blocked) or when `max_events` is exceeded.
    pub fn run(mut self) -> SimReport {
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);

        // Kick off every spawned task at time zero.
        for (i, t) in self.tasks.iter().enumerate() {
            if t.is_some() {
                self.sim.wake_at(ProcId::new(i), 0);
            }
        }

        loop {
            let event = {
                let mut inner = self.sim.inner.borrow_mut();
                match inner.queue.pop() {
                    Some(e) => {
                        inner.now = e.time;
                        inner.events_processed += 1;
                        if inner.events_processed > inner.config.max_events {
                            panic!(
                                "event budget exceeded ({} events): livelock?",
                                inner.config.max_events
                            );
                        }
                        e
                    }
                    None => break,
                }
            };

            match event.action {
                Action::Resume(p) => {
                    let i = p.index();
                    let finished = match self.tasks[i].as_mut() {
                        Some(task) => task.as_mut().poll(&mut cx).is_ready(),
                        None => false,
                    };
                    if finished {
                        self.tasks[i] = None;
                        self.sim.with_proc(p, |proc| proc.done = true);
                    }
                }
                Action::Call(f) => f(),
            }
        }

        let stuck: Vec<usize> = self
            .tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.is_some().then_some(i))
            .collect();
        assert!(
            stuck.is_empty(),
            "deadlock: event queue empty but processors {stuck:?} are still blocked"
        );

        let mut inner = self.sim.inner.borrow_mut();
        let trace = inner.trace.take().and_then(|sink| sink.finish());
        SimReport::new(
            inner
                .procs
                .iter()
                .enumerate()
                .map(|(i, p)| ProcReport {
                    id: ProcId::new(i),
                    clock: p.clock,
                    matrix: p.matrix.clone(),
                    counters: p.counters.clone(),
                    profile: p.profile.clone(),
                })
                .collect(),
            inner.events_processed,
            trace,
        )
    }
}

fn noop_waker() -> Waker {
    const VTABLE: RawWakerVTable = RawWakerVTable::new(
        |_| RawWaker::new(std::ptr::null(), &VTABLE),
        |_| {},
        |_| {},
        |_| {},
    );
    // SAFETY: the vtable functions are all no-ops over a null pointer, which
    // trivially satisfies the RawWaker contract.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Kind;

    #[test]
    fn empty_task_finishes_at_time_zero() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let _ = cpu;
        });
        let r = e.run();
        assert_eq!(r.proc(ProcId::new(0)).clock, 0);
    }

    #[test]
    fn compute_advances_local_clock_only() {
        let mut e = Engine::new(2, SimConfig::default());
        let c0 = e.cpu(ProcId::new(0));
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(0), async move { c0.compute(500) });
        e.spawn(ProcId::new(1), async move { c1.compute(7) });
        let r = e.run();
        assert_eq!(r.proc(ProcId::new(0)).clock, 500);
        assert_eq!(r.proc(ProcId::new(1)).clock, 7);
    }

    #[test]
    fn resync_orders_interactions_globally() {
        // Two processors log interaction times through resync; the log must
        // be globally time-ordered.
        use std::cell::RefCell;
        use std::rc::Rc;
        let log: Rc<RefCell<Vec<(usize, Cycles)>>> = Rc::default();
        let mut e = Engine::new(2, SimConfig::default());
        for (i, delays) in [(0usize, [300u64, 300]), (1usize, [250, 500])] {
            let cpu = e.cpu(ProcId::new(i));
            let log = Rc::clone(&log);
            e.spawn(ProcId::new(i), async move {
                for d in delays {
                    cpu.compute(d);
                    cpu.resync().await;
                    log.borrow_mut().push((i, cpu.clock()));
                }
            });
        }
        e.run();
        let log = log.borrow();
        assert_eq!(log.len(), 4);
        for w in log.windows(2) {
            assert!(w[0].1 <= w[1].1, "interactions out of order: {log:?}");
        }
    }

    #[test]
    fn call_at_runs_in_time_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        {
            let sim = Rc::clone(e.sim());
            let l1 = Rc::clone(&log);
            let l2 = Rc::clone(&log);
            sim.call_at(200, move || l1.borrow_mut().push(2));
            sim.call_at(100, move || l2.borrow_mut().push(1));
        }
        e.spawn(ProcId::new(0), async move { cpu.compute(1) });
        e.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        let cell = crate::wait::WaitCell::new();
        e.spawn(ProcId::new(0), async move {
            // Nobody ever completes this cell.
            cell.wait(&cpu, Kind::Wait).await;
        });
        e.run();
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_events_are_rejected() {
        let e = Engine::new(1, SimConfig::default());
        let sim = Rc::clone(e.sim());
        sim.inner.borrow_mut().now = 50;
        sim.call_at(10, || {});
    }

    #[test]
    fn tracing_records_spans_and_instants() {
        use crate::trace::TraceWhat;
        let cfg = SimConfig {
            trace: true,
            ..SimConfig::default()
        };
        let mut e = Engine::new(1, cfg);
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            cpu.compute(10);
            {
                let _lib = cpu.scope(Scope::Lib);
                cpu.compute(5);
            }
        });
        let r = e.run();
        let trace = r.trace().expect("trace enabled");
        let kinds: Vec<_> = trace.events.iter().map(|ev| ev.what).collect();
        assert_eq!(
            kinds,
            vec![
                TraceWhat::SpanBegin(Scope::Lib),
                TraceWhat::SpanEnd(Scope::Lib)
            ]
        );
        assert_eq!(trace.events[0].at, 10);
        assert_eq!(trace.events[1].at, 15);
    }

    #[test]
    fn tracing_disabled_records_nothing_and_does_not_perturb() {
        let run = |trace: bool| {
            let cfg = SimConfig {
                trace,
                ..SimConfig::default()
            };
            let mut e = Engine::new(2, cfg);
            for p in e.proc_ids() {
                let cpu = e.cpu(p);
                e.spawn(p, async move {
                    for _ in 0..10 {
                        let _lib = cpu.scope(Scope::Lib);
                        cpu.compute(7);
                        cpu.resync().await;
                    }
                });
            }
            e.run()
        };
        let off = run(false);
        let on = run(true);
        assert!(off.trace().is_none());
        assert!(on.trace().is_some());
        // Tracing must be an observer: identical clocks and event counts.
        assert_eq!(off.elapsed(), on.elapsed());
        assert_eq!(off.events_processed(), on.events_processed());
    }

    #[test]
    fn custom_trace_sink_receives_events() {
        use crate::trace::{Metric, TraceData, TraceEvent, TraceSink};
        struct Counting(u64);
        impl TraceSink for Counting {
            fn record(&mut self, _ev: TraceEvent) {
                self.0 += 1;
            }
            fn sample(&mut self, _m: Metric, _v: Cycles) {}
            fn finish(self: Box<Self>) -> Option<TraceData> {
                let mut d = TraceData::default();
                // Smuggle the count out through the metrics registry.
                d.metrics.record(Metric::MsgLatency, self.0);
                Some(d)
            }
        }
        let mut e = Engine::new(1, SimConfig::default());
        e.set_trace_sink(Box::new(Counting(0)));
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let _lib = cpu.scope(Scope::Lib);
            cpu.compute(1);
        });
        let r = e.run();
        let data = r.trace().unwrap();
        // Begin + end of the Lib span.
        assert_eq!(data.metrics.get(Metric::MsgLatency).sum(), 2);
    }

    #[test]
    fn report_counts_events() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            cpu.compute(10);
            cpu.resync().await;
            cpu.compute(10);
            cpu.resync().await;
        });
        let r = e.run();
        // 1 initial resume + 2 resync resumes.
        assert_eq!(r.events_processed(), 3);
    }
}
