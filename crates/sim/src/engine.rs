//! The simulation engine: global clock, event loop, and cooperative
//! executor for per-processor target tasks.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, RawWaker, RawWakerVTable, Waker};

use crate::account::{Counter, Counters, CycleMatrix, Kind, Scope};
use crate::callback::SmallCall;
use crate::cpu::Cpu;
use crate::error::{BlockedProc, SimError, StallReport, WaitTarget};
use crate::event::{Action, ShardedQueue};
use crate::fault::{FaultConfig, FaultLog, FaultPlan, PacketFate};
use crate::report::{ProcReport, SimReport};
use crate::time::{Cycles, ProcId};
use crate::trace::{Metric, TraceBuffer, TraceEvent, TraceSink, TraceWhat};

/// Engine-level configuration.
///
/// Machine-specific parameters (cache geometry, network latency, protocol
/// costs) live in the machine crates; this only controls the engine itself.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Maximum distance (in cycles) a processor may run ahead of global time
    /// before an access to *shared* state forces a re-synchronization.
    ///
    /// This mirrors the Wisconsin Wind Tunnel's quantum, which equals the
    /// 100-cycle minimum network latency: within that window no other
    /// processor's action can be observed, so local execution is safe.
    pub quantum: Cycles,
    /// Seed for all engine-level pseudo-randomness.
    pub seed: u64,
    /// Safety cap on processed events; exceeding it aborts the run.
    pub max_events: u64,
    /// When set, record a time-resolved profile: per processor, a
    /// [`CycleMatrix`] per bucket of this many cycles (the raw material
    /// for "where is time spent" timelines). `None` (the default) records
    /// nothing and costs nothing.
    pub profile_bucket: Option<Cycles>,
    /// When `true`, install the default in-memory trace sink: scope spans,
    /// machine events, and latency histograms are collected and returned
    /// in [`SimReport::trace`]. `false` (the default) records nothing; the
    /// flag is cached in every [`Cpu`] handle so disabled tracing costs a
    /// single branch and no allocation on the hot paths.
    pub trace: bool,
    /// Optional deterministic fault injection. `None` (the default) is the
    /// perfectly reliable network of the paper; `Some` installs a seeded
    /// [`FaultPlan`] that the machine models consult at packet-delivery
    /// time. Participates in the run-cache key through `Debug`.
    pub faults: Option<FaultConfig>,
    /// Progress watchdog: if no processor task is resumed for this many
    /// simulated cycles while machine events keep flowing, the run aborts
    /// with [`SimError::Livelock`]. `None` (the default) disables it.
    pub watchdog: Option<Cycles>,
    /// When `true`, record a [`PhaseMark`](crate::PhaseMark) — a cumulative
    /// per-kind cycle snapshot — on every processor each time it crosses a
    /// barrier or completes a collective. The marks segment the run into
    /// phases for the diff engine (`wwt-diff`). `false` (the default)
    /// records nothing; like tracing, the flag is cached in every [`Cpu`]
    /// handle, so disabled marking costs one branch per boundary.
    pub phase_marks: bool,
    /// Shard count for the quantum-synchronized scheduler: simulated
    /// processors are partitioned into this many contiguous shards, each
    /// with its own calendar event queue; cross-processor events are
    /// routed to the owning shard and merged back in deterministic
    /// `(time, seq)` order. Results are **byte-identical for any value**
    /// — the merge reproduces the single-queue pop order exactly — so
    /// this only selects the engine's internal organization (and, for
    /// `Send` workloads, the worker-thread count of
    /// [`crate::parallel::ParEngine`]). Clamped to the processor count;
    /// `1` (the default) is a single global queue.
    pub sim_threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum: 100,
            seed: 0x5eed_0001,
            max_events: u64::MAX,
            profile_bucket: None,
            trace: false,
            faults: None,
            watchdog: None,
            phase_marks: false,
            sim_threads: 1,
        }
    }
}

/// What a still-pending task is blocked on, recorded by
/// [`crate::WaitCell`] waits so stall diagnostics can name the reason.
#[derive(Copy, Clone, Debug)]
pub(crate) struct BlockInfo {
    pub(crate) kind: Kind,
    pub(crate) reason: &'static str,
    pub(crate) target: WaitTarget,
}

pub(crate) struct Proc {
    pub(crate) clock: Cycles,
    pub(crate) matrix: CycleMatrix,
    pub(crate) counters: Counters,
    pub(crate) scopes: Vec<Scope>,
    pub(crate) done: bool,
    pub(crate) profile: Vec<CycleMatrix>,
    pub(crate) blocked: Option<BlockInfo>,
    pub(crate) phase_log: Vec<crate::report::PhaseMark>,
}

impl Proc {
    fn new() -> Self {
        Proc {
            clock: 0,
            matrix: CycleMatrix::new(),
            counters: Counters::new(),
            scopes: Vec::new(),
            done: false,
            profile: Vec::new(),
            blocked: None,
            phase_log: Vec::new(),
        }
    }

    /// Charges `cycles` of `kind` to the innermost scope, maintaining the
    /// time-resolved profile and the local clock. This is the one charging
    /// path: [`Cpu::charge`] and [`Sim::charge_callback`] both land here,
    /// so span/matrix reconciliation holds no matter who charges.
    pub(crate) fn charge(&mut self, kind: Kind, cycles: Cycles, bucket: Option<Cycles>) {
        let scope = self.scopes.last().copied().unwrap_or(Scope::App);
        self.matrix.add(scope, kind, cycles);
        if let Some(b) = bucket {
            // Distribute the charge over the time buckets it spans.
            let mut t = self.clock;
            let end = self.clock + cycles;
            while t < end {
                let idx = (t / b) as usize;
                let bucket_end = (t / b + 1) * b;
                let span = bucket_end.min(end) - t;
                if self.profile.len() <= idx {
                    self.profile.resize(idx + 1, CycleMatrix::new());
                }
                self.profile[idx].add(scope, kind, span);
                t += span;
            }
        }
        self.clock += cycles;
    }
}

pub(crate) struct Inner {
    pub(crate) now: Cycles,
    pub(crate) queue: ShardedQueue,
    pub(crate) procs: Vec<Proc>,
    pub(crate) config: SimConfig,
    pub(crate) events_processed: u64,
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    pub(crate) faults: Option<Box<FaultPlan>>,
    /// Cached shard routing: `shard_of(p) = p * nshards / nprocs`.
    nshards: usize,
    nprocs: usize,
}

impl Inner {
    /// The shard owning processor `p` (contiguous blocks).
    fn shard_of(&self, p: ProcId) -> usize {
        p.index() * self.nshards / self.nprocs
    }
}

/// Shared simulator state, used through an `Rc<Sim>` by [`Cpu`] handles,
/// machine models, and scheduled events.
pub struct Sim {
    pub(crate) inner: RefCell<Inner>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("pending_events", &inner.queue.len())
            .field("procs", &inner.procs.len())
            .finish()
    }
}

impl Sim {
    fn new(nprocs: usize, config: SimConfig) -> Rc<Self> {
        let nshards = config.sim_threads.clamp(1, nprocs);
        Rc::new(Sim {
            inner: RefCell::new(Inner {
                now: 0,
                queue: ShardedQueue::new(nshards),
                procs: (0..nprocs).map(|_| Proc::new()).collect(),
                config,
                events_processed: 0,
                trace: config
                    .trace
                    .then(|| Box::new(TraceBuffer::new()) as Box<dyn TraceSink>),
                faults: config.faults.map(|cfg| Box::new(FaultPlan::new(cfg))),
                nshards,
                nprocs,
            }),
        })
    }

    /// Current global simulation time (the timestamp of the event being
    /// processed).
    pub fn now(&self) -> Cycles {
        self.inner.borrow().now
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.inner.borrow().procs.len()
    }

    /// Engine configuration.
    pub fn config(&self) -> SimConfig {
        self.inner.borrow().config
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.borrow().events_processed
    }

    /// Schedules a machine-model callback at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PastEvent`] if `at` is before the current
    /// global time: causality would be violated. Machine models that
    /// clamp `at` to the present first may safely `expect` the result.
    pub fn call_at(&self, at: Cycles, f: impl FnOnce() + 'static) -> Result<(), SimError> {
        let mut inner = self.inner.borrow_mut();
        if at < inner.now {
            return Err(SimError::PastEvent { at, now: inner.now });
        }
        inner.queue.push(at, Action::Call(SmallCall::new(f)));
        Ok(())
    }

    /// Schedules a machine-model callback at absolute time `at` on behalf
    /// of processor `p`: the event is routed to `p`'s shard of the
    /// quantum-synchronized scheduler. Machine models use this for every
    /// cross-processor interaction — a packet delivery, a directory
    /// message, a retransmit timer — naming the processor whose state the
    /// callback touches, which is how cross-shard sends flow through the
    /// shard boundary. Ordering (and therefore every simulation result)
    /// is identical to [`Sim::call_at`] regardless of shard count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PastEvent`] if `at` precedes the current
    /// global time, exactly like [`Sim::call_at`].
    pub fn call_at_for(
        &self,
        p: ProcId,
        at: Cycles,
        f: impl FnOnce() + 'static,
    ) -> Result<(), SimError> {
        let mut inner = self.inner.borrow_mut();
        if at < inner.now {
            return Err(SimError::PastEvent { at, now: inner.now });
        }
        let shard = inner.shard_of(p);
        inner
            .queue
            .push_to(shard, at, Action::Call(SmallCall::new(f)));
        Ok(())
    }

    /// Charges `cycles` of `kind` to processor `p` from a scheduled
    /// callback, where no [`Cpu`] handle exists. Identical accounting to
    /// [`Cpu::charge`]: innermost scope, time-resolved profile, clock.
    pub fn charge_callback(&self, p: ProcId, kind: Kind, cycles: Cycles) {
        if cycles == 0 {
            return;
        }
        let bucket = self.config().profile_bucket;
        self.with_proc(p, |pr| pr.charge(kind, cycles, bucket));
    }

    /// Asks the fault plan (if any) for the fate of a packet from `src`
    /// to `dest` injected now. Without a plan every packet is delivered
    /// untouched.
    pub fn fault_fate(&self, src: ProcId, dest: ProcId) -> PacketFate {
        let mut inner = self.inner.borrow_mut();
        let now = inner.now;
        match inner.faults.as_mut() {
            Some(plan) => plan.packet_fate(src.index(), dest.index(), now),
            None => PacketFate::Deliver { extra: 0 },
        }
    }

    /// Draws shared-miss jitter from the fault plan (zero without one or
    /// when the reorder probability is zero).
    pub fn fault_miss_jitter(&self) -> Cycles {
        self.inner
            .borrow_mut()
            .faults
            .as_mut()
            .map_or(0, |plan| plan.miss_jitter())
    }

    /// Snapshot of the injected-fault log, if fault injection is active.
    pub fn fault_log(&self) -> Option<FaultLog> {
        self.inner
            .borrow()
            .faults
            .as_ref()
            .map(|plan| plan.log().clone())
    }

    /// Schedules the task of processor `p` to be re-polled at time `at`,
    /// on `p`'s shard of the scheduler.
    pub fn wake_at(&self, p: ProcId, at: Cycles) {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        let shard = inner.shard_of(p);
        inner.queue.push_to(shard, at, Action::Resume(p));
    }

    /// Returns the local clock of processor `p`.
    pub fn proc_clock(&self, p: ProcId) -> Cycles {
        self.inner.borrow().procs[p.index()].clock
    }

    /// Returns `(local clock of p, global now)` under a single borrow —
    /// the resync fast path reads both on every shared access.
    pub(crate) fn clock_now(&self, p: ProcId) -> (Cycles, Cycles) {
        let inner = self.inner.borrow();
        (inner.procs[p.index()].clock, inner.now)
    }

    /// Snapshots every processor's (clock, cycle matrix, counters).
    ///
    /// Applications use this at phase boundaries (for example, between
    /// initialization and the main loop, as the paper's EM3D tables
    /// require) so the harness can break measurements down per phase by
    /// subtraction.
    pub fn snapshot(&self) -> Vec<(Cycles, CycleMatrix, Counters)> {
        self.inner
            .borrow()
            .procs
            .iter()
            .map(|p| (p.clock, p.matrix.clone(), p.counters.clone()))
            .collect()
    }

    /// Adds `n` to a counter of processor `p`.
    ///
    /// Machine models use this to attribute protocol events (for example,
    /// coherence traffic) to a processor from inside a scheduled callback,
    /// where no [`crate::Cpu`] handle is available.
    pub fn count(&self, p: ProcId, counter: Counter, n: u64) {
        self.with_proc(p, |pr| pr.counters.add(counter, n));
    }

    pub(crate) fn with_proc<R>(&self, p: ProcId, f: impl FnOnce(&mut Proc) -> R) -> R {
        f(&mut self.inner.borrow_mut().procs[p.index()])
    }

    /// Whether a trace sink is installed (cheap, but callers on hot paths
    /// should prefer the `bool` cached in [`Cpu`]).
    pub fn tracing(&self) -> bool {
        self.inner.borrow().trace.is_some()
    }

    /// Emits a trace event on processor `p`'s track. No-op when tracing
    /// is disabled.
    pub fn trace(&self, p: ProcId, at: Cycles, what: TraceWhat) {
        if let Some(sink) = self.inner.borrow_mut().trace.as_mut() {
            sink.record(TraceEvent { proc: p, at, what });
        }
    }

    /// Records a latency sample. No-op when tracing is disabled.
    pub fn trace_sample(&self, metric: Metric, value: Cycles) {
        if let Some(sink) = self.inner.borrow_mut().trace.as_mut() {
            sink.sample(metric, value);
        }
    }
}

type Task = Pin<Box<dyn Future<Output = ()>>>;

/// The simulation engine: owns the per-processor tasks and drives the event
/// loop to completion.
///
/// Typical use: create the engine, build a machine model around
/// [`Engine::sim`], spawn one task per processor with [`Engine::spawn`], and
/// call [`Engine::run`].
pub struct Engine {
    sim: Rc<Sim>,
    tasks: Vec<Option<Task>>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("sim", &self.sim)
            .field("tasks", &self.tasks.iter().filter(|t| t.is_some()).count())
            .finish()
    }
}

impl Engine {
    /// Creates an engine for a machine with `nprocs` processors.
    pub fn new(nprocs: usize, config: SimConfig) -> Self {
        assert!(nprocs > 0, "machine must have at least one processor");
        Engine {
            sim: Sim::new(nprocs, config),
            tasks: (0..nprocs).map(|_| None).collect(),
        }
    }

    /// The shared simulator state handle.
    pub fn sim(&self) -> &Rc<Sim> {
        &self.sim
    }

    /// Iterator over all processor ids of this machine.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.tasks.len()).map(ProcId::new)
    }

    /// Creates a [`Cpu`] handle for processor `p` to move into its task.
    pub fn cpu(&self, p: ProcId) -> Cpu {
        Cpu::new(Rc::clone(&self.sim), p)
    }

    /// Replaces the trace sink (a streaming or filtering sink instead of
    /// the default in-memory [`TraceBuffer`]). Implies tracing is enabled
    /// regardless of [`SimConfig::trace`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sim.inner.borrow_mut().trace = Some(sink);
    }

    /// Installs the target task for processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if a task was already spawned for `p`.
    pub fn spawn(&mut self, p: ProcId, fut: impl Future<Output = ()> + 'static) {
        let slot = &mut self.tasks[p.index()];
        assert!(slot.is_none(), "task already spawned for {p}");
        *slot = Some(Box::pin(fut));
    }

    /// Runs the simulation to completion and returns the measurement report.
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] diagnostic on deadlock, livelock, or
    /// an exceeded event budget. Use [`Engine::try_run`] to handle those
    /// conditions programmatically.
    pub fn run(self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] — the event queue drained while some
    ///   processor task was still blocked; the report names each blocked
    ///   processor, its wait reason, and the wait-for graph.
    /// * [`SimError::Livelock`] — [`SimConfig::watchdog`] is set and no
    ///   processor task was resumed for that many simulated cycles even
    ///   though machine events kept flowing.
    /// * [`SimError::EventBudget`] — [`SimConfig::max_events`] exceeded.
    pub fn try_run(mut self) -> Result<SimReport, SimError> {
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);

        // Kick off every spawned task at time zero.
        for (i, t) in self.tasks.iter().enumerate() {
            if t.is_some() {
                self.sim.wake_at(ProcId::new(i), 0);
            }
        }

        let watchdog = self.sim.config().watchdog;
        let mut last_resume: Cycles = 0;

        loop {
            let event = {
                let mut inner = self.sim.inner.borrow_mut();
                match inner.queue.pop() {
                    Some(e) => {
                        inner.now = e.time;
                        inner.events_processed += 1;
                        if inner.events_processed > inner.config.max_events {
                            let limit = inner.config.max_events;
                            drop(inner);
                            return Err(SimError::EventBudget {
                                limit,
                                report: self.stall_report(),
                            });
                        }
                        e
                    }
                    None => break,
                }
            };

            match event.action {
                Action::Resume(p) => {
                    last_resume = event.time;
                    let i = p.index();
                    let finished = match self.tasks[i].as_mut() {
                        Some(task) => task.as_mut().poll(&mut cx).is_ready(),
                        None => false,
                    };
                    if finished {
                        self.tasks[i] = None;
                        self.sim.with_proc(p, |proc| proc.done = true);
                    }
                }
                Action::Call(f) => {
                    // Machine events that never resume a task (for example
                    // a retransmit timer endlessly re-arming itself toward
                    // a dead receiver) are what the watchdog exists for.
                    if let Some(n) = watchdog {
                        if event.time.saturating_sub(last_resume) > n {
                            return Err(SimError::Livelock {
                                watchdog: n,
                                report: self.stall_report(),
                            });
                        }
                    }
                    f.invoke();
                }
            }
        }

        let any_stuck = self.tasks.iter().any(|t| t.is_some());
        if any_stuck {
            return Err(SimError::Deadlock(self.stall_report()));
        }

        let mut inner = self.sim.inner.borrow_mut();
        let trace = inner.trace.take().and_then(|sink| sink.finish());
        Ok(SimReport::new(
            inner
                .procs
                .iter()
                .enumerate()
                .map(|(i, p)| ProcReport {
                    id: ProcId::new(i),
                    clock: p.clock,
                    matrix: p.matrix.clone(),
                    counters: p.counters.clone(),
                    profile: p.profile.clone(),
                    phase_log: p.phase_log.clone(),
                })
                .collect(),
            inner.events_processed,
            trace,
        ))
    }

    /// Snapshots the blocked state of every unfinished task for a
    /// [`StallReport`]. Tasks that never registered a wait reason (a
    /// machine model blocking on an uninstrumented future) are reported
    /// as an unknown wait.
    fn stall_report(&self) -> StallReport {
        let inner = self.sim.inner.borrow();
        let blocked = self
            .tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                t.as_ref()?;
                let pr = &inner.procs[i];
                Some(match pr.blocked {
                    Some(b) => BlockedProc {
                        proc: ProcId::new(i),
                        clock: pr.clock,
                        kind: b.kind,
                        reason: b.reason,
                        target: b.target,
                    },
                    None => BlockedProc {
                        proc: ProcId::new(i),
                        clock: pr.clock,
                        kind: Kind::Wait,
                        reason: "unknown wait",
                        target: WaitTarget::Any,
                    },
                })
            })
            .collect();
        StallReport {
            now: inner.now,
            events_processed: inner.events_processed,
            nprocs: inner.procs.len(),
            blocked,
            obs: wwt_obs::failure_snapshots(),
        }
    }
}

fn noop_waker() -> Waker {
    const VTABLE: RawWakerVTable = RawWakerVTable::new(
        |_| RawWaker::new(std::ptr::null(), &VTABLE),
        |_| {},
        |_| {},
        |_| {},
    );
    // SAFETY: the vtable functions are all no-ops over a null pointer, which
    // trivially satisfies the RawWaker contract.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Kind;

    #[test]
    fn empty_task_finishes_at_time_zero() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let _ = cpu;
        });
        let r = e.run();
        assert_eq!(r.proc(ProcId::new(0)).clock, 0);
    }

    #[test]
    fn compute_advances_local_clock_only() {
        let mut e = Engine::new(2, SimConfig::default());
        let c0 = e.cpu(ProcId::new(0));
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(0), async move { c0.compute(500) });
        e.spawn(ProcId::new(1), async move { c1.compute(7) });
        let r = e.run();
        assert_eq!(r.proc(ProcId::new(0)).clock, 500);
        assert_eq!(r.proc(ProcId::new(1)).clock, 7);
    }

    #[test]
    fn resync_orders_interactions_globally() {
        // Two processors log interaction times through resync; the log must
        // be globally time-ordered.
        use std::cell::RefCell;
        use std::rc::Rc;
        let log: Rc<RefCell<Vec<(usize, Cycles)>>> = Rc::default();
        let mut e = Engine::new(2, SimConfig::default());
        for (i, delays) in [(0usize, [300u64, 300]), (1usize, [250, 500])] {
            let cpu = e.cpu(ProcId::new(i));
            let log = Rc::clone(&log);
            e.spawn(ProcId::new(i), async move {
                for d in delays {
                    cpu.compute(d);
                    cpu.resync().await;
                    log.borrow_mut().push((i, cpu.clock()));
                }
            });
        }
        e.run();
        let log = log.borrow();
        assert_eq!(log.len(), 4);
        for w in log.windows(2) {
            assert!(w[0].1 <= w[1].1, "interactions out of order: {log:?}");
        }
    }

    #[test]
    fn call_at_runs_in_time_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        {
            let sim = Rc::clone(e.sim());
            let l1 = Rc::clone(&log);
            let l2 = Rc::clone(&log);
            sim.call_at(200, move || l1.borrow_mut().push(2)).unwrap();
            sim.call_at(100, move || l2.borrow_mut().push(1)).unwrap();
        }
        e.spawn(ProcId::new(0), async move { cpu.compute(1) });
        e.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn deadlock_returns_structured_error() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        let cell = crate::wait::WaitCell::new();
        e.spawn(ProcId::new(0), async move {
            // Nobody ever completes this cell.
            cell.wait(&cpu, Kind::Wait).await;
        });
        let err = e.try_run().expect_err("must deadlock");
        let SimError::Deadlock(report) = &err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(report.blocked.len(), 1);
        assert_eq!(report.blocked[0].proc, ProcId::new(0));
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn run_still_panics_on_deadlock() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        let cell = crate::wait::WaitCell::new();
        e.spawn(ProcId::new(0), async move {
            cell.wait(&cpu, Kind::Wait).await;
        });
        e.run();
    }

    #[test]
    fn past_events_are_rejected() {
        let e = Engine::new(1, SimConfig::default());
        let sim = Rc::clone(e.sim());
        sim.inner.borrow_mut().now = 50;
        let err = sim.call_at(10, || {}).expect_err("past event must fail");
        assert_eq!(err, SimError::PastEvent { at: 10, now: 50 });
        assert!(err.to_string().contains("scheduled in the past"));
    }

    #[test]
    fn watchdog_catches_livelock() {
        // A self-rearming machine event that never resumes any task.
        let cfg = SimConfig {
            watchdog: Some(1_000),
            ..SimConfig::default()
        };
        let mut e = Engine::new(1, cfg);
        let cpu = e.cpu(ProcId::new(0));
        let cell = crate::wait::WaitCell::new();
        fn rearm(sim: &Rc<Sim>, at: Cycles) {
            let sim2 = Rc::clone(sim);
            sim.call_at(at, move || rearm(&sim2, at + 100))
                .expect("scheduled in the future");
        }
        rearm(e.sim(), 100);
        e.spawn(ProcId::new(0), async move {
            cell.wait(&cpu, Kind::Wait).await;
        });
        let err = e.try_run().expect_err("watchdog must fire");
        let SimError::Livelock { watchdog, report } = &err else {
            panic!("expected livelock, got {err:?}");
        };
        assert_eq!(*watchdog, 1_000);
        assert_eq!(report.blocked.len(), 1);
        assert!(err.to_string().contains("livelock"));
    }

    #[test]
    fn event_budget_returns_error() {
        let cfg = SimConfig {
            max_events: 4,
            ..SimConfig::default()
        };
        let mut e = Engine::new(1, cfg);
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            for _ in 0..10 {
                cpu.compute(10);
                cpu.resync().await;
            }
        });
        let err = e.try_run().expect_err("budget must trip");
        assert!(matches!(err, SimError::EventBudget { limit: 4, .. }));
        assert!(err.to_string().contains("event budget exceeded"));
    }

    #[test]
    fn tracing_records_spans_and_instants() {
        use crate::trace::TraceWhat;
        let cfg = SimConfig {
            trace: true,
            ..SimConfig::default()
        };
        let mut e = Engine::new(1, cfg);
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            cpu.compute(10);
            {
                let _lib = cpu.scope(Scope::Lib);
                cpu.compute(5);
            }
        });
        let r = e.run();
        let trace = r.trace().expect("trace enabled");
        let kinds: Vec<_> = trace.events.iter().map(|ev| ev.what).collect();
        assert_eq!(
            kinds,
            vec![
                TraceWhat::SpanBegin(Scope::Lib),
                TraceWhat::SpanEnd(Scope::Lib)
            ]
        );
        assert_eq!(trace.events[0].at, 10);
        assert_eq!(trace.events[1].at, 15);
    }

    #[test]
    fn tracing_disabled_records_nothing_and_does_not_perturb() {
        let run = |trace: bool| {
            let cfg = SimConfig {
                trace,
                ..SimConfig::default()
            };
            let mut e = Engine::new(2, cfg);
            for p in e.proc_ids() {
                let cpu = e.cpu(p);
                e.spawn(p, async move {
                    for _ in 0..10 {
                        let _lib = cpu.scope(Scope::Lib);
                        cpu.compute(7);
                        cpu.resync().await;
                    }
                });
            }
            e.run()
        };
        let off = run(false);
        let on = run(true);
        assert!(off.trace().is_none());
        assert!(on.trace().is_some());
        // Tracing must be an observer: identical clocks and event counts.
        assert_eq!(off.elapsed(), on.elapsed());
        assert_eq!(off.events_processed(), on.events_processed());
    }

    #[test]
    fn custom_trace_sink_receives_events() {
        use crate::trace::{Metric, TraceData, TraceEvent, TraceSink};
        struct Counting(u64);
        impl TraceSink for Counting {
            fn record(&mut self, _ev: TraceEvent) {
                self.0 += 1;
            }
            fn sample(&mut self, _m: Metric, _v: Cycles) {}
            fn finish(self: Box<Self>) -> Option<TraceData> {
                let mut d = TraceData::default();
                // Smuggle the count out through the metrics registry.
                d.metrics.record(Metric::MsgLatency, self.0);
                Some(d)
            }
        }
        let mut e = Engine::new(1, SimConfig::default());
        e.set_trace_sink(Box::new(Counting(0)));
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let _lib = cpu.scope(Scope::Lib);
            cpu.compute(1);
        });
        let r = e.run();
        let data = r.trace().unwrap();
        // Begin + end of the Lib span.
        assert_eq!(data.metrics.get(Metric::MsgLatency).sum(), 2);
    }

    #[test]
    fn report_counts_events() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            cpu.compute(10);
            cpu.resync().await;
            cpu.compute(10);
            cpu.resync().await;
        });
        let r = e.run();
        // 1 initial resume + 2 resync resumes.
        assert_eq!(r.events_processed(), 3);
    }
}
