//! The hardware barrier shared by both simulated machines.
//!
//! Both the message-passing and the shared-memory machine provide a
//! CM-5-style hardware barrier: all processors are released a fixed latency
//! (100 cycles in the paper, Table 1) after the *last* arrival.

use std::cell::RefCell;
use std::fmt;

use crate::account::{Counter, Kind};
use crate::cpu::Cpu;
use crate::time::Cycles;
use crate::trace::{Mark, Metric, TraceWhat};
use crate::wait::WaitCell;

struct Episode {
    arrived: usize,
    max_arrival: Cycles,
    waiters: Vec<WaitCell>,
}

impl Episode {
    fn new() -> Self {
        Episode {
            arrived: 0,
            max_arrival: 0,
            waiters: Vec::new(),
        }
    }
}

/// A hardware barrier over a fixed set of processors.
///
/// # Example
///
/// ```
/// use std::rc::Rc;
/// use wwt_sim::{Engine, HwBarrier, Kind, SimConfig};
///
/// let mut e = Engine::new(4, SimConfig::default());
/// let barrier = Rc::new(HwBarrier::new(4, 100));
/// for p in e.proc_ids() {
///     let cpu = e.cpu(p);
///     let barrier = Rc::clone(&barrier);
///     e.spawn(p, async move {
///         cpu.compute(10 * (p.index() as u64 + 1));
///         barrier.wait(&cpu, Kind::BarrierWait).await;
///         assert_eq!(cpu.clock(), 140); // last arrival (40) + 100
///     });
/// }
/// e.run();
/// ```
pub struct HwBarrier {
    n: usize,
    latency: Cycles,
    episode: RefCell<Episode>,
}

impl fmt::Debug for HwBarrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ep = self.episode.borrow();
        f.debug_struct("HwBarrier")
            .field("n", &self.n)
            .field("latency", &self.latency)
            .field("arrived", &ep.arrived)
            .finish()
    }
}

impl HwBarrier {
    /// Creates a barrier over `n` processors with the given release latency
    /// (cycles from the last arrival to the release).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, latency: Cycles) -> Self {
        assert!(n > 0, "barrier must cover at least one processor");
        HwBarrier {
            n,
            latency,
            episode: RefCell::new(Episode::new()),
        }
    }

    /// Number of participating processors.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Waits at the barrier, charging the stall to `kind`
    /// (conventionally [`Kind::BarrierWait`]).
    ///
    /// Before blocking, the caller is re-synchronized with global time so
    /// barrier episodes cannot interleave incorrectly.
    pub async fn wait(&self, cpu: &Cpu, kind: Kind) {
        cpu.resync().await;
        cpu.count(Counter::Barriers, 1);
        let arrival = cpu.clock();
        if cpu.tracing() {
            cpu.trace(TraceWhat::Instant(Mark::BarrierArrive));
        }
        let cell = {
            let mut ep = self.episode.borrow_mut();
            ep.arrived += 1;
            ep.max_arrival = ep.max_arrival.max(arrival);
            if ep.arrived == self.n {
                let release = ep.max_arrival + self.latency;
                let finished = std::mem::replace(&mut *ep, Episode::new());
                drop(ep);
                for w in finished.waiters {
                    w.complete(cpu.sim(), release);
                }
                cpu.wait_until(release, kind);
                self.trace_release(cpu, arrival);
                cpu.phase_mark();
                return;
            }
            let cell = WaitCell::new();
            ep.waiters.push(cell.clone());
            cell
        };
        cell.wait_labeled(cpu, kind, "barrier release", crate::WaitTarget::Barrier)
            .await;
        self.trace_release(cpu, arrival);
        cpu.phase_mark();
    }

    fn trace_release(&self, cpu: &Cpu, arrival: Cycles) {
        if cpu.tracing() {
            cpu.trace(TraceWhat::Instant(Mark::BarrierRelease));
            cpu.sim()
                .trace_sample(Metric::BarrierWait, cpu.clock() - arrival);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};
    use crate::time::ProcId;
    use std::rc::Rc;

    fn barrier_run(nprocs: usize, work: Vec<u64>, rounds: usize) -> crate::report::SimReport {
        let mut e = Engine::new(nprocs, SimConfig::default());
        let barrier = Rc::new(HwBarrier::new(nprocs, 100));
        for p in e.proc_ids() {
            let cpu = e.cpu(p);
            let barrier = Rc::clone(&barrier);
            let w = work[p.index()];
            e.spawn(p, async move {
                for _ in 0..rounds {
                    cpu.compute(w);
                    barrier.wait(&cpu, Kind::BarrierWait).await;
                }
            });
        }
        e.run()
    }

    #[test]
    fn all_released_at_last_arrival_plus_latency() {
        let r = barrier_run(3, vec![10, 20, 300], 1);
        for p in 0..3 {
            assert_eq!(r.proc(ProcId::new(p)).clock, 400);
        }
    }

    #[test]
    fn slowest_proc_charges_only_latency() {
        let r = barrier_run(2, vec![10, 500], 1);
        let fast = r.proc(ProcId::new(0));
        let slow = r.proc(ProcId::new(1));
        assert_eq!(fast.matrix.by_kind(Kind::BarrierWait), 590);
        assert_eq!(slow.matrix.by_kind(Kind::BarrierWait), 100);
    }

    #[test]
    fn barrier_is_reusable_across_rounds() {
        let rounds = 5;
        let r = barrier_run(4, vec![7, 11, 13, 17], rounds);
        // Every round releases at (last arrival + 100); rounds accumulate.
        let mut expect = 0;
        for _ in 0..rounds {
            expect = expect + 17 + 100;
        }
        for p in 0..4 {
            assert_eq!(r.proc(ProcId::new(p)).clock, expect);
            assert_eq!(r.proc(ProcId::new(p)).counters.get(Counter::Barriers), 5);
        }
    }

    #[test]
    fn single_party_barrier_costs_latency_only() {
        let r = barrier_run(1, vec![42], 1);
        assert_eq!(r.proc(ProcId::new(0)).clock, 142);
    }
}
