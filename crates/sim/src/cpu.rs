//! The per-processor handle that target programs use to charge costs and
//! interact with the event loop.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::account::{Counter, Kind, Scope};
use crate::engine::Sim;
use crate::fault::SlowWindow;
use crate::time::{Cycles, ProcId};
use crate::trace::TraceWhat;

/// Handle through which a target task observes and advances its simulated
/// processor.
///
/// A `Cpu` is cheap to clone and is the only way target code should touch
/// the simulator: machine models (caches, network interfaces, coherence
/// protocols) take a `&Cpu` and charge costs through it.
#[derive(Clone)]
pub struct Cpu {
    sim: Rc<Sim>,
    id: ProcId,
    // Cached from the (immutable) engine config: hot path avoidance.
    profile_bucket: Option<Cycles>,
    quantum: Cycles,
    tracing: bool,
    phase_marks: bool,
    // The fault plan's slow window, if it targets this processor.
    slow: Option<SlowWindow>,
}

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cpu")
            .field("id", &self.id)
            .field("clock", &self.clock())
            .finish()
    }
}

impl Cpu {
    pub(crate) fn new(sim: Rc<Sim>, id: ProcId) -> Self {
        let config = sim.config();
        let tracing = sim.tracing();
        let slow = config
            .faults
            .and_then(|f| f.slow)
            .filter(|w| w.proc == id.index());
        let phase_marks = config.phase_marks;
        Cpu {
            sim,
            id,
            profile_bucket: config.profile_bucket,
            quantum: config.quantum,
            tracing,
            phase_marks,
            slow,
        }
    }

    /// Whether tracing is enabled for this run (cached; the single branch
    /// machine models pay on hot paths when tracing is off).
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Emits a trace event on this processor's track, timestamped with the
    /// local clock. Callers should guard with [`Cpu::tracing`].
    pub fn trace(&self, what: TraceWhat) {
        self.sim.trace(self.id, self.clock(), what);
    }

    /// Records a phase-boundary snapshot for this processor: the local
    /// clock plus the cumulative per-kind cycle totals. Synchronization
    /// primitives (barriers, collectives) call this at their completion
    /// point; it is a no-op unless
    /// [`SimConfig::phase_marks`](crate::SimConfig) is set.
    pub fn phase_mark(&self) {
        if !self.phase_marks {
            return;
        }
        self.sim.with_proc(self.id, |p| {
            let mark = crate::report::PhaseMark {
                at: p.clock,
                by_kind: p.matrix.kind_totals(),
            };
            p.phase_log.push(mark);
        });
    }

    /// The processor this handle belongs to.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The shared simulator handle (for machine models that need to
    /// schedule events).
    pub fn sim(&self) -> &Rc<Sim> {
        &self.sim
    }

    /// This processor's local clock, in cycles.
    pub fn clock(&self) -> Cycles {
        self.sim.proc_clock(self.id)
    }

    /// Current global simulation time.
    pub fn now(&self) -> Cycles {
        self.sim.now()
    }

    /// Charges `cycles` of instruction execution (computation).
    ///
    /// If the fault plan puts this processor inside a slow window, the
    /// charge is multiplied by the window's factor — the processor gets
    /// the same work done in more simulated time.
    pub fn compute(&self, cycles: Cycles) {
        let cycles = match self.slow {
            Some(w) if w.contains(self.clock()) => cycles.saturating_mul(u64::from(w.factor)),
            _ => cycles,
        };
        self.charge(Kind::Compute, cycles);
    }

    /// Charges `cycles` of the given cost kind to the innermost attribution
    /// scope (the application scope when no scope is pushed).
    pub fn charge(&self, kind: Kind, cycles: Cycles) {
        if cycles == 0 {
            return;
        }
        let bucket = self.profile_bucket;
        self.sim
            .with_proc(self.id, |p| p.charge(kind, cycles, bucket));
    }

    /// Advances the local clock to `t` (if it is in the future), charging
    /// the stall to `kind`. Returns the cycles charged.
    pub fn wait_until(&self, t: Cycles, kind: Kind) -> Cycles {
        let clock = self.clock();
        let stall = t.saturating_sub(clock);
        self.charge(kind, stall);
        stall
    }

    /// Pushes an attribution scope; charges go to `scope` until the guard
    /// is dropped.
    ///
    /// # Example
    ///
    /// ```
    /// # use wwt_sim::{Engine, SimConfig, Scope, Kind};
    /// # let mut e = Engine::new(1, SimConfig::default());
    /// # let cpu = e.cpu(0.into());
    /// # e.spawn(0.into(), async move {
    /// let _lib = cpu.scope(Scope::Lib);
    /// cpu.compute(40); // charged to (Lib, Compute)
    /// # });
    /// # let r = e.run();
    /// # assert_eq!(r.proc(0.into()).matrix.get(Scope::Lib, Kind::Compute), 40);
    /// ```
    pub fn scope(&self, scope: Scope) -> ScopeGuard {
        if self.tracing {
            self.trace(TraceWhat::SpanBegin(scope));
        }
        self.sim.with_proc(self.id, |p| p.scopes.push(scope));
        ScopeGuard {
            cpu: self.clone(),
            scope,
        }
    }

    /// The innermost attribution scope currently active.
    pub fn current_scope(&self) -> Scope {
        self.sim
            .with_proc(self.id, |p| p.scopes.last().copied())
            .unwrap_or(Scope::App)
    }

    /// Increments an event counter by `n`.
    pub fn count(&self, counter: Counter, n: u64) {
        self.sim.with_proc(self.id, |p| p.counters.add(counter, n));
    }

    /// Schedules a machine-model callback `delay` cycles after this
    /// processor's local clock, on this processor's scheduler shard.
    pub fn call_after(&self, delay: Cycles, f: impl FnOnce() + 'static) {
        let at = self.clock() + delay;
        // The callback time is relative to the local clock, which may lag
        // global time if another processor drove time forward; clamp.
        self.sim
            .call_at_for(self.id, at.max(self.now()), f)
            .expect("clamped to the present");
    }

    /// Re-synchronizes with the event loop: yields until global time has
    /// caught up with this processor's local clock.
    ///
    /// Machine models call this before any operation whose effect other
    /// processors can observe, which is what guarantees that interactions
    /// are processed in global timestamp order.
    pub fn resync(&self) -> Resync<'_> {
        Resync {
            cpu: self,
            armed: false,
        }
    }

    /// Like [`Cpu::resync`] but only yields if the processor has run more
    /// than the engine quantum ahead of global time. Used on cache *hits*
    /// to shared data, where a bounded skew is acceptable (the WWT quantum
    /// argument).
    pub fn resync_if_ahead(&self) -> Resync<'_> {
        let (clock, now) = self.sim.clock_now(self.id);
        Resync {
            cpu: self,
            // Pretend we already yielded if we are within the quantum.
            armed: clock.saturating_sub(now) <= self.quantum,
        }
    }

    /// Clears this processor's blocked marker and advances the local clock
    /// to `t` (if in the future), charging the stall to `kind`. One borrow
    /// on the wait-completion hot path.
    pub(crate) fn unblock_until(&self, t: Cycles, kind: Kind) {
        let bucket = self.profile_bucket;
        self.sim.with_proc(self.id, |p| {
            p.blocked = None;
            let stall = t.saturating_sub(p.clock);
            if stall > 0 {
                p.charge(kind, stall, bucket);
            }
        });
    }
}

/// Guard returned by [`Cpu::scope`]; pops the scope when dropped.
#[must_use = "dropping the guard immediately pops the scope"]
pub struct ScopeGuard {
    cpu: Cpu,
    scope: Scope,
}

impl fmt::Debug for ScopeGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScopeGuard")
            .field("cpu", &self.cpu.id())
            .finish()
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        self.cpu.sim.with_proc(self.cpu.id, |p| {
            p.scopes.pop();
        });
        if self.cpu.tracing {
            self.cpu.trace(TraceWhat::SpanEnd(self.scope));
        }
    }
}

/// Future returned by [`Cpu::resync`]. Borrows the [`Cpu`]: resyncs
/// bracket every shared access, and an owned handle would cost an `Rc`
/// clone per access.
#[derive(Debug)]
#[must_use = "futures do nothing unless awaited"]
pub struct Resync<'a> {
    cpu: &'a Cpu,
    armed: bool,
}

impl Future for Resync<'_> {
    /// Resolves to the local clock at the moment the resync was satisfied
    /// (callers on the hit path use it to avoid a redundant clock read).
    type Output = Cycles;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Cycles> {
        let (clock, now) = self.cpu.sim.clock_now(self.cpu.id);
        if self.armed || clock <= now {
            return Poll::Ready(clock);
        }
        self.cpu.sim.wake_at(self.cpu.id, clock);
        self.armed = true;
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};
    use crate::report::SimReport;

    fn run_one(f: impl FnOnce(Cpu) -> Pin<Box<dyn Future<Output = ()>>>) -> SimReport {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), f(cpu));
        e.run()
    }

    #[test]
    fn charges_go_to_innermost_scope() {
        let r = run_one(|cpu| {
            Box::pin(async move {
                cpu.compute(1);
                {
                    let _lib = cpu.scope(Scope::Lib);
                    cpu.compute(2);
                    {
                        let _red = cpu.scope(Scope::Reduction);
                        cpu.charge(Kind::Wait, 4);
                    }
                    cpu.compute(8);
                }
                cpu.compute(16);
            })
        });
        let m = &r.proc(ProcId::new(0)).matrix;
        assert_eq!(m.get(Scope::App, Kind::Compute), 17);
        assert_eq!(m.get(Scope::Lib, Kind::Compute), 10);
        assert_eq!(m.get(Scope::Reduction, Kind::Wait), 4);
        assert_eq!(m.total(), 31);
    }

    #[test]
    fn wait_until_charges_only_forward() {
        let r = run_one(|cpu| {
            Box::pin(async move {
                cpu.compute(100);
                assert_eq!(cpu.wait_until(50, Kind::Wait), 0);
                assert_eq!(cpu.wait_until(130, Kind::BarrierWait), 30);
            })
        });
        let p = r.proc(ProcId::new(0));
        assert_eq!(p.clock, 130);
        assert_eq!(p.matrix.by_kind(Kind::BarrierWait), 30);
    }

    #[test]
    fn zero_charge_is_free() {
        let r = run_one(|cpu| {
            Box::pin(async move {
                cpu.charge(Kind::PrivMiss, 0);
            })
        });
        assert_eq!(r.proc(ProcId::new(0)).matrix.total(), 0);
    }

    #[test]
    fn resync_if_ahead_skips_within_quantum() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            cpu.compute(99); // within the 100-cycle quantum
            cpu.resync_if_ahead().await;
            cpu.compute(5000); // far ahead: must yield
            cpu.resync_if_ahead().await;
        });
        let r = e.run();
        // initial resume + exactly one quantum resync
        assert_eq!(r.events_processed(), 2);
    }

    #[test]
    fn counters_attach_to_processor() {
        let r = run_one(|cpu| {
            Box::pin(async move {
                cpu.count(Counter::PacketsSent, 3);
                cpu.count(Counter::BytesData, 48);
            })
        });
        let c = &r.proc(ProcId::new(0)).counters;
        assert_eq!(c.get(Counter::PacketsSent), 3);
        assert_eq!(c.get(Counter::BytesData), 48);
    }
}
