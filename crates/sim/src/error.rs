//! Structured simulation failures.
//!
//! The engine used to `panic!` on deadlock, livelock, and scheduling bugs.
//! Those conditions now surface as a typed [`SimError`] carrying a
//! [`StallReport`]: which processors are blocked, what each one is waiting
//! for, and the wait-for graph between them — enough to diagnose a hung
//! run without a debugger.

use std::fmt;

use crate::account::Kind;
use crate::time::{Cycles, ProcId};

/// What a blocked processor is waiting *on*.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WaitTarget {
    /// Any external event (a message arrival, an unspecified completion).
    Any,
    /// A specific processor (e.g. the home node of a coherence request).
    Proc(ProcId),
    /// The hardware barrier: every other processor must arrive.
    Barrier,
}

impl fmt::Display for WaitTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitTarget::Any => f.write_str("any event"),
            WaitTarget::Proc(p) => write!(f, "{p}"),
            WaitTarget::Barrier => f.write_str("barrier (all processors)"),
        }
    }
}

/// One blocked processor in a [`StallReport`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockedProc {
    /// The blocked processor.
    pub proc: ProcId,
    /// Its local clock when the run stalled.
    pub clock: Cycles,
    /// The cost kind its stall was being charged to.
    pub kind: Kind,
    /// Human-readable description of what it was doing
    /// (e.g. `"message receive"`, `"barrier"`).
    pub reason: &'static str,
    /// What it was waiting on.
    pub target: WaitTarget,
}

impl fmt::Display for BlockedProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} blocked at clock {} waiting for {} ({}) on {}",
            self.proc, self.clock, self.reason, self.kind, self.target
        )
    }
}

/// Per-processor blocked-state snapshot taken when a run stalls.
#[derive(Clone, Debug)]
pub struct StallReport {
    /// Global simulated time when the run stalled.
    pub now: Cycles,
    /// Events the engine had processed.
    pub events_processed: u64,
    /// Total processors in the machine.
    pub nprocs: usize,
    /// Every processor whose task had not finished, with its wait state.
    pub blocked: Vec<BlockedProc>,
    /// Host-side flight-recorder snapshots taken up to the failure (see
    /// `wwt_obs`): what the *simulator* was doing just before it died.
    /// Empty unless host metrics were enabled; ignored by `PartialEq` so
    /// wall-time noise never makes equal stalls compare unequal.
    pub obs: Vec<wwt_obs::ObsSnapshot>,
}

/// Equality ignores `obs`: flight-recorder snapshots carry host wall
/// times, and two runs stalling in the same simulated state must compare
/// equal regardless of how long the simulator took to get there.
impl PartialEq for StallReport {
    fn eq(&self, other: &Self) -> bool {
        self.now == other.now
            && self.events_processed == other.events_processed
            && self.nprocs == other.nprocs
            && self.blocked == other.blocked
    }
}

impl Eq for StallReport {}

impl StallReport {
    /// The wait-for graph as `(waiter, waited-on)` edges.
    ///
    /// A processor waiting on a specific peer contributes one edge; a
    /// processor stuck at the barrier waits for every processor that has
    /// not itself arrived at the barrier; a processor waiting on "any
    /// event" contributes no edges (nothing in the machine can satisfy
    /// it).
    pub fn wait_for_edges(&self) -> Vec<(ProcId, ProcId)> {
        let at_barrier: Vec<ProcId> = self
            .blocked
            .iter()
            .filter(|b| b.target == WaitTarget::Barrier)
            .map(|b| b.proc)
            .collect();
        let mut edges = Vec::new();
        for b in &self.blocked {
            match b.target {
                WaitTarget::Any => {}
                WaitTarget::Proc(q) => edges.push((b.proc, q)),
                WaitTarget::Barrier => {
                    for i in 0..self.nprocs {
                        let q = ProcId::new(i);
                        if q != b.proc && !at_barrier.contains(&q) {
                            edges.push((b.proc, q));
                        }
                    }
                }
            }
        }
        edges
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stalled at t={} after {} events; {} of {} processors blocked:",
            self.now,
            self.events_processed,
            self.blocked.len(),
            self.nprocs
        )?;
        for b in &self.blocked {
            writeln!(f, "  {b}")?;
        }
        let edges = self.wait_for_edges();
        if edges.is_empty() {
            write!(f, "wait-for graph: (no resolvable edges)")?;
        } else {
            write!(f, "wait-for graph:")?;
            for (p, q) in edges {
                write!(f, "\n  {p} -> {q}")?;
            }
        }
        if !self.obs.is_empty() {
            write!(f, "\n{}", wwt_obs::render_flight_recorder(&self.obs))?;
        }
        Ok(())
    }
}

/// A structured simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while some processor tasks were still
    /// blocked: a true deadlock.
    Deadlock(StallReport),
    /// The progress watchdog fired: events kept flowing but no processor
    /// task was resumed for `watchdog` simulated cycles.
    Livelock {
        /// The watchdog threshold that fired, in cycles.
        watchdog: Cycles,
        /// Blocked-state snapshot at the time the watchdog fired.
        report: StallReport,
    },
    /// The safety cap on processed events was exceeded.
    EventBudget {
        /// The configured event budget.
        limit: u64,
        /// Blocked-state snapshot when the budget ran out.
        report: StallReport,
    },
    /// An event was scheduled before the current global time (a machine
    /// model bug: causality would be violated).
    PastEvent {
        /// The requested (past) event time.
        at: Cycles,
        /// The global time when the request was made.
        now: Cycles,
    },
    /// Invalid user-supplied configuration (e.g. a channel capacity that
    /// overflows the packet index field).
    Config(String),
}

impl SimError {
    /// The stall report attached to deadlock/livelock/budget errors.
    pub fn report(&self) -> Option<&StallReport> {
        match self {
            SimError::Deadlock(r) => Some(r),
            SimError::Livelock { report, .. } | SimError::EventBudget { report, .. } => {
                Some(report)
            }
            SimError::PastEvent { .. } | SimError::Config(_) => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(report) => {
                write!(
                    f,
                    "deadlock: event queue empty but processors are still blocked\n{report}"
                )
            }
            SimError::Livelock { watchdog, report } => {
                write!(
                    f,
                    "livelock: no processor resumed for {watchdog} simulated cycles\n{report}"
                )
            }
            SimError::EventBudget { limit, report } => {
                write!(
                    f,
                    "event budget exceeded ({limit} events): livelock?\n{report}"
                )
            }
            SimError::PastEvent { at, now } => {
                write!(f, "event scheduled in the past: at={at} now={now}")
            }
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked(p: usize, reason: &'static str, target: WaitTarget) -> BlockedProc {
        BlockedProc {
            proc: ProcId::new(p),
            clock: 100 * p as u64,
            kind: Kind::Wait,
            reason,
            target,
        }
    }

    #[test]
    fn report_names_processors_and_reasons() {
        let report = StallReport {
            now: 700,
            events_processed: 42,
            nprocs: 3,
            blocked: vec![
                blocked(0, "message receive", WaitTarget::Any),
                blocked(2, "coherence reply", WaitTarget::Proc(ProcId::new(1))),
            ],
            obs: vec![],
        };
        let s = SimError::Deadlock(report).to_string();
        assert!(s.contains("deadlock"), "{s}");
        assert!(
            s.contains("P0 blocked at clock 0 waiting for message receive"),
            "{s}"
        );
        assert!(
            s.contains("P2 blocked at clock 200 waiting for coherence reply"),
            "{s}"
        );
        assert!(s.contains("P2 -> P1"), "{s}");
    }

    #[test]
    fn barrier_waits_point_at_absent_processors() {
        let report = StallReport {
            now: 0,
            events_processed: 0,
            nprocs: 3,
            blocked: vec![
                blocked(0, "barrier", WaitTarget::Barrier),
                blocked(1, "barrier", WaitTarget::Barrier),
            ],
            obs: vec![],
        };
        // P2 never arrived, so both barrier waiters wait on it alone.
        assert_eq!(
            report.wait_for_edges(),
            vec![
                (ProcId::new(0), ProcId::new(2)),
                (ProcId::new(1), ProcId::new(2)),
            ]
        );
    }

    #[test]
    fn display_keeps_legacy_substrings() {
        let report = StallReport {
            now: 1,
            events_processed: 1,
            nprocs: 1,
            blocked: vec![],
            obs: vec![],
        };
        assert!(SimError::PastEvent { at: 10, now: 50 }
            .to_string()
            .contains("scheduled in the past"));
        assert!(SimError::EventBudget { limit: 9, report }
            .to_string()
            .contains("event budget exceeded (9 events)"));
    }
}
