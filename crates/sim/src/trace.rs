//! Structured tracing and latency metrics.
//!
//! When [`SimConfig::trace`](crate::SimConfig) is set, the engine installs
//! a [`TraceSink`] that receives:
//!
//! * **span events** — every attribution-scope push/pop
//!   ([`Cpu::scope`](crate::Cpu::scope)) becomes a
//!   [`TraceWhat::SpanBegin`]/[`TraceWhat::SpanEnd`] pair on the owning
//!   processor's track, timestamped with its local clock, and
//! * **instant events** ([`Mark`]) — packet sends/receives/dispatches,
//!   coherence-miss service windows, barrier arrivals and releases, lock
//!   acquire/release,
//!
//! plus **latency samples** ([`Metric`]) aggregated into log2-bucketed
//! [`Histogram`]s: message end-to-end latency, shared-miss service time,
//! barrier wait, and lock wait/hold.
//!
//! The design is zero-cost when disabled: the `trace` flag is cached as a
//! plain `bool` in every [`Cpu`](crate::Cpu) handle, so the hot charging
//! and scoping paths pay a single predictable branch and allocate nothing.

use std::fmt;

use crate::account::{Kind, Scope};
use crate::time::{Cycles, ProcId};

/// An instantaneous machine event (no duration).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mark {
    /// A packet entered the network (message-passing machine).
    MsgSend {
        /// Destination node.
        peer: ProcId,
        /// Packet dispatch tag.
        tag: u8,
    },
    /// A packet arrived at the destination network interface.
    MsgRecv {
        /// Source node.
        peer: ProcId,
        /// Packet dispatch tag.
        tag: u8,
    },
    /// A received packet was dispatched to its handler.
    MsgDispatch {
        /// Source node.
        peer: ProcId,
        /// Packet dispatch tag.
        tag: u8,
    },
    /// A coherence transaction (shared miss / write fault) began.
    MissStart {
        /// The cost kind the stall is charged to.
        kind: Kind,
    },
    /// The matching coherence transaction completed.
    MissEnd {
        /// The cost kind the stall was charged to.
        kind: Kind,
    },
    /// The processor arrived at a barrier.
    BarrierArrive,
    /// The processor was released from a barrier.
    BarrierRelease,
    /// The processor acquired a lock.
    LockAcquire,
    /// The processor released a lock.
    LockRelease,
    /// The fault plan dropped a packet this processor sent.
    FaultDrop {
        /// Destination node of the dropped packet.
        peer: ProcId,
        /// Packet dispatch tag.
        tag: u8,
    },
    /// The fault plan duplicated a packet this processor sent.
    FaultDup {
        /// Destination node of the duplicated packet.
        peer: ProcId,
        /// Packet dispatch tag.
        tag: u8,
    },
    /// The fault plan delayed a packet this processor sent.
    FaultDelay {
        /// Destination node of the delayed packet.
        peer: ProcId,
        /// Extra latency injected, in cycles.
        extra: Cycles,
    },
    /// The reliable-delivery layer retransmitted unacknowledged packets.
    Retransmit {
        /// Destination node being retried.
        peer: ProcId,
        /// Number of packets retransmitted in this round.
        count: u32,
    },
}

impl Mark {
    /// A short stable label (used as the Perfetto event name).
    pub fn label(&self) -> &'static str {
        match self {
            Mark::MsgSend { .. } => "msg_send",
            Mark::MsgRecv { .. } => "msg_recv",
            Mark::MsgDispatch { .. } => "msg_dispatch",
            Mark::MissStart { .. } => "miss_start",
            Mark::MissEnd { .. } => "miss_end",
            Mark::BarrierArrive => "barrier_arrive",
            Mark::BarrierRelease => "barrier_release",
            Mark::LockAcquire => "lock_acquire",
            Mark::LockRelease => "lock_release",
            Mark::FaultDrop { .. } => "fault_drop",
            Mark::FaultDup { .. } => "fault_dup",
            Mark::FaultDelay { .. } => "fault_delay",
            Mark::Retransmit { .. } => "retransmit",
        }
    }
}

/// What a [`TraceEvent`] records.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceWhat {
    /// An attribution scope was pushed; charges now go to `.0`.
    SpanBegin(Scope),
    /// The matching scope was popped.
    SpanEnd(Scope),
    /// An instantaneous event.
    Instant(Mark),
}

/// One structured trace event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The processor whose track this event belongs to.
    pub proc: ProcId,
    /// Timestamp in cycles. Span events use the processor's local clock
    /// (monotone per track); instants from machine callbacks may use
    /// global time.
    pub at: Cycles,
    /// The event itself.
    pub what: TraceWhat,
}

/// A latency distribution tracked by the metrics registry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Message end-to-end latency: send call to handler dispatch.
    MsgLatency,
    /// Shared-miss service time: coherence-transaction start to response.
    ShMissService,
    /// Barrier wait: arrival to release.
    BarrierWait,
    /// Lock wait: acquire call to lock held.
    LockWait,
    /// Lock hold: acquired to released.
    LockHold,
}

impl Metric {
    /// All metrics, in index order.
    pub const ALL: [Metric; 5] = [
        Metric::MsgLatency,
        Metric::ShMissService,
        Metric::BarrierWait,
        Metric::LockWait,
        Metric::LockHold,
    ];

    /// Number of metrics.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this metric.
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Stable snake_case name (used as the JSON key).
    pub fn label(&self) -> &'static str {
        match self {
            Metric::MsgLatency => "msg_latency",
            Metric::ShMissService => "sh_miss_service",
            Metric::BarrierWait => "barrier_wait",
            Metric::LockWait => "lock_wait",
            Metric::LockHold => "lock_hold",
        }
    }
}

/// Number of log2 buckets: bucket 0 holds zero, bucket `i` (1..=64) holds
/// values whose bit length is `i`, i.e. `2^(i-1) <= v < 2^i`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed latency histogram.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: Cycles,
    max: Cycles,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(v: Cycles) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` of bucket `i`.
    ///
    /// Bucket 0 is `[0, 1)`; bucket 64's upper bound saturates at
    /// `u64::MAX`.
    pub fn bucket_bounds(i: usize) -> (Cycles, Cycles) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        if i == 0 {
            (0, 1)
        } else {
            (1 << (i - 1), 1u64.checked_shl(i as u32).unwrap_or(u64::MAX))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: Cycles) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> Cycles {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> Cycles {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-th percentile (`0.0..=1.0`), estimated by linear
    /// interpolation within the log2 bucket the target rank lands in and
    /// clamped to the observed `[min, max]`. Exact when a bucket holds a
    /// single distinct value; 0.0 when the histogram is empty.
    ///
    /// Total on its domain: `q` outside `0.0..=1.0` clamps to the nearest
    /// end, a NaN `q` reads as `0.0`, `percentile(0.0)` is exactly
    /// [`Histogram::min`] and `percentile(1.0)` exactly
    /// [`Histogram::max`] — so exported metrics never carry NaN and never
    /// understate the tail when the top bucket holds a single sample.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if q <= 0.0 {
            return self.min as f64;
        }
        if q >= 1.0 {
            return self.max as f64;
        }
        // Rank of the target sample, 1-based: q of the way through the
        // ordered samples (nearest-rank with interpolation inside the
        // bucket's value range).
        let rank = q * (self.count as f64 - 1.0) + 1.0;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo_rank = seen as f64 + 1.0;
            let hi_rank = (seen + c) as f64;
            if rank <= hi_rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = if c > 1 {
                    ((rank - lo_rank) / (hi_rank - lo_rank)).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let v = lo as f64 + frac * (hi.saturating_sub(1).saturating_sub(lo)) as f64;
                return v.clamp(self.min as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Iterates over non-empty buckets as `(lo, hi, count)`.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (Cycles, Cycles, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

/// One histogram per [`Metric`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    hists: [Histogram; Metric::COUNT],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records one sample of `m`.
    pub fn record(&mut self, m: Metric, v: Cycles) {
        self.hists[m.index()].record(v);
    }

    /// The histogram for `m`.
    pub fn get(&self, m: Metric) -> &Histogram {
        &self.hists[m.index()]
    }

    /// Iterates over metrics with at least one sample.
    pub fn nonempty(&self) -> impl Iterator<Item = (Metric, &Histogram)> + '_ {
        Metric::ALL
            .iter()
            .map(|&m| (m, self.get(m)))
            .filter(|(_, h)| h.count() > 0)
    }
}

/// Everything a trace-enabled run collected.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// All recorded events, in emission order (deterministic).
    pub events: Vec<TraceEvent>,
    /// Aggregated latency histograms.
    pub metrics: MetricsRegistry,
}

/// Receiver for trace events and metric samples.
///
/// The default sink is the in-memory [`TraceBuffer`], installed by the
/// engine when [`SimConfig::trace`](crate::SimConfig) is set; a custom
/// sink (streaming, filtering) can be installed with
/// [`Engine::set_trace_sink`](crate::Engine::set_trace_sink).
pub trait TraceSink {
    /// Records one structured event.
    fn record(&mut self, ev: TraceEvent);

    /// Records one latency sample.
    fn sample(&mut self, metric: Metric, value: Cycles);

    /// Consumes the sink at the end of the run, returning collected data
    /// to embed in the report (a streaming sink may return `None`).
    fn finish(self: Box<Self>) -> Option<TraceData>;
}

/// The default in-memory sink: keeps every event and all histograms.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    data: TraceData,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, ev: TraceEvent) {
        self.data.events.push(ev);
    }

    fn sample(&mut self, metric: Metric, value: Cycles) {
        self.data.metrics.record(metric, value);
    }

    fn finish(self: Box<Self>) -> Option<TraceData> {
        Some(self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(255), 8);
        assert_eq!(Histogram::bucket_index(256), 9);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_half_open_and_contiguous() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Histogram::bucket_bounds(1), (1, 2));
        assert_eq!(Histogram::bucket_bounds(2), (2, 4));
        assert_eq!(Histogram::bucket_bounds(10), (512, 1024));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Every bucket's lower bound is the previous bucket's upper bound.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(
                Histogram::bucket_bounds(i).1,
                Histogram::bucket_bounds(i + 1).0
            );
        }
        // And each boundary value lands in the bucket whose range opens
        // with it.
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            if hi < u64::MAX {
                assert_eq!(Histogram::bucket_index(hi - 1), i);
            }
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        // 10 -> bucket 4 [8,16), 20 and 30 -> bucket 5 [16,32).
        let got: Vec<_> = h.nonempty_buckets().collect();
        assert_eq!(got, vec![(8, 16, 1), (16, 32, 2)]);
    }

    #[test]
    fn percentiles_interpolate_within_buckets_and_clamp_to_observed() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0.0);

        // A single sample answers every percentile with itself.
        let mut h = Histogram::new();
        h.record(100);
        assert_eq!(h.percentile(0.0), 100.0);
        assert_eq!(h.percentile(0.5), 100.0);
        assert_eq!(h.percentile(1.0), 100.0);

        // Uniform 1..=100: percentile estimates stay within one bucket
        // width of the exact order statistic and are monotone.
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        let p99 = h.percentile(0.99);
        assert!((32.0..=64.0).contains(&p50), "p50={p50}");
        assert!((64.0..=100.0).contains(&p90), "p90={p90}");
        assert!(p99 >= p90 && p90 >= p50, "p50={p50} p90={p90} p99={p99}");
        assert!(p99 <= 100.0, "p99={p99} exceeds observed max");
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(1.0), 100.0);

        // A heavy outlier moves the tail but not the median.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let p50 = h.percentile(0.50);
        assert!(p50 < 16.0, "median stays in the outlier-free bucket: {p50}");
        assert!(h.percentile(0.999) > 16.0);
    }

    #[test]
    fn percentile_is_total_on_degenerate_inputs() {
        // Empty histogram: every percentile (even a NaN or out-of-range
        // rank) is 0.0, never NaN and never a panic.
        let h = Histogram::new();
        for q in [f64::NAN, -1.0, 0.0, 0.5, 1.0, 2.0, f64::INFINITY] {
            let p = h.percentile(q);
            assert_eq!(p, 0.0, "empty histogram, q={q}: {p}");
        }

        // Two samples whose top bucket holds a single value: p100 must be
        // the observed max, not the top bucket's lower bound.
        let mut h = Histogram::new();
        h.record(3);
        h.record(100); // bucket [64, 128)
        assert_eq!(h.percentile(0.0), 3.0);
        assert_eq!(h.percentile(1.0), 100.0);

        // Out-of-range and NaN ranks clamp instead of poisoning the
        // exported JSON.
        assert_eq!(h.percentile(-0.5), 3.0);
        assert_eq!(h.percentile(1.5), 100.0);
        assert!(!h.percentile(f64::NAN).is_nan());

        // All samples in one bucket: every percentile stays inside the
        // observed range whatever q is.
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(70); // all in [64, 128)
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let p = h.percentile(q);
            assert_eq!(p, 70.0, "single-valued histogram, q={q}: {p}");
        }
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn registry_routes_by_metric() {
        let mut r = MetricsRegistry::new();
        r.record(Metric::MsgLatency, 100);
        r.record(Metric::LockHold, 7);
        r.record(Metric::LockHold, 9);
        assert_eq!(r.get(Metric::MsgLatency).count(), 1);
        assert_eq!(r.get(Metric::LockHold).count(), 2);
        assert_eq!(r.get(Metric::BarrierWait).count(), 0);
        let names: Vec<_> = r.nonempty().map(|(m, _)| m.label()).collect();
        assert_eq!(names, vec!["msg_latency", "lock_hold"]);
    }

    #[test]
    fn metric_indices_are_dense_and_stable() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn trace_buffer_round_trips_events() {
        let mut b = Box::new(TraceBuffer::new());
        let ev = TraceEvent {
            proc: ProcId::new(2),
            at: 123,
            what: TraceWhat::SpanBegin(Scope::Lib),
        };
        b.record(ev);
        b.sample(Metric::BarrierWait, 55);
        let data = b.finish().unwrap();
        assert_eq!(data.events, vec![ev]);
        assert_eq!(data.metrics.get(Metric::BarrierWait).sum(), 55);
    }
}
