//! The quantum-synchronized parallel engine: shards of simulated
//! processors advance on worker threads in conservative quanta bounded by
//! the minimum cross-processor latency, exchanging events only at quantum
//! boundaries — the Wisconsin Wind Tunnel's parallel-simulation
//! discipline.
//!
//! # Relation to [`Engine`](crate::Engine)
//!
//! The cooperative engine's target tasks are `!Send` by design
//! (`Rc`-shared machine models, `RefCell` state), so they cannot migrate
//! onto worker threads. This module is the thread-parallel half of the
//! discipline for workloads that *are* `Send`: actors exchanging typed
//! messages. The two halves share the event-queue contract — per-shard
//! queues whose merge order is intrinsic, not an artifact of scheduling —
//! and the cooperative engine's [`ShardedQueue`](crate::event::ShardedQueue)
//! is the same shard layout driven from one thread.
//!
//! # Why determinism holds
//!
//! * **Lookahead.** Every message costs at least `lookahead` cycles, and
//!   the quantum never exceeds the lookahead. A message sent inside
//!   quantum window *k* therefore arrives at or after the start of window
//!   *k + 1*: when a shard processes window *k*, no event that could land
//!   in it is still in flight. This is the paper's argument that within a
//!   100-cycle quantum no processor can observe another's actions.
//! * **Intrinsic merge order.** Deliveries are ordered by
//!   `(arrival, source processor, per-source send index)` — a key the
//!   sender fixes, independent of shard layout or thread timing. Shards
//!   exchange staged messages under a barrier at each boundary and merge
//!   them in that order.
//! * **Actor isolation.** An actor owns its state and interacts only
//!   through messages, so its behaviour is a function of its delivery
//!   sequence — which the merge order fixes.
//!
//! Together these make the run's outcome byte-identical for **any** shard
//! count and **any** quantum in `1..=lookahead`; the determinism and
//! proptest suites hold the engine to exactly that.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::time::{Cycles, ProcId};

/// A sense-reversing spin barrier that can be poisoned.
///
/// `std::sync::Barrier` has no poisoning: if one worker panics while its
/// peers are parked at the barrier, the run deadlocks instead of
/// propagating the panic. Here a panicking worker (via [`PoisonOnPanic`])
/// marks the barrier, every waiter observes the mark and bails out, and
/// the join surfaces the original panic payload. Quanta are short, so the
/// yield-spin also costs less than a mutex/condvar round trip.
#[derive(Debug)]
struct QuantumBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

/// Error returned by [`QuantumBarrier::wait`] when a peer panicked.
struct Poisoned;

impl QuantumBarrier {
    fn new(n: usize) -> Self {
        QuantumBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn wait(&self) -> Result<(), Poisoned> {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == generation {
                if self.poisoned.load(Ordering::Acquire) {
                    return Err(Poisoned);
                }
                std::thread::yield_now();
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            Err(Poisoned)
        } else {
            Ok(())
        }
    }
}

/// Poisons the barrier if the owning worker unwinds, freeing its peers.
struct PoisonOnPanic<'a>(&'a QuantumBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poisoned.store(true, Ordering::Release);
        }
    }
}

/// A message delivered to an actor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Msg {
    /// Sending processor.
    pub src: ProcId,
    /// Application-defined discriminator.
    pub tag: u64,
    /// Application-defined payload.
    pub value: u64,
    /// Arrival time (the receiver's clock is advanced to at least this).
    pub at: Cycles,
}

/// A simulated processor's program under the parallel engine: reacts to
/// start-of-run and to each delivered message, charging computation and
/// sending messages through [`ParCpu`].
pub trait Actor {
    /// Called once at time zero.
    fn on_start(&mut self, cpu: &mut ParCpu);
    /// Called for every delivered message, in deterministic
    /// `(arrival, source, send index)` order.
    fn on_message(&mut self, cpu: &mut ParCpu, msg: Msg);
}

/// Configuration of a [`ParEngine`].
#[derive(Copy, Clone, Debug)]
pub struct ParConfig {
    /// Worker threads; each owns one contiguous shard of processors.
    /// Clamped to the processor count.
    pub shards: usize,
    /// Minimum message latency: every send must cost at least this many
    /// cycles. The WWT lookahead (100-cycle network latency).
    pub lookahead: Cycles,
    /// Conservative advance per round, `1..=lookahead`. The paper runs
    /// quantum = lookahead; smaller quanta are legal (and byte-identical,
    /// just slower).
    pub quantum: Cycles,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            shards: 1,
            lookahead: 100,
            quantum: 100,
        }
    }
}

/// Measurements of one simulated processor after a [`ParEngine`] run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ParProcStat {
    /// Final local clock.
    pub clock: Cycles,
    /// Cycles charged via [`ParCpu::compute`].
    pub computed: Cycles,
    /// Messages sent.
    pub sent: u64,
    /// Messages received.
    pub received: u64,
    /// Order-sensitive fold of every delivery `(src, tag, value, at)`:
    /// equal checksums mean equal delivery sequences.
    pub checksum: u64,
}

/// The result of a parallel run: per-processor measurements, comparable
/// byte-for-byte across shard counts and quantum sizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParReport {
    /// One entry per processor, in processor order.
    pub procs: Vec<ParProcStat>,
}

impl ParReport {
    /// The largest final clock (the run's makespan).
    pub fn elapsed(&self) -> Cycles {
        self.procs.iter().map(|p| p.clock).max().unwrap_or(0)
    }

    /// Total messages delivered across all processors.
    pub fn delivered(&self) -> u64 {
        self.procs.iter().map(|p| p.received).sum()
    }
}

/// One in-flight message, keyed for the deterministic boundary merge.
#[derive(Copy, Clone, Debug)]
struct Envelope {
    at: Cycles,
    src: ProcId,
    /// Per-source send counter: fixes the order of same-time deliveries
    /// from one sender regardless of shard layout.
    send_idx: u64,
    dest: ProcId,
    tag: u64,
    value: u64,
}

impl Envelope {
    fn key(&self) -> (Cycles, usize, u64) {
        (self.at, self.src.index(), self.send_idx)
    }
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Envelope {}
impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: min-heap via BinaryHeap.
        other.key().cmp(&self.key())
    }
}

/// The handle an [`Actor`] uses to observe and advance its processor.
#[derive(Debug)]
pub struct ParCpu<'a> {
    id: ProcId,
    clock: Cycles,
    lookahead: Cycles,
    computed: &'a mut Cycles,
    /// Doubles as the per-source send index for the boundary merge key.
    sent: &'a mut u64,
    staged: &'a mut Vec<Envelope>,
}

impl ParCpu<'_> {
    /// This processor's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The local clock, in cycles.
    pub fn clock(&self) -> Cycles {
        self.clock
    }

    /// Charges `cycles` of computation to the local clock.
    pub fn compute(&mut self, cycles: Cycles) {
        self.clock += cycles;
        *self.computed += cycles;
    }

    /// Sends a message arriving `latency` cycles after the local clock.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is below the configured lookahead — that would
    /// let a message land inside the current quantum and break the
    /// conservative advance.
    pub fn send(&mut self, dest: ProcId, tag: u64, value: u64, latency: Cycles) {
        assert!(
            latency >= self.lookahead,
            "send latency {latency} below lookahead {}",
            self.lookahead
        );
        let idx = *self.sent;
        *self.sent += 1;
        self.staged.push(Envelope {
            at: self.clock + latency,
            src: self.id,
            send_idx: idx,
            dest,
            tag,
            value,
        });
    }
}

type ActorBuilder = Box<dyn FnOnce() -> Box<dyn Actor> + Send>;

/// The quantum-synchronized parallel engine. See the module docs for the
/// discipline and the determinism argument.
///
/// # Example
///
/// ```
/// use wwt_sim::parallel::{workloads, ParConfig, ParEngine};
///
/// let run = |shards| {
///     let mut e = ParEngine::new(8, ParConfig { shards, ..ParConfig::default() });
///     workloads::install_ring(&mut e, 8, 5, 40);
///     e.run()
/// };
/// // Byte-identical results on one thread and four.
/// assert_eq!(run(1), run(4));
/// ```
pub struct ParEngine {
    nprocs: usize,
    config: ParConfig,
    builders: Vec<Option<ActorBuilder>>,
}

impl std::fmt::Debug for ParEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParEngine")
            .field("nprocs", &self.nprocs)
            .field("config", &self.config)
            .finish()
    }
}

impl ParEngine {
    /// Creates an engine for `nprocs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero or the quantum is outside
    /// `1..=lookahead`.
    pub fn new(nprocs: usize, config: ParConfig) -> Self {
        assert!(nprocs > 0, "machine must have at least one processor");
        assert!(
            (1..=config.lookahead).contains(&config.quantum),
            "quantum {} outside 1..={}",
            config.quantum,
            config.lookahead
        );
        ParEngine {
            nprocs,
            config,
            builders: (0..nprocs).map(|_| None).collect(),
        }
    }

    /// Installs the actor for processor `p`. The builder runs on the
    /// owning worker thread, so the actor itself need not be `Send`.
    ///
    /// # Panics
    ///
    /// Panics if an actor was already installed for `p`.
    pub fn spawn<A: Actor + 'static>(
        &mut self,
        p: ProcId,
        builder: impl FnOnce() -> A + Send + 'static,
    ) {
        let slot = &mut self.builders[p.index()];
        assert!(slot.is_none(), "actor already installed for {p}");
        *slot = Some(Box::new(move || Box::new(builder())));
    }

    /// The shard owning processor `p` (contiguous blocks, same layout as
    /// the cooperative engine's sharded queue).
    fn shard_of(nprocs: usize, nshards: usize, p: usize) -> usize {
        p * nshards / nprocs
    }

    /// Runs the simulation to completion and returns per-processor
    /// measurements.
    pub fn run(mut self) -> ParReport {
        let nshards = self.config.shards.clamp(1, self.nprocs);
        let nprocs = self.nprocs;
        let quantum = self.config.quantum;
        let lookahead = self.config.lookahead;

        // Partition builders into per-shard work before spawning.
        let mut per_shard: Vec<Vec<(usize, ActorBuilder)>> =
            (0..nshards).map(|_| Vec::new()).collect();
        for (i, b) in self.builders.iter_mut().enumerate() {
            if let Some(b) = b.take() {
                per_shard[Self::shard_of(nprocs, nshards, i)].push((i, b));
            }
        }

        let barrier = QuantumBarrier::new(nshards);
        let mailboxes: Vec<Mutex<Vec<Envelope>>> =
            (0..nshards).map(|_| Mutex::new(Vec::new())).collect();
        let round_min = AtomicU64::new(u64::MAX);
        let round_pending = AtomicU64::new(0);
        let stats: Vec<Mutex<Vec<(usize, ParProcStat)>>> =
            (0..nshards).map(|_| Mutex::new(Vec::new())).collect();

        std::thread::scope(|s| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .enumerate()
                .map(|(shard, work)| {
                    let barrier = &barrier;
                    let mailboxes = &mailboxes;
                    let round_min = &round_min;
                    let round_pending = &round_pending;
                    let stats = &stats;
                    s.spawn(move || {
                        shard_main(ShardCtx {
                            shard,
                            nprocs,
                            nshards,
                            quantum,
                            lookahead,
                            work,
                            barrier,
                            mailboxes,
                            round_min,
                            round_pending,
                            out: &stats[shard],
                        });
                    })
                })
                .collect();
            // Join explicitly so a worker panic (e.g. an actor
            // undercutting the lookahead) surfaces with its own message
            // rather than the scope's generic one.
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        let mut procs = vec![ParProcStat::default(); nprocs];
        for m in &stats {
            for &(i, st) in m.lock().unwrap().iter() {
                procs[i] = st;
            }
        }
        ParReport { procs }
    }
}

struct ShardCtx<'a> {
    shard: usize,
    nprocs: usize,
    nshards: usize,
    quantum: Cycles,
    lookahead: Cycles,
    work: Vec<(usize, ActorBuilder)>,
    barrier: &'a QuantumBarrier,
    mailboxes: &'a [Mutex<Vec<Envelope>>],
    round_min: &'a AtomicU64,
    round_pending: &'a AtomicU64,
    out: &'a Mutex<Vec<(usize, ParProcStat)>>,
}

/// One worker thread: owns its shard's actors and event queue, advances
/// in quanta, and exchanges staged messages at each boundary.
fn shard_main(ctx: ShardCtx<'_>) {
    // If this worker unwinds (an actor panicked), free the peers parked at
    // the barrier so the run propagates the panic instead of deadlocking.
    let _poison = PoisonOnPanic(ctx.barrier);
    // Host-metrics flag, cached once per run (`SimConfig::trace`
    // discipline). Timing uses host wall clocks and never feeds back into
    // simulated state, so determinism is untouched.
    let obs = wwt_obs::enabled();
    struct Owned {
        proc: usize,
        actor: Box<dyn Actor>,
        stat: ParProcStat,
    }
    // Build actors on this thread (shard-local ownership: the actor state
    // never crosses a thread boundary).
    let mut owned: Vec<Owned> = ctx
        .work
        .into_iter()
        .map(|(proc, build)| Owned {
            proc,
            actor: build(),
            stat: ParProcStat::default(),
        })
        .collect();
    // Index of each owned proc in `owned`.
    let slot_of: std::collections::HashMap<usize, usize> =
        owned.iter().enumerate().map(|(s, o)| (o.proc, s)).collect();

    let mut queue: BinaryHeap<Envelope> = BinaryHeap::new();
    let mut staged: Vec<Envelope> = Vec::new();

    // Time zero: run every owned actor's start hook.
    for o in owned.iter_mut() {
        let mut cpu = ParCpu {
            id: ProcId::new(o.proc),
            clock: o.stat.clock,
            lookahead: ctx.lookahead,
            computed: &mut o.stat.computed,
            sent: &mut o.stat.sent,
            staged: &mut staged,
        };
        o.actor.on_start(&mut cpu);
        o.stat.clock = cpu.clock;
    }
    distribute(
        ctx.nprocs,
        ctx.nshards,
        ctx.shard,
        obs,
        &mut staged,
        ctx.mailboxes,
    );
    // Every shard's start-of-run sends must be in the mailboxes before
    // anyone merges, or a fast shard could drain its inbox while a slow
    // one is still distributing — missing messages from round one.
    if obs_wait(ctx.barrier, obs, ctx.shard).is_err() {
        return;
    }

    loop {
        // 1. Merge the boundary exchange into the local queue.
        queue.extend(ctx.mailboxes[ctx.shard].lock().unwrap().drain(..));
        // 2. Everyone has merged; per-round accumulators are reset.
        if obs_wait(ctx.barrier, obs, ctx.shard).is_err() {
            return;
        }
        // 3. Publish this shard's horizon and load.
        let local_min = queue.peek().map_or(u64::MAX, |e| e.at);
        ctx.round_min.fetch_min(local_min, Ordering::SeqCst);
        ctx.round_pending
            .fetch_add(queue.len() as u64, Ordering::SeqCst);
        // 4. Everyone has published.
        if obs_wait(ctx.barrier, obs, ctx.shard).is_err() {
            return;
        }
        let pending = ctx.round_pending.load(Ordering::SeqCst);
        if pending == 0 {
            break;
        }
        let window_end = ctx
            .round_min
            .load(Ordering::SeqCst)
            .saturating_add(ctx.quantum);
        let busy_start = obs.then(std::time::Instant::now);
        // 5. Conservative advance: process everything strictly inside the
        // window. Nothing in flight can land in it (lookahead ≥ quantum).
        while queue.peek().is_some_and(|e| e.at < window_end) {
            let env = queue.pop().expect("peeked");
            let o = &mut owned[slot_of[&env.dest.index()]];
            o.stat.received += 1;
            o.stat.checksum = fold(o.stat.checksum, &env);
            o.stat.clock = o.stat.clock.max(env.at);
            let mut cpu = ParCpu {
                id: ProcId::new(o.proc),
                clock: o.stat.clock,
                lookahead: ctx.lookahead,
                computed: &mut o.stat.computed,
                sent: &mut o.stat.sent,
                staged: &mut staged,
            };
            o.actor.on_message(
                &mut cpu,
                Msg {
                    src: env.src,
                    tag: env.tag,
                    value: env.value,
                    at: env.at,
                },
            );
            o.stat.clock = cpu.clock;
        }
        distribute(
            ctx.nprocs,
            ctx.nshards,
            ctx.shard,
            obs,
            &mut staged,
            ctx.mailboxes,
        );
        if let Some(start) = busy_start {
            wwt_obs::shard_count(
                wwt_obs::ShardCtr::ParBusyNs,
                ctx.shard,
                start.elapsed().as_nanos() as u64,
            );
            wwt_obs::shard_count(wwt_obs::ShardCtr::ParQuanta, ctx.shard, 1);
        }
        // 6. Everyone has exchanged; shard 0 resets the accumulators for
        // the next round (no shard can publish again until barrier 2).
        if obs_wait(ctx.barrier, obs, ctx.shard).is_err() {
            return;
        }
        if ctx.shard == 0 {
            ctx.round_min.store(u64::MAX, Ordering::SeqCst);
            ctx.round_pending.store(0, Ordering::SeqCst);
        }
    }

    let mut out = ctx.out.lock().unwrap();
    for o in owned {
        out.push((o.proc, o.stat));
    }
}

/// A barrier wait that, with host metrics live, also charges the wall
/// time spent parked to the shard's barrier-wait counter.
fn obs_wait(barrier: &QuantumBarrier, obs: bool, shard: usize) -> Result<(), Poisoned> {
    if !obs {
        return barrier.wait();
    }
    let start = std::time::Instant::now();
    let r = barrier.wait();
    wwt_obs::shard_count(
        wwt_obs::ShardCtr::ParBarrierWaitNs,
        shard,
        start.elapsed().as_nanos() as u64,
    );
    r
}

/// Routes staged sends to their destination shards' mailboxes (self-sends
/// included: every message crosses the boundary, so delivery order never
/// depends on the shard layout).
fn distribute(
    nprocs: usize,
    nshards: usize,
    src_shard: usize,
    obs: bool,
    staged: &mut Vec<Envelope>,
    mailboxes: &[Mutex<Vec<Envelope>>],
) {
    let (mut same, mut cross) = (0u64, 0u64);
    for env in staged.drain(..) {
        let dest_shard = env.dest.index() * nshards / nprocs;
        if dest_shard == src_shard {
            same += 1;
        } else {
            cross += 1;
        }
        mailboxes[dest_shard].lock().unwrap().push(env);
    }
    if obs {
        wwt_obs::count(wwt_obs::Ctr::ParMsgsSameShard, same);
        wwt_obs::count(wwt_obs::Ctr::ParMsgsCrossShard, cross);
    }
}

/// Order-sensitive delivery fold (FNV-ish) for [`ParProcStat::checksum`].
fn fold(acc: u64, env: &Envelope) -> u64 {
    let mut h = acc ^ 0xcbf2_9ce4_8422_2325;
    for v in [
        env.at,
        env.src.index() as u64,
        env.send_idx,
        env.tag,
        env.value,
    ] {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Synthetic workloads for the scheduler benches and the determinism
/// suite.
pub mod workloads {
    use super::*;

    /// An EM3D-like neighbour exchange: each processor alternates
    /// `work` cycles of computation with boundary-value sends to its ring
    /// neighbours, advancing to the next iteration once both neighbours'
    /// values for the current one have arrived.
    struct RingActor {
        me: usize,
        nprocs: usize,
        iters: u64,
        work: Cycles,
        iter: u64,
        have: u64,
    }

    impl RingActor {
        fn neighbours(&self) -> (ProcId, ProcId) {
            let left = (self.me + self.nprocs - 1) % self.nprocs;
            let right = (self.me + 1) % self.nprocs;
            (ProcId::new(left), ProcId::new(right))
        }

        /// Boundary values expected per iteration. Always two: even in 1-
        /// and 2-proc rings, where both neighbours are one processor (or
        /// self), that processor sends left *and* right each iteration.
        fn expected(&self) -> u64 {
            2
        }

        fn send_boundary(&mut self, cpu: &mut ParCpu) {
            let (l, r) = self.neighbours();
            let v = (self.me as u64) << 32 | self.iter;
            cpu.send(l, self.iter, v, 100);
            cpu.send(r, self.iter, v, 100);
        }
    }

    impl Actor for RingActor {
        fn on_start(&mut self, cpu: &mut ParCpu) {
            cpu.compute(self.work);
            self.send_boundary(cpu);
        }

        fn on_message(&mut self, cpu: &mut ParCpu, msg: Msg) {
            if msg.tag != self.iter {
                // A neighbour can run at most one iteration ahead; its
                // next-iteration value counts once we get there, so stash
                // it by re-delivering to ourselves at the minimum latency.
                cpu.send(cpu.id(), msg.tag, msg.value, 100);
                return;
            }
            self.have += 1;
            if self.have == self.expected() {
                self.have = 0;
                self.iter += 1;
                if self.iter < self.iters {
                    cpu.compute(self.work);
                    self.send_boundary(cpu);
                }
            }
        }
    }

    /// Installs the ring workload on every processor of `engine`.
    pub fn install_ring(engine: &mut ParEngine, nprocs: usize, iters: u64, work: Cycles) {
        for p in 0..nprocs {
            engine.spawn(ProcId::new(p), move || RingActor {
                me: p,
                nprocs,
                iters,
                work,
                iter: 0,
                have: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_run(nprocs: usize, shards: usize, quantum: Cycles, iters: u64) -> ParReport {
        let mut e = ParEngine::new(
            nprocs,
            ParConfig {
                shards,
                lookahead: 100,
                quantum,
            },
        );
        workloads::install_ring(&mut e, nprocs, iters, 40);
        e.run()
    }

    #[test]
    fn ring_makes_progress_and_counts_messages() {
        let r = ring_run(4, 1, 100, 3);
        assert!(r.elapsed() > 0);
        // 2 sends per proc per iteration, all delivered (possibly via the
        // stash-and-redeliver path, which adds self messages).
        assert!(r.delivered() >= 4 * 2 * 3);
        for p in &r.procs {
            assert!(p.received > 0, "every processor hears its neighbours");
        }
    }

    #[test]
    fn shard_count_never_changes_results() {
        let base = ring_run(8, 1, 100, 5);
        for shards in [2, 3, 4, 8] {
            assert_eq!(base, ring_run(8, shards, 100, 5), "shards={shards}");
        }
    }

    #[test]
    fn quantum_size_never_changes_results() {
        let base = ring_run(6, 2, 100, 4);
        for quantum in [1, 7, 33, 50, 99] {
            assert_eq!(base, ring_run(6, 2, quantum, 4), "quantum={quantum}");
        }
    }

    #[test]
    fn repeated_runs_are_identical() {
        assert_eq!(ring_run(5, 4, 100, 4), ring_run(5, 4, 100, 4));
    }

    #[test]
    fn host_metrics_never_change_results() {
        let base = ring_run(8, 2, 100, 5);
        wwt_obs::enable();
        // The registry is process-global and other tests run concurrently,
        // so assert deltas (>=), not absolute values.
        let q0: u64 = (0..2)
            .map(|s| wwt_obs::shard_counter(wwt_obs::ShardCtr::ParQuanta, s))
            .sum();
        let m0 = wwt_obs::counter(wwt_obs::Ctr::ParMsgsSameShard)
            + wwt_obs::counter(wwt_obs::Ctr::ParMsgsCrossShard);
        let observed = ring_run(8, 2, 100, 5);
        wwt_obs::disable();
        assert_eq!(base, observed, "--obs changed a ParEngine result");
        let q1: u64 = (0..2)
            .map(|s| wwt_obs::shard_counter(wwt_obs::ShardCtr::ParQuanta, s))
            .sum();
        let m1 = wwt_obs::counter(wwt_obs::Ctr::ParMsgsSameShard)
            + wwt_obs::counter(wwt_obs::Ctr::ParMsgsCrossShard);
        assert!(q1 > q0, "quantum windows were counted");
        assert!(m1 >= m0 + base.delivered(), "mailbox traffic was counted");
    }

    #[test]
    fn single_processor_ring_terminates() {
        let r = ring_run(1, 1, 100, 3);
        assert_eq!(r.procs.len(), 1);
        assert!(r.procs[0].received > 0);
    }

    #[test]
    #[should_panic(expected = "below lookahead")]
    fn undercutting_the_lookahead_panics() {
        struct Bad;
        impl Actor for Bad {
            fn on_start(&mut self, cpu: &mut ParCpu) {
                cpu.send(ProcId::new(0), 0, 0, 10);
            }
            fn on_message(&mut self, _: &mut ParCpu, _: Msg) {}
        }
        let mut e = ParEngine::new(1, ParConfig::default());
        e.spawn(ProcId::new(0), || Bad);
        e.run();
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn quantum_beyond_lookahead_is_rejected() {
        let _ = ParEngine::new(
            1,
            ParConfig {
                shards: 1,
                lookahead: 100,
                quantum: 101,
            },
        );
    }
}
