//! Basic time and identity newtypes shared by the whole simulator.

use std::fmt;

/// A duration or instant measured in target-machine clock cycles.
///
/// The paper assumes a 30 ns cycle time; all costs in the simulator are
/// expressed in cycles, never in wall-clock units.
pub type Cycles = u64;

/// Identity of a simulated processor (node) in the target machine.
///
/// Processor ids are dense, starting at zero. The paper's experiments all
/// use 32 processors; the simulator supports 1–1024.
///
/// # Example
///
/// ```
/// use wwt_sim::ProcId;
/// let p = ProcId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "P3");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcId(u16);

impl ProcId {
    /// Creates a processor id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the maximum supported machine size (1024).
    pub fn new(index: usize) -> Self {
        assert!(index < 1024, "processor index {index} out of range");
        ProcId(index as u16)
    }

    /// Returns the dense index of this processor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for ProcId {
    fn from(index: usize) -> Self {
        ProcId::new(index)
    }
}

impl From<ProcId> for usize {
    fn from(p: ProcId) -> usize {
        p.index()
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_round_trips() {
        for i in [0usize, 1, 31, 1023] {
            assert_eq!(ProcId::new(i).index(), i);
            assert_eq!(usize::from(ProcId::from(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn proc_id_rejects_out_of_range() {
        let _ = ProcId::new(1024);
    }

    #[test]
    fn proc_id_orders_by_index() {
        assert!(ProcId::new(2) < ProcId::new(10));
    }
}
