//! A heap-avoiding `FnOnce()` container for scheduled simulator actions.
//!
//! Every coherence transaction, message delivery, and replacement hint
//! schedules a callback through [`crate::Sim::call_at`] /
//! [`crate::Sim::call_at_for`]. Boxing each closure put tens of millions
//! of 32–40 byte heap allocations on the paper-scale runs' hot path;
//! allocator time alone was close to a quarter of wall clock.
//! [`SmallCall`] stores closures of up to [`INLINE_BYTES`] captured bytes
//! inline in the event entry itself and falls back to `Box` only for
//! larger captures, so the common case allocates nothing.

use std::fmt;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

/// Inline capture budget, in bytes. The hot callbacks capture an
/// `Rc<Machine>`, a block address, a completion cell, and a couple of
/// scalars — comfortably under this; anything bigger is boxed.
pub const INLINE_BYTES: usize = 48;

/// Inline storage measured in `u64` words, which also fixes its
/// alignment: closures aligned stricter than `u64` take the boxed path.
const WORDS: usize = INLINE_BYTES / 8;

/// A type-erased `FnOnce() + 'static` with inline storage for small
/// captures (the small-closure analogue of small-string optimization).
///
/// Closures whose captures fit [`INLINE_BYTES`] and are at most
/// `u64`-aligned live directly in the struct; larger or stricter-aligned
/// ones are boxed transparently. Either way the closure runs exactly once
/// via [`SmallCall::invoke`], and is dropped without running if the
/// `SmallCall` is dropped unconsumed (e.g. a queue torn down mid-run).
pub struct SmallCall {
    data: [MaybeUninit<u64>; WORDS],
    /// Consumes the closure in `data`, running it.
    call_fn: unsafe fn(*mut u64),
    /// Drops the closure in `data` without running it.
    drop_fn: unsafe fn(*mut u64),
}

impl SmallCall {
    /// Wraps `f`, storing its captures inline when they fit.
    pub fn new<F: FnOnce() + 'static>(f: F) -> Self {
        let mut data: [MaybeUninit<u64>; WORDS] = [MaybeUninit::uninit(); WORDS];
        if size_of::<F>() <= INLINE_BYTES && align_of::<F>() <= align_of::<u64>() {
            wwt_obs::count(wwt_obs::Ctr::SimCallInline, 1);
            // SAFETY: F fits the storage in both size and alignment
            // (checked above), and the storage is uninitialized.
            unsafe { (data.as_mut_ptr() as *mut F).write(f) };
            SmallCall {
                data,
                call_fn: call_inline::<F>,
                drop_fn: drop_inline::<F>,
            }
        } else {
            wwt_obs::count(wwt_obs::Ctr::SimCallBoxed, 1);
            // Large capture: store one raw Box pointer inline instead.
            // SAFETY: a thin pointer always fits the first word.
            unsafe { (data.as_mut_ptr() as *mut *mut F).write(Box::into_raw(Box::new(f))) };
            SmallCall {
                data,
                call_fn: call_boxed::<F>,
                drop_fn: drop_boxed::<F>,
            }
        }
    }

    /// Runs the closure, consuming the container.
    pub fn invoke(self) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `this` is never dropped, so the closure is consumed
        // exactly once — here, by its matching call thunk.
        unsafe { (this.call_fn)(this.data.as_mut_ptr() as *mut u64) }
    }
}

impl Drop for SmallCall {
    fn drop(&mut self) {
        // SAFETY: `invoke` wraps `self` in ManuallyDrop, so reaching this
        // Drop means the closure is still live in `data`.
        unsafe { (self.drop_fn)(self.data.as_mut_ptr() as *mut u64) }
    }
}

impl fmt::Debug for SmallCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SmallCall(..)")
    }
}

/// SAFETY contract for all four thunks: `p` points at storage holding a
/// live `F` (inline) or a live `*mut F` from `Box::into_raw` (boxed),
/// and the value is never touched again after the thunk consumes it.
unsafe fn call_inline<F: FnOnce()>(p: *mut u64) {
    let f = unsafe { (p as *mut F).read() };
    f();
}

unsafe fn drop_inline<F: FnOnce()>(p: *mut u64) {
    unsafe { std::ptr::drop_in_place(p as *mut F) }
}

unsafe fn call_boxed<F: FnOnce()>(p: *mut u64) {
    let b = unsafe { Box::from_raw((p as *mut *mut F).read()) };
    (*b)();
}

unsafe fn drop_boxed<F: FnOnce()>(p: *mut u64) {
    drop(unsafe { Box::from_raw((p as *mut *mut F).read()) });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn small_closure_runs_inline() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = Rc::clone(&log);
        let call = SmallCall::new(move || l.borrow_mut().push(1u64));
        call.invoke();
        assert_eq!(*log.borrow(), vec![1]);
    }

    #[test]
    fn large_closure_falls_back_to_box() {
        let log = Rc::new(RefCell::new(0u64));
        let l = Rc::clone(&log);
        let payload = [7u64; 16]; // 128 bytes of captures: > INLINE_BYTES
        let call = SmallCall::new(move || *l.borrow_mut() = payload.iter().sum());
        call.invoke();
        assert_eq!(*log.borrow(), 7 * 16);
    }

    #[test]
    fn unconsumed_closures_drop_their_captures() {
        let rc = Rc::new(());
        let small = SmallCall::new({
            let rc = Rc::clone(&rc);
            move || drop(rc)
        });
        let big_payload = [0u64; 16];
        let large = SmallCall::new({
            let rc = Rc::clone(&rc);
            move || {
                drop(rc);
                let _ = big_payload;
            }
        });
        assert_eq!(Rc::strong_count(&rc), 3);
        drop(small);
        drop(large);
        assert_eq!(Rc::strong_count(&rc), 1);
    }

    #[test]
    fn zero_sized_closures_work() {
        SmallCall::new(|| {}).invoke();
    }
}
