//! Execution-time accounting: where does each cycle go?
//!
//! The paper's central methodological contribution is a fine-grained
//! breakdown of execution time (computation, local misses, library
//! computation, network access, shared misses, write faults, TLB misses,
//! barriers, locks, start-up wait, ...). We record charges in a small
//! two-dimensional matrix indexed by an *attribution scope* (what code was
//! running: application, messaging library, a reduction, ...) and a *cost
//! kind* (what the cycles were spent on: computing, a private miss, waiting
//! at a barrier, ...).
//!
//! The per-table row sets of the paper (Tables 4–21) are all projections of
//! this matrix; `wwt-core` performs the projections.

use std::fmt;

use crate::time::Cycles;

/// Attribution scope: which layer of the target software was executing when
/// a cost was incurred.
///
/// Scopes nest (a stack per processor); charges always go to the innermost
/// scope.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// Application code proper.
    App,
    /// Message-passing communication library code (CMAML / CMMD analogue).
    Lib,
    /// A software broadcast (either machine).
    Broadcast,
    /// A software reduction (either machine).
    Reduction,
    /// Lock acquire/release code (MCS locks on the shared-memory machine).
    Lock,
    /// Other explicit synchronization glue (e.g. flag waits, update copies).
    Sync,
    /// Start-up: waiting for node 0 to finish serial initialization.
    Startup,
}

impl Scope {
    /// All scopes, in matrix order.
    pub const ALL: [Scope; 7] = [
        Scope::App,
        Scope::Lib,
        Scope::Broadcast,
        Scope::Reduction,
        Scope::Lock,
        Scope::Sync,
        Scope::Startup,
    ];

    /// Dense index of this scope into a [`CycleMatrix`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Scope::App => "app",
            Scope::Lib => "lib",
            Scope::Broadcast => "broadcast",
            Scope::Reduction => "reduction",
            Scope::Lock => "lock",
            Scope::Sync => "sync",
            Scope::Startup => "startup",
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost kind: what a processor's cycles were spent on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    /// Instruction execution (useful work, buffer management, address
    /// arithmetic — anything that is not a stall).
    Compute,
    /// Servicing a miss to private (per-node) data.
    PrivMiss,
    /// Servicing a miss to shared data whose home is the local node.
    ShMissLocal,
    /// Servicing a miss to shared data homed on a remote node.
    ShMissRemote,
    /// Stall upgrading a read-only cache block for writing (write fault).
    WriteFault,
    /// TLB refill.
    TlbMiss,
    /// Loads/stores to the memory-mapped network interface.
    NetAccess,
    /// Waiting at a barrier (hardware barrier on both machines).
    BarrierWait,
    /// Waiting to acquire a lock.
    LockWait,
    /// Other waiting (spinning on a flag, waiting for a message or a
    /// channel completion).
    Wait,
    /// Reliable-delivery recovery: retransmitting lost packets and
    /// generating/handling acknowledgements. Only nonzero when fault
    /// injection forces the protocol to do work.
    Retry,
}

impl Kind {
    /// Number of kinds (the length of [`Kind::ALL`]).
    pub const COUNT: usize = 11;

    /// All kinds, in matrix order.
    pub const ALL: [Kind; Kind::COUNT] = [
        Kind::Compute,
        Kind::PrivMiss,
        Kind::ShMissLocal,
        Kind::ShMissRemote,
        Kind::WriteFault,
        Kind::TlbMiss,
        Kind::NetAccess,
        Kind::BarrierWait,
        Kind::LockWait,
        Kind::Wait,
        Kind::Retry,
    ];

    /// Dense index of this kind into a [`CycleMatrix`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Compute => "compute",
            Kind::PrivMiss => "private miss",
            Kind::ShMissLocal => "shared miss (local)",
            Kind::ShMissRemote => "shared miss (remote)",
            Kind::WriteFault => "write fault",
            Kind::TlbMiss => "tlb miss",
            Kind::NetAccess => "network access",
            Kind::BarrierWait => "barrier",
            Kind::LockWait => "lock wait",
            Kind::Wait => "wait",
            Kind::Retry => "retry",
        }
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

const SCOPES: usize = Scope::ALL.len();
const KINDS: usize = Kind::ALL.len();

/// A (scope × kind) matrix of cycle charges for one processor.
///
/// # Example
///
/// ```
/// use wwt_sim::{CycleMatrix, Scope, Kind};
/// let mut m = CycleMatrix::new();
/// m.add(Scope::Lib, Kind::Compute, 250);
/// m.add(Scope::App, Kind::Compute, 1_000);
/// assert_eq!(m.get(Scope::Lib, Kind::Compute), 250);
/// assert_eq!(m.by_kind(Kind::Compute), 1_250);
/// assert_eq!(m.total(), 1_250);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct CycleMatrix {
    cells: [[Cycles; KINDS]; SCOPES],
}

impl CycleMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to the (`scope`, `kind`) cell.
    pub fn add(&mut self, scope: Scope, kind: Kind, cycles: Cycles) {
        self.cells[scope.index()][kind.index()] += cycles;
    }

    /// Returns the charge in the (`scope`, `kind`) cell.
    pub fn get(&self, scope: Scope, kind: Kind) -> Cycles {
        self.cells[scope.index()][kind.index()]
    }

    /// Total cycles charged across all cells.
    pub fn total(&self) -> Cycles {
        self.cells.iter().flatten().sum()
    }

    /// Total cycles of a given kind across all scopes.
    pub fn by_kind(&self, kind: Kind) -> Cycles {
        self.cells.iter().map(|row| row[kind.index()]).sum()
    }

    /// Total cycles in a given scope across all kinds.
    pub fn by_scope(&self, scope: Scope) -> Cycles {
        self.cells[scope.index()].iter().sum()
    }

    /// The per-kind totals across all scopes, as a dense vector in
    /// [`Kind::ALL`] order — the "breakdown category" view the phase
    /// profiler and the diff engine consume.
    pub fn kind_totals(&self) -> [Cycles; Kind::COUNT] {
        let mut out = [0; Kind::COUNT];
        for row in &self.cells {
            for (k, &c) in row.iter().enumerate() {
                out[k] += c;
            }
        }
        out
    }

    /// Adds every cell of `other` into this matrix.
    pub fn merge(&mut self, other: &CycleMatrix) {
        for (s, row) in other.cells.iter().enumerate() {
            for (k, &c) in row.iter().enumerate() {
                self.cells[s][k] += c;
            }
        }
    }

    /// Iterates over all non-zero cells.
    pub fn iter(&self) -> impl Iterator<Item = (Scope, Kind, Cycles)> + '_ {
        Scope::ALL.into_iter().flat_map(move |s| {
            Kind::ALL
                .into_iter()
                .map(move |k| (s, k, self.get(s, k)))
                .filter(|&(_, _, c)| c != 0)
        })
    }
}

impl fmt::Debug for CycleMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (s, k, c) in self.iter() {
            map.entry(&format_args!("{s}/{k}"), &c);
        }
        map.finish()
    }
}

/// Per-processor event counters (messages, bytes, misses, ...).
///
/// These back the paper's per-processor event-count tables
/// (Tables 6, 7, 10, 11, 13, 15, 22, 23).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Counter {
    /// Logical message sends (one per application-level transfer).
    MessagesSent,
    /// CMMD channel writes (bulk transfers over a pre-negotiated channel).
    ChannelWrites,
    /// Active messages sent.
    ActiveMessages,
    /// Raw 20-byte network packets injected.
    PacketsSent,
    /// Payload bytes transmitted.
    BytesData,
    /// Header/protocol bytes transmitted.
    BytesControl,
    /// Misses to private data.
    PrivMisses,
    /// Misses to shared data homed locally.
    ShMissesLocal,
    /// Misses to shared data homed remotely.
    ShMissesRemote,
    /// Write faults (upgrade of a read-only block).
    WriteFaults,
    /// TLB refills.
    TlbMisses,
    /// Lock acquisitions.
    LockAcquires,
    /// Barrier episodes crossed.
    Barriers,
    /// Software reductions participated in.
    Reductions,
    /// Software broadcasts participated in.
    Broadcasts,
    /// Cache-coherence protocol messages handled by this node's directory.
    DirRequests,
    /// Packets retransmitted by the reliable-delivery layer.
    Retransmits,
    /// Acknowledgement packets sent by the reliable-delivery layer.
    AcksSent,
    /// Negative acknowledgements (gap reports) sent.
    NacksSent,
}

impl Counter {
    /// All counters, in storage order.
    pub const ALL: [Counter; 19] = [
        Counter::MessagesSent,
        Counter::ChannelWrites,
        Counter::ActiveMessages,
        Counter::PacketsSent,
        Counter::BytesData,
        Counter::BytesControl,
        Counter::PrivMisses,
        Counter::ShMissesLocal,
        Counter::ShMissesRemote,
        Counter::WriteFaults,
        Counter::TlbMisses,
        Counter::LockAcquires,
        Counter::Barriers,
        Counter::Reductions,
        Counter::Broadcasts,
        Counter::DirRequests,
        Counter::Retransmits,
        Counter::AcksSent,
        Counter::NacksSent,
    ];

    /// Dense index of this counter.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Counter::MessagesSent => "messages sent",
            Counter::ChannelWrites => "channel writes",
            Counter::ActiveMessages => "active messages",
            Counter::PacketsSent => "packets sent",
            Counter::BytesData => "bytes (data)",
            Counter::BytesControl => "bytes (control)",
            Counter::PrivMisses => "private misses",
            Counter::ShMissesLocal => "shared misses (local)",
            Counter::ShMissesRemote => "shared misses (remote)",
            Counter::WriteFaults => "write faults",
            Counter::TlbMisses => "tlb misses",
            Counter::LockAcquires => "lock acquires",
            Counter::Barriers => "barriers",
            Counter::Reductions => "reductions",
            Counter::Broadcasts => "broadcasts",
            Counter::DirRequests => "directory requests",
            Counter::Retransmits => "retransmits",
            Counter::AcksSent => "acks sent",
            Counter::NacksSent => "nacks sent",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

const COUNTERS: usize = Counter::ALL.len();

/// A fixed-size bag of per-processor event counters.
///
/// # Example
///
/// ```
/// use wwt_sim::{Counters, Counter};
/// let mut c = Counters::new();
/// c.add(Counter::BytesData, 16);
/// c.add(Counter::BytesData, 16);
/// assert_eq!(c.get(Counter::BytesData), 32);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Counters {
    values: [u64; COUNTERS],
}

impl Counters {
    /// Creates an empty counter bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `counter`.
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.values[counter.index()] += n;
    }

    /// Returns the current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// Adds every counter of `other` into this bag.
    pub fn merge(&mut self, other: &Counters) {
        for (i, &v) in other.values.iter().enumerate() {
            self.values[i] += v;
        }
    }

    /// Iterates over all non-zero counters.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .into_iter()
            .map(move |c| (c, self.get(c)))
            .filter(|&(_, n)| n != 0)
    }
}

impl fmt::Debug for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (c, n) in self.iter() {
            map.entry(&c.label(), &n);
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_add_and_project() {
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 10);
        m.add(Scope::Lib, Kind::Compute, 5);
        m.add(Scope::Lib, Kind::NetAccess, 7);
        assert_eq!(m.by_kind(Kind::Compute), 15);
        assert_eq!(m.by_scope(Scope::Lib), 12);
        assert_eq!(m.total(), 22);
    }

    #[test]
    fn matrix_sum_is_cellwise() {
        let mut a = CycleMatrix::new();
        a.add(Scope::App, Kind::Compute, 1);
        #[allow(unused_mut)]
        let mut b = CycleMatrix::new();
        b.add(Scope::App, Kind::Compute, 2);
        b.add(Scope::Lock, Kind::LockWait, 3);
        a.merge(&b);
        assert_eq!(a.get(Scope::App, Kind::Compute), 3);
        assert_eq!(a.get(Scope::Lock, Kind::LockWait), 3);
    }

    #[test]
    fn kind_totals_project_across_scopes() {
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 10);
        m.add(Scope::Lib, Kind::Compute, 5);
        m.add(Scope::Sync, Kind::Wait, 3);
        let v = m.kind_totals();
        assert_eq!(v[Kind::Compute.index()], 15);
        assert_eq!(v[Kind::Wait.index()], 3);
        assert_eq!(v.iter().sum::<Cycles>(), m.total());
    }

    #[test]
    fn matrix_iter_skips_zero_cells() {
        let mut m = CycleMatrix::new();
        m.add(Scope::Sync, Kind::Wait, 9);
        let cells: Vec<_> = m.iter().collect();
        assert_eq!(cells, vec![(Scope::Sync, Kind::Wait, 9)]);
    }

    #[test]
    fn scope_and_kind_indices_are_dense() {
        for (i, s) in Scope::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, k) in Kind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, c) in Counter::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.add(Counter::PacketsSent, 3);
        c.add(Counter::PacketsSent, 4);
        let mut d = Counters::new();
        d.add(Counter::PacketsSent, 1);
        c.merge(&d);
        assert_eq!(c.get(Counter::PacketsSent), 8);
    }

    #[test]
    fn labels_are_nonempty_and_unique() {
        let mut labels: Vec<&str> = Scope::ALL.iter().map(|s| s.label()).collect();
        labels.extend(Kind::ALL.iter().map(|k| k.label()));
        labels.extend(Counter::ALL.iter().map(|c| c.label()));
        for l in &labels {
            assert!(!l.is_empty());
        }
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len(), "duplicate label");
    }
}
