//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The machine models key their hot maps — coherence directories, MSHR
//! tables, message inboxes — by small integers (block addresses, node
//! ids, message tags). `std`'s default SipHash is DoS-resistant but costs
//! more than the lookup it guards; profiles of the paper-scale EM3D runs
//! showed `HashMap::get` alone near a quarter of total wall clock. These
//! keys are simulator-internal and never attacker-controlled, so a
//! multiplicative Fibonacci-style hash (the FxHash construction used by
//! rustc) is safe and several times faster.
//!
//! Unlike `RandomState`, [`FxHasher`] is deterministic across runs, which
//! this codebase requires anyway: iteration-order-sensitive code must be
//! reproducible for the determinism suite (`tests/determinism.rs`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by simulator-internal values, using [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` of simulator-internal values, using [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` construction: rotate, xor, multiply by a constant
/// with good bit dispersion. Not cryptographic, not DoS-resistant —
/// strictly for keys the simulator itself generates.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // A multiplicative hash mixes upward: the low bits of `x * SEED`
        // depend only on the low bits of `x`, and block addresses are
        // 32-byte aligned. Rotate so the well-mixed bits land where the
        // table derives its bucket index.
        self.hash.rotate_left(20)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_deterministic_across_maps() {
        let fill = || {
            let mut m = FastMap::default();
            for i in 0..1000u64 {
                m.insert(i * 32, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(fill(), fill());
    }

    #[test]
    fn disperses_block_aligned_keys() {
        // Block addresses are 32-byte aligned; a weak hash would collide
        // them into a handful of buckets. Check the low bits spread.
        let mut low_bits = FastSet::default();
        for i in 0..256u64 {
            let mut h = FxHasher::default();
            h.write_u64(i * 32);
            low_bits.insert(h.finish() & 0xff);
        }
        assert!(
            low_bits.len() > 128,
            "low byte collapses: {}",
            low_bits.len()
        );
    }

    #[test]
    fn hashes_arbitrary_byte_strings() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is 21+");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is 21+");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is 21-");
        assert_ne!(a.finish(), c.finish());
    }
}
