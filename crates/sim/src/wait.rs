//! One-shot completion cells used to block a processor task until a
//! machine-model event completes (a miss response, a message arrival, a
//! barrier release, a lock grant).

use std::cell::{Cell, RefCell};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::account::Kind;
use crate::cpu::Cpu;
use crate::engine::{BlockInfo, Sim};
use crate::error::WaitTarget;
use crate::time::{Cycles, ProcId};

#[derive(Default)]
struct Inner {
    completed: Cell<Option<Cycles>>,
    waiter: Cell<Option<ProcId>>,
}

/// A one-shot completion cell.
///
/// A processor blocks on the cell with [`WaitCell::wait`]; a machine-model
/// event completes it with [`WaitCell::complete`], which charges the waiting
/// processor's stall to the cost kind it chose and wakes it at the
/// completion time.
///
/// Cells are single-waiter: structures that need many waiters (barriers,
/// message queues) keep one cell per waiter.
#[derive(Clone, Default)]
pub struct WaitCell {
    inner: Rc<Inner>,
}

impl fmt::Debug for WaitCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitCell")
            .field("completed", &self.inner.completed.get())
            .field("waiter", &self.inner.waiter.get())
            .finish()
    }
}

impl WaitCell {
    /// Creates a fresh, incomplete cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the cell has been completed.
    pub fn is_complete(&self) -> bool {
        self.inner.completed.get().is_some()
    }

    /// The completion time, if completed.
    pub fn completion_time(&self) -> Option<Cycles> {
        self.inner.completed.get()
    }

    /// Completes the cell at absolute time `at` and wakes the waiter (if
    /// one is blocked) at that time.
    ///
    /// # Panics
    ///
    /// Panics if the cell was already completed.
    pub fn complete(&self, sim: &Sim, at: Cycles) {
        assert!(
            self.inner.completed.get().is_none(),
            "WaitCell completed twice"
        );
        self.inner.completed.set(Some(at));
        if let Some(p) = self.inner.waiter.take() {
            sim.wake_at(p, at.max(sim.now()));
        }
    }

    /// Re-arms a completed cell for reuse.
    ///
    /// # Panics
    ///
    /// Panics if a waiter is still registered.
    pub fn reset(&self) {
        assert!(
            self.inner.waiter.get().is_none(),
            "cannot reset a WaitCell with a blocked waiter"
        );
        self.inner.completed.set(None);
    }

    /// Blocks the calling processor until the cell completes, charging the
    /// stall (from the current local clock to the completion time) to
    /// `kind`. Resolves to the completion time.
    pub fn wait<'a>(&'a self, cpu: &'a Cpu, kind: Kind) -> Wait<'a> {
        self.wait_labeled(cpu, kind, "event completion", WaitTarget::Any)
    }

    /// Like [`WaitCell::wait`], but labels the wait with a human-readable
    /// `reason` and a [`WaitTarget`] so a stalled run's
    /// [`crate::StallReport`] can say what this processor was waiting for
    /// and on whom.
    pub fn wait_labeled<'a>(
        &'a self,
        cpu: &'a Cpu,
        kind: Kind,
        reason: &'static str,
        target: WaitTarget,
    ) -> Wait<'a> {
        Wait {
            cell: self,
            cpu,
            kind,
            reason,
            target,
        }
    }
}

/// A free list of [`WaitCell`]s.
///
/// The SM coherence protocol completes one cell per shared miss — tens of
/// millions per paper-scale run — and each [`WaitCell::new`] is an `Rc`
/// heap allocation. Hot paths with a strict take/complete/wait lifecycle
/// take cells from a pool and return them when done; [`CellPool::put`]
/// recycles the allocation only when the caller holds the last handle, so
/// a cell that escaped (a stray clone held by a pending closure) is simply
/// dropped rather than resurrected underneath its holder.
#[derive(Debug, Default)]
pub struct CellPool {
    free: RefCell<Vec<WaitCell>>,
}

impl CellPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a fresh, incomplete cell, reusing a recycled allocation when
    /// one is available.
    pub fn take(&self) -> WaitCell {
        match self.free.borrow_mut().pop() {
            Some(cell) => {
                wwt_obs::count(wwt_obs::Ctr::SimPoolTakeRecycled, 1);
                cell
            }
            None => {
                wwt_obs::count(wwt_obs::Ctr::SimPoolTakeFresh, 1);
                WaitCell::default()
            }
        }
    }

    /// Recycles `cell` if this is the last live handle to it (and no
    /// waiter is registered); otherwise the handle is just dropped.
    pub fn put(&self, cell: WaitCell) {
        if Rc::strong_count(&cell.inner) == 1 && cell.inner.waiter.get().is_none() {
            wwt_obs::count(wwt_obs::Ctr::SimPoolPutRecycled, 1);
            cell.reset();
            self.free.borrow_mut().push(cell);
        } else {
            wwt_obs::count(wwt_obs::Ctr::SimPoolPutDropped, 1);
        }
    }
}

/// Future returned by [`WaitCell::wait`].
///
/// Borrows the cell and the [`Cpu`]: waiting is on every coherence hot
/// path, and cloning either (both are `Rc`-backed) cost two refcount
/// round trips per miss.
#[derive(Debug)]
#[must_use = "futures do nothing unless awaited"]
pub struct Wait<'a> {
    cell: &'a WaitCell,
    cpu: &'a Cpu,
    kind: Kind,
    reason: &'static str,
    target: WaitTarget,
}

impl Future for Wait<'_> {
    type Output = Cycles;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Cycles> {
        match self.cell.inner.completed.get() {
            Some(t) => {
                self.cell.inner.waiter.set(None);
                self.cpu.unblock_until(t, self.kind);
                Poll::Ready(t)
            }
            None => {
                self.cell.inner.waiter.set(Some(self.cpu.id()));
                // Record what we are blocked on so a stalled run can be
                // diagnosed; cleared again on the Ready path.
                let info = BlockInfo {
                    kind: self.kind,
                    reason: self.reason,
                    target: self.target,
                };
                self.cpu
                    .sim()
                    .with_proc(self.cpu.id(), |p| p.blocked = Some(info));
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};

    #[test]
    fn wait_charges_stall_to_kind() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        let cell = WaitCell::new();
        {
            let sim = Rc::clone(e.sim());
            let cell = cell.clone();
            let sim2 = Rc::clone(e.sim());
            sim.call_at(250, move || cell.complete(&sim2, 250)).unwrap();
        }
        e.spawn(ProcId::new(0), async move {
            cpu.compute(40);
            let t = cell.wait(&cpu, Kind::Wait).await;
            assert_eq!(t, 250);
            assert_eq!(cpu.clock(), 250);
        });
        let r = e.run();
        let p = r.proc(ProcId::new(0));
        assert_eq!(p.matrix.by_kind(Kind::Wait), 210);
        assert_eq!(p.matrix.by_kind(Kind::Compute), 40);
    }

    #[test]
    fn completed_before_wait_charges_nothing_extra() {
        let mut e = Engine::new(1, SimConfig::default());
        let cpu = e.cpu(ProcId::new(0));
        let cell = WaitCell::new();
        cell.complete(e.sim(), 0);
        e.spawn(ProcId::new(0), async move {
            cpu.compute(500);
            cell.wait(&cpu, Kind::Wait).await;
            assert_eq!(cpu.clock(), 500);
        });
        let r = e.run();
        assert_eq!(r.proc(ProcId::new(0)).matrix.by_kind(Kind::Wait), 0);
    }

    #[test]
    fn reset_allows_reuse() {
        let sim_engine = Engine::new(1, SimConfig::default());
        let cell = WaitCell::new();
        cell.complete(sim_engine.sim(), 10);
        assert_eq!(cell.completion_time(), Some(10));
        cell.reset();
        assert!(!cell.is_complete());
        cell.complete(sim_engine.sim(), 20);
        assert_eq!(cell.completion_time(), Some(20));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let e = Engine::new(1, SimConfig::default());
        let cell = WaitCell::new();
        cell.complete(e.sim(), 1);
        cell.complete(e.sim(), 2);
    }
}
