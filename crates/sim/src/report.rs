//! Measurement reports produced by a simulation run.

use crate::account::{Counter, Counters, CycleMatrix, Kind, Scope};
use crate::time::{Cycles, ProcId};
use crate::trace::TraceData;

/// A cumulative per-kind cycle snapshot taken at a phase boundary
/// (a barrier crossing or a collective completion).
///
/// Recorded per processor when
/// [`SimConfig::phase_marks`](crate::SimConfig) is set. Marks are
/// cumulative: the cycles *inside* the k-th segment of a processor's run
/// are the difference between its k-th and (k-1)-th marks. Every
/// processor participates in the same sequence of global synchronization
/// operations in an SPMD program, so the k-th mark on every processor
/// describes the same program point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhaseMark {
    /// The processor's local clock at the boundary.
    pub at: Cycles,
    /// Cumulative cycles by cost kind ([`Kind::ALL`] order).
    pub by_kind: [Cycles; Kind::COUNT],
}

/// Per-processor measurements.
#[derive(Clone, Debug)]
pub struct ProcReport {
    /// Which processor.
    pub id: ProcId,
    /// Final local clock (the processor's elapsed time).
    pub clock: Cycles,
    /// Cycle charges by (scope, kind).
    pub matrix: CycleMatrix,
    /// Event counters.
    pub counters: Counters,
    /// Time-resolved profile (one matrix per
    /// [`SimConfig::profile_bucket`](crate::SimConfig) bucket); empty
    /// unless profiling was enabled.
    pub profile: Vec<CycleMatrix>,
    /// Phase-boundary snapshots, in crossing order; empty unless
    /// [`SimConfig::phase_marks`](crate::SimConfig) was enabled.
    pub phase_log: Vec<PhaseMark>,
}

/// The full report of a simulation run.
///
/// The paper reports cycle breakdowns as *averages over all processors* and
/// event counts *per processor*; the helpers here compute both.
#[derive(Clone, Debug)]
pub struct SimReport {
    procs: Vec<ProcReport>,
    events_processed: u64,
    trace: Option<TraceData>,
}

impl SimReport {
    pub(crate) fn new(
        procs: Vec<ProcReport>,
        events_processed: u64,
        trace: Option<TraceData>,
    ) -> Self {
        SimReport {
            procs,
            events_processed,
            trace,
        }
    }

    /// The structured trace and metrics collected by this run, if tracing
    /// was enabled ([`SimConfig::trace`](crate::SimConfig)).
    pub fn trace(&self) -> Option<&TraceData> {
        self.trace.as_ref()
    }

    /// Number of processors in the run.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// The report for one processor.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn proc(&self, p: ProcId) -> &ProcReport {
        &self.procs[p.index()]
    }

    /// Iterates over all per-processor reports.
    pub fn procs(&self) -> impl Iterator<Item = &ProcReport> {
        self.procs.iter()
    }

    /// Total number of discrete events the engine processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Elapsed target time: the maximum final clock across processors.
    pub fn elapsed(&self) -> Cycles {
        self.procs.iter().map(|p| p.clock).max().unwrap_or(0)
    }

    /// Load imbalance: how much longer the slowest processor ran than the
    /// average, as a fraction (0.0 = perfectly balanced). The paper traces
    /// several costs — MSE's barrier, MP library waiting — to exactly
    /// this quantity.
    pub fn imbalance(&self) -> f64 {
        if self.procs.is_empty() {
            return 0.0;
        }
        let max = self.elapsed() as f64;
        let avg = self.procs.iter().map(|p| p.clock as f64).sum::<f64>() / self.procs.len() as f64;
        if avg == 0.0 {
            0.0
        } else {
            max / avg - 1.0
        }
    }

    /// The fraction of total cycles spent *waiting* (barrier, lock, and
    /// generic waits), across all processors — the aggregate
    /// synchronization overhead.
    pub fn wait_fraction(&self) -> f64 {
        let total: u64 = self.procs.iter().map(|p| p.matrix.total()).sum();
        if total == 0 {
            return 0.0;
        }
        let waits: u64 = self
            .procs
            .iter()
            .map(|p| {
                p.matrix.by_kind(Kind::Wait)
                    + p.matrix.by_kind(Kind::BarrierWait)
                    + p.matrix.by_kind(Kind::LockWait)
            })
            .sum();
        waits as f64 / total as f64
    }

    /// Cell-wise *average* cycle matrix across processors (the paper's
    /// "average over all processors" presentation).
    pub fn avg_matrix(&self) -> CycleMatrix {
        let n = self.procs.len().max(1) as u64;
        let mut avg = CycleMatrix::new();
        for p in &self.procs {
            for (s, k, c) in p.matrix.iter() {
                avg.add(s, k, c);
            }
        }
        let mut out = CycleMatrix::new();
        for s in Scope::ALL {
            for k in Kind::ALL {
                out.add(s, k, avg.get(s, k) / n);
            }
        }
        out
    }

    /// Cell-wise *summed* cycle matrix across processors.
    pub fn sum_matrix(&self) -> CycleMatrix {
        let mut sum = CycleMatrix::new();
        for p in &self.procs {
            sum.merge(&p.matrix);
        }
        sum
    }

    /// Average of a counter across processors (per-processor counts in the
    /// paper's event tables).
    pub fn avg_counter(&self, c: Counter) -> f64 {
        let n = self.procs.len().max(1) as f64;
        self.total_counter(c) as f64 / n
    }

    /// Sum of a counter across processors.
    pub fn total_counter(&self, c: Counter) -> u64 {
        self.procs.iter().map(|p| p.counters.get(c)).sum()
    }

    /// Merges another report's processors into this one (used for phase
    /// splits: init vs main loop).
    pub fn counters_merged(&self) -> Counters {
        let mut out = Counters::new();
        for p in &self.procs {
            out.merge(&p.counters);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_report() -> SimReport {
        let mut p0 = ProcReport {
            id: ProcId::new(0),
            clock: 100,
            matrix: CycleMatrix::new(),
            counters: Counters::new(),
            profile: Vec::new(),
            phase_log: Vec::new(),
        };
        p0.matrix.add(Scope::App, Kind::Compute, 80);
        p0.counters.add(Counter::PacketsSent, 4);
        let mut p1 = ProcReport {
            id: ProcId::new(1),
            clock: 120,
            matrix: CycleMatrix::new(),
            counters: Counters::new(),
            profile: Vec::new(),
            phase_log: Vec::new(),
        };
        p1.matrix.add(Scope::App, Kind::Compute, 120);
        p1.counters.add(Counter::PacketsSent, 8);
        SimReport::new(vec![p0, p1], 42, None)
    }

    #[test]
    fn elapsed_is_max_clock() {
        assert_eq!(demo_report().elapsed(), 120);
    }

    #[test]
    fn avg_matrix_divides_by_nprocs() {
        let avg = demo_report().avg_matrix();
        assert_eq!(avg.get(Scope::App, Kind::Compute), 100);
    }

    #[test]
    fn imbalance_measures_skew() {
        let r = demo_report();
        // clocks 100 and 120: max 120, avg 110 -> 120/110 - 1.
        assert!((r.imbalance() - (120.0 / 110.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn wait_fraction_is_zero_without_waits() {
        assert_eq!(demo_report().wait_fraction(), 0.0);
    }

    #[test]
    fn counter_aggregation() {
        let r = demo_report();
        assert_eq!(r.total_counter(Counter::PacketsSent), 12);
        assert!((r.avg_counter(Counter::PacketsSent) - 6.0).abs() < 1e-9);
    }
}
