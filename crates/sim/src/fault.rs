//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded pseudo-random oracle the machine models
//! consult at network-delivery time: should this packet be dropped,
//! duplicated, or delayed, and is either endpoint inside a fail window?
//! Because the oracle is driven by the engine's deterministic event order
//! and its own [`rand::rngs::SmallRng`], identical seeds replay
//! byte-identically — every injected fault lands on the same packet at the
//! same simulated time, run after run and regardless of host parallelism.
//!
//! The user-facing configuration is [`FaultConfig`], parsed from the
//! `--faults seed=S,drop=P,...` command-line syntax by
//! [`FaultConfig::parse`]. Probabilities are stored in parts-per-million so
//! the config stays `Copy + Eq` and hashes stably into the run-cache key.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::Cycles;

/// A half-open window `[from, until)` of simulated time during which one
/// processor is considered failed: every packet to or from it is dropped.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProcWindow {
    /// Index of the affected processor.
    pub proc: usize,
    /// First cycle of the window (inclusive).
    pub from: Cycles,
    /// End of the window (exclusive).
    pub until: Cycles,
}

impl ProcWindow {
    /// Whether `at` falls inside the window.
    pub fn contains(&self, at: Cycles) -> bool {
        self.from <= at && at < self.until
    }
}

/// A half-open window during which one processor runs slowed down: every
/// [`crate::Cpu::compute`] charge is multiplied by `factor`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SlowWindow {
    /// Index of the affected processor.
    pub proc: usize,
    /// First cycle of the window (inclusive, against the local clock).
    pub from: Cycles,
    /// End of the window (exclusive, against the local clock).
    pub until: Cycles,
    /// Multiplier applied to computation charges inside the window.
    pub factor: u32,
}

impl SlowWindow {
    /// Whether `at` falls inside the window.
    pub fn contains(&self, at: Cycles) -> bool {
        self.from <= at && at < self.until
    }
}

/// User-facing fault-injection configuration.
///
/// Probabilities are stored in parts-per-million (`10_000` ppm = 1%), so
/// the struct is `Copy + Eq` and its `Debug` rendering — which
/// participates in the run-cache key through
/// [`crate::SimConfig`] — is exact.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Seed for the fault oracle's private RNG.
    pub seed: u64,
    /// Per-packet drop probability, in parts per million.
    pub drop_ppm: u32,
    /// Per-packet duplication probability, in parts per million.
    pub dup_ppm: u32,
    /// Per-packet delay (reorder) probability, in parts per million.
    pub reorder_ppm: u32,
    /// Maximum extra latency, in cycles, for delayed/duplicated packets
    /// and for shared-miss jitter.
    pub jitter: Cycles,
    /// Optional fail window: one processor drops all its traffic.
    pub fail: Option<ProcWindow>,
    /// Optional slow window: one processor computes slower by a factor.
    pub slow: Option<SlowWindow>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1,
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_ppm: 0,
            jitter: 400,
            fail: None,
            slow: None,
        }
    }
}

impl FaultConfig {
    /// Whether the plan can perturb network traffic at all.
    ///
    /// When this is `false` (the default config, or an explicit
    /// `drop=0,dup=0,reorder=0` with no fail window), the reliable-delivery
    /// machinery stays disabled and runs are byte-identical to the
    /// no-faults baseline; a `slow=` window still takes effect on its own.
    pub fn perturbs_network(&self) -> bool {
        self.drop_ppm > 0 || self.dup_ppm > 0 || self.reorder_ppm > 0 || self.fail.is_some()
    }

    /// Parses the `--faults` command-line syntax:
    ///
    /// `seed=S,drop=P,dup=P,reorder=P,jitter=CYCLES,fail=PROC@FROM..UNTIL,slow=PROC@FROM..UNTILxFACTOR`
    ///
    /// Probabilities are decimal fractions (`drop=0.01` is 1%); every key
    /// is optional and unknown keys are rejected.
    pub fn parse(s: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: expected key=value"))?;
            match key {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|e| format!("fault seed `{value}`: {e}"))?;
                }
                "drop" => cfg.drop_ppm = parse_prob("drop", value)?,
                "dup" => cfg.dup_ppm = parse_prob("dup", value)?,
                "reorder" => cfg.reorder_ppm = parse_prob("reorder", value)?,
                "jitter" => {
                    cfg.jitter = value
                        .parse()
                        .map_err(|e| format!("fault jitter `{value}`: {e}"))?;
                }
                "fail" => {
                    let (proc, from, until) = parse_window("fail", value)?;
                    cfg.fail = Some(ProcWindow { proc, from, until });
                }
                "slow" => {
                    let (spec, factor) = value
                        .split_once('x')
                        .ok_or_else(|| format!("fault slow `{value}`: expected ...xFACTOR"))?;
                    let (proc, from, until) = parse_window("slow", spec)?;
                    let factor: u32 = factor
                        .parse()
                        .map_err(|e| format!("fault slow factor `{factor}`: {e}"))?;
                    if factor == 0 {
                        return Err("fault slow factor must be >= 1".into());
                    }
                    cfg.slow = Some(SlowWindow {
                        proc,
                        from,
                        until,
                        factor,
                    });
                }
                _ => {
                    return Err(format!(
                        "unknown fault key `{key}` (expected seed, drop, dup, reorder, \
                         jitter, fail, or slow)"
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// One part-per-million step, the resolution probabilities are stored at.
const PPM: u32 = 1_000_000;

fn parse_prob(key: &str, value: &str) -> Result<u32, String> {
    let p: f64 = value
        .parse()
        .map_err(|e| format!("fault {key} `{value}`: {e}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("fault {key} `{value}`: must be in [0, 1]"));
    }
    Ok((p * f64::from(PPM)).round() as u32)
}

fn parse_window(key: &str, value: &str) -> Result<(usize, Cycles, Cycles), String> {
    let (proc, range) = value
        .split_once('@')
        .ok_or_else(|| format!("fault {key} `{value}`: expected PROC@FROM..UNTIL"))?;
    let proc: usize = proc
        .parse()
        .map_err(|e| format!("fault {key} processor `{proc}`: {e}"))?;
    let (from, until) = range
        .split_once("..")
        .ok_or_else(|| format!("fault {key} `{value}`: expected FROM..UNTIL"))?;
    let from: Cycles = from
        .parse()
        .map_err(|e| format!("fault {key} window start `{from}`: {e}"))?;
    let until: Cycles = until
        .parse()
        .map_err(|e| format!("fault {key} window end `{until}`: {e}"))?;
    if until <= from {
        return Err(format!(
            "fault {key} window `{value}`: end must be after start"
        ));
    }
    Ok((proc, from, until))
}

/// The fate the fault oracle assigns to one injected packet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PacketFate {
    /// Deliver normally, with `extra` cycles of injected latency
    /// (zero when the packet is untouched).
    Deliver {
        /// Injected extra latency in cycles.
        extra: Cycles,
    },
    /// Silently drop the packet.
    Drop,
    /// Deliver the packet and a duplicate copy `extra` cycles later.
    Duplicate {
        /// Extra latency of the duplicate copy relative to the original.
        extra: Cycles,
    },
}

/// Tally of every fault the plan injected, for reporting and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Packets dropped by random drop.
    pub drops: u64,
    /// Packets dropped because an endpoint was inside a fail window.
    pub fail_drops: u64,
    /// Packets duplicated.
    pub dups: u64,
    /// Packets delayed (reordered).
    pub delays: u64,
    /// Total extra latency injected into delayed/duplicated packets.
    pub delay_cycles: Cycles,
    /// Shared-miss jitter draws that fired (shared-memory machine).
    pub miss_jitters: u64,
    /// Total jitter cycles charged into shared-miss latency.
    pub miss_jitter_cycles: Cycles,
}

impl FaultLog {
    /// Total number of injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.drops + self.fail_drops + self.dups + self.delays + self.miss_jitters
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drops={} fail_drops={} dups={} delays={} delay_cycles={} \
             miss_jitters={} miss_jitter_cycles={}",
            self.drops,
            self.fail_drops,
            self.dups,
            self.delays,
            self.delay_cycles,
            self.miss_jitters,
            self.miss_jitter_cycles,
        )
    }
}

/// The live fault oracle: a [`FaultConfig`] plus its private RNG and the
/// log of everything injected so far.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SmallRng,
    log: FaultLog,
}

impl FaultPlan {
    /// Builds the oracle for `cfg`, seeding the RNG from `cfg.seed`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            log: FaultLog::default(),
        }
    }

    /// The configuration the plan was built from.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// The log of injected faults so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    fn draw(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.rng.gen_range(0..PPM) < ppm
    }

    fn extra_latency(&mut self) -> Cycles {
        1 + self.rng.gen_range(0..self.cfg.jitter.max(1))
    }

    /// Decides the fate of a packet injected at global time `at` between
    /// processors `src` and `dest`. Consumes RNG state deterministically
    /// (the draws depend only on the call sequence, which the engine's
    /// event order fixes).
    pub fn packet_fate(&mut self, src: usize, dest: usize, at: Cycles) -> PacketFate {
        if let Some(w) = self.cfg.fail {
            if w.contains(at) && (src == w.proc || dest == w.proc) {
                self.log.fail_drops += 1;
                return PacketFate::Drop;
            }
        }
        if self.draw(self.cfg.drop_ppm) {
            self.log.drops += 1;
            return PacketFate::Drop;
        }
        if self.draw(self.cfg.dup_ppm) {
            let extra = self.extra_latency();
            self.log.dups += 1;
            self.log.delay_cycles += extra;
            return PacketFate::Duplicate { extra };
        }
        if self.draw(self.cfg.reorder_ppm) {
            let extra = self.extra_latency();
            self.log.delays += 1;
            self.log.delay_cycles += extra;
            return PacketFate::Deliver { extra };
        }
        PacketFate::Deliver { extra: 0 }
    }

    /// Draws shared-miss jitter for the shared-memory machine: with the
    /// reorder probability, returns extra cycles to charge into the miss
    /// latency; zero otherwise. This is the SM analogue of packet delay.
    pub fn miss_jitter(&mut self) -> Cycles {
        if self.draw(self.cfg.reorder_ppm) {
            let extra = self.extra_latency();
            self.log.miss_jitters += 1;
            self.log.miss_jitter_cycles += extra;
            extra
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let cfg =
            FaultConfig::parse("seed=7,drop=0.01,dup=0.002,reorder=0.5,jitter=250,fail=2@100..900")
                .unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.drop_ppm, 10_000);
        assert_eq!(cfg.dup_ppm, 2_000);
        assert_eq!(cfg.reorder_ppm, 500_000);
        assert_eq!(cfg.jitter, 250);
        assert_eq!(
            cfg.fail,
            Some(ProcWindow {
                proc: 2,
                from: 100,
                until: 900
            })
        );
        assert!(cfg.perturbs_network());
    }

    #[test]
    fn parse_slow_window() {
        let cfg = FaultConfig::parse("slow=1@0..5000x3").unwrap();
        assert_eq!(
            cfg.slow,
            Some(SlowWindow {
                proc: 1,
                from: 0,
                until: 5000,
                factor: 3
            })
        );
        // A slow window alone does not perturb the network.
        assert!(!cfg.perturbs_network());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultConfig::parse("drop").is_err());
        assert!(FaultConfig::parse("drop=1.5").is_err());
        assert!(FaultConfig::parse("drop=-0.1").is_err());
        assert!(FaultConfig::parse("frobnicate=1").is_err());
        assert!(FaultConfig::parse("fail=1@9..4").is_err());
        assert!(FaultConfig::parse("slow=1@0..10x0").is_err());
    }

    #[test]
    fn empty_spec_is_default() {
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::default());
        assert!(!FaultConfig::default().perturbs_network());
    }

    #[test]
    fn same_seed_same_fates() {
        let cfg = FaultConfig::parse("seed=3,drop=0.2,dup=0.1,reorder=0.1").unwrap();
        let fates = |mut plan: FaultPlan| {
            (0..200)
                .map(|i| plan.packet_fate(i % 4, (i + 1) % 4, i as u64 * 10))
                .collect::<Vec<_>>()
        };
        let a = fates(FaultPlan::new(cfg));
        let b = fates(FaultPlan::new(cfg));
        assert_eq!(a, b);
        assert!(a.iter().any(|f| matches!(f, PacketFate::Drop)));
    }

    #[test]
    fn fail_window_drops_both_directions() {
        let cfg = FaultConfig::parse("fail=1@100..200").unwrap();
        let mut plan = FaultPlan::new(cfg);
        assert_eq!(plan.packet_fate(1, 0, 150), PacketFate::Drop);
        assert_eq!(plan.packet_fate(0, 1, 199), PacketFate::Drop);
        assert_eq!(
            plan.packet_fate(0, 1, 200),
            PacketFate::Deliver { extra: 0 }
        );
        assert_eq!(
            plan.packet_fate(0, 2, 150),
            PacketFate::Deliver { extra: 0 }
        );
        assert_eq!(plan.log().fail_drops, 2);
    }

    #[test]
    fn zero_probabilities_never_draw() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        for i in 0..100 {
            assert_eq!(plan.packet_fate(0, 1, i), PacketFate::Deliver { extra: 0 });
            assert_eq!(plan.miss_jitter(), 0);
        }
        assert_eq!(plan.log().total(), 0);
    }
}
