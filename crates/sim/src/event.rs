//! Event scheduling: the calendar-queue scheduler, its sharded
//! (quantum-synchronized) composition, and the legacy binary-heap queue.
//!
//! Events are ordered by (timestamp, sequence number); the sequence number
//! makes processing order deterministic for simultaneous events (FIFO).
//! Three schedulers implement that contract:
//!
//! * [`CalendarQueue`] — the engine's scheduler. A ring of per-cycle FIFO
//!   slots covering the near future plus an overflow heap for far-future
//!   events. Simulated events overwhelmingly land within a few network
//!   latencies of the present, so push and pop are O(1) instead of the
//!   heap's O(log n).
//! * [`ShardedQueue`] — one [`CalendarQueue`] per shard of the simulated
//!   machine, sharing a single global sequence counter. Cross-processor
//!   events are routed to the owning shard and popped by a deterministic
//!   (time, seq) merge across shard heads, which makes the pop order —
//!   and therefore every simulation result — byte-identical to a single
//!   global queue for **any** shard count. This is the WWT discipline's
//!   event-queue half: each shard's queue can be advanced independently
//!   up to a quantum boundary, and the merge is the boundary exchange.
//! * [`EventQueue`] — the original `BinaryHeap` scheduler, kept as the
//!   reference implementation and the baseline for the scheduler benches
//!   (`benches/scheduler.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::callback::SmallCall;
use crate::time::{Cycles, ProcId};

/// A scheduled simulator action.
pub enum Action {
    /// Re-poll the task of the given processor.
    Resume(ProcId),
    /// Run an arbitrary machine-model callback (message delivery,
    /// directory processing, ...). Small captures are stored inline —
    /// see [`SmallCall`].
    Call(SmallCall),
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Resume(p) => write!(f, "Resume({p})"),
            Action::Call(_) => f.write_str("Call(..)"),
        }
    }
}

/// One entry in the event queue.
#[derive(Debug)]
pub struct Event {
    /// When the action fires, in target cycles.
    pub time: Cycles,
    /// Tie-breaker for events at the same time (insertion order).
    pub seq: u64,
    /// What to do.
    pub action: Action,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic min-priority queue of [`Event`]s backed by a binary
/// heap. The reference scheduler: [`CalendarQueue`] must pop in exactly
/// this order, and the scheduler benches measure one against the other.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` at absolute time `time`.
    pub fn push(&mut self, time: Cycles, action: Action) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, action });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Ring capacity of the calendar: events within this many cycles of the
/// cursor live in per-cycle slots; anything further sits in the overflow
/// heap until the cursor gets close. Covers dozens of network latencies,
/// so only long fault timers (retransmit deadlines, jitter tails) ever
/// overflow.
const RING: usize = 4096;
const RING_MASK: u64 = (RING as u64) - 1;
/// One occupancy bit per slot, one summary bit per 64-slot word.
const WORDS: usize = RING / 64;

/// A far-future event parked in the overflow heap, ordered like [`Event`].
struct Parked {
    time: Cycles,
    seq: u64,
    action: Action,
}

impl PartialEq for Parked {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Parked {}
impl PartialOrd for Parked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Parked {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour inside BinaryHeap.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// One calendar slot: the FIFO of events scheduled for one exact cycle.
/// `head` indexes the next event to pop; the vector is cleared (not
/// shifted) once fully drained, so a slot's allocation is reused across
/// laps of the ring.
#[derive(Default)]
struct Slot {
    head: usize,
    items: Vec<(u64, Action)>,
}

impl Slot {
    fn is_drained(&self) -> bool {
        self.head >= self.items.len()
    }
}

/// A calendar-queue scheduler: O(1) push and pop with the exact
/// (time, seq) pop order of [`EventQueue`].
///
/// The near future — `RING` cycles from the cursor — is a ring of
/// per-cycle slots, each a FIFO (sequence numbers within one cycle are
/// insertion-ordered, so a plain vector is already sorted). A two-level
/// occupancy bitmap finds the next non-empty slot in a handful of word
/// scans. Far-future events wait in an overflow heap and migrate into the
/// ring as the cursor approaches; migrated events splice into their
/// slot's pending region by sequence number, preserving the global FIFO
/// tie-break.
pub struct CalendarQueue {
    slots: Vec<Slot>,
    /// Occupancy bit per slot.
    words: [u64; WORDS],
    /// Summary bit per word of `words`.
    summary: u64,
    /// Lower bound on every ring event's time; advanced by pops and by
    /// sparse-gap jumps. Never rewound: the ring's slot→time mapping is
    /// anchored to it.
    cursor: Cycles,
    /// Events in the ring (excludes overflow and front).
    ring_len: usize,
    overflow: BinaryHeap<Parked>,
    /// Events that arrived *behind* the cursor. In a sharded queue a
    /// shard's cursor may jump ahead of global time (a sparse-gap jump to
    /// its own overflow minimum) and then be handed an event at an
    /// earlier, still-legal global time. Such events are strictly earlier
    /// than everything in the ring, so this heap always pops first.
    front: BinaryHeap<Parked>,
    /// Memoized head key. `peek_key` fills it; `pop` clears it; `push`
    /// tightens it when the new event undercuts the cached head. Keeps
    /// the sharded merge — which peeks every shard per pop — from
    /// re-scanning N-1 unchanged bitmaps per event.
    head_cache: Option<(Cycles, u64)>,
}

impl fmt::Debug for CalendarQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("cursor", &self.cursor)
            .field("ring_len", &self.ring_len)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue {
            slots: (0..RING).map(|_| Slot::default()).collect(),
            words: [0; WORDS],
            summary: 0,
            cursor: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            front: BinaryHeap::new(),
            head_cache: None,
        }
    }
}

impl CalendarQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len() + self.front.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `(time, seq, action)`. Any `time` is accepted: events
    /// behind the cursor (possible after a sparse-gap cursor jump in a
    /// sharded queue) go to the front heap and pop before the ring.
    pub fn push(&mut self, time: Cycles, seq: u64, action: Action) {
        if let Some(c) = self.head_cache {
            if (time, seq) < c {
                self.head_cache = Some((time, seq));
            }
        }
        if time < self.cursor {
            self.front.push(Parked { time, seq, action });
            return;
        }
        if time - self.cursor >= RING as u64 {
            self.overflow.push(Parked { time, seq, action });
            return;
        }
        self.ring_insert(time, seq, action);
    }

    fn ring_insert(&mut self, time: Cycles, seq: u64, action: Action) {
        let idx = (time & RING_MASK) as usize;
        let slot = &mut self.slots[idx];
        // Fast path: sequence numbers grow monotonically, so appends are
        // already sorted. Only overflow migration can arrive out of order.
        let pending = &slot.items[slot.head.min(slot.items.len())..];
        if pending.last().is_none_or(|&(s, _)| s < seq) {
            slot.items.push((seq, action));
        } else {
            let pos = slot.head + pending.partition_point(|&(s, _)| s < seq);
            slot.items.insert(pos, (seq, action));
        }
        self.words[idx / 64] |= 1 << (idx % 64);
        self.summary |= 1 << (idx / 64);
        self.ring_len += 1;
    }

    /// Pulls every overflow event that now fits in the ring. When the
    /// ring is empty the cursor first jumps to the overflow minimum, so a
    /// sparse far future costs one heap pop, not a walk of empty slots.
    fn migrate_overflow(&mut self) {
        if self.ring_len == 0 {
            if let Some(top) = self.overflow.peek() {
                self.cursor = top.time;
            }
        }
        while self
            .overflow
            .peek()
            .is_some_and(|p| p.time - self.cursor < RING as u64)
        {
            let p = self.overflow.pop().expect("peeked");
            self.ring_insert(p.time, p.seq, p.action);
        }
    }

    /// The slot index of the next non-empty slot at or after the cursor,
    /// in circular (= time) order. `None` when the ring is empty.
    fn next_slot(&self) -> Option<usize> {
        if self.ring_len == 0 {
            return None;
        }
        let start = (self.cursor & RING_MASK) as usize;
        let (sw, sb) = (start / 64, start % 64);
        // First word: only bits at or after the start position.
        let first = self.words[sw] & (!0u64 << sb);
        if first != 0 {
            return Some(sw * 64 + first.trailing_zeros() as usize);
        }
        // Remaining words in circular order via the summary bitmap.
        for step in 1..=WORDS {
            let w = (sw + step) % WORDS;
            if self.summary & (1 << w) != 0 {
                let bits = if w == sw {
                    // Wrapped all the way: the bits before the start.
                    self.words[w] & !(!0u64 << sb)
                } else {
                    self.words[w]
                };
                if bits != 0 {
                    return Some(w * 64 + bits.trailing_zeros() as usize);
                }
            }
        }
        None
    }

    /// The absolute time a ring slot currently represents: the next time
    /// at or after the cursor that maps onto it.
    fn slot_time(&self, idx: usize) -> Cycles {
        let base = self.cursor & !RING_MASK;
        let t = base + idx as u64;
        if t >= self.cursor {
            t
        } else {
            t + RING as u64
        }
    }

    /// The `(time, seq)` key of the earliest event without removing it.
    pub fn peek_key(&mut self) -> Option<(Cycles, u64)> {
        if let Some(k) = self.head_cache {
            return Some(k);
        }
        // Front events are strictly behind the cursor, hence strictly
        // earlier than every ring and overflow event.
        if let Some(p) = self.front.peek() {
            let k = (p.time, p.seq);
            self.head_cache = Some(k);
            return Some(k);
        }
        self.migrate_overflow();
        let idx = self.next_slot()?;
        let slot = &self.slots[idx];
        let k = (self.slot_time(idx), slot.items[slot.head].0);
        self.head_cache = Some(k);
        Some(k)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.head_cache = None;
        if let Some(p) = self.front.pop() {
            // The cursor stays put: it anchors the ring mapping and is
            // already ahead of this event.
            return Some(Event {
                time: p.time,
                seq: p.seq,
                action: p.action,
            });
        }
        self.migrate_overflow();
        let idx = self.next_slot()?;
        let time = self.slot_time(idx);
        self.cursor = time;
        let slot = &mut self.slots[idx];
        let (seq, action) = std::mem::replace(
            &mut slot.items[slot.head],
            (0, Action::Resume(ProcId::new(0))),
        );
        slot.head += 1;
        if slot.is_drained() {
            slot.items.clear();
            slot.head = 0;
            self.words[idx / 64] &= !(1 << (idx % 64));
            if self.words[idx / 64] == 0 {
                self.summary &= !(1 << (idx / 64));
            }
        }
        self.ring_len -= 1;
        Some(Event { time, seq, action })
    }
}

/// Per-shard calendar queues behind one global sequence counter: the
/// event-queue half of the quantum-synchronized (WWT) engine.
///
/// Every event is routed to the shard that owns its target processor
/// (engine-global events go to shard 0). [`ShardedQueue::pop`] merges the
/// shard heads by `(time, seq)`, so the pop order is byte-identical to a
/// single global queue **for any shard count** — sharding the schedule
/// can never change a simulation result. A shard's queue is independently
/// advanceable up to the quantum boundary, which is what lets worker
/// threads own shards in the parallel engine (`crate::parallel`).
pub struct ShardedQueue {
    shards: Vec<CalendarQueue>,
    next_seq: u64,
    /// Host-metrics flag, cached at construction (`SimConfig::trace`
    /// discipline: one predictable branch per push/pop, no atomic load).
    obs: bool,
}

impl fmt::Debug for ShardedQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedQueue")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl ShardedQueue {
    /// Creates a queue over `nshards` shards (at least one).
    pub fn new(nshards: usize) -> Self {
        ShardedQueue {
            shards: (0..nshards.max(1)).map(|_| CalendarQueue::new()).collect(),
            next_seq: 0,
            obs: wwt_obs::enabled(),
        }
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// Schedules `action` at `time` on `shard` (clamped to the shard
    /// count), assigning the next global sequence number.
    pub fn push_to(&mut self, shard: usize, time: Cycles, action: Action) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = shard.min(self.shards.len() - 1);
        self.shards[shard].push(time, seq, action);
        if self.obs {
            wwt_obs::shard_count(wwt_obs::ShardCtr::SimEventsPushed, shard, 1);
            wwt_obs::shard_max(
                wwt_obs::ShardGauge::SimQueueDepthHwm,
                shard,
                self.shards[shard].len() as u64,
            );
        }
    }

    /// Schedules an engine-global `action` (no processor affinity) on
    /// shard 0.
    pub fn push(&mut self, time: Cycles, action: Action) {
        self.push_to(0, time, action);
    }

    /// Removes and returns the globally earliest event: the deterministic
    /// `(time, seq)` merge across shard heads.
    pub fn pop(&mut self) -> Option<Event> {
        if self.shards.len() == 1 {
            let e = self.shards[0].pop();
            if self.obs && e.is_some() {
                wwt_obs::shard_count(wwt_obs::ShardCtr::SimEventsPopped, 0, 1);
            }
            return e;
        }
        let mut best: Option<(Cycles, u64, usize)> = None;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if let Some((t, s)) = shard.peek_key() {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, i));
                }
            }
        }
        let (_, _, i) = best?;
        if self.obs {
            wwt_obs::shard_count(wwt_obs::ShardCtr::SimEventsPopped, i, 1);
        }
        self.shards[i].pop()
    }

    /// Number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Action::Resume(ProcId::new(0)));
        q.push(10, Action::Resume(ProcId::new(1)));
        q.push(20, Action::Resume(ProcId::new(2)));
        let order: Vec<Cycles> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(100, Action::Resume(ProcId::new(i)));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.action {
                Action::Resume(p) => p.index(),
                Action::Call(_) => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Action::Resume(ProcId::new(0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    /// Drives a reference [`EventQueue`] and a [`ShardedQueue`] through
    /// the same randomized push/pop schedule and asserts identical pop
    /// order. `proc_of` tags each event with a fake processor id so the
    /// sharded queue exercises its routing.
    fn lockstep(nshards: usize, pushes: &[(Cycles, usize)]) {
        let nprocs = 8;
        let mut reference = EventQueue::new();
        let mut sharded = ShardedQueue::new(nshards);
        let mut i = 0;
        let mut now = 0;
        // Interleave: two pushes, one pop, like a running simulation.
        loop {
            for _ in 0..2 {
                if let Some(&(dt, p)) = pushes.get(i) {
                    let t = now + dt;
                    reference.push(t, Action::Resume(ProcId::new(p)));
                    let shard = p * nshards / nprocs;
                    sharded.push_to(shard, t, Action::Resume(ProcId::new(p)));
                    i += 1;
                }
            }
            match (reference.pop(), sharded.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!((a.time, a.seq), (b.time, b.seq), "pop order diverged");
                    now = a.time;
                }
                (a, b) => panic!(
                    "queues disagree on emptiness: reference={:?} sharded={:?}",
                    a.map(|e| e.time),
                    b.map(|e| e.time)
                ),
            }
            assert_eq!(reference.len(), sharded.len());
        }
    }

    #[test]
    fn sharded_queue_matches_heap_order_for_any_shard_count() {
        // Deterministic pseudo-random schedule, including same-cycle
        // collisions (dt 0) and far-future overflow events (dt > RING).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let pushes: Vec<(Cycles, usize)> = (0..500)
            .map(|_| {
                let r = step();
                let dt = match r % 10 {
                    0 => 0,
                    1..=6 => r % 300,
                    7 | 8 => r % 4000,
                    _ => 4096 + r % 20_000,
                };
                (dt, (step() % 8) as usize)
            })
            .collect();
        for nshards in [1, 2, 3, 4, 8] {
            lockstep(nshards, &pushes);
        }
    }

    #[test]
    fn calendar_handles_same_cycle_cascades() {
        // Events pushed at the exact cycle being drained must pop FIFO
        // within that cycle, like the heap.
        let mut q = CalendarQueue::new();
        q.push(100, 0, Action::Resume(ProcId::new(0)));
        q.push(100, 1, Action::Resume(ProcId::new(1)));
        let e = q.pop().unwrap();
        assert_eq!((e.time, e.seq), (100, 0));
        // A cascade: while at t=100, schedule more work for t=100.
        q.push(100, 2, Action::Resume(ProcId::new(2)));
        let e = q.pop().unwrap();
        assert_eq!((e.time, e.seq), (100, 1));
        let e = q.pop().unwrap();
        assert_eq!((e.time, e.seq), (100, 2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_jumps_sparse_gaps_through_overflow() {
        let mut q = CalendarQueue::new();
        q.push(7, 0, Action::Resume(ProcId::new(0)));
        q.push(1_000_000_000, 1, Action::Resume(ProcId::new(1)));
        assert_eq!(q.pop().unwrap().time, 7);
        assert_eq!(q.peek_key(), Some((1_000_000_000, 1)));
        assert_eq!(q.pop().unwrap().time, 1_000_000_000);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_migration_preserves_seq_order_at_equal_times() {
        let mut q = CalendarQueue::new();
        // seq 0 parks in the overflow (8000 is beyond the ring horizon
        // from cursor 0); seqs 1 and 2 land in the ring.
        q.push(8_000, 0, Action::Resume(ProcId::new(0)));
        q.push(10, 1, Action::Resume(ProcId::new(1)));
        q.push(4_000, 2, Action::Resume(ProcId::new(2)));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2); // cursor now 4000
                                             // 8000 is now ring-reachable but seq 0 is still parked (pushes
                                             // never migrate). Append a later seq to the same future cycle,
                                             // then let the next pop migrate: the parked event must splice in
                                             // *before* the resident one.
        q.push(8_000, 3, Action::Resume(ProcId::new(3)));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert_eq!((a.time, a.seq), (8_000, 0));
        assert_eq!((b.time, b.seq), (8_000, 3));
    }
}
