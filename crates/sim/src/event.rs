//! The global event queue.
//!
//! Events are ordered by (timestamp, sequence number); the sequence number
//! makes processing order deterministic for simultaneous events (FIFO).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::{Cycles, ProcId};

/// A scheduled simulator action.
pub enum Action {
    /// Re-poll the task of the given processor.
    Resume(ProcId),
    /// Run an arbitrary machine-model callback (message delivery,
    /// directory processing, ...).
    Call(Box<dyn FnOnce()>),
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Resume(p) => write!(f, "Resume({p})"),
            Action::Call(_) => f.write_str("Call(..)"),
        }
    }
}

/// One entry in the event queue.
#[derive(Debug)]
pub struct Event {
    /// When the action fires, in target cycles.
    pub time: Cycles,
    /// Tie-breaker for events at the same time (insertion order).
    pub seq: u64,
    /// What to do.
    pub action: Action,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic min-priority queue of [`Event`]s.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` at absolute time `time`.
    pub fn push(&mut self, time: Cycles, action: Action) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, action });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Action::Resume(ProcId::new(0)));
        q.push(10, Action::Resume(ProcId::new(1)));
        q.push(20, Action::Resume(ProcId::new(2)));
        let order: Vec<Cycles> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(100, Action::Resume(ProcId::new(i)));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.action {
                Action::Resume(p) => p.index(),
                Action::Call(_) => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Action::Resume(ProcId::new(0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
