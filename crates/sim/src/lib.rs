//! Deterministic discrete-event simulation engine for the WWT reproduction.
//!
//! This crate is the substrate that both simulated machines (the
//! message-passing machine in `wwt-mp` and the shared-memory machine in
//! `wwt-sm`) are built on. It plays the role of the Wisconsin Wind Tunnel's
//! direct-execution + discrete-event core:
//!
//! * each simulated processor runs a *target program* written as a Rust
//!   `async` task over a [`Cpu`] handle,
//! * pure computation is charged to the processor's local clock without any
//!   global coordination ([`Cpu::compute`]),
//! * every interaction between processors (a cache-coherence transaction, a
//!   message send, a barrier, a lock) is re-synchronized through a global
//!   event queue so that interactions are processed in global timestamp
//!   order,
//! * execution-time charges are recorded in a per-processor
//!   [`account::CycleMatrix`] of (attribution scope, cost kind)
//!   cells, from which the paper's per-table breakdowns are derived.
//!
//! The cooperative engine is single-threaded and fully deterministic: the
//! same program and seed produce bit-identical cycle counts and event
//! traces, for any [`SimConfig::sim_threads`] shard count. The [`parallel`]
//! module carries the same quantum-synchronized discipline onto real worker
//! threads for `Send` actor workloads.
//!
//! # Example
//!
//! ```
//! use wwt_sim::{Engine, SimConfig, Kind};
//!
//! let mut engine = Engine::new(2, SimConfig::default());
//! for p in engine.proc_ids() {
//!     let cpu = engine.cpu(p);
//!     engine.spawn(p, async move {
//!         cpu.compute(100);          // 100 cycles of computation
//!         cpu.charge(Kind::PrivMiss, 21); // a private cache miss
//!     });
//! }
//! let report = engine.run();
//! assert_eq!(report.proc(0.into()).clock, 121);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod account;
pub mod barrier;
pub mod callback;
pub mod cpu;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod hash;
pub mod parallel;
pub mod report;
pub mod time;
pub mod trace;
pub mod wait;

pub use account::{Counter, Counters, CycleMatrix, Kind, Scope};
pub use barrier::HwBarrier;
pub use callback::SmallCall;
pub use cpu::{Cpu, ScopeGuard};
pub use engine::{Engine, Sim, SimConfig};
pub use error::{BlockedProc, SimError, StallReport, WaitTarget};
pub use fault::{FaultConfig, FaultLog, FaultPlan, PacketFate, ProcWindow, SlowWindow};
pub use hash::{FastMap, FastSet};
pub use parallel::{ParConfig, ParEngine, ParReport};
pub use report::{PhaseMark, ProcReport, SimReport};
pub use time::{Cycles, ProcId};
pub use trace::{
    Histogram, Mark, Metric, MetricsRegistry, TraceBuffer, TraceData, TraceEvent, TraceSink,
    TraceWhat,
};
pub use wait::{CellPool, WaitCell};

/// Host-side self-observability (re-exported from `wwt-obs`): the metrics
/// registry the engine hot paths report into, plus the flight recorder
/// attached to [`StallReport::obs`].
pub use wwt_obs as obs;
