//! Scheduler microbenchmarks: the legacy binary-heap [`EventQueue`]
//! against the engine's [`CalendarQueue`] and its quantum-synchronized
//! sharded composition, driven by an EM3D-like event stream, plus the
//! threaded parallel engine across shard counts on the ring workload.
//!
//! The event stream mirrors what the em3d experiments feed the
//! scheduler: the overwhelming majority of events land one network
//! latency (100 cycles) ahead of the present, a few are immediate
//! wakeups, and an occasional barrier re-arm jumps a couple of thousand
//! cycles out — exactly the locality the calendar queue exploits.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use wwt_sim::event::{Action, CalendarQueue, EventQueue, ShardedQueue};
use wwt_sim::parallel::workloads::install_ring;
use wwt_sim::{ParConfig, ParEngine, ProcId};

const NPROCS: usize = 32;
const EVENTS: u64 = 100_000;

/// Deterministic EM3D-like delay distribution: mostly the 100-cycle
/// network latency, some immediate re-polls, an occasional barrier-scale
/// jump.
fn next_delay(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    match *state % 16 {
        0 => 1,
        1 => 2_500,
        _ => 100,
    }
}

/// Pop-schedule churn on the binary-heap reference queue; returns an
/// order-sensitive checksum of the pop sequence.
fn churn_heap() -> u64 {
    let mut q = EventQueue::new();
    for p in 0..NPROCS {
        q.push(p as u64, Action::Resume(ProcId::new(p)));
    }
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut fold = 0u64;
    for _ in 0..EVENTS {
        let ev = q.pop().expect("queue never drains");
        fold = fold
            .rotate_left(7)
            .wrapping_add(ev.time)
            .wrapping_add(ev.seq);
        let p = match ev.action {
            Action::Resume(p) => p,
            Action::Call(_) => unreachable!("bench schedules only resumes"),
        };
        q.push(ev.time + next_delay(&mut rng), Action::Resume(p));
    }
    fold
}

/// The same churn on a scheduler with explicit sequence numbers (the
/// calendar queue) or shard routing (the sharded composition).
fn churn_calendar() -> u64 {
    let mut q = CalendarQueue::new();
    let mut seq = 0u64;
    for p in 0..NPROCS {
        q.push(p as u64, seq, Action::Resume(ProcId::new(p)));
        seq += 1;
    }
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut fold = 0u64;
    for _ in 0..EVENTS {
        let ev = q.pop().expect("queue never drains");
        fold = fold
            .rotate_left(7)
            .wrapping_add(ev.time)
            .wrapping_add(ev.seq);
        let p = match ev.action {
            Action::Resume(p) => p,
            Action::Call(_) => unreachable!("bench schedules only resumes"),
        };
        q.push(ev.time + next_delay(&mut rng), seq, Action::Resume(p));
        seq += 1;
    }
    fold
}

fn churn_sharded(nshards: usize) -> u64 {
    let mut q = ShardedQueue::new(nshards);
    for p in 0..NPROCS {
        q.push_to(
            p * nshards / NPROCS,
            p as u64,
            Action::Resume(ProcId::new(p)),
        );
    }
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut fold = 0u64;
    for _ in 0..EVENTS {
        let ev = q.pop().expect("queue never drains");
        fold = fold
            .rotate_left(7)
            .wrapping_add(ev.time)
            .wrapping_add(ev.seq);
        let p = match ev.action {
            Action::Resume(p) => p,
            Action::Call(_) => unreachable!("bench schedules only resumes"),
        };
        q.push_to(
            p.index() * nshards / NPROCS,
            ev.time + next_delay(&mut rng),
            Action::Resume(p),
        );
    }
    fold
}

fn bench_schedulers(c: &mut Criterion) {
    // The three schedulers implement one ordering contract: identical
    // pop sequences (and therefore identical simulations) — the bench
    // only compares their speed.
    let reference = churn_heap();
    assert_eq!(reference, churn_calendar(), "calendar pop order diverged");
    for n in [1, 4] {
        assert_eq!(
            reference,
            churn_sharded(n),
            "sharded({n}) pop order diverged"
        );
    }

    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    g.bench_function("binary-heap", |b| b.iter(|| black_box(churn_heap())));
    g.bench_function("calendar", |b| b.iter(|| black_box(churn_calendar())));
    g.bench_function("sharded-1", |b| b.iter(|| black_box(churn_sharded(1))));
    g.bench_function("sharded-4", |b| b.iter(|| black_box(churn_sharded(4))));
    g.finish();
}

fn bench_par_engine(c: &mut Criterion) {
    let ring = |shards: usize| {
        let cfg = ParConfig {
            shards,
            ..ParConfig::default()
        };
        let mut eng = ParEngine::new(NPROCS, cfg);
        install_ring(&mut eng, NPROCS, 50, 500);
        eng.run()
    };
    let baseline = ring(1);
    let mut g = c.benchmark_group("par-engine-ring");
    g.sample_size(5);
    for shards in [1usize, 2, 4, 8] {
        let report = ring(shards);
        assert_eq!(baseline, report, "shards={shards} changed the results");
        g.bench_function(&format!("shards-{shards}"), |b| {
            b.iter(|| black_box(ring(shards).elapsed()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers, bench_par_engine);
criterion_main!(benches);
