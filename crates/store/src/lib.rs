//! Crash-safe content-addressed result store.
//!
//! The run cache under `results/cache/` is the seed of the sweep
//! service's serving layer (ROADMAP item 3): a long-running daemon can
//! only serve cached simulation points at memory speed if the store
//! underneath it survives crashes, torn writes, bit rot, and concurrent
//! writers **without ever emitting a wrong table**. This crate is that
//! store, factored out of `wwt-core`'s cache so the discipline is
//! reusable and testable in isolation:
//!
//! * **Self-validating entries.** Every entry is wrapped in a versioned
//!   header carrying the payload length and an FNV-1a checksum
//!   ([`entry`]), verified on every read. Damage of any kind surfaces as
//!   a typed [`ReadError::Corrupt`], never as garbage payload.
//! * **Atomic commits.** [`Store::commit`] writes a `*.tmp.<pid>.<seq>`
//!   sibling, renames it over the entry, and fsyncs the directory, so a
//!   concurrent reader (or a crash) never observes a half-written entry.
//!   A failed write removes its temp file instead of leaking it.
//! * **Single-writer discipline.** [`Store::lock`] takes a per-entry
//!   `*.lock` file so two processes racing the same key simulate once:
//!   the loser blocks, then reads the winner's bytes. Locks left behind
//!   by a crashed writer are taken over once they go stale.
//! * **fsck.** [`Store::fsck`] scans the store, verifies every entry,
//!   quarantines corrupt ones (into `quarantine/`, with an obs counter),
//!   and garbage-collects orphaned temp and stale lock files.
//! * **Host-fault injection.** A seeded, deterministic [`StoreFaults`]
//!   plan (config- or `WWT_STORE_FAULTS`-gated) tears commits at byte N,
//!   flips bits, injects transient `EIO`s, and fails renames, so tests
//!   can prove every failure mode degrades to a warned miss plus
//!   re-simulation producing byte-identical output.
//!
//! Nothing in this crate interprets payloads; `wwt-core`'s cache keeps
//! the (de)serialization and keying, and everything else that wants
//! atomic file publication (the bench log, obs snapshots) shares
//! [`atomic_write`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod entry;
pub mod faults;

pub use entry::{decode, encode, fnv1a, DecodeError, ENTRY_MAGIC, ENTRY_VERSION};
pub use faults::{global_faults, reset_fault_state, set_global_faults, StoreFaults};

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use wwt_obs::{count_always, Ctr};

/// File-name suffix of store entries (what [`Store::fsck`] verifies).
pub const ENTRY_SUFFIX: &str = ".run";

/// Subdirectory corrupt entries are quarantined into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// How a [`Store`] behaves: fault plan and lock timing.
#[derive(Copy, Clone, Debug)]
pub struct StoreConfig {
    /// Host-fault plan applied to this store's IO (`None` injects
    /// nothing).
    pub faults: Option<StoreFaults>,
    /// Age after which a lock file is presumed abandoned by a crashed
    /// writer and taken over.
    pub lock_stale: Duration,
    /// Poll interval while waiting for a contended lock.
    pub lock_poll: Duration,
    /// Longest a [`Store::lock`] call blocks before giving up and
    /// returning an unacquired guard (the caller proceeds best-effort —
    /// the store must never wedge its caller forever).
    pub lock_wait: Duration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            faults: None,
            // A stale threshold must outlast the longest legitimate hold:
            // a paper-scale simulation takes minutes, so be generous.
            lock_stale: Duration::from_secs(600),
            lock_poll: Duration::from_millis(25),
            lock_wait: Duration::from_secs(660),
        }
    }
}

/// Why a [`Store::read`] returned no payload.
#[derive(Debug)]
pub enum ReadError {
    /// No entry under that name — a plain miss.
    NotFound,
    /// The entry exists but failed validation; the reason is the decode
    /// diagnostic.
    Corrupt(DecodeError),
    /// The underlying IO failed (includes injected transient `EIO`s).
    Io(io::Error),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::NotFound => f.write_str("not found"),
            ReadError::Corrupt(why) => write!(f, "corrupt: {why}"),
            ReadError::Io(err) => write!(f, "io error: {err}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A content-addressed store rooted at one directory. Cheap to construct
/// (no IO until an operation); every operation takes the entry *name*
/// (its file name within the root), which the caller derives from its
/// content hash.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    cfg: StoreConfig,
}

/// Per-process uniquifier for temp-file names, so two threads committing
/// the same entry without a lock can never collide on one temp path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens the store at `root` with the process-global fault plan (the
    /// `WWT_STORE_FAULTS` env var or [`set_global_faults`]) and default
    /// lock timing.
    pub fn open(root: impl Into<PathBuf>) -> Store {
        Store::with_config(
            root,
            StoreConfig {
                faults: global_faults(),
                ..StoreConfig::default()
            },
        )
    }

    /// Opens the store at `root` with an explicit configuration.
    pub fn with_config(root: impl Into<PathBuf>, cfg: StoreConfig) -> Store {
        Store {
            root: root.into(),
            cfg,
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of an entry name.
    pub fn entry_path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Reads and verifies one entry, returning its payload.
    pub fn read(&self, name: &str) -> Result<Vec<u8>, ReadError> {
        let path = self.entry_path(name);
        if let Some(f) = &self.cfg.faults {
            if f.read_eio(&path.to_string_lossy()) {
                count_always(Ctr::StoreFaultsInjected, 1);
                return Err(ReadError::Io(io::Error::other("injected transient EIO")));
            }
        }
        let bytes = fs::read(&path).map_err(|err| {
            if err.kind() == io::ErrorKind::NotFound {
                ReadError::NotFound
            } else {
                ReadError::Io(err)
            }
        })?;
        decode(&bytes).map_err(ReadError::Corrupt)
    }

    /// Atomically publishes one entry: checksummed container, temp write,
    /// rename, directory fsync. Under an active fault plan the commit may
    /// be deliberately torn, bit-flipped, or rename-failed — each a
    /// failure mode the *reader* must survive.
    pub fn commit(&self, name: &str, payload: &[u8]) -> io::Result<()> {
        fs::create_dir_all(&self.root)?;
        let mut bytes = encode(payload);
        if let Some(f) = &self.cfg.faults {
            if let Some((byte, bit)) = f.flip_at(name, bytes.len()) {
                count_always(Ctr::StoreFaultsInjected, 1);
                bytes[byte] ^= 1 << bit;
            }
            if let Some(keep) = f.torn_len(name, bytes.len()) {
                count_always(Ctr::StoreFaultsInjected, 1);
                bytes.truncate(keep);
            }
        }
        let path = self.entry_path(name);
        let tmp = self.root.join(format!(
            "{name}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if let Err(err) = fs::write(&tmp, &bytes) {
            // Never leak the temp file: a failed write must leave the
            // store exactly as it was.
            let _ = fs::remove_file(&tmp);
            return Err(err);
        }
        if let Some(f) = &self.cfg.faults {
            if f.rename_fails(name) {
                count_always(Ctr::StoreFaultsInjected, 1);
                let _ = fs::remove_file(&tmp);
                return Err(io::Error::other("injected rename failure"));
            }
        }
        if let Err(err) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(err);
        }
        // Make the rename durable: fsync the directory so a crash after
        // commit cannot un-publish the entry. Best-effort — some
        // filesystems refuse directory fsync, and an entry that merely
        // *might* vanish on power loss is still a safe cache miss.
        let _ = fs::File::open(&self.root).and_then(|d| d.sync_all());
        Ok(())
    }

    /// Takes the per-entry writer lock, blocking (with polling) while
    /// another writer holds it. A lock older than
    /// [`StoreConfig::lock_stale`] is presumed abandoned by a crashed
    /// writer and taken over. If the lock cannot be acquired within
    /// [`StoreConfig::lock_wait`] — or lock-file IO fails outright (a
    /// read-only store) — the returned guard is *unacquired* and the
    /// caller proceeds without mutual exclusion: commits are idempotent
    /// (same key, same bytes), so the discipline is an optimization
    /// against duplicate work, never a correctness gate.
    pub fn lock(&self, name: &str) -> LockGuard {
        let path = self.root.join(format!("{name}.lock"));
        if fs::create_dir_all(&self.root).is_err() {
            return LockGuard { path: None };
        }
        let start = Instant::now();
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use io::Write as _;
                    let _ = writeln!(f, "pid {}", std::process::id());
                    return LockGuard { path: Some(path) };
                }
                Err(err) if err.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_age(&path).is_some_and(|age| age >= self.cfg.lock_stale) {
                        // Abandoned by a crashed writer: break it and
                        // retry the create (a racing breaker is fine —
                        // only one create_new wins).
                        count_always(Ctr::StoreLockTakeovers, 1);
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if start.elapsed() >= self.cfg.lock_wait {
                        return LockGuard { path: None };
                    }
                    std::thread::sleep(self.cfg.lock_poll);
                }
                Err(_) => return LockGuard { path: None },
            }
        }
    }

    /// Scans the store: verifies every `*.run` entry, moves corrupt ones
    /// into `quarantine/`, and garbage-collects orphaned `*.tmp.*` files
    /// and stale `*.lock` files. Reads bypass any fault plan — fsck
    /// reports what is really on disk. Returns what it found; an absent
    /// root is an empty, clean store.
    pub fn fsck(&self) -> FsckReport {
        let mut report = FsckReport::default();
        let entries = match fs::read_dir(&self.root) {
            Ok(it) => it,
            Err(_) => return report,
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort(); // deterministic report order
        for name in names {
            let path = self.root.join(&name);
            if name.contains(".tmp.") {
                // A temp file only exists inside a commit's write-rename
                // window; one found by fsck is a crash leftover.
                if fs::remove_file(&path).is_ok() {
                    report.swept_tmp += 1;
                    count_always(Ctr::StoreFsckSwept, 1);
                }
            } else if name.ends_with(".lock") {
                if lock_age(&path).is_some_and(|age| age >= self.cfg.lock_stale)
                    && fs::remove_file(&path).is_ok()
                {
                    report.swept_locks += 1;
                    count_always(Ctr::StoreFsckSwept, 1);
                }
            } else if name.ends_with(ENTRY_SUFFIX) {
                report.scanned += 1;
                let verdict = fs::read(&path)
                    .map_err(|err| format!("unreadable: {err}"))
                    .and_then(|bytes| decode(&bytes).map(|_| ()).map_err(|e| e.to_string()));
                match verdict {
                    Ok(()) => report.valid += 1,
                    Err(why) => {
                        let qdir = self.root.join(QUARANTINE_DIR);
                        let _ = fs::create_dir_all(&qdir);
                        if fs::rename(&path, qdir.join(&name)).is_err() {
                            // Quarantine dir unwritable: deleting the
                            // corpse still heals the store.
                            let _ = fs::remove_file(&path);
                        }
                        count_always(Ctr::StoreFsckQuarantined, 1);
                        report.quarantined.push((name, why));
                    }
                }
            }
        }
        report
    }
}

/// Age of a lock file, by modification time. `None` when the file is
/// gone or the clock is unreadable (then it is never considered stale).
fn lock_age(path: &Path) -> Option<Duration> {
    let mtime = fs::metadata(path).ok()?.modified().ok()?;
    SystemTime::now().duration_since(mtime).ok()
}

/// Holds (or records the failure to hold) one entry's writer lock; the
/// lock file is removed on drop.
#[derive(Debug)]
pub struct LockGuard {
    /// The lock file to remove on drop; `None` when the lock was not
    /// acquired (contention timeout or IO failure) and the caller is
    /// proceeding best-effort.
    path: Option<PathBuf>,
}

impl LockGuard {
    /// Whether the lock was actually acquired.
    pub fn acquired(&self) -> bool {
        self.path.is_some()
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = fs::remove_file(path);
        }
    }
}

/// What one [`Store::fsck`] pass found and repaired.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Entries examined.
    pub scanned: usize,
    /// Entries that verified clean.
    pub valid: usize,
    /// Corrupt entries moved to `quarantine/`, with the decode
    /// diagnostic for each.
    pub quarantined: Vec<(String, String)>,
    /// Orphaned `*.tmp.*` files removed.
    pub swept_tmp: usize,
    /// Stale `*.lock` files removed.
    pub swept_locks: usize,
}

impl FsckReport {
    /// A clean pass: every entry valid, nothing quarantined or swept.
    pub fn clean(&self) -> bool {
        self.valid == self.scanned
            && self.quarantined.is_empty()
            && self.swept_tmp == 0
            && self.swept_locks == 0
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fsck: {} entries scanned, {} valid, {} quarantined, {} tmp + {} stale lock files swept",
            self.scanned,
            self.valid,
            self.quarantined.len(),
            self.swept_tmp,
            self.swept_locks
        )?;
        for (name, why) in &self.quarantined {
            write!(f, "\n  quarantined {name}: {why}")?;
        }
        Ok(())
    }
}

/// Atomically replaces `path` with `bytes`: temp-file write + rename +
/// directory fsync, cleaning the temp file up on failure. For plain
/// files that want crash-safe publication without the store's checksum
/// container (the bench log, obs snapshots).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = PathBuf::from(tmp);
    if let Err(err) = fs::write(&tmp, bytes) {
        let _ = fs::remove_file(&tmp);
        return Err(err);
    }
    if let Err(err) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(err);
    }
    if let Some(dir) = dir {
        let _ = fs::File::open(dir).and_then(|d| d.sync_all());
    }
    Ok(())
}

/// Reads and verifies a store entry by direct path (outside any [`Store`]
/// root — the `--diff results/cache/x.run` form). `None` on any damage.
pub fn read_entry_file(path: &Path) -> Option<Vec<u8>> {
    decode(&fs::read(path).ok()?).ok()
}

/// Deduplicated stderr warnings: the first warning for a key prints (with
/// a note that repeats are suppressed); repeats only count. A grid run
/// over a faulted store warns once per damaged entry instead of once per
/// lookup, keeping stderr readable.
static WARNED: Mutex<Option<HashMap<String, u64>>> = Mutex::new(None);

/// Prints `warning: {msg}` for this key at most once per process;
/// repeats increment a counter surfaced by [`suppressed_warnings`].
/// Returns `true` when this call printed (the first sighting of the
/// key), so callers can tie once-per-path side effects to it.
pub fn warn_once(key: &str, msg: &str) -> bool {
    let mut warned = WARNED.lock().unwrap_or_else(|e| e.into_inner());
    let counts = warned.get_or_insert_with(HashMap::new);
    match counts.get_mut(key) {
        Some(n) => {
            *n += 1;
            false
        }
        None => {
            counts.insert(key.to_string(), 0);
            eprintln!("warning: {msg} (repeats for this path suppressed)");
            true
        }
    }
}

/// Total warnings suppressed by [`warn_once`] so far (repeats beyond the
/// first, summed over every key).
pub fn suppressed_warnings() -> u64 {
    WARNED
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map_or(0, |m| m.values().sum())
}

/// Forgets every warned key (tests).
pub fn reset_warnings() {
    *WARNED.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wwt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick_locks() -> StoreConfig {
        StoreConfig {
            lock_stale: Duration::from_millis(200),
            lock_poll: Duration::from_millis(5),
            lock_wait: Duration::from_millis(500),
            ..StoreConfig::default()
        }
    }

    #[test]
    fn commit_then_read_round_trips() {
        let dir = scratch("roundtrip");
        let store = Store::with_config(&dir, StoreConfig::default());
        assert!(matches!(store.read("a.run"), Err(ReadError::NotFound)));
        store.commit("a.run", b"payload bytes").unwrap();
        assert_eq!(store.read("a.run").unwrap(), b"payload bytes");
        // Overwrite is atomic replacement.
        store.commit("a.run", b"new bytes").unwrap();
        assert_eq!(store.read("a.run").unwrap(), b"new bytes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hand_damage_reads_as_corrupt_not_garbage() {
        let dir = scratch("damage");
        let store = Store::with_config(&dir, StoreConfig::default());
        store.commit("a.run", b"some healthy payload").unwrap();
        let path = store.entry_path("a.run");
        let bytes = fs::read(&path).unwrap();
        // Truncate.
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(store.read("a.run"), Err(ReadError::Corrupt(_))));
        // Flip one payload bit.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            store.read("a.run"),
            Err(ReadError::Corrupt(DecodeError::Checksum))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_and_flip_commits_are_caught_on_read() {
        let dir = scratch("faulted");
        let torn = Store::with_config(
            &dir,
            StoreConfig {
                faults: Some(StoreFaults::parse("seed=1,torn=1").unwrap()),
                ..StoreConfig::default()
            },
        );
        torn.commit("t.run", b"will be torn somewhere").unwrap();
        let clean = Store::with_config(&dir, StoreConfig::default());
        assert!(matches!(clean.read("t.run"), Err(ReadError::Corrupt(_))));

        let flip = Store::with_config(
            &dir,
            StoreConfig {
                faults: Some(StoreFaults::parse("seed=1,flip=1").unwrap()),
                ..StoreConfig::default()
            },
        );
        flip.commit("f.run", b"one bit will flip").unwrap();
        assert!(matches!(clean.read("f.run"), Err(ReadError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_rename_failure_publishes_nothing_and_leaks_nothing() {
        let dir = scratch("rename-fault");
        let store = Store::with_config(
            &dir,
            StoreConfig {
                faults: Some(StoreFaults::parse("seed=2,rename=1").unwrap()),
                ..StoreConfig::default()
            },
        );
        assert!(store.commit("r.run", b"never lands").is_err());
        assert!(matches!(
            Store::with_config(&dir, StoreConfig::default()).read("r.run"),
            Err(ReadError::NotFound)
        ));
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name())
            .collect();
        assert!(leftovers.is_empty(), "leaked: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_transient_eio_clears_on_retry() {
        faults::reset_fault_state();
        let dir = scratch("eio");
        let store = Store::with_config(
            &dir,
            StoreConfig {
                faults: Some(StoreFaults::parse("seed=3,eio=1").unwrap()),
                ..StoreConfig::default()
            },
        );
        store.commit("e.run", b"payload").unwrap();
        assert!(matches!(store.read("e.run"), Err(ReadError::Io(_))));
        assert_eq!(store.read("e.run").unwrap(), b"payload", "EIO is transient");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_excludes_a_second_holder_until_drop() {
        let dir = scratch("lock");
        let store = Store::with_config(&dir, quick_locks());
        let g1 = store.lock("k.run");
        assert!(g1.acquired());
        // A second locker with a tiny wait budget times out unacquired.
        let impatient = Store::with_config(
            &dir,
            StoreConfig {
                lock_wait: Duration::from_millis(30),
                lock_stale: Duration::from_secs(60),
                ..quick_locks()
            },
        );
        assert!(!impatient.lock("k.run").acquired());
        drop(g1);
        assert!(store.lock("k.run").acquired(), "released on drop");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_locks_are_taken_over() {
        let dir = scratch("stale-lock");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("k.run.lock"), b"pid 999999\n").unwrap();
        let store = Store::with_config(&dir, quick_locks());
        std::thread::sleep(Duration::from_millis(250)); // outlive lock_stale
        let g = store.lock("k.run");
        assert!(g.acquired(), "stale lock must be broken");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_quarantines_corrupt_sweeps_orphans_and_reports_clean_after() {
        let dir = scratch("fsck");
        let store = Store::with_config(&dir, quick_locks());
        store.commit("good.run", b"healthy").unwrap();
        store.commit("bad.run", b"will be truncated").unwrap();
        let bad = store.entry_path("bad.run");
        let bytes = fs::read(&bad).unwrap();
        fs::write(&bad, &bytes[..bytes.len() / 2]).unwrap();
        fs::write(dir.join("good.run.tmp.1234.0"), b"orphan").unwrap();
        fs::write(dir.join("other.run.lock"), b"pid 1\n").unwrap();
        fs::write(dir.join("unrelated.txt"), b"leave me alone").unwrap();
        std::thread::sleep(Duration::from_millis(250)); // lock goes stale

        let report = store.fsck();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.valid, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, "bad.run");
        assert_eq!(report.swept_tmp, 1);
        assert_eq!(report.swept_locks, 1);
        assert!(!report.clean());
        let line = report.to_string();
        assert!(line.contains("2 entries scanned"), "{line}");
        assert!(line.contains("quarantined bad.run:"), "{line}");

        // The corpse moved to quarantine/, the good entry still reads,
        // the unrelated file survived.
        assert!(dir.join(QUARANTINE_DIR).join("bad.run").exists());
        assert!(matches!(store.read("bad.run"), Err(ReadError::NotFound)));
        assert_eq!(store.read("good.run").unwrap(), b"healthy");
        assert!(dir.join("unrelated.txt").exists());

        // A second pass finds nothing left to repair.
        let second = store.fsck();
        assert!(second.clean(), "{second}");
        assert_eq!(second.scanned, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reads_bypass_the_fault_plan() {
        faults::reset_fault_state();
        let dir = scratch("fsck-faults");
        let clean = Store::with_config(&dir, StoreConfig::default());
        clean.commit("good.run", b"healthy").unwrap();
        // An EIO-everything plan must not make fsck quarantine a healthy
        // entry: fsck reports what is really on disk.
        let faulted = Store::with_config(
            &dir,
            StoreConfig {
                faults: Some(StoreFaults::parse("seed=4,eio=1").unwrap()),
                ..StoreConfig::default()
            },
        );
        let report = faulted.fsck();
        assert!(report.clean(), "{report}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = scratch("atomic");
        let path = dir.join("sub").join("file.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let siblings: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name())
            .collect();
        assert_eq!(siblings.len(), 1, "no temp leftovers: {siblings:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_entry_file_verifies_by_direct_path() {
        let dir = scratch("by-path");
        let store = Store::with_config(&dir, StoreConfig::default());
        store.commit("x.run", b"direct").unwrap();
        let path = store.entry_path("x.run");
        assert_eq!(read_entry_file(&path).unwrap(), b"direct");
        fs::write(&path, b"not a container").unwrap();
        assert!(read_entry_file(&path).is_none());
        assert!(read_entry_file(&dir.join("missing.run")).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn warnings_print_once_and_count_repeats() {
        reset_warnings();
        let before = suppressed_warnings();
        warn_once("warn-test-key-a", "entry damaged");
        warn_once("warn-test-key-a", "entry damaged");
        warn_once("warn-test-key-a", "entry damaged");
        warn_once("warn-test-key-b", "entry damaged");
        assert_eq!(suppressed_warnings() - before, 2);
        reset_warnings();
    }
}
