//! The on-disk entry container: a one-line versioned header carrying the
//! payload length and an FNV-1a checksum, followed by the raw payload.
//!
//! ```text
//! wwt-store 1 <payload-len> <fnv1a-16-hex>\n
//! <payload bytes>
//! ```
//!
//! The header makes every read self-validating: a torn write (short
//! payload), a flipped bit (checksum mismatch), a foreign or pre-store
//! file (bad magic), and version skew are all distinguishable from a
//! healthy entry *before* any caller tries to parse the payload. The
//! payload itself is opaque bytes — the store never interprets it.

/// Magic token opening every entry header.
pub const ENTRY_MAGIC: &str = "wwt-store";

/// Container version. Bump when the header layout changes; old entries
/// then decode as [`DecodeError::Version`] instead of misparsing.
pub const ENTRY_VERSION: u32 = 1;

/// 64-bit FNV-1a — the same hash the run-cache key and `ArchParams` use,
/// chosen here for the payload checksum: fast, dependency-free, and more
/// than strong enough to catch torn writes and bit rot (this is an
/// integrity check against accident, not an adversary).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why an entry's bytes failed to decode. The variants matter only for
/// diagnostics (fsck reports, corrupt-entry warnings); every one of them
/// means "treat as corrupt".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// No `wwt-store` magic: a foreign file, or an entry written before
    /// the store existed.
    Magic,
    /// A future (or unparseable) container version.
    Version,
    /// The header line itself is malformed.
    Header,
    /// The payload is shorter than the header promised (torn write).
    Truncated {
        /// Bytes the header declared.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload checksum does not match the header (bit rot, or a
    /// partially overwritten entry).
    Checksum,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Magic => f.write_str("not a wwt-store entry (bad magic)"),
            DecodeError::Version => f.write_str("unknown wwt-store container version"),
            DecodeError::Header => f.write_str("malformed wwt-store header"),
            DecodeError::Truncated { expected, actual } if actual < expected => {
                write!(f, "truncated payload ({actual} of {expected} bytes)")
            }
            DecodeError::Truncated { expected, actual } => {
                write!(
                    f,
                    "payload length mismatch ({actual} bytes, header says {expected})"
                )
            }
            DecodeError::Checksum => f.write_str("payload checksum mismatch"),
        }
    }
}

/// Wraps a payload in the checksummed container.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{ENTRY_MAGIC} {ENTRY_VERSION} {} {:016x}\n",
        payload.len(),
        fnv1a(payload)
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unwraps and verifies a container, returning the payload bytes.
pub fn decode(bytes: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(DecodeError::Magic)?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| DecodeError::Magic)?;
    let mut fields = header.split(' ');
    if fields.next() != Some(ENTRY_MAGIC) {
        return Err(DecodeError::Magic);
    }
    let version: u32 = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(DecodeError::Version)?;
    if version != ENTRY_VERSION {
        return Err(DecodeError::Version);
    }
    let len: usize = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(DecodeError::Header)?;
    let sum = fields
        .next()
        .filter(|s| s.len() == 16)
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or(DecodeError::Header)?;
    if fields.next().is_some() {
        return Err(DecodeError::Header);
    }
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(DecodeError::Truncated {
            expected: len,
            actual: payload.len(),
        });
    }
    if fnv1a(payload) != sum {
        return Err(DecodeError::Checksum);
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips_arbitrary_bytes() {
        for payload in [
            &b""[..],
            b"hello",
            b"line\nline\nline",
            &[0u8, 255, 1, 254, 10, 13],
        ] {
            let enc = encode(payload);
            assert_eq!(decode(&enc).unwrap(), payload, "{payload:?}");
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let enc = encode(b"a payload long enough to truncate at many points");
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut]).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let enc = encode(b"checksums catch bit rot");
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x10;
            assert_ne!(
                decode(&bad).ok().as_deref(),
                Some(&b"checksums catch bit rot"[..]),
                "flip at byte {i}"
            );
        }
    }

    #[test]
    fn foreign_and_legacy_files_fail_with_magic() {
        assert_eq!(
            decode(b"wwt-run-cache 2\nexperiment x\n"),
            Err(DecodeError::Magic)
        );
        assert_eq!(
            decode(b"\x00\xff\x01garbage\nmore"),
            Err(DecodeError::Magic)
        );
        assert_eq!(decode(b"no newline at all"), Err(DecodeError::Magic));
    }

    #[test]
    fn future_versions_fail_with_version() {
        let mut enc = encode(b"x");
        let text = String::from_utf8(enc.clone()).unwrap();
        enc = text
            .replacen("wwt-store 1 ", "wwt-store 2 ", 1)
            .into_bytes();
        assert_eq!(decode(&enc), Err(DecodeError::Version));
    }

    #[test]
    fn header_field_damage_is_malformed_not_a_panic() {
        assert_eq!(decode(b"wwt-store 1\n"), Err(DecodeError::Header));
        assert_eq!(
            decode(b"wwt-store 1 notanum 0123456789abcdef\n"),
            Err(DecodeError::Header)
        );
        assert_eq!(decode(b"wwt-store 1 0 short\n"), Err(DecodeError::Header));
        assert_eq!(
            decode(b"wwt-store 1 0 0123456789abcdef extra\n"),
            Err(DecodeError::Header)
        );
    }
}
