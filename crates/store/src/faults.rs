//! Deterministic host-side IO fault injection for the store.
//!
//! The guest side of the reproduction already proves its faults
//! recoverable (`wwt_sim::FaultPlan`: seeded drop/dup/reorder with
//! go-back-N recovery). [`StoreFaults`] applies the same discipline to
//! the *host* substrate the result store runs on: a seeded plan decides,
//! per operation and per entry name, whether a commit is torn at byte N,
//! a committed entry gets one bit flipped, a read fails with a transient
//! `EIO`, or a rename fails outright. Tests then prove that every mode
//! degrades to a warned cache miss plus re-simulation — never to wrong
//! output.
//!
//! Decisions are pure functions of `(seed, operation, entry name)` —
//! hashing, not a stateful RNG — so they are reproducible regardless of
//! thread interleaving or operation order, exactly like `FaultPlan`'s
//! per-packet draws. The one stateful mode is the transient `EIO`: it
//! fires only on the *first* read of a given path (tracked
//! process-globally), so a retry or a re-run observes the error clearing,
//! which is what "transient" means.
//!
//! The plan is config-gated (pass it to [`crate::StoreConfig`]) or
//! env-gated: setting `WWT_STORE_FAULTS=seed=7,torn=0.5,...` makes every
//! [`crate::Store::open`] in the process inject faults, which is how the
//! CI crash-recovery smoke and `make_tables --store-faults` drive it.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::entry::fnv1a;

/// A seeded host-fault plan for store IO. All probabilities are in
/// `0.0..=1.0`; `0.0` (the default) never fires.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct StoreFaults {
    /// Seed mixed into every per-operation draw.
    pub seed: u64,
    /// Probability a commit writes only a prefix of the entry (a torn
    /// write: the rename still happens, publishing a truncated entry —
    /// what a crash between `write` and `fsync` leaves behind).
    pub torn: f64,
    /// Probability a committed entry gets exactly one payload bit
    /// flipped after the write (bit rot / a lying disk).
    pub flip: f64,
    /// Probability the first read of a given path fails with a transient
    /// `EIO`; later reads of the same path succeed.
    pub eio: f64,
    /// Probability the commit's final rename fails with `EIO` (the temp
    /// file is cleaned up; the entry is simply never published).
    pub rename: f64,
}

/// Which store operation a draw is for (mixed into the hash so the same
/// entry can tear on commit but read cleanly, and vice versa).
#[derive(Copy, Clone, Debug)]
pub enum FaultOp {
    /// Torn-write draw at commit time.
    Torn,
    /// Bit-flip draw at commit time.
    Flip,
    /// Transient-EIO draw at read time.
    Eio,
    /// Rename-failure draw at commit time.
    Rename,
}

impl FaultOp {
    fn tag(self) -> &'static str {
        match self {
            FaultOp::Torn => "torn",
            FaultOp::Flip => "flip",
            FaultOp::Eio => "eio",
            FaultOp::Rename => "rename",
        }
    }
}

/// Paths whose one transient `EIO` has already fired, process-wide.
static EIO_FIRED: Mutex<Option<HashSet<String>>> = Mutex::new(None);

impl StoreFaults {
    /// Parses a plan spec: `seed=S,torn=P,flip=P,eio=P,rename=P` (any
    /// subset, any order; the same comma grammar as `--faults` and
    /// `--arch`).
    pub fn parse(spec: &str) -> Result<StoreFaults, String> {
        let mut f = StoreFaults::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("'{v}' is not a number in '{part}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability out of [0,1] in '{part}'"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    f.seed = value
                        .parse()
                        .map_err(|_| format!("'{value}' is not a seed in '{part}'"))?
                }
                "torn" => f.torn = prob(value)?,
                "flip" => f.flip = prob(value)?,
                "eio" => f.eio = prob(value)?,
                "rename" => f.rename = prob(value)?,
                _ => {
                    return Err(format!(
                        "unknown store-fault key '{key}' (use seed/torn/flip/eio/rename)"
                    ))
                }
            }
        }
        Ok(f)
    }

    /// Does this plan ever fire?
    pub fn is_active(&self) -> bool {
        self.torn > 0.0 || self.flip > 0.0 || self.eio > 0.0 || self.rename > 0.0
    }

    /// The deterministic draw for one (operation, entry name): a 64-bit
    /// hash of `(seed, op, name)`.
    fn draw(&self, op: FaultOp, name: &str) -> u64 {
        let key = format!("{}|{}|{name}", self.seed, op.tag());
        fnv1a(key.as_bytes())
    }

    /// Whether the draw fires under probability `p`.
    fn fires(&self, op: FaultOp, name: &str, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // Top 53 bits as a uniform fraction in [0,1).
        let frac = (self.draw(op, name) >> 11) as f64 / (1u64 << 53) as f64;
        frac < p
    }

    /// If the plan tears this commit, the prefix length to keep
    /// (strictly less than `len`, at a draw-derived offset).
    pub fn torn_len(&self, name: &str, len: usize) -> Option<usize> {
        if len == 0 || !self.fires(FaultOp::Torn, name, self.torn) {
            return None;
        }
        Some((self.draw(FaultOp::Torn, name) as usize) % len)
    }

    /// If the plan flips a bit in this commit, the (byte, bit) to flip.
    pub fn flip_at(&self, name: &str, len: usize) -> Option<(usize, u8)> {
        if len == 0 || !self.fires(FaultOp::Flip, name, self.flip) {
            return None;
        }
        let d = self.draw(FaultOp::Flip, name);
        Some(((d as usize / 8) % len, (d % 8) as u8))
    }

    /// Whether the commit's rename fails.
    pub fn rename_fails(&self, name: &str) -> bool {
        self.fires(FaultOp::Rename, name, self.rename)
    }

    /// Whether a read of `path` fails with a transient `EIO` — true at
    /// most once per path per process.
    pub fn read_eio(&self, path: &str) -> bool {
        if !self.fires(FaultOp::Eio, path, self.eio) {
            return false;
        }
        let mut fired = EIO_FIRED.lock().unwrap_or_else(|e| e.into_inner());
        fired
            .get_or_insert_with(HashSet::new)
            .insert(path.to_string())
    }
}

impl fmt::Display for StoreFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},torn={},flip={},eio={},rename={}",
            self.seed, self.torn, self.flip, self.eio, self.rename
        )
    }
}

/// The process-global fault plan consulted by [`crate::Store::open`]:
/// seeded from the `WWT_STORE_FAULTS` environment variable on first use,
/// overridable via [`set_global_faults`]. `None` (the default) injects
/// nothing.
static GLOBAL: Mutex<Option<Option<StoreFaults>>> = Mutex::new(None);
static ENV_INIT: OnceLock<Option<StoreFaults>> = OnceLock::new();

fn env_faults() -> Option<StoreFaults> {
    *ENV_INIT.get_or_init(|| {
        let spec = std::env::var("WWT_STORE_FAULTS").ok()?;
        match StoreFaults::parse(&spec) {
            Ok(f) => Some(f),
            Err(err) => {
                eprintln!("warning: ignoring invalid WWT_STORE_FAULTS ('{spec}'): {err}");
                None
            }
        }
    })
}

/// Sets (or clears, with `None`) the process-global store-fault plan.
/// Overrides `WWT_STORE_FAULTS` for the rest of the process.
pub fn set_global_faults(faults: Option<StoreFaults>) {
    *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()) = Some(faults);
}

/// The effective process-global fault plan.
pub fn global_faults() -> Option<StoreFaults> {
    if let Some(explicit) = *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()) {
        return explicit;
    }
    env_faults()
}

/// Clears the transient-EIO "already fired" memory, so a fresh test run
/// observes first-read failures again.
pub fn reset_fault_state() {
    *EIO_FIRED.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_validates() {
        let f = StoreFaults::parse("seed=7,torn=0.5,flip=0.25,eio=1,rename=0").unwrap();
        assert_eq!(f.seed, 7);
        assert_eq!(f.torn, 0.5);
        assert_eq!(f.eio, 1.0);
        assert!(f.is_active());
        assert!(!StoreFaults::parse("").unwrap().is_active());
        assert!(StoreFaults::parse("torn=1.5").is_err());
        assert!(StoreFaults::parse("bogus=1").is_err());
        assert!(StoreFaults::parse("torn").is_err());
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = StoreFaults::parse("seed=1,torn=0.5").unwrap();
        let b = StoreFaults::parse("seed=2,torn=0.5").unwrap();
        let names: Vec<String> = (0..64).map(|i| format!("entry-{i}.run")).collect();
        let torn_a: Vec<Option<usize>> = names.iter().map(|n| a.torn_len(n, 1000)).collect();
        let torn_a2: Vec<Option<usize>> = names.iter().map(|n| a.torn_len(n, 1000)).collect();
        assert_eq!(torn_a, torn_a2, "same seed, same draws");
        let torn_b: Vec<Option<usize>> = names.iter().map(|n| b.torn_len(n, 1000)).collect();
        assert_ne!(torn_a, torn_b, "different seeds must differ somewhere");
        // Roughly half the names tear at p=0.5 — loose bounds, exact
        // values pinned by determinism above.
        let fired = torn_a.iter().filter(|t| t.is_some()).count();
        assert!((10..=54).contains(&fired), "{fired}/64 fired at p=0.5");
    }

    #[test]
    fn certain_probabilities_always_fire_and_stay_in_range() {
        let f = StoreFaults::parse("seed=3,torn=1,flip=1,rename=1").unwrap();
        for i in 0..32 {
            let name = format!("e{i}");
            let t = f.torn_len(&name, 100).expect("torn=1 fires");
            assert!(t < 100);
            let (byte, bit) = f.flip_at(&name, 100).expect("flip=1 fires");
            assert!(byte < 100 && bit < 8);
            assert!(f.rename_fails(&name));
        }
        assert_eq!(f.torn_len("x", 0), None, "empty payloads cannot tear");
    }

    #[test]
    fn transient_eio_fires_once_per_path() {
        reset_fault_state();
        let f = StoreFaults::parse("seed=5,eio=1").unwrap();
        let path = "/tmp/some/store/transient-test.run";
        assert!(f.read_eio(path), "first read fails");
        assert!(!f.read_eio(path), "second read succeeds: transient");
        assert!(f.read_eio("/tmp/some/store/other.run"));
        reset_fault_state();
        assert!(f.read_eio(path), "reset re-arms the fault");
        reset_fault_state();
    }
}
