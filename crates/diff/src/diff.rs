//! Two-run diffing: phase alignment, exact delta attribution, and
//! report rendering.
//!
//! Phases of run A and run B are aligned with a Needleman–Wunsch pass
//! over breakdown similarity (insertions and deletions model phases that
//! exist on only one side — a retry storm, a skipped setup). The
//! total-cycle delta then decomposes *exactly* over (aligned phase pair,
//! cost kind) cells: the signed entry deltas sum to `total_b − total_a`
//! with no residual, so any share of the delta the report attributes is
//! real, not an estimate. Each entry names the processor group
//! responsible for most of its delta.

use std::fmt::Write as _;

use wwt_sim::Kind;

use crate::cluster::{cluster_procs, format_procs, CLUSTER_DISTANCE};
use crate::profile::{tv_distance, KindVec, RunProfile};

/// Alignment gap penalty, on the total-variation distance scale: two
/// phases align when their breakdowns differ by less than two gaps.
const GAP_PENALTY: f64 = 0.6;

/// The rendered entry list stops once it covers this share of the gross
/// (sum-of-absolute) delta; the footer reports what was shown.
const RENDER_COVERAGE: f64 = 0.99;

/// An entry's responsible processor group is the smallest same-direction
/// set covering this share of the entry's delta.
const PROC_COVERAGE: f64 = 0.90;

/// One attributed cell of the delta: an aligned phase pair, a cost kind,
/// and the signed cycle change summed over processors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffEntry {
    /// Phase index in run A (`None` when the phase exists only in B).
    pub phase_a: Option<usize>,
    /// Phase index in run B (`None` when the phase exists only in A).
    pub phase_b: Option<usize>,
    /// The cost kind that moved.
    pub kind: Kind,
    /// Cycles in B minus cycles in A, summed over processors.
    pub delta: i64,
    /// Processor ids responsible for at least [`PROC_COVERAGE`] of the
    /// delta, ascending.
    pub procs: Vec<usize>,
}

/// The structured comparison of two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// Total cycles of run A (all phases, processors, kinds).
    pub total_a: u64,
    /// Total cycles of run B.
    pub total_b: u64,
    /// The phase alignment: every phase of either run appears exactly
    /// once, in simulated-time order.
    pub alignment: Vec<(Option<usize>, Option<usize>)>,
    /// Nonzero delta cells, sorted by descending magnitude (phase and
    /// kind order break ties). Their deltas sum to exactly
    /// `total_b − total_a`.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// `total_b − total_a`, the number the entries decompose.
    pub fn delta(&self) -> i64 {
        self.total_b as i64 - self.total_a as i64
    }

    /// Sum of absolute entry deltas (the gross delta; shares are
    /// measured against this so offsetting moves still surface).
    pub fn gross(&self) -> u64 {
        self.entries.iter().map(|e| e.delta.unsigned_abs()).sum()
    }
}

/// Aligns the phases of two profiles by breakdown similarity.
fn align(a: &RunProfile, b: &RunProfile) -> Vec<(Option<usize>, Option<usize>)> {
    let sa: Vec<_> = a.phases.iter().map(|p| p.signature()).collect();
    let sb: Vec<_> = b.phases.iter().map(|p| p.signature()).collect();
    let (n, m) = (sa.len(), sb.len());
    // cost[i][j]: best cost aligning the first i phases of A with the
    // first j of B. choice: 0 = diagonal, 1 = gap in B (skip A phase),
    // 2 = gap in A (skip B phase).
    let mut cost = vec![vec![0.0f64; m + 1]; n + 1];
    let mut choice = vec![vec![0u8; m + 1]; n + 1];
    for i in 1..=n {
        cost[i][0] = i as f64 * GAP_PENALTY;
        choice[i][0] = 1;
    }
    for j in 1..=m {
        cost[0][j] = j as f64 * GAP_PENALTY;
        choice[0][j] = 2;
    }
    for i in 1..=n {
        for j in 1..=m {
            let diag = cost[i - 1][j - 1] + tv_distance(&sa[i - 1], &sb[j - 1]);
            let skip_a = cost[i - 1][j] + GAP_PENALTY;
            let skip_b = cost[i][j - 1] + GAP_PENALTY;
            // Strict comparisons make the diagonal the deterministic
            // winner of ties, then skipping in A-order.
            let (c, ch) = if diag <= skip_a && diag <= skip_b {
                (diag, 0u8)
            } else if skip_a <= skip_b {
                (skip_a, 1)
            } else {
                (skip_b, 2)
            };
            cost[i][j] = c;
            choice[i][j] = ch;
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match choice[i][j] {
            0 => {
                out.push((Some(i - 1), Some(j - 1)));
                i -= 1;
                j -= 1;
            }
            1 => {
                out.push((Some(i - 1), None));
                i -= 1;
            }
            _ => {
                out.push((None, Some(j - 1)));
                j -= 1;
            }
        }
    }
    out.reverse();
    out
}

/// The processors responsible for most of a cell's delta: visited in
/// descending same-direction contribution (id breaks ties), taken until
/// [`PROC_COVERAGE`] of the delta magnitude is covered.
fn responsible_procs(
    a: Option<&[KindVec]>,
    b: Option<&[KindVec]>,
    k: usize,
    delta: i64,
) -> Vec<usize> {
    let nprocs = a
        .map_or(0, <[KindVec]>::len)
        .max(b.map_or(0, <[KindVec]>::len));
    let sign = if delta < 0 { -1i64 } else { 1 };
    let mut contrib: Vec<(usize, i64)> = (0..nprocs)
        .map(|p| {
            let va = a.and_then(|s| s.get(p)).map_or(0, |v| v[k]) as i64;
            let vb = b.and_then(|s| s.get(p)).map_or(0, |v| v[k]) as i64;
            (p, (vb - va) * sign)
        })
        .collect();
    contrib.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    let target = (PROC_COVERAGE * delta.unsigned_abs() as f64).ceil() as i64;
    let mut picked = Vec::new();
    let mut acc = 0i64;
    for (p, c) in contrib {
        if acc >= target || c <= 0 {
            break;
        }
        picked.push(p);
        acc += c;
    }
    picked.sort_unstable();
    picked
}

/// Computes the structured diff of two run profiles.
///
/// Pure and total: works for any pair of profiles, including different
/// phase counts and processor counts. The entry deltas sum to exactly
/// `total_b − total_a`.
pub fn diff_profiles(a: &RunProfile, b: &RunProfile) -> DiffReport {
    let alignment = align(a, b);
    let mut entries = Vec::new();
    for &(pa, pb) in &alignment {
        let ka = pa.map(|i| a.phases[i].by_kind());
        let kb = pb.map(|i| b.phases[i].by_kind());
        for (k, &kind) in Kind::ALL.iter().enumerate() {
            let va = ka.as_ref().map_or(0, |v| v[k]) as i64;
            let vb = kb.as_ref().map_or(0, |v| v[k]) as i64;
            let delta = vb - va;
            if delta == 0 {
                continue;
            }
            let procs = responsible_procs(
                pa.map(|i| a.phases[i].per_proc.as_slice()),
                pb.map(|i| b.phases[i].per_proc.as_slice()),
                k,
                delta,
            );
            entries.push(DiffEntry {
                phase_a: pa,
                phase_b: pb,
                kind,
                delta,
                procs,
            });
        }
    }
    entries.sort_by(|x, y| {
        y.delta
            .unsigned_abs()
            .cmp(&x.delta.unsigned_abs())
            .then(x.phase_b.cmp(&y.phase_b))
            .then(x.phase_a.cmp(&y.phase_a))
            .then(x.kind.index().cmp(&y.kind.index()))
    });
    DiffReport {
        total_a: a.total(),
        total_b: b.total(),
        alignment,
        entries,
    }
}

fn fmt_mag(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn fmt_delta(d: i64) -> String {
    format!(
        "{}{}",
        if d < 0 { "-" } else { "+" },
        fmt_mag(d.unsigned_abs() as f64)
    )
}

fn phase_label(pa: Option<usize>, pb: Option<usize>) -> String {
    match (pa, pb) {
        (Some(x), Some(y)) if x == y => format!("{x}"),
        (Some(x), Some(y)) => format!("{x}->{y}"),
        (Some(x), None) => format!("{x} (only in A)"),
        (None, Some(y)) => format!("{y} (only in B)"),
        (None, None) => unreachable!("alignment never emits a double gap"),
    }
}

/// A one-line cluster summary of a phase: heaviest groups first, with
/// the two dominant centroid categories of each.
fn cluster_line(per_proc: &[KindVec]) -> String {
    let clusters = cluster_procs(per_proc, CLUSTER_DISTANCE);
    let mut out = String::new();
    for (i, c) in clusters.iter().take(3).enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        let mut top: Vec<(usize, f64)> = c.centroid.iter().copied().enumerate().collect();
        top.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap().then(x.0.cmp(&y.0)));
        let _ = write!(out, "procs {} [", format_procs(&c.members));
        for (j, &(k, share)) in top.iter().take(2).filter(|(_, s)| *s > 0.0).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} {:.0}%", Kind::ALL[k].label(), 100.0 * share);
        }
        out.push(']');
    }
    if clusters.len() > 3 {
        let _ = write!(out, "; +{} more clusters", clusters.len() - 3);
    }
    out
}

/// Renders the human-readable diff report.
///
/// Returns the empty string when the runs are identical (equal totals
/// and no delta cells), so a self-diff prints nothing at all.
pub fn render_diff(d: &DiffReport, a: &RunProfile, b: &RunProfile) -> String {
    if d.total_a == d.total_b && d.entries.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let pct = if d.total_a > 0 {
        format!("{:+.1}%", 100.0 * d.delta() as f64 / d.total_a as f64)
    } else {
        "n/a".to_string()
    };
    let _ = writeln!(
        out,
        "total: {} -> {} cycles ({pct}); {} phases -> {} phases",
        fmt_mag(d.total_a as f64),
        fmt_mag(d.total_b as f64),
        a.phases.len(),
        b.phases.len(),
    );

    let gross = d.gross();
    let _ = writeln!(
        out,
        "\n{:>10} {:>6}  {:<18} {:<22} procs",
        "delta", "share", "phase", "category"
    );
    let mut shown = 0u64;
    let mut rows = 0usize;
    for e in &d.entries {
        let share = if gross > 0 {
            100.0 * e.delta.unsigned_abs() as f64 / gross as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>10} {:>5.1}%  {:<18} {:<22} {}",
            fmt_delta(e.delta),
            share,
            phase_label(e.phase_a, e.phase_b),
            e.kind.label(),
            format_procs(&e.procs),
        );
        shown += e.delta.unsigned_abs();
        rows += 1;
        if gross > 0 && shown as f64 >= RENDER_COVERAGE * gross as f64 {
            break;
        }
    }
    if rows < d.entries.len() {
        let _ = writeln!(
            out,
            "({} smaller entries omitted; shown entries cover {:.1}% of the gross delta)",
            d.entries.len() - rows,
            if gross > 0 {
                100.0 * shown as f64 / gross as f64
            } else {
                100.0
            }
        );
    }

    let _ = writeln!(out, "\nphase map (A -> B):");
    for &(pa, pb) in &d.alignment {
        let ta = pa.map_or(0, |i| a.phases[i].total());
        let tb = pb.map_or(0, |i| b.phases[i].total());
        let segs = match (pa, pb) {
            (_, Some(i)) => b.phases[i].segments,
            (Some(i), None) => a.phases[i].segments,
            (None, None) => 0,
        };
        let clusters = match (pa, pb) {
            (_, Some(i)) => cluster_line(&b.phases[i].per_proc),
            (Some(i), None) => cluster_line(&a.phases[i].per_proc),
            (None, None) => String::new(),
        };
        let _ = writeln!(
            out,
            "  phase {:<14} {} -> {} ({} segment{}); {}",
            phase_label(pa, pb),
            fmt_mag(ta as f64),
            fmt_mag(tb as f64),
            segs,
            if segs == 1 { "" } else { "s" },
            clusters,
        );
    }
    out
}

fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// Renders the diff as machine-readable JSON (hand-rolled, no
/// dependencies; all floats printed with fixed precision so output is
/// deterministic).
pub fn diff_json(d: &DiffReport, a: &RunProfile, b: &RunProfile) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":1,\"total_a\":{},\"total_b\":{},\"delta\":{},\"gross\":{},",
        d.total_a,
        d.total_b,
        d.delta(),
        d.gross()
    );
    out.push_str("\"alignment\":[");
    for (i, &(pa, pb)) in d.alignment.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", json_opt(pa), json_opt(pb));
    }
    out.push_str("],\"entries\":[");
    let gross = d.gross();
    for (i, e) in d.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let share = if gross > 0 {
            e.delta.unsigned_abs() as f64 / gross as f64
        } else {
            0.0
        };
        let _ = write!(
            out,
            "{{\"phase_a\":{},\"phase_b\":{},\"kind\":\"{}\",\"delta\":{},\"share\":{:.6},\"procs\":\"{}\"}}",
            json_opt(e.phase_a),
            json_opt(e.phase_b),
            e.kind.label(),
            e.delta,
            share,
            format_procs(&e.procs)
        );
    }
    out.push_str("],");
    for (name, prof) in [("phases_a", a), ("phases_b", b)] {
        let _ = write!(out, "\"{name}\":[");
        for (i, p) in prof.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{i},\"segments\":{},\"total\":{},\"clusters\":[",
                p.segments,
                p.total()
            );
            for (j, c) in cluster_procs(&p.per_proc, CLUSTER_DISTANCE)
                .iter()
                .enumerate()
            {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"procs\":\"{}\",\"total\":{}}}",
                    format_procs(&c.members),
                    c.total
                );
            }
            out.push_str("]}");
        }
        out.push(']');
        if name == "phases_a" {
            out.push(',');
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Phase;

    fn kv(pairs: &[(Kind, u64)]) -> KindVec {
        let mut v = [0u64; Kind::COUNT];
        for &(k, c) in pairs {
            v[k.index()] = c;
        }
        v
    }

    fn profile(phases: Vec<Vec<KindVec>>) -> RunProfile {
        let nprocs = phases.first().map_or(0, Vec::len);
        RunProfile {
            nprocs,
            phases: phases
                .into_iter()
                .map(|per_proc| Phase {
                    segments: 1,
                    per_proc,
                })
                .collect(),
        }
    }

    #[test]
    fn self_diff_is_empty() {
        let a = profile(vec![vec![kv(&[(Kind::Compute, 100)]); 4]]);
        let d = diff_profiles(&a, &a);
        assert_eq!(d.delta(), 0);
        assert!(d.entries.is_empty());
        assert_eq!(render_diff(&d, &a, &a), "");
    }

    #[test]
    fn entries_sum_exactly_to_the_total_delta() {
        let a = profile(vec![
            vec![kv(&[(Kind::Compute, 100), (Kind::BarrierWait, 10)]); 4],
            vec![kv(&[(Kind::Wait, 50)]); 4],
        ]);
        let b = profile(vec![
            vec![kv(&[(Kind::Compute, 100), (Kind::BarrierWait, 30)]); 4],
            vec![kv(&[(Kind::Wait, 20), (Kind::Retry, 90)]); 4],
        ]);
        let d = diff_profiles(&a, &b);
        let sum: i64 = d.entries.iter().map(|e| e.delta).sum();
        assert_eq!(sum, d.delta());
        assert_ne!(d.delta(), 0);
    }

    #[test]
    fn localizes_a_regression_to_kind_and_procs() {
        // Only procs 2-3 gain Retry cycles in phase 1.
        let mut pb1 = vec![kv(&[(Kind::Wait, 50)]); 4];
        pb1[2] = kv(&[(Kind::Wait, 50), (Kind::Retry, 1_000)]);
        pb1[3] = kv(&[(Kind::Wait, 50), (Kind::Retry, 1_100)]);
        let a = profile(vec![
            vec![kv(&[(Kind::Compute, 500)]); 4],
            vec![kv(&[(Kind::Wait, 50)]); 4],
        ]);
        let b = profile(vec![vec![kv(&[(Kind::Compute, 500)]); 4], pb1]);
        let d = diff_profiles(&a, &b);
        let top = &d.entries[0];
        assert_eq!(top.kind, Kind::Retry);
        assert_eq!(top.delta, 2_100);
        assert_eq!(top.procs, vec![2, 3]);
        let text = render_diff(&d, &a, &b);
        assert!(text.contains("retry"), "{text}");
        assert!(text.contains("2-3"), "{text}");
    }

    #[test]
    fn unmatched_phase_becomes_a_gap() {
        let a = profile(vec![vec![kv(&[(Kind::Compute, 500)]); 2]]);
        let b = profile(vec![
            vec![kv(&[(Kind::Compute, 500)]); 2],
            vec![kv(&[(Kind::Retry, 400)]); 2],
        ]);
        let d = diff_profiles(&a, &b);
        assert_eq!(d.alignment, vec![(Some(0), Some(0)), (None, Some(1))]);
        let sum: i64 = d.entries.iter().map(|e| e.delta).sum();
        assert_eq!(sum, 800);
        let text = render_diff(&d, &a, &b);
        assert!(text.contains("only in B"), "{text}");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let a = profile(vec![vec![kv(&[(Kind::Compute, 100)]); 2]]);
        let b = profile(vec![vec![kv(&[(Kind::Compute, 150)]); 2]]);
        let d = diff_profiles(&a, &b);
        let s = diff_json(&d, &a, &b);
        assert!(s.contains("\"total_a\":200"));
        assert!(s.contains("\"total_b\":300"));
        assert!(s.contains("\"delta\":100"));
        assert!(s.contains("\"kind\":\"compute\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count(), "{s}");
        assert_eq!(s.matches('[').count(), s.matches(']').count(), "{s}");
    }
}
