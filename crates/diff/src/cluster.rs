//! Per-phase processor clustering: a handful of representative groups
//! instead of P raw rows.
//!
//! Within a phase, most processors of an SPMD program behave alike; the
//! interesting ones are the outliers (the overloaded boundary node, the
//! root of a reduction tree). Processors whose normalized breakdown
//! vectors sit within a total-variation distance threshold of a cluster
//! leader collapse into that cluster; what remains is a list of cluster
//! centroids with member sets, ordered by cycle weight.

use wwt_sim::Kind;

use crate::profile::{normalize, tv_distance, KindVec};

/// Total-variation distance within which a processor joins an existing
/// cluster. Tighter than the phase-merge threshold: clusters answer
/// "which processors moved", so they must not blur real outliers away.
pub const CLUSTER_DISTANCE: f64 = 0.05;

/// One group of processors with similar breakdowns inside a phase.
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    /// Member processor ids, ascending.
    pub members: Vec<usize>,
    /// Mean normalized breakdown of the members.
    pub centroid: [f64; Kind::COUNT],
    /// Cycles of the members inside the phase, summed.
    pub total: u64,
}

/// Clusters processors by normalized breakdown similarity.
///
/// Deterministic leader clustering: processors are visited in id order;
/// each joins the first existing cluster whose *leader* (lowest-id
/// member) is within `threshold` total-variation distance, else founds a
/// new cluster. Output order is by descending cycle weight (leader id
/// breaks ties), so the heaviest group comes first.
pub fn cluster_procs(per_proc: &[KindVec], threshold: f64) -> Vec<Cluster> {
    struct Building {
        leader_sig: [f64; Kind::COUNT],
        members: Vec<usize>,
        sig_sum: [f64; Kind::COUNT],
        total: u64,
    }
    let mut building: Vec<Building> = Vec::new();
    for (id, v) in per_proc.iter().enumerate() {
        let sig = normalize(v);
        let total: u64 = v.iter().sum();
        match building
            .iter_mut()
            .find(|c| tv_distance(&c.leader_sig, &sig) <= threshold)
        {
            Some(c) => {
                c.members.push(id);
                for (s, x) in c.sig_sum.iter_mut().zip(sig.iter()) {
                    *s += x;
                }
                c.total += total;
            }
            None => building.push(Building {
                leader_sig: sig,
                members: vec![id],
                sig_sum: sig,
                total,
            }),
        }
    }
    let mut out: Vec<Cluster> = building
        .into_iter()
        .map(|c| {
            let n = c.members.len() as f64;
            let mut centroid = c.sig_sum;
            for x in centroid.iter_mut() {
                *x /= n;
            }
            Cluster {
                members: c.members,
                centroid,
                total: c.total,
            }
        })
        .collect();
    out.sort_by(|a, b| b.total.cmp(&a.total).then(a.members[0].cmp(&b.members[0])));
    out
}

/// Formats a sorted processor-id set as compact ranges: `0-3,7,12-15`.
pub fn format_procs(members: &[usize]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < members.len() {
        let start = members[i];
        let mut end = start;
        while i + 1 < members.len() && members[i + 1] == end + 1 {
            i += 1;
            end = members[i];
        }
        if !out.is_empty() {
            out.push(',');
        }
        if end > start {
            out.push_str(&format!("{start}-{end}"));
        } else {
            out.push_str(&format!("{start}"));
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(compute: u64, wait: u64) -> KindVec {
        let mut v = [0u64; Kind::COUNT];
        v[Kind::Compute.index()] = compute;
        v[Kind::BarrierWait.index()] = wait;
        v
    }

    #[test]
    fn identical_procs_form_one_cluster() {
        let procs = vec![vec_of(100, 20); 8];
        let cs = cluster_procs(&procs, CLUSTER_DISTANCE);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].members, (0..8).collect::<Vec<_>>());
        assert_eq!(cs[0].total, 8 * 120);
    }

    #[test]
    fn outliers_stand_alone_and_heaviest_cluster_comes_first() {
        // Procs 0-5 compute-bound, 6-7 wait-bound (and heavier).
        let mut procs = vec![vec_of(100, 5); 6];
        procs.push(vec_of(10, 500));
        procs.push(vec_of(12, 520));
        let cs = cluster_procs(&procs, CLUSTER_DISTANCE);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].members, vec![6, 7], "wait-bound pair is heavier");
        assert_eq!(cs[1].members, vec![0, 1, 2, 3, 4, 5]);
        assert!(cs[0].centroid[Kind::BarrierWait.index()] > 0.9);
    }

    #[test]
    fn centroid_is_the_mean_of_member_signatures() {
        let procs = vec![vec_of(100, 0), vec_of(98, 2)];
        let cs = cluster_procs(&procs, CLUSTER_DISTANCE);
        assert_eq!(cs.len(), 1);
        let c = cs[0].centroid[Kind::Compute.index()];
        assert!((c - 0.99).abs() < 1e-12, "{c}");
    }

    #[test]
    fn proc_ranges_format_compactly() {
        assert_eq!(format_procs(&[0, 1, 2, 3]), "0-3");
        assert_eq!(
            format_procs(&[0, 1, 2, 3, 7, 12, 13, 14, 15]),
            "0-3,7,12-15"
        );
        assert_eq!(format_procs(&[5]), "5");
        assert_eq!(format_procs(&[]), "");
    }
}
