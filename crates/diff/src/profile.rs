//! Phase detection: segmenting a run at synchronization boundaries and
//! merging similar segments into phases.
//!
//! Every processor records a cumulative [`wwt_sim::PhaseMark`] when it
//! crosses a barrier or completes a collective (when
//! [`SimConfig::phase_marks`](wwt_sim::SimConfig) is set). Because the
//! target programs are SPMD, the k-th mark on every processor describes
//! the same program point, so the marks cut the run into globally
//! aligned *segments*. Adjacent segments with similar normalized
//! breakdowns — the iterations of one solver loop — are merged into a
//! single *phase*, leaving a handful of phases that correspond to what a
//! programmer would call program structure (setup, main loop, teardown).

use std::fmt::Write as _;

use wwt_sim::{Kind, SimReport};

/// Cycles by cost kind, in [`Kind::ALL`] order — the unit everything in
/// this crate is built from.
pub type KindVec = [u64; Kind::COUNT];

/// Fraction of the run's total cycles below which a raw segment never
/// stands alone: it is folded into the phase being built regardless of
/// its breakdown shape.
const TINY_SEGMENT_FRACTION: f64 = 0.005;

/// Total-variation distance between normalized breakdowns below which
/// two adjacent segments are the "same" phase.
const MERGE_DISTANCE: f64 = 0.10;

/// Serialization format version; bump when the text format changes.
const PROFILE_VERSION: u32 = 1;

/// Normalizes a kind vector into fractions summing to 1 (all zeros when
/// the vector is empty).
pub(crate) fn normalize(v: &KindVec) -> [f64; Kind::COUNT] {
    let total: u64 = v.iter().sum();
    let mut out = [0.0; Kind::COUNT];
    if total > 0 {
        for (o, &c) in out.iter_mut().zip(v.iter()) {
            *o = c as f64 / total as f64;
        }
    }
    out
}

/// Total-variation distance between two normalized breakdowns: half the
/// L1 distance, in `[0, 1]`.
pub(crate) fn tv_distance(a: &[f64; Kind::COUNT], b: &[f64; Kind::COUNT]) -> f64 {
    0.5 * a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
}

/// One detected phase: one or more adjacent synchronization segments
/// whose aggregate breakdowns were similar enough to merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// How many raw synchronization segments merged into this phase.
    pub segments: usize,
    /// Cycles by kind inside the phase, one entry per processor.
    pub per_proc: Vec<KindVec>,
}

impl Phase {
    /// Cycles by kind summed over processors.
    pub fn by_kind(&self) -> KindVec {
        let mut out = [0u64; Kind::COUNT];
        for v in &self.per_proc {
            for (o, &c) in out.iter_mut().zip(v.iter()) {
                *o += c;
            }
        }
        out
    }

    /// Total cycles over all processors and kinds.
    pub fn total(&self) -> u64 {
        self.per_proc.iter().map(|v| v.iter().sum::<u64>()).sum()
    }

    /// Normalized aggregate breakdown of the phase.
    pub fn signature(&self) -> [f64; Kind::COUNT] {
        normalize(&self.by_kind())
    }

    fn absorb(&mut self, seg: &[KindVec]) {
        for (mine, theirs) in self.per_proc.iter_mut().zip(seg.iter()) {
            for (m, &t) in mine.iter_mut().zip(theirs.iter()) {
                *m += t;
            }
        }
        self.segments += 1;
    }
}

/// The phase-structured profile of one run: what the diff engine
/// consumes and the run cache persists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunProfile {
    /// Number of processors in the run.
    pub nprocs: usize,
    /// Detected phases, in simulated-time order. Always at least one for
    /// a run with processors (the tail after the last mark), even when
    /// phase marks were disabled.
    pub phases: Vec<Phase>,
}

impl RunProfile {
    /// Builds the profile from a finished run.
    ///
    /// Works from the per-processor [`phase_log`](wwt_sim::ProcReport)
    /// plus the final cycle matrices: segment k is the difference
    /// between consecutive marks, and the tail past the last mark is its
    /// own segment. Mark counts are truncated to the minimum across
    /// processors, so a straggler that skipped a collective cannot
    /// misalign everyone else.
    pub fn from_report(r: &SimReport) -> RunProfile {
        let nprocs = r.nprocs();
        if nprocs == 0 {
            return RunProfile {
                nprocs,
                phases: Vec::new(),
            };
        }
        let marks = r.procs().map(|p| p.phase_log.len()).min().unwrap_or(0);

        // Raw segments: deltas of the cumulative marks, plus the tail.
        let mut segments: Vec<Vec<KindVec>> = Vec::with_capacity(marks + 1);
        for s in 0..=marks {
            let mut per_proc = Vec::with_capacity(nprocs);
            for p in r.procs() {
                let prev = if s == 0 {
                    [0u64; Kind::COUNT]
                } else {
                    p.phase_log[s - 1].by_kind
                };
                let cur = if s < marks {
                    p.phase_log[s].by_kind
                } else {
                    p.matrix.kind_totals()
                };
                let mut d = [0u64; Kind::COUNT];
                for k in 0..Kind::COUNT {
                    d[k] = cur[k].saturating_sub(prev[k]);
                }
                per_proc.push(d);
            }
            segments.push(per_proc);
        }

        let run_total: u64 = segments
            .iter()
            .map(|s| s.iter().map(|v| v.iter().sum::<u64>()).sum::<u64>())
            .sum();
        let tiny = TINY_SEGMENT_FRACTION * run_total as f64;

        let mut phases: Vec<Phase> = Vec::new();
        for seg in &segments {
            let agg = {
                let mut out = [0u64; Kind::COUNT];
                for v in seg {
                    for (o, &c) in out.iter_mut().zip(v.iter()) {
                        *o += c;
                    }
                }
                out
            };
            let seg_total: u64 = agg.iter().sum();
            if let Some(cur) = phases.last_mut() {
                let same_shape = tv_distance(&cur.signature(), &normalize(&agg)) <= MERGE_DISTANCE;
                if same_shape || (seg_total as f64) < tiny {
                    cur.absorb(seg);
                    continue;
                }
            }
            phases.push(Phase {
                segments: 1,
                per_proc: seg.clone(),
            });
        }
        RunProfile { nprocs, phases }
    }

    /// Total cycles over all phases, processors, and kinds. Equals the
    /// sum of the run's per-processor matrix totals by construction.
    pub fn total(&self) -> u64 {
        self.phases.iter().map(|p| p.total()).sum()
    }

    /// Serializes the profile as a versioned, line-oriented text block
    /// (the run cache embeds it as a blob).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "wwt-run-profile {PROFILE_VERSION}");
        let _ = writeln!(out, "nprocs {}", self.nprocs);
        let _ = writeln!(out, "phases {}", self.phases.len());
        for p in &self.phases {
            let _ = writeln!(out, "phase {}", p.segments);
            for v in &p.per_proc {
                out.push('p');
                for c in v {
                    let _ = write!(out, " {c}");
                }
                out.push('\n');
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a [`RunProfile::to_text`] block. Any damage — truncation,
    /// version skew, malformed numbers — yields `None`, never an error.
    pub fn from_text(text: &str) -> Option<RunProfile> {
        let mut lines = text.lines();
        let version: u32 = lines
            .next()?
            .strip_prefix("wwt-run-profile ")?
            .parse()
            .ok()?;
        if version != PROFILE_VERSION {
            return None;
        }
        let nprocs: usize = lines.next()?.strip_prefix("nprocs ")?.parse().ok()?;
        let nphases: usize = lines.next()?.strip_prefix("phases ")?.parse().ok()?;
        let mut phases = Vec::with_capacity(nphases);
        for _ in 0..nphases {
            let segments: usize = lines.next()?.strip_prefix("phase ")?.parse().ok()?;
            let mut per_proc = Vec::with_capacity(nprocs);
            for _ in 0..nprocs {
                let line = lines.next()?.strip_prefix("p ")?;
                let mut v = [0u64; Kind::COUNT];
                let mut it = line.split(' ');
                for c in v.iter_mut() {
                    *c = it.next()?.parse().ok()?;
                }
                if it.next().is_some() {
                    return None;
                }
                per_proc.push(v);
            }
            phases.push(Phase { segments, per_proc });
        }
        (lines.next()? == "end").then_some(RunProfile { nprocs, phases })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use wwt_sim::{Engine, HwBarrier, ProcId, SimConfig};

    fn marked_run(nprocs: usize, rounds: usize, tail: u64) -> SimReport {
        let mut e = Engine::new(
            nprocs,
            SimConfig {
                phase_marks: true,
                ..SimConfig::default()
            },
        );
        let barrier = Rc::new(HwBarrier::new(nprocs, 100));
        for p in e.proc_ids() {
            let cpu = e.cpu(p);
            let barrier = Rc::clone(&barrier);
            e.spawn(p, async move {
                for _ in 0..rounds {
                    cpu.compute(1_000 * (p.index() as u64 + 1));
                    barrier.wait(&cpu, Kind::BarrierWait).await;
                }
                // A tail with a very different breakdown shape.
                cpu.charge(Kind::Wait, tail);
            });
        }
        e.run()
    }

    #[test]
    fn repeated_iterations_merge_into_one_phase() {
        let r = marked_run(4, 6, 50_000);
        let prof = RunProfile::from_report(&r);
        // Six identical compute/barrier rounds merge; the pure-wait tail
        // is shaped differently and stands alone.
        assert_eq!(prof.phases.len(), 2, "{prof:?}");
        assert_eq!(prof.phases[0].segments, 6);
        assert_eq!(prof.phases[1].segments, 1);
        assert_eq!(prof.phases[1].by_kind()[Kind::Wait.index()], 4 * 50_000);
    }

    #[test]
    fn profile_total_matches_matrix_totals() {
        let r = marked_run(3, 4, 10_000);
        let prof = RunProfile::from_report(&r);
        let matrix_total: u64 = r.procs().map(|p| p.matrix.total()).sum();
        assert_eq!(prof.total(), matrix_total);
    }

    #[test]
    fn unmarked_run_is_a_single_phase() {
        let mut e = Engine::new(2, SimConfig::default());
        for p in e.proc_ids() {
            let cpu = e.cpu(p);
            e.spawn(p, async move { cpu.compute(123) });
        }
        let prof = RunProfile::from_report(&e.run());
        assert_eq!(prof.phases.len(), 1);
        assert_eq!(prof.total(), 246);
    }

    #[test]
    fn text_round_trip_is_exact() {
        let r = marked_run(4, 3, 20_000);
        let prof = RunProfile::from_report(&r);
        let text = prof.to_text();
        assert_eq!(RunProfile::from_text(&text), Some(prof));
    }

    #[test]
    fn damaged_text_is_a_miss() {
        let r = marked_run(2, 2, 5_000);
        let text = RunProfile::from_report(&r).to_text();
        assert!(RunProfile::from_text(&text[..text.len() / 2]).is_none());
        assert!(RunProfile::from_text("wwt-run-profile 999\n").is_none());
        assert!(RunProfile::from_text("").is_none());
    }

    #[test]
    fn marks_align_across_processors() {
        let r = marked_run(4, 5, 0);
        let counts: Vec<usize> = r.procs().map(|p| p.phase_log.len()).collect();
        assert!(counts.iter().all(|&c| c == 5), "{counts:?}");
        // Barrier releases happen at the same instant on every processor.
        for s in 0..5 {
            let at: Vec<u64> = r.procs().map(|p| p.phase_log[s].at).collect();
            assert!(at.windows(2).all(|w| w[0] == w[1]), "segment {s}: {at:?}");
        }
        let _ = ProcId::new(0);
    }
}
