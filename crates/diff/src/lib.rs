//! Automatic performance diffing for the WWT reproduction.
//!
//! The paper's contribution is a *breakdown* of where time goes; this
//! crate explains where time *moved*. It consumes the per-processor
//! artifacts the instrumentation already emits — cumulative phase marks
//! recorded at barrier crossings and collective completions
//! ([`wwt_sim::PhaseMark`]) plus the final cycle matrices — and turns
//! them into structured comparisons, in three layers:
//!
//! 1. **Phase detection** ([`profile`]): simulated time is segmented at
//!    synchronization boundaries, adjacent segments with similar
//!    normalized breakdowns are merged (repeated loop iterations become
//!    one phase), and each phase carries a per-processor × per-category
//!    cycle matrix.
//! 2. **Processor clustering** ([`cluster`]): within a phase, processors
//!    whose normalized breakdown vectors sit within a total-variation
//!    distance threshold collapse into one cluster — centroids and
//!    outliers instead of P raw rows, in the spirit of similarity-based
//!    performance debugging of SPMD programs.
//! 3. **Two-run diffing** ([`diff`]): phases of run A and run B are
//!    aligned (Needleman–Wunsch over breakdown similarity), the
//!    total-cycle delta is attributed *exactly* to (phase, category,
//!    processor-group) entries, and the result renders as both a human
//!    report and machine-readable JSON.
//!
//! Everything here is a pure function of the run reports: diffing the
//! same two runs produces byte-identical output regardless of how the
//! runs were scheduled or whether they were replayed from a cache.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod diff;
pub mod profile;

pub use cluster::{cluster_procs, format_procs, Cluster, CLUSTER_DISTANCE};
pub use diff::{diff_json, diff_profiles, render_diff, DiffEntry, DiffReport};
pub use profile::{KindVec, Phase, RunProfile};
