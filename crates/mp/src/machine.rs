//! The message-passing machine: nodes, network interface, active-message
//! dispatch, and costed local-memory access.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use wwt_mem::{touch, AccessKind, Cache, NodeMem, Tlb, TouchOutcome};
use wwt_sim::{
    Counter, Cpu, Cycles, Engine, FastMap, HwBarrier, Kind, Mark, Metric, PacketFate, ProcId,
    Scope, ScopeGuard, Sim, TraceWhat, WaitCell, WaitTarget,
};

use crate::channel::{ChannelId, RecvChannel};
use crate::collectives::BulkBcastState;
use crate::config::MpConfig;
use crate::packet::{tag, Packet, PACKET_BYTES};
use crate::sync_msg::{PendingRecv, PendingSend};

/// Arguments passed to an active-message handler.
///
/// Handlers run *in the context of the receiving processor* when it polls
/// the network interface, exactly as in the polled CMAML/CMMD regime the
/// paper describes; any cycles a handler charges land on the receiver.
pub struct AmArgs<'a> {
    /// The machine (for replies, channel writes, memory access).
    pub machine: &'a Rc<MpMachine>,
    /// The receiving processor's handle.
    pub cpu: &'a Cpu,
    /// The sending node.
    pub src: ProcId,
    /// 24-bit metadata from the packet header.
    pub meta: u32,
    /// The four payload words.
    pub words: [u32; 4],
}

impl fmt::Debug for AmArgs<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AmArgs")
            .field("src", &self.src)
            .field("meta", &self.meta)
            .field("words", &self.words)
            .finish()
    }
}

type HandlerFn = dyn Fn(&AmArgs<'_>);

pub(crate) struct MpNode {
    pub(crate) mem: NodeMem,
    pub(crate) cache: Cache,
    pub(crate) tlb: Tlb,
    pub(crate) rx: VecDeque<Packet>,
    pub(crate) rx_waiter: Option<WaitCell>,
    pub(crate) dispatched: u64,
    /// Earliest time the NI can accept the next packet (congestion model).
    pub(crate) ni_free: Cycles,
    // CMMD channel state.
    pub(crate) rchans: Vec<RecvChannel>,
    pub(crate) announces: Vec<VecDeque<(u32, u32)>>,
    // Software-collective state.
    pub(crate) red_inbox: FastMap<(u32, usize), [u32; 4]>,
    pub(crate) red_seq: u32,
    pub(crate) bc_inbox: FastMap<u32, [u32; 4]>,
    pub(crate) bc_seq: u32,
    pub(crate) bcb_stash: FastMap<u32, BulkBcastState>,
    pub(crate) bcb_seq: u32,
    // Synchronous send/receive rendezvous state.
    pub(crate) sync_reqs: Vec<PendingSend>,
    pub(crate) sync_recvs: Vec<PendingRecv>,
    pub(crate) sync_acks: Vec<(ProcId, u32, u32)>,
    pub(crate) sync_waiters: Vec<(ChannelId, WaitCell, u32)>,
    // Reliable-delivery state (touched only when the fault plan perturbs
    // the network; all-zero otherwise).
    /// Next sequence number to stamp, per destination.
    pub(crate) tx_seq: Vec<u64>,
    /// Next sequence number expected, per source (go-back-N receiver).
    pub(crate) rx_expected: Vec<u64>,
    /// Sent-but-unacknowledged packet copies, per destination.
    pub(crate) unacked: Vec<VecDeque<Packet>>,
    /// Whether a retransmit-timer event is scheduled, per destination.
    pub(crate) rtx_armed: Vec<bool>,
    /// Current retransmit deadline, per destination.
    pub(crate) rtx_deadline: Vec<Cycles>,
    /// Current (backed-off) retransmit timeout, per destination.
    pub(crate) rtx_timeout: Vec<Cycles>,
    /// Last time a retransmission round was injected, per destination
    /// (suppresses NACK-triggered retransmit storms within a round trip).
    pub(crate) rtx_last: Vec<Cycles>,
}

impl MpNode {
    fn new(nprocs: usize, config: &MpConfig, seed: u64) -> Self {
        MpNode {
            mem: NodeMem::new(),
            cache: Cache::new(config.arch.cache, seed),
            tlb: Tlb::new(config.arch.tlb_entries),
            rx: VecDeque::new(),
            rx_waiter: None,
            dispatched: 0,
            ni_free: 0,
            rchans: Vec::new(),
            announces: (0..nprocs).map(|_| VecDeque::new()).collect(),
            red_inbox: FastMap::default(),
            red_seq: 0,
            bc_inbox: FastMap::default(),
            bc_seq: 0,
            bcb_stash: FastMap::default(),
            bcb_seq: 0,
            sync_reqs: Vec::new(),
            sync_recvs: Vec::new(),
            sync_acks: Vec::new(),
            sync_waiters: Vec::new(),
            tx_seq: vec![0; nprocs],
            rx_expected: vec![0; nprocs],
            unacked: (0..nprocs).map(|_| VecDeque::new()).collect(),
            rtx_armed: vec![false; nprocs],
            rtx_deadline: vec![0; nprocs],
            rtx_timeout: vec![config.retry_timeout; nprocs],
            rtx_last: vec![0; nprocs],
        }
    }
}

/// The simulated message-passing machine.
///
/// Create one per [`Engine`], register any application active-message
/// handlers with [`MpMachine::set_handler`], and hand `Rc<MpMachine>`
/// clones plus [`Cpu`] handles to the per-processor tasks.
pub struct MpMachine {
    sim: Rc<Sim>,
    config: MpConfig,
    pub(crate) nodes: RefCell<Vec<MpNode>>,
    handlers: RefCell<FastMap<u8, Rc<HandlerFn>>>,
    barrier: HwBarrier,
    /// Cached [`Sim::tracing`] (single branch on packet paths when off).
    tracing: bool,
    /// Whether the reliable-delivery layer is active: true exactly when
    /// the fault plan can perturb network traffic. When false, packets
    /// carry no sequence numbers, no ACKs flow, and no timers arm — runs
    /// are byte-identical to the pre-fault-injection machine.
    reliable: bool,
}

impl fmt::Debug for MpMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpMachine")
            .field("nprocs", &self.nprocs())
            .field("config", &self.config)
            .finish()
    }
}

impl MpMachine {
    /// Creates a message-passing machine bound to `engine`.
    pub fn new(engine: &Engine, config: MpConfig) -> Rc<Self> {
        let sim = Rc::clone(engine.sim());
        let n = sim.nprocs();
        let seed = sim.config().seed;
        let tracing = sim.tracing();
        let reliable = sim.config().faults.is_some_and(|f| f.perturbs_network());
        Rc::new(MpMachine {
            sim,
            nodes: RefCell::new(
                (0..n)
                    .map(|i| MpNode::new(n, &config, seed.wrapping_add(i as u64)))
                    .collect(),
            ),
            barrier: HwBarrier::new(n, config.arch.barrier_latency),
            config,
            handlers: RefCell::new(FastMap::default()),
            tracing,
            reliable,
        })
    }

    /// Number of nodes.
    pub fn nprocs(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MpConfig {
        &self.config
    }

    /// The simulator handle.
    pub fn sim(&self) -> &Rc<Sim> {
        &self.sim
    }

    /// Registers the handler for an application tag
    /// (must be ≥ [`tag::USER_BASE`]).
    ///
    /// # Panics
    ///
    /// Panics if `t` is a reserved library tag.
    pub fn set_handler(&self, t: u8, f: impl Fn(&AmArgs<'_>) + 'static) {
        assert!(t >= tag::USER_BASE, "tag {t} is reserved for the library");
        self.handlers.borrow_mut().insert(t, Rc::new(f));
    }

    // ----- local memory ---------------------------------------------------

    /// Allocates `bytes` in `node`'s local memory (no simulated cost;
    /// allocation happens during setup).
    pub fn alloc(&self, node: ProcId, bytes: u64, align: u64) -> u64 {
        self.nodes.borrow_mut()[node.index()]
            .mem
            .alloc(bytes, align)
    }

    /// Reads an `f64` from `node`'s memory without simulated cost
    /// (setup/verification only).
    pub fn peek_f64(&self, node: ProcId, off: u64) -> f64 {
        self.nodes.borrow()[node.index()].mem.read_f64(off)
    }

    /// Writes an `f64` to `node`'s memory without simulated cost
    /// (setup/verification only).
    pub fn poke_f64(&self, node: ProcId, off: u64, v: f64) {
        self.nodes.borrow_mut()[node.index()].mem.write_f64(off, v)
    }

    /// Bulk-reads `f64`s from `node`'s memory without simulated cost
    /// (pair with [`MpMachine::touch_read`] for the memory-system charge).
    pub fn peek_f64s(&self, node: ProcId, off: u64, dst: &mut [f64]) {
        self.nodes.borrow()[node.index()].mem.read_f64s(off, dst)
    }

    /// Bulk-writes `f64`s to `node`'s memory without simulated cost
    /// (pair with [`MpMachine::touch_write`] for the memory-system charge).
    pub fn poke_f64s(&self, node: ProcId, off: u64, src: &[f64]) {
        self.nodes.borrow_mut()[node.index()]
            .mem
            .write_f64s(off, src)
    }

    /// Reads a `u32` from `node`'s memory without simulated cost.
    pub fn peek_u32(&self, node: ProcId, off: u64) -> u32 {
        self.nodes.borrow()[node.index()].mem.read_u32(off)
    }

    /// Writes a `u32` to `node`'s memory without simulated cost.
    pub fn poke_u32(&self, node: ProcId, off: u64, v: u32) {
        self.nodes.borrow_mut()[node.index()].mem.write_u32(off, v)
    }

    /// Charges the memory-system cost of reading `bytes` at `off` in the
    /// caller's local memory (block-granularity cache + TLB simulation).
    pub fn touch_read(&self, cpu: &Cpu, off: u64, bytes: u64) {
        self.touch_access(cpu, off, bytes, AccessKind::Read);
    }

    /// Charges the memory-system cost of writing `bytes` at `off`.
    pub fn touch_write(&self, cpu: &Cpu, off: u64, bytes: u64) {
        self.touch_access(cpu, off, bytes, AccessKind::Write);
    }

    fn touch_access(&self, cpu: &Cpu, off: u64, bytes: u64, kind: AccessKind) {
        let out = {
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[cpu.id().index()];
            touch(&mut node.cache, &mut node.tlb, off, bytes, kind)
        };
        self.charge_touch(cpu, out);
    }

    pub(crate) fn charge_touch(&self, cpu: &Cpu, out: TouchOutcome) {
        if out.misses > 0 {
            cpu.charge(
                Kind::PrivMiss,
                out.misses as Cycles * self.config.priv_miss_total()
                    + (out.dirty_evictions as Cycles) * self.config.arch.replacement,
            );
            cpu.count(Counter::PrivMisses, out.misses as u64);
        }
        if out.tlb_misses > 0 {
            cpu.charge(
                Kind::TlbMiss,
                out.tlb_misses as Cycles * self.config.arch.tlb_miss,
            );
            cpu.count(Counter::TlbMisses, out.tlb_misses as u64);
        }
    }

    /// Costed read of an `f64` in local memory.
    pub fn read_f64(&self, cpu: &Cpu, off: u64) -> f64 {
        self.touch_read(cpu, off, 8);
        self.peek_f64(cpu.id(), off)
    }

    /// Costed write of an `f64` in local memory.
    pub fn write_f64(&self, cpu: &Cpu, off: u64, v: f64) {
        self.touch_write(cpu, off, 8);
        self.poke_f64(cpu.id(), off, v);
    }

    // ----- network interface ----------------------------------------------

    /// Enters the library attribution scope unless already inside a
    /// library/collective scope.
    pub(crate) fn lib_scope(&self, cpu: &Cpu) -> Option<ScopeGuard> {
        (cpu.current_scope() == Scope::App).then(|| cpu.scope(Scope::Lib))
    }

    /// Injects a packet: charges NI access at the sender and schedules
    /// delivery one network latency later. Usable from handlers.
    pub(crate) fn send_packet(self: &Rc<Self>, cpu: &Cpu, mut pkt: Packet) {
        debug_assert_eq!(pkt.src, cpu.id());
        cpu.charge(
            Kind::NetAccess,
            self.config.ni_tag_dest + self.config.ni_send,
        );
        cpu.count(Counter::PacketsSent, 1);
        cpu.count(Counter::BytesData, pkt.data_bytes as u64);
        cpu.count(Counter::BytesControl, pkt.control_bytes() as u64);
        pkt.sent_at = cpu.clock();
        if cpu.tracing() {
            cpu.trace(TraceWhat::Instant(Mark::MsgSend {
                peer: pkt.dest,
                tag: pkt.tag,
            }));
        }
        if self.reliable {
            self.track_unacked(&mut pkt, cpu.clock());
        }
        self.inject(pkt, cpu.clock());
    }

    /// Puts `pkt` on the wire at `depart`, consulting the fault plan for
    /// its fate. Computes the arrival time (network latency plus the
    /// optional congestion model) and schedules [`MpMachine::deliver`].
    fn inject(self: &Rc<Self>, pkt: Packet, depart: Cycles) {
        let mut arrival = (depart + self.config.arch.net_latency).max(self.sim.now());
        if self.config.ni_accept_gap > 0 {
            // First-order congestion: the destination NI accepts at most
            // one packet per gap; later packets queue in the network.
            let mut nodes = self.nodes.borrow_mut();
            let dest = &mut nodes[pkt.dest.index()];
            arrival = arrival.max(dest.ni_free);
            dest.ni_free = arrival + self.config.ni_accept_gap;
        }
        if self.reliable {
            match self.sim.fault_fate(pkt.src, pkt.dest) {
                PacketFate::Drop => {
                    if self.tracing {
                        self.sim.trace(
                            pkt.src,
                            self.sim.now(),
                            TraceWhat::Instant(Mark::FaultDrop {
                                peer: pkt.dest,
                                tag: pkt.tag,
                            }),
                        );
                    }
                    return;
                }
                PacketFate::Duplicate { extra } => {
                    if self.tracing {
                        self.sim.trace(
                            pkt.src,
                            self.sim.now(),
                            TraceWhat::Instant(Mark::FaultDup {
                                peer: pkt.dest,
                                tag: pkt.tag,
                            }),
                        );
                    }
                    let this = Rc::clone(self);
                    self.sim
                        .call_at_for(pkt.dest, arrival + extra, move || this.deliver(pkt))
                        .expect("arrival is clamped to the present");
                }
                PacketFate::Deliver { extra } => {
                    if extra > 0 && self.tracing {
                        self.sim.trace(
                            pkt.src,
                            self.sim.now(),
                            TraceWhat::Instant(Mark::FaultDelay {
                                peer: pkt.dest,
                                extra,
                            }),
                        );
                    }
                    arrival += extra;
                }
            }
        }
        let this = Rc::clone(self);
        self.sim
            .call_at_for(pkt.dest, arrival, move || this.deliver(pkt))
            .expect("arrival is clamped to the present");
    }

    fn deliver(self: &Rc<Self>, pkt: Packet) {
        if self.reliable {
            match pkt.tag {
                tag::ACK => return self.handle_ack(&pkt),
                tag::NACK => return self.handle_nack(&pkt),
                _ => {
                    // Go-back-N receiver: accept exactly the next expected
                    // sequence number; re-ACK duplicates, NACK gaps.
                    let expected =
                        self.nodes.borrow()[pkt.dest.index()].rx_expected[pkt.src.index()];
                    if pkt.seq < expected {
                        // Duplicate of something already delivered.
                        self.send_ctl(pkt.dest, pkt.src, tag::ACK, expected);
                        return;
                    }
                    if pkt.seq > expected {
                        // Gap: an earlier packet was lost or reordered away.
                        self.send_ctl(pkt.dest, pkt.src, tag::NACK, expected);
                        return;
                    }
                    self.nodes.borrow_mut()[pkt.dest.index()].rx_expected[pkt.src.index()] += 1;
                    self.send_ctl(pkt.dest, pkt.src, tag::ACK, pkt.seq + 1);
                }
            }
        }
        if self.tracing {
            self.sim.trace(
                pkt.dest,
                self.sim.now(),
                TraceWhat::Instant(Mark::MsgRecv {
                    peer: pkt.src,
                    tag: pkt.tag,
                }),
            );
        }
        let cell = {
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[pkt.dest.index()];
            node.rx.push_back(pkt);
            node.rx_waiter.take()
        };
        if let Some(cell) = cell {
            cell.complete(&self.sim, self.sim.now());
        }
    }

    // ----- reliable delivery ------------------------------------------------

    /// Stamps `pkt` with the next sequence number for its destination,
    /// remembers a copy for retransmission, and (re)arms the per-destination
    /// retransmit timer.
    fn track_unacked(self: &Rc<Self>, pkt: &mut Packet, at: Cycles) {
        let src = pkt.src;
        let d = pkt.dest.index();
        let (arm, deadline) = {
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[src.index()];
            pkt.seq = node.tx_seq[d];
            node.tx_seq[d] += 1;
            node.unacked[d].push_back(*pkt);
            let deadline = at.max(self.sim.now()) + node.rtx_timeout[d];
            node.rtx_deadline[d] = deadline;
            let arm = !node.rtx_armed[d];
            node.rtx_armed[d] = true;
            (arm, deadline)
        };
        if arm {
            let this = Rc::clone(self);
            let dest = pkt.dest;
            self.sim
                .call_at_for(src, deadline, move || this.retransmit_timer(src, dest))
                .expect("deadline is in the future");
        }
    }

    /// Emits a zero-payload ACK/NACK control packet carrying the cumulative
    /// next-expected sequence number. Control packets are unsequenced and
    /// themselves subject to the fault plan (a lost ACK is recovered by the
    /// sender's retransmit timer).
    fn send_ctl(self: &Rc<Self>, from: ProcId, to: ProcId, t: u8, ack: u64) {
        self.sim
            .charge_callback(from, Kind::Retry, self.config.ack_cost);
        let counter = if t == tag::ACK {
            Counter::AcksSent
        } else {
            Counter::NacksSent
        };
        self.sim.count(from, counter, 1);
        self.sim.count(from, Counter::PacketsSent, 1);
        self.sim
            .count(from, Counter::BytesControl, PACKET_BYTES as u64);
        let pkt = Packet {
            src: from,
            dest: to,
            tag: t,
            meta: 0,
            words: [(ack & 0xffff_ffff) as u32, (ack >> 32) as u32, 0, 0],
            data_bytes: 0,
            sent_at: self.sim.now(),
            seq: 0,
        };
        self.inject(pkt, self.sim.now());
    }

    /// Handles a cumulative ACK at the original sender (`pkt.dest`):
    /// everything below the carried sequence number is delivered.
    fn handle_ack(self: &Rc<Self>, pkt: &Packet) {
        let acked = (pkt.words[0] as u64) | ((pkt.words[1] as u64) << 32);
        let d = pkt.src.index();
        let mut nodes = self.nodes.borrow_mut();
        let node = &mut nodes[pkt.dest.index()];
        while node.unacked[d].front().is_some_and(|p| p.seq < acked) {
            node.unacked[d].pop_front();
        }
        if node.unacked[d].is_empty() {
            // Progress: reset backoff. The armed timer disarms itself at
            // its next expiry (the queue is empty).
            node.rtx_timeout[d] = self.config.retry_timeout;
        } else {
            node.rtx_deadline[d] = self.sim.now() + node.rtx_timeout[d];
        }
    }

    /// Handles a NACK at the original sender: the receiver saw a gap, so
    /// retransmit the outstanding window immediately (rate-limited to one
    /// round per round trip to avoid NACK storms).
    fn handle_nack(self: &Rc<Self>, pkt: &Packet) {
        let me = pkt.dest;
        let d = pkt.src.index();
        let want = (pkt.words[0] as u64) | ((pkt.words[1] as u64) << 32);
        let fire = {
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[me.index()];
            while node.unacked[d].front().is_some_and(|p| p.seq < want) {
                node.unacked[d].pop_front();
            }
            !node.unacked[d].is_empty()
                && self.sim.now() >= node.rtx_last[d] + 2 * self.config.arch.net_latency
        };
        if fire {
            self.retransmit_unacked(me, pkt.src);
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[me.index()];
            node.rtx_last[d] = self.sim.now();
            node.rtx_deadline[d] = self.sim.now() + node.rtx_timeout[d];
        }
    }

    /// The per-(sender, destination) retransmit timer. Fires at the armed
    /// deadline; if ACK progress pushed the deadline forward it re-arms,
    /// otherwise it retransmits the whole outstanding window and backs off
    /// exponentially. Disarms when the window is empty.
    fn retransmit_timer(self: &Rc<Self>, src: ProcId, dest: ProcId) {
        let d = dest.index();
        let now = self.sim.now();
        enum Step {
            Disarm,
            Rearm(Cycles),
            Fire(Cycles),
        }
        let step = {
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[src.index()];
            if node.unacked[d].is_empty() {
                node.rtx_armed[d] = false;
                node.rtx_timeout[d] = self.config.retry_timeout;
                Step::Disarm
            } else if now < node.rtx_deadline[d] {
                Step::Rearm(node.rtx_deadline[d])
            } else {
                let next = (node.rtx_timeout[d]
                    .saturating_mul(self.config.retry_backoff as Cycles))
                .min(self.config.retry_timeout_max);
                node.rtx_timeout[d] = next;
                node.rtx_deadline[d] = now + next;
                node.rtx_last[d] = now;
                Step::Fire(now + next)
            }
        };
        match step {
            Step::Disarm => {}
            Step::Rearm(at) => {
                let this = Rc::clone(self);
                self.sim
                    .call_at_for(src, at, move || this.retransmit_timer(src, dest))
                    .expect("deadline is in the future");
            }
            Step::Fire(at) => {
                self.retransmit_unacked(src, dest);
                let this = Rc::clone(self);
                self.sim
                    .call_at_for(src, at, move || this.retransmit_timer(src, dest))
                    .expect("deadline is in the future");
            }
        }
    }

    /// Re-injects every outstanding packet for (`src` → `dest`), charging
    /// the NI cost to the `retry` category. Copies keep their original
    /// `sent_at` so end-to-end latency samples include recovery time.
    fn retransmit_unacked(self: &Rc<Self>, src: ProcId, dest: ProcId) {
        let pkts: Vec<Packet> = self.nodes.borrow()[src.index()].unacked[dest.index()]
            .iter()
            .copied()
            .collect();
        if pkts.is_empty() {
            return;
        }
        let count = pkts.len() as u64;
        self.sim.charge_callback(
            src,
            Kind::Retry,
            self.config.retry_packet_cost.saturating_mul(count),
        );
        self.sim.count(src, Counter::Retransmits, count);
        self.sim.count(src, Counter::PacketsSent, count);
        if self.tracing {
            self.sim.trace(
                src,
                self.sim.now(),
                TraceWhat::Instant(Mark::Retransmit {
                    peer: dest,
                    count: count as u32,
                }),
            );
        }
        for pkt in pkts {
            self.sim
                .count(src, Counter::BytesData, pkt.data_bytes as u64);
            self.sim
                .count(src, Counter::BytesControl, pkt.control_bytes() as u64);
            self.inject(pkt, self.sim.now());
        }
    }

    /// Sends an active message: `words` are delivered to the handler for
    /// `t` on `dest` when it next polls. `data_bytes` of the payload count
    /// as application data in the byte accounting.
    pub async fn am_send(
        self: &Rc<Self>,
        cpu: &Cpu,
        dest: ProcId,
        t: u8,
        meta: u32,
        words: [u32; 4],
    ) {
        self.am_send_data(cpu, dest, t, meta, words, 0).await;
    }

    /// [`MpMachine::am_send`] with explicit data-byte accounting.
    pub async fn am_send_data(
        self: &Rc<Self>,
        cpu: &Cpu,
        dest: ProcId,
        t: u8,
        meta: u32,
        words: [u32; 4],
        data_bytes: u32,
    ) {
        cpu.resync().await;
        let _lib = self.lib_scope(cpu);
        cpu.compute(self.config.am_send_overhead);
        cpu.count(Counter::ActiveMessages, 1);
        cpu.count(Counter::MessagesSent, 1);
        self.send_packet(
            cpu,
            Packet {
                src: cpu.id(),
                dest,
                tag: t,
                meta,
                words,
                data_bytes,
                sent_at: 0,
                seq: 0,
            },
        );
    }

    /// Active-message send usable from inside a handler (no await).
    pub fn am_send_from_handler(
        self: &Rc<Self>,
        cpu: &Cpu,
        dest: ProcId,
        t: u8,
        meta: u32,
        words: [u32; 4],
        data_bytes: u32,
    ) {
        cpu.compute(self.config.am_send_overhead);
        cpu.count(Counter::ActiveMessages, 1);
        cpu.count(Counter::MessagesSent, 1);
        self.send_packet(
            cpu,
            Packet {
                src: cpu.id(),
                dest,
                tag: t,
                meta,
                words,
                data_bytes,
                sent_at: 0,
                seq: 0,
            },
        );
    }

    fn pop_rx(&self, p: ProcId) -> Option<Packet> {
        self.nodes.borrow_mut()[p.index()].rx.pop_front()
    }

    fn arm_rx_waiter(&self, p: ProcId) -> WaitCell {
        let mut nodes = self.nodes.borrow_mut();
        let node = &mut nodes[p.index()];
        assert!(node.rx_waiter.is_none(), "{p} already blocked on the NI");
        let cell = WaitCell::new();
        node.rx_waiter = Some(cell.clone());
        cell
    }

    /// Polls once: checks the NI status register and, if a packet is
    /// queued, receives and dispatches it. Returns whether a packet was
    /// handled. Does not block.
    pub fn poll_once(self: &Rc<Self>, cpu: &Cpu) -> bool {
        let _lib = self.lib_scope(cpu);
        cpu.charge(Kind::NetAccess, self.config.ni_status);
        match self.pop_rx(cpu.id()) {
            Some(pkt) => {
                cpu.charge(Kind::NetAccess, self.config.ni_recv);
                cpu.compute(self.config.am_dispatch_overhead);
                self.dispatch(cpu, pkt);
                true
            }
            None => false,
        }
    }

    /// The CMMD dispatch loop: polls (dispatching incoming packets, which
    /// may run handlers) until `done(self)` is true, blocking on the NI
    /// when the receive queue is empty.
    pub(crate) async fn poll_loop(self: &Rc<Self>, cpu: &Cpu, mut done: impl FnMut(&Self) -> bool) {
        loop {
            cpu.resync().await;
            if done(self) {
                return;
            }
            cpu.compute(self.config.poll_overhead);
            cpu.charge(Kind::NetAccess, self.config.ni_status);
            let pkt = self.pop_rx(cpu.id());
            match pkt {
                Some(pkt) => {
                    cpu.charge(Kind::NetAccess, self.config.ni_recv);
                    cpu.compute(self.config.am_dispatch_overhead);
                    self.dispatch(cpu, pkt);
                }
                None => {
                    let cell = self.arm_rx_waiter(cpu.id());
                    cell.wait_labeled(cpu, Kind::Wait, "message receive", WaitTarget::Any)
                        .await;
                }
            }
        }
    }

    /// Polls, dispatching packets, until `pred(dispatched)` is true, where
    /// `dispatched` counts all packets this node has ever dispatched.
    pub async fn poll_until(self: &Rc<Self>, cpu: &Cpu, mut pred: impl FnMut(u64) -> bool) {
        let me = cpu.id().index();
        let _lib = self.lib_scope(cpu);
        self.poll_loop(cpu, move |m| pred(m.nodes.borrow()[me].dispatched))
            .await;
    }

    /// Polls, dispatching packets (and running their handlers), until
    /// `done()` is true. Use this to drain application-level requests whose
    /// completion the handlers record in application state.
    pub async fn poll_until_with(self: &Rc<Self>, cpu: &Cpu, mut done: impl FnMut() -> bool) {
        let _lib = self.lib_scope(cpu);
        self.poll_loop(cpu, move |_| done()).await;
    }

    pub(crate) fn dispatch(self: &Rc<Self>, cpu: &Cpu, pkt: Packet) {
        self.nodes.borrow_mut()[cpu.id().index()].dispatched += 1;
        if cpu.tracing() {
            cpu.trace(TraceWhat::Instant(Mark::MsgDispatch {
                peer: pkt.src,
                tag: pkt.tag,
            }));
            // End-to-end message latency: network injection to handler
            // dispatch (includes time queued at an unpolled NI).
            cpu.sim()
                .trace_sample(Metric::MsgLatency, cpu.clock().saturating_sub(pkt.sent_at));
        }
        match pkt.tag {
            tag::CHAN_DATA => self.handle_chan_data(cpu, &pkt),
            tag::CHAN_DONE => self.handle_chan_done(cpu, &pkt),
            tag::CHAN_ANNOUNCE => self.handle_chan_announce(cpu, &pkt),
            tag::RED_VAL => {
                cpu.compute(self.config.collective_msg_overhead);
                let me = cpu.id().index();
                self.nodes.borrow_mut()[me]
                    .red_inbox
                    .insert((pkt.meta, pkt.src.index()), pkt.words);
            }
            tag::BC_VAL => {
                cpu.compute(self.config.collective_msg_overhead);
                let me = cpu.id().index();
                self.nodes.borrow_mut()[me]
                    .bc_inbox
                    .insert(pkt.meta, pkt.words);
            }
            tag::BC_BULK => self.handle_bc_bulk(cpu, &pkt),
            tag::SYNC_REQ => {
                let me = cpu.id().index();
                self.nodes.borrow_mut()[me].sync_reqs.push(PendingSend {
                    src: pkt.src,
                    msg_tag: pkt.meta,
                    bytes: pkt.words[0],
                });
                self.match_sync(cpu);
            }
            tag::SYNC_ACK => {
                let me = cpu.id().index();
                self.nodes.borrow_mut()[me]
                    .sync_acks
                    .push((pkt.src, pkt.meta, pkt.words[0]));
            }
            t => {
                let handler = self
                    .handlers
                    .borrow()
                    .get(&t)
                    .cloned()
                    .unwrap_or_else(|| panic!("no handler registered for tag {t}"));
                handler(&AmArgs {
                    machine: self,
                    cpu,
                    src: pkt.src,
                    meta: pkt.meta,
                    words: pkt.words,
                });
            }
        }
    }

    // ----- barrier ---------------------------------------------------------

    /// Waits at the machine's hardware barrier.
    pub async fn barrier(&self, cpu: &Cpu) {
        self.barrier.wait(cpu, Kind::BarrierWait).await;
    }

    /// Total bytes a run would report for one packet (sanity helper).
    pub fn packet_bytes() -> u32 {
        PACKET_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_sim::SimConfig;

    fn setup(n: usize) -> (Engine, Rc<MpMachine>) {
        let engine = Engine::new(n, SimConfig::default());
        let machine = MpMachine::new(&engine, MpConfig::default());
        (engine, machine)
    }

    #[test]
    fn am_round_trip_delivers_payload_and_charges_ni() {
        let (mut e, m) = setup(2);
        let got = Rc::new(std::cell::Cell::new(0u32));
        {
            let got = Rc::clone(&got);
            m.set_handler(tag::USER_BASE, move |a| {
                assert_eq!(a.src, ProcId::new(0));
                got.set(a.words[0] + a.meta);
            });
        }
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            m0.am_send(&c0, ProcId::new(1), tag::USER_BASE, 5, [37, 0, 0, 0])
                .await;
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            m1.poll_until(&c1, |n| n >= 1).await;
        });
        let r = e.run();
        assert_eq!(got.get(), 42);
        let sender = r.proc(ProcId::new(0));
        // tag+dest (5) + send 5 words (15)
        assert_eq!(sender.matrix.by_kind(Kind::NetAccess), 20);
        assert_eq!(sender.counters.get(Counter::PacketsSent), 1);
        assert_eq!(sender.counters.get(Counter::BytesControl), 20);
        let recv = r.proc(ProcId::new(1));
        // at least one status read (5) + receive (15)
        assert!(recv.matrix.by_kind(Kind::NetAccess) >= 20);
    }

    #[test]
    fn receiver_blocks_until_arrival() {
        let (mut e, m) = setup(2);
        m.set_handler(tag::USER_BASE, |_| {});
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            c0.compute(1000);
            m0.am_send(&c0, ProcId::new(1), tag::USER_BASE, 0, [0; 4])
                .await;
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            m1.poll_until(&c1, |n| n >= 1).await;
            // arrival at 1000 (compute) + 15 (am overhead) + 20 (NI) + 100
            assert!(c1.clock() >= 1135);
        });
        let r = e.run();
        // Waiting charged to the Lib scope as Wait.
        assert!(r.proc(ProcId::new(1)).matrix.get(Scope::Lib, Kind::Wait) >= 1000);
    }

    #[test]
    fn local_touch_charges_misses_and_counts() {
        let (mut e, m) = setup(1);
        let c = e.cpu(ProcId::new(0));
        let m0 = Rc::clone(&m);
        let off = m.alloc(ProcId::new(0), 4096, 32);
        e.spawn(ProcId::new(0), async move {
            m0.touch_read(&c, off, 320); // 10 blocks, all cold
            m0.touch_read(&c, off, 320); // all hits
        });
        let r = e.run();
        let p = r.proc(ProcId::new(0));
        assert_eq!(p.counters.get(Counter::PrivMisses), 10);
        // 10 misses * (11 + 10)
        assert_eq!(p.matrix.by_kind(Kind::PrivMiss), 210);
    }

    #[test]
    fn peek_poke_round_trip() {
        let (_e, m) = setup(1);
        let off = m.alloc(ProcId::new(0), 64, 8);
        m.poke_f64(ProcId::new(0), off, 2.75);
        assert_eq!(m.peek_f64(ProcId::new(0), off), 2.75);
        m.poke_u32(ProcId::new(0), off + 8, 99);
        assert_eq!(m.peek_u32(ProcId::new(0), off + 8), 99);
    }

    #[test]
    #[should_panic(expected = "reserved for the library")]
    fn reserved_tags_rejected() {
        let (_e, m) = setup(1);
        m.set_handler(tag::CHAN_DATA, |_| {});
    }

    #[test]
    fn barrier_synchronizes_all_nodes() {
        let (mut e, m) = setup(4);
        for p in e.proc_ids() {
            let cpu = e.cpu(p);
            let m = Rc::clone(&m);
            e.spawn(p, async move {
                cpu.compute(100 * (p.index() as u64 + 1));
                m.barrier(&cpu).await;
                assert_eq!(cpu.clock(), 500);
            });
        }
        e.run();
    }
}
