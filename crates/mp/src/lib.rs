//! CM-5-like message-passing machine model.
//!
//! This crate reproduces the message-passing side of the paper's paired
//! simulators:
//!
//! * a memory-mapped **network interface** with 20-byte packets, a status
//!   register, and tag-dispatched delivery (Section 4.1, Table 2 costs),
//! * an **active-message layer** (the CMAML analogue): short messages whose
//!   arrival invokes a registered handler when the destination polls,
//! * a **CMMD-like library**: virtual *channels* for repeated bulk
//!   transfers between fixed node pairs, and software **broadcast /
//!   reduction trees** (flat, binary, and LogP-style lop-sided shapes —
//!   the three implementations the paper compares for Gauss),
//! * the CM-5-style **hardware barrier**.
//!
//! All library code charges simulated cycles: computation inside the
//! library goes to the `Lib` (or `Broadcast`/`Reduction`) attribution
//! scope, loads/stores to the network interface go to `NetAccess`, and
//! local cache misses taken inside library routines are visible as
//! "Lib Misses" — exactly the breakdown rows of the paper's tables.
//!
//! # Example
//!
//! ```
//! use std::rc::Rc;
//! use wwt_sim::{Engine, SimConfig};
//! use wwt_mp::{MpConfig, MpMachine};
//!
//! let mut engine = Engine::new(2, SimConfig::default());
//! let m = MpMachine::new(&engine, MpConfig::default());
//! // Node 1 prints nothing; it just waits for one active message.
//! let got = Rc::new(std::cell::Cell::new(0u32));
//! {
//!     let got = Rc::clone(&got);
//!     m.set_handler(wwt_mp::tag::USER_BASE, move |args| {
//!         got.set(args.words[0]);
//!     });
//! }
//! let m0 = Rc::clone(&m);
//! let cpu0 = engine.cpu(0.into());
//! engine.spawn(0.into(), async move {
//!     m0.am_send(&cpu0, 1.into(), wwt_mp::tag::USER_BASE, 0, [42, 0, 0, 0]).await;
//! });
//! let m1 = Rc::clone(&m);
//! let cpu1 = engine.cpu(1.into());
//! engine.spawn(1.into(), async move {
//!     m1.poll_until(&cpu1, |n| n >= 1).await;
//! });
//! engine.run();
//! assert_eq!(got.get(), 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod collectives;
pub mod config;
pub mod machine;
pub mod packet;
pub mod sync_msg;

pub use channel::{ChannelId, SendChannel};
pub use collectives::TreeShape;
pub use config::MpConfig;
pub use machine::{AmArgs, MpMachine};
pub use packet::{tag, Packet};
pub use wwt_arch::ArchParams;
