//! Message-passing machine parameters (Tables 1 and 2 of the paper).

use wwt_mem::CacheGeometry;
use wwt_sim::{Cycles, SimConfig};

/// Configuration of the message-passing machine.
///
/// Defaults reproduce the paper's hardware tables. The `*_overhead`
/// fields are software-cost calibration constants for the re-implemented
/// CMAML/CMMD layers (the paper measures these as "Lib Comp"); they were
/// chosen so library overheads land in the paper's reported range
/// (3–42% of program time depending on communication intensity).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MpConfig {
    /// Engine-level settings (quantum, seed, profiling).
    pub sim: SimConfig,
    /// Cache geometry (Table 1: 256 KB, 4-way, 32 B blocks).
    pub cache: CacheGeometry,
    /// TLB entries (Table 1: 64).
    pub tlb_entries: usize,
    /// One-way network latency in cycles (Table 1: 100).
    pub net_latency: Cycles,
    /// Barrier latency from last arrival (Table 1: 100).
    pub barrier_latency: Cycles,
    /// Private cache miss cost excluding DRAM (Table 1: 11).
    pub priv_miss: Cycles,
    /// DRAM access (Table 1: 10).
    pub dram: Cycles,
    /// Replacement cost with the infinite write buffer (Table 2: 1).
    pub replacement: Cycles,
    /// TLB refill cost (not specified by the paper; calibrated).
    pub tlb_miss: Cycles,
    /// NI status word access (Table 2: 5).
    pub ni_status: Cycles,
    /// NI write of tag + destination (Table 2: 5).
    pub ni_tag_dest: Cycles,
    /// NI send of 5 words including the stores (Table 2: 15).
    pub ni_send: Cycles,
    /// NI receive of 5 words including the loads (Table 2: 15).
    pub ni_recv: Cycles,
    /// Library instructions to compose and launch an active message.
    pub am_send_overhead: Cycles,
    /// Library instructions to decode and dispatch a received packet.
    pub am_dispatch_overhead: Cycles,
    /// Library instructions to set up one channel write (buffer and
    /// counter management).
    pub chan_write_overhead: Cycles,
    /// Library instructions per packet inside a channel write loop.
    pub chan_packet_overhead: Cycles,
    /// Library instructions per packet on the receive side of a channel.
    pub chan_recv_packet_overhead: Cycles,
    /// Instructions per poll-loop iteration (checking completion flags).
    pub poll_overhead: Cycles,
    /// Instructions to combine two reduction operands.
    pub reduce_combine: Cycles,
    /// Minimum spacing between packet acceptances at one node's network
    /// interface, in cycles. Zero (the default) reproduces the paper's
    /// contention-free network; a positive value is a first-order
    /// congestion model (the paper contrasts itself with LAPSE, which
    /// models contention).
    pub ni_accept_gap: Cycles,
    /// Extra per-message software cost inside collectives, modeling
    /// CMMD-level messaging (channel bookkeeping and handshakes per
    /// message). Zero reproduces the paper's final active-message
    /// collectives; a few hundred cycles reproduces its first two
    /// (flat and binary-tree, CMMD-level) attempts.
    pub collective_msg_overhead: Cycles,
    /// Reliable-delivery base retransmit timeout, in cycles since the last
    /// acknowledgement progress. Must comfortably exceed one round trip
    /// (2 × `net_latency` plus ACK generation) or the sender retransmits
    /// packets that were never lost. Only used when fault injection
    /// activates the reliable-delivery layer.
    pub retry_timeout: Cycles,
    /// Multiplier applied to the retransmit timeout after every expiry
    /// (exponential backoff).
    pub retry_backoff: u32,
    /// Cap on the backed-off retransmit timeout.
    pub retry_timeout_max: Cycles,
    /// NI cost charged (to the `retry` category) per retransmitted packet.
    pub retry_packet_cost: Cycles,
    /// NI cost charged (to the `retry` category) per ACK/NACK generated.
    pub ack_cost: Cycles,
}

impl Default for MpConfig {
    fn default() -> Self {
        MpConfig {
            sim: SimConfig::default(),
            cache: CacheGeometry::paper_default(),
            tlb_entries: 64,
            net_latency: 100,
            barrier_latency: 100,
            priv_miss: 11,
            dram: 10,
            replacement: 1,
            tlb_miss: 20,
            ni_status: 5,
            ni_tag_dest: 5,
            ni_send: 15,
            ni_recv: 15,
            am_send_overhead: 60,
            am_dispatch_overhead: 60,
            chan_write_overhead: 150,
            chan_packet_overhead: 12,
            chan_recv_packet_overhead: 12,
            poll_overhead: 6,
            reduce_combine: 12,
            ni_accept_gap: 0,
            collective_msg_overhead: 0,
            retry_timeout: 1_000,
            retry_backoff: 2,
            retry_timeout_max: 16_000,
            retry_packet_cost: 20,
            ack_cost: 10,
        }
    }
}

impl MpConfig {
    /// Full cost of a private cache miss (miss handling plus DRAM).
    pub fn priv_miss_total(&self) -> Cycles {
        self.priv_miss + self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tables() {
        let c = MpConfig::default();
        assert_eq!(c.net_latency, 100);
        assert_eq!(c.ni_status, 5);
        assert_eq!(c.ni_tag_dest, 5);
        assert_eq!(c.ni_send, 15);
        assert_eq!(c.ni_recv, 15);
        assert_eq!(c.priv_miss_total(), 21);
        assert_eq!(c.cache.size_bytes, 256 * 1024);
        assert_eq!(c.tlb_entries, 64);
    }
}
