//! Message-passing machine parameters (Tables 1 and 2 of the paper).

use wwt_arch::ArchParams;
use wwt_sim::{Cycles, SimConfig};

/// Configuration of the message-passing machine.
///
/// The hardware base both machines share (Table 1: cache, TLB, network,
/// barrier, DRAM) lives in [`ArchParams`]; this struct adds the
/// MP-specific network-interface costs (Table 2) and the software-cost
/// calibration constants for the re-implemented CMAML/CMMD layers (the
/// paper measures these as "Lib Comp"); they were chosen so library
/// overheads land in the paper's reported range (3–42% of program time
/// depending on communication intensity).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MpConfig {
    /// Engine-level settings (quantum, seed, profiling).
    pub sim: SimConfig,
    /// The shared hardware base (Table 1), common to both machines.
    pub arch: ArchParams,
    /// NI status word access (Table 2: 5).
    pub ni_status: Cycles,
    /// NI write of tag + destination (Table 2: 5).
    pub ni_tag_dest: Cycles,
    /// NI send of 5 words including the stores (Table 2: 15).
    pub ni_send: Cycles,
    /// NI receive of 5 words including the loads (Table 2: 15).
    pub ni_recv: Cycles,
    /// Library instructions to compose and launch an active message.
    pub am_send_overhead: Cycles,
    /// Library instructions to decode and dispatch a received packet.
    pub am_dispatch_overhead: Cycles,
    /// Library instructions to set up one channel write (buffer and
    /// counter management).
    pub chan_write_overhead: Cycles,
    /// Library instructions per packet inside a channel write loop.
    pub chan_packet_overhead: Cycles,
    /// Library instructions per packet on the receive side of a channel.
    pub chan_recv_packet_overhead: Cycles,
    /// Instructions per poll-loop iteration (checking completion flags).
    pub poll_overhead: Cycles,
    /// Instructions to combine two reduction operands.
    pub reduce_combine: Cycles,
    /// Minimum spacing between packet acceptances at one node's network
    /// interface, in cycles. Zero (the default) reproduces the paper's
    /// contention-free network; a positive value is a first-order
    /// congestion model (the paper contrasts itself with LAPSE, which
    /// models contention).
    pub ni_accept_gap: Cycles,
    /// Extra per-message software cost inside collectives, modeling
    /// CMMD-level messaging (channel bookkeeping and handshakes per
    /// message). Zero reproduces the paper's final active-message
    /// collectives; a few hundred cycles reproduces its first two
    /// (flat and binary-tree, CMMD-level) attempts.
    pub collective_msg_overhead: Cycles,
    /// Reliable-delivery base retransmit timeout, in cycles since the last
    /// acknowledgement progress. Must comfortably exceed one round trip
    /// (2 × `net_latency` plus ACK generation) or the sender retransmits
    /// packets that were never lost. Only used when fault injection
    /// activates the reliable-delivery layer.
    pub retry_timeout: Cycles,
    /// Multiplier applied to the retransmit timeout after every expiry
    /// (exponential backoff).
    pub retry_backoff: u32,
    /// Cap on the backed-off retransmit timeout.
    pub retry_timeout_max: Cycles,
    /// NI cost charged (to the `retry` category) per retransmitted packet.
    pub retry_packet_cost: Cycles,
    /// NI cost charged (to the `retry` category) per ACK/NACK generated.
    pub ack_cost: Cycles,
}

impl Default for MpConfig {
    fn default() -> Self {
        MpConfig {
            sim: SimConfig::default(),
            arch: ArchParams::default(),
            ni_status: 5,
            ni_tag_dest: 5,
            ni_send: 15,
            ni_recv: 15,
            am_send_overhead: 60,
            am_dispatch_overhead: 60,
            chan_write_overhead: 150,
            chan_packet_overhead: 12,
            chan_recv_packet_overhead: 12,
            poll_overhead: 6,
            reduce_combine: 12,
            ni_accept_gap: 0,
            collective_msg_overhead: 0,
            retry_timeout: 1_000,
            retry_backoff: 2,
            retry_timeout_max: 16_000,
            retry_packet_cost: 20,
            ack_cost: 10,
        }
    }
}

impl MpConfig {
    /// The default machine on an explicit hardware base and engine
    /// configuration — the entry point for architecture sweeps.
    pub fn with_arch(arch: ArchParams, sim: SimConfig) -> Self {
        MpConfig {
            sim,
            arch,
            ..MpConfig::default()
        }
    }

    /// Full cost of a private cache miss (miss handling plus DRAM).
    pub fn priv_miss_total(&self) -> Cycles {
        self.arch.priv_miss_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tables() {
        let c = MpConfig::default();
        assert_eq!(c.arch.net_latency, 100);
        assert_eq!(c.ni_status, 5);
        assert_eq!(c.ni_tag_dest, 5);
        assert_eq!(c.ni_send, 15);
        assert_eq!(c.ni_recv, 15);
        assert_eq!(c.priv_miss_total(), 21);
        assert_eq!(c.arch.cache.size_bytes, 256 * 1024);
        assert_eq!(c.arch.tlb_entries, 64);
    }

    #[test]
    fn with_arch_keeps_table_2_costs() {
        let arch = ArchParams {
            net_latency: 50,
            ..ArchParams::default()
        };
        let c = MpConfig::with_arch(arch, SimConfig::default());
        assert_eq!(c.arch.net_latency, 50);
        assert_eq!(c.ni_send, 15, "Table-2 costs are not part of the sweep");
    }
}
