//! CMMD-style synchronous (handshaking) sends and receives.
//!
//! The CMMD library's "commonly-used synchronous and asynchronous message
//! sends and receives" rendezvous before transferring: the sender
//! announces (tag, size), the receiver posts a matching receive and
//! returns its buffer's channel, and the data then streams in bulk. The
//! handshake is exactly the overhead the paper's channels amortize away
//! for repeated transfers — these calls exist for one-shot messages.

use std::rc::Rc;

use wwt_sim::{Counter, Cpu, Kind, ProcId, WaitCell};

use crate::machine::MpMachine;
use crate::packet::{tag, Packet};

/// A send request waiting for its matching receive.
#[derive(Debug)]
pub(crate) struct PendingSend {
    pub(crate) src: ProcId,
    pub(crate) msg_tag: u32,
    pub(crate) bytes: u32,
}

/// A posted receive waiting for its matching send request.
pub(crate) struct PendingRecv {
    pub(crate) src: ProcId,
    pub(crate) msg_tag: u32,
    pub(crate) buf_off: u64,
    pub(crate) max_bytes: u32,
    /// Completed when the transfer finishes.
    pub(crate) done: WaitCell,
    /// Filled with the message length at match time.
    pub(crate) len_slot: Rc<std::cell::Cell<u32>>,
}

impl MpMachine {
    /// Synchronously sends `bytes` from local memory at `src_off` to
    /// `dest` under the message tag `msg_tag`. Blocks (polling, so other
    /// traffic keeps flowing) until the receiver has posted a matching
    /// [`MpMachine::recv_sync`] and acknowledged, then streams the data
    /// in bulk.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or exceeds the per-message limit
    /// (~64 KB).
    pub async fn send_sync(
        self: &Rc<Self>,
        cpu: &Cpu,
        dest: ProcId,
        msg_tag: u32,
        src_off: u64,
        bytes: u32,
    ) {
        assert!(bytes > 0, "empty synchronous send");
        let _lib = self.lib_scope(cpu);
        let cfg = self.config();
        cpu.compute(cfg.chan_write_overhead);
        cpu.count(Counter::MessagesSent, 1);
        // Announce (tag, size) and wait for the receiver's acknowledgement
        // carrying its landing channel.
        let me = cpu.id().index();
        self.send_packet(
            cpu,
            Packet {
                src: cpu.id(),
                dest,
                tag: tag::SYNC_REQ,
                meta: msg_tag & 0xff_ffff,
                words: [bytes, 0, 0, 0],
                data_bytes: 0,
                sent_at: 0,
                seq: 0,
            },
        );
        self.poll_loop(cpu, move |m| {
            m.nodes.borrow()[me]
                .sync_acks
                .iter()
                .any(|&(s, t, _)| s == dest && t == msg_tag)
        })
        .await;
        let chan = {
            let mut nodes = self.nodes.borrow_mut();
            let acks = &mut nodes[me].sync_acks;
            let i = acks
                .iter()
                .position(|&(s, t, _)| s == dest && t == msg_tag)
                .expect("acknowledgement present");
            acks.remove(i).2
        };
        // Stream the payload over the receiver-designated channel.
        let ch = crate::channel::SendChannel {
            dest,
            id: crate::channel::ChannelId(chan),
            capacity: bytes,
        };
        self.channel_write(cpu, &ch, src_off, bytes);
    }

    /// Posts a synchronous receive for a message from `src` under
    /// `msg_tag`, landing in local memory at `[buf_off, buf_off +
    /// max_bytes)`. Blocks (polling) until the message arrives; returns
    /// its length.
    ///
    /// # Panics
    ///
    /// Panics if the arriving message exceeds `max_bytes`.
    pub async fn recv_sync(
        self: &Rc<Self>,
        cpu: &Cpu,
        src: ProcId,
        msg_tag: u32,
        buf_off: u64,
        max_bytes: u32,
    ) -> u32 {
        let _lib = self.lib_scope(cpu);
        let cfg = self.config();
        cpu.compute(cfg.chan_write_overhead);
        let done = WaitCell::new();
        let len_slot: Rc<std::cell::Cell<u32>> = Rc::default();
        {
            let mut nodes = self.nodes.borrow_mut();
            nodes[cpu.id().index()].sync_recvs.push(PendingRecv {
                src,
                msg_tag,
                buf_off,
                max_bytes,
                done: done.clone(),
                len_slot: Rc::clone(&len_slot),
            });
        }
        // A send request may already have arrived and be parked.
        self.match_sync(cpu);
        let done2 = done.clone();
        self.poll_loop(cpu, move |_| done2.is_complete()).await;
        len_slot.get()
    }

    /// Tries to match parked send requests against posted receives on the
    /// calling node, acknowledging each match with a landing channel.
    pub(crate) fn match_sync(self: &Rc<Self>, cpu: &Cpu) {
        loop {
            let matched = {
                let mut nodes = self.nodes.borrow_mut();
                let node = &mut nodes[cpu.id().index()];
                let mut found = None;
                for (i, req) in node.sync_reqs.iter().enumerate() {
                    if let Some(j) = node
                        .sync_recvs
                        .iter()
                        .position(|r| r.src == req.src && r.msg_tag == req.msg_tag)
                    {
                        found = Some((i, j));
                        break;
                    }
                }
                let Some((i, j)) = found else { break };
                let req = node.sync_reqs.remove(i);
                let recv = node.sync_recvs.remove(j);
                assert!(
                    req.bytes <= recv.max_bytes,
                    "synchronous message of {} bytes exceeds the posted buffer of {}",
                    req.bytes,
                    recv.max_bytes
                );
                Some((req, recv))
            };
            let Some((req, recv)) = matched else { break };
            // Open a one-shot landing channel and acknowledge the sender
            // with its id. The channel-done handler completes the posted
            // receive.
            let id = self
                .channel_open_recv(cpu, req.src, recv.buf_off, req.bytes.max(1))
                .expect("capacity within the channel limit");
            recv.len_slot.set(req.bytes);
            {
                let mut nodes = self.nodes.borrow_mut();
                let node = &mut nodes[cpu.id().index()];
                node.sync_waiters.push((id, recv.done, req.bytes));
            }
            self.send_packet(
                cpu,
                Packet {
                    src: cpu.id(),
                    dest: req.src,
                    tag: tag::SYNC_ACK,
                    meta: req.msg_tag & 0xff_ffff,
                    words: [id.index() as u32, 0, 0, 0],
                    data_bytes: 0,
                    sent_at: 0,
                    seq: 0,
                },
            );
        }
    }

    /// Completes any posted synchronous receives whose landing channel has
    /// finished (called from the channel-done handler).
    pub(crate) fn finish_sync(&self, cpu: &Cpu, chan_index: usize) {
        let hit = {
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[cpu.id().index()];
            node.sync_waiters
                .iter()
                .position(|(id, _, _)| id.index() == chan_index)
                .map(|i| node.sync_waiters.remove(i))
        };
        if let Some((_, done, _bytes)) = hit {
            done.complete(self.sim(), cpu.clock());
            let _ = Kind::Wait;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpConfig;
    use wwt_sim::{Engine, SimConfig};

    #[test]
    fn rendezvous_transfers_the_message() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let src = m.alloc(ProcId::new(0), 256, 32);
        let dst = m.alloc(ProcId::new(1), 256, 32);
        for i in 0..32 {
            m.poke_f64(ProcId::new(0), src + i * 8, i as f64 * 1.25);
        }
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            c0.compute(500);
            m0.send_sync(&c0, ProcId::new(1), 7, src, 256).await;
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let got = m1.recv_sync(&c1, ProcId::new(0), 7, dst, 256).await;
            assert_eq!(got, 256);
        });
        e.run();
        for i in 0..32 {
            assert_eq!(m.peek_f64(ProcId::new(1), dst + i * 8), i as f64 * 1.25);
        }
    }

    #[test]
    fn send_blocks_until_receive_is_posted() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let src = m.alloc(ProcId::new(0), 8, 8);
        let dst = m.alloc(ProcId::new(1), 8, 8);
        m.poke_f64(ProcId::new(0), src, 3.5);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            m0.send_sync(&c0, ProcId::new(1), 1, src, 8).await;
            // The receive is posted at cycle 50_000; the handshake takes
            // at least two further network crossings.
            assert!(c0.clock() > 50_000);
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            c1.compute(50_000);
            m1.recv_sync(&c1, ProcId::new(0), 1, dst, 8).await;
        });
        e.run();
        assert_eq!(m.peek_f64(ProcId::new(1), dst), 3.5);
    }

    #[test]
    fn tags_disambiguate_messages_from_one_sender() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let a = m.alloc(ProcId::new(0), 8, 8);
        let b = m.alloc(ProcId::new(0), 8, 8);
        let da = m.alloc(ProcId::new(1), 8, 8);
        let db = m.alloc(ProcId::new(1), 8, 8);
        m.poke_f64(ProcId::new(0), a, 1.0);
        m.poke_f64(ProcId::new(0), b, 2.0);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            // Send tag 2 first, then tag 1.
            m0.send_sync(&c0, ProcId::new(1), 2, b, 8).await;
            m0.send_sync(&c0, ProcId::new(1), 1, a, 8).await;
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            // Receive in the opposite tag order.
            m1.recv_sync(&c1, ProcId::new(0), 2, db, 8).await;
            m1.recv_sync(&c1, ProcId::new(0), 1, da, 8).await;
        });
        e.run();
        assert_eq!(m.peek_f64(ProcId::new(1), da), 1.0);
        assert_eq!(m.peek_f64(ProcId::new(1), db), 2.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the posted buffer")]
    fn oversized_message_panics() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let src = m.alloc(ProcId::new(0), 64, 8);
        let dst = m.alloc(ProcId::new(1), 8, 8);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            m0.send_sync(&c0, ProcId::new(1), 0, src, 64).await;
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            m1.recv_sync(&c1, ProcId::new(0), 0, dst, 8).await;
        });
        e.run();
    }
}
