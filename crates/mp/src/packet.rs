//! 20-byte network packets, as on the CM-5 data network.
//!
//! A packet is five 32-bit words: one header word (8-bit tag plus 24 bits
//! of tag-specific metadata) and four payload words (16 bytes).

use wwt_sim::{Cycles, ProcId};

/// Well-known packet tags.
pub mod tag {
    /// Channel data packet (16 payload bytes land in the receive buffer).
    pub const CHAN_DATA: u8 = 1;
    /// Channel end-of-message marker (carries the message byte count).
    pub const CHAN_DONE: u8 = 2;
    /// Receiver announces a channel (id + capacity) to the sender.
    pub const CHAN_ANNOUNCE: u8 = 3;
    /// Reduction operand moving up a software tree.
    pub const RED_VAL: u8 = 4;
    /// Scalar broadcast value moving down a software tree.
    pub const BC_VAL: u8 = 5;
    /// Bulk broadcast data packet (store-and-forward down a tree).
    pub const BC_BULK: u8 = 6;
    /// Synchronous-send announcement (tag + size).
    pub const SYNC_REQ: u8 = 7;
    /// Synchronous-receive acknowledgement (landing channel id).
    pub const SYNC_ACK: u8 = 8;
    /// Reliable-delivery cumulative acknowledgement (`words[0..2]` carry
    /// the next expected sequence number). Only on the wire when fault
    /// injection activates the reliable-delivery layer.
    pub const ACK: u8 = 9;
    /// Reliable-delivery negative acknowledgement: the receiver saw a
    /// sequence gap and asks for retransmission from `words[0..2]`.
    pub const NACK: u8 = 10;
    /// First tag available for application handlers.
    pub const USER_BASE: u8 = 16;
}

/// A 20-byte network packet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Sending node.
    pub src: ProcId,
    /// Destination node.
    pub dest: ProcId,
    /// Dispatch tag (8 bits on the wire).
    pub tag: u8,
    /// Tag-specific metadata (24 bits on the wire).
    pub meta: u32,
    /// Four payload words (16 bytes).
    pub words: [u32; 4],
    /// How many payload bytes are application data (for the paper's
    /// data-vs-control byte accounting); the rest of the 20 bytes count
    /// as control.
    pub data_bytes: u32,
    /// Sender's clock when the packet entered the network. Simulator
    /// measurement metadata (end-to-end message latency), not wire state;
    /// stamped by the network interface on injection.
    pub sent_at: Cycles,
    /// Per-(source, destination) sequence number, stamped by the
    /// reliable-delivery layer on injection. Always zero when fault
    /// injection is off (the network is perfectly reliable and packets
    /// need no sequencing).
    pub seq: u64,
}

/// Total packet size on the wire, in bytes.
pub const PACKET_BYTES: u32 = 20;

/// Payload capacity of one packet, in bytes.
pub const PACKET_PAYLOAD_BYTES: u32 = 16;

impl Packet {
    /// Control bytes of this packet (total size minus data bytes).
    pub fn control_bytes(&self) -> u32 {
        PACKET_BYTES - self.data_bytes
    }
}

/// Packs an `f64` into two payload words.
pub fn pack_f64(v: f64) -> [u32; 2] {
    let b = v.to_bits();
    [(b & 0xffff_ffff) as u32, (b >> 32) as u32]
}

/// Unpacks an `f64` from two payload words.
pub fn unpack_f64(lo: u32, hi: u32) -> f64 {
    f64::from_bits((lo as u64) | ((hi as u64) << 32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_through_words() {
        for v in [0.0, -1.5, 3.25e300, f64::MIN_POSITIVE, -0.0] {
            let [lo, hi] = pack_f64(v);
            assert_eq!(unpack_f64(lo, hi).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn control_bytes_complement_data_bytes() {
        let p = Packet {
            src: ProcId::new(0),
            dest: ProcId::new(1),
            tag: tag::CHAN_DATA,
            meta: 0,
            words: [0; 4],
            data_bytes: 16,
            sent_at: 0,
            seq: 0,
        };
        assert_eq!(p.control_bytes(), 4);
    }
}
