//! Software reductions and broadcasts over active messages.
//!
//! The CM-5 in this study has *no* broadcast/reduction hardware (the paper
//! disables it to study software implementations, Section 4). Gauss's
//! tuning story (Section 5.2) compares three software shapes:
//!
//! * **flat** — the root exchanges a message with every other node
//!   (119.3M cycles for Gauss's collectives),
//! * **binary tree** (40.9M cycles),
//! * **lop-sided tree** — a binomial tree, the LogP-optimal shape when
//!   send/receive overhead exceeds network latency (30.1M cycles).
//!
//! Scalar reductions/broadcasts ride in single active messages; bulk
//! broadcasts (Gauss's pivot rows) are store-and-forwarded down the tree a
//! packet at a time, so the pipeline overlaps levels.

use std::rc::Rc;

use wwt_sim::{Counter, Cpu, ProcId, Scope};

use crate::machine::MpMachine;
use crate::packet::{pack_f64, tag, unpack_f64, Packet};

/// Shape of a software reduction/broadcast tree.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TreeShape {
    /// Root talks to every node directly.
    Flat,
    /// Balanced binary tree.
    Binary,
    /// Binomial ("lop-sided") tree, LogP-optimal under high send overhead.
    Lopsided,
}

impl TreeShape {
    /// Parent of virtual rank `v` in a tree over `n` nodes
    /// (`None` for the root, virtual rank 0).
    pub fn parent(self, v: usize, n: usize) -> Option<usize> {
        assert!(v < n, "rank out of range");
        if v == 0 {
            return None;
        }
        Some(match self {
            TreeShape::Flat => 0,
            TreeShape::Binary => (v - 1) / 2,
            TreeShape::Lopsided => v & (v - 1),
        })
    }

    /// Children of virtual rank `v`, in send order (largest subtree first
    /// for the lop-sided shape, which is what makes it LogP-optimal).
    pub fn children(self, v: usize, n: usize) -> Vec<usize> {
        assert!(v < n, "rank out of range");
        match self {
            TreeShape::Flat => {
                if v == 0 {
                    (1..n).collect()
                } else {
                    Vec::new()
                }
            }
            TreeShape::Binary => [2 * v + 1, 2 * v + 2]
                .into_iter()
                .filter(|&c| c < n)
                .collect(),
            TreeShape::Lopsided => {
                let lsb = if v == 0 {
                    usize::MAX
                } else {
                    v & v.wrapping_neg()
                };
                let mut kids = Vec::new();
                let mut bit = 1usize;
                while bit < lsb && v + bit < n {
                    kids.push(v + bit);
                    bit <<= 1;
                }
                kids.reverse(); // largest subtree first
                kids
            }
        }
    }

    pub(crate) fn encode(self) -> u32 {
        match self {
            TreeShape::Flat => 0,
            TreeShape::Binary => 1,
            TreeShape::Lopsided => 2,
        }
    }

    pub(crate) fn decode(v: u32) -> TreeShape {
        match v {
            0 => TreeShape::Flat,
            1 => TreeShape::Binary,
            2 => TreeShape::Lopsided,
            _ => panic!("invalid tree shape encoding {v}"),
        }
    }
}

/// In-flight state of a bulk broadcast on one node.
#[derive(Debug, Default)]
pub struct BulkBcastState {
    pub(crate) data: Vec<u8>,
    pub(crate) pkts: u32,
    pub(crate) total: Option<u32>,
}

impl BulkBcastState {
    fn done(&self) -> bool {
        self.total.is_some()
    }
}

const BULK_DATA_BYTES: u32 = 12;

fn vrank(me: usize, root: usize, n: usize) -> usize {
    (me + n - root) % n
}

fn abs_rank(v: usize, root: usize, n: usize) -> ProcId {
    ProcId::new((v + root) % n)
}

fn pack_subhdr(root: usize, shape: TreeShape, last: bool, nbytes: u32, idx: u32) -> u32 {
    debug_assert!(idx < (1 << 14) && nbytes <= BULK_DATA_BYTES);
    ((root as u32) << 21) | (shape.encode() << 19) | ((last as u32) << 18) | (nbytes << 14) | idx
}

fn unpack_subhdr(h: u32) -> (usize, TreeShape, bool, u32, u32) {
    (
        (h >> 21) as usize,
        TreeShape::decode((h >> 19) & 0x3),
        (h >> 18) & 1 == 1,
        (h >> 14) & 0xf,
        h & 0x3fff,
    )
}

impl MpMachine {
    /// A software reduction to `root` over raw payload words.
    ///
    /// Every node contributes `words`; interior nodes wait for their
    /// children's contributions (polling, so other traffic keeps flowing),
    /// combine with `combine`, and forward up the tree. Returns
    /// `Some(result)` on the root, `None` elsewhere.
    pub async fn reduce_raw(
        self: &Rc<Self>,
        cpu: &Cpu,
        shape: TreeShape,
        root: usize,
        words: [u32; 4],
        combine: impl Fn([u32; 4], [u32; 4]) -> [u32; 4],
    ) -> Option<[u32; 4]> {
        let _sc = cpu.scope(Scope::Reduction);
        cpu.count(Counter::Reductions, 1);
        let n = self.nprocs();
        let me = cpu.id().index();
        let v = vrank(me, root, n);
        let seq = {
            let mut nodes = self.nodes.borrow_mut();
            let s = nodes[me].red_seq;
            nodes[me].red_seq = s.wrapping_add(1) & 0xff_ffff;
            s
        };
        let mut acc = words;
        for c in shape.children(v, n) {
            let c_abs = abs_rank(c, root, n).index();
            let key = (seq, c_abs);
            self.poll_loop(cpu, move |m| {
                m.nodes.borrow()[me].red_inbox.contains_key(&key)
            })
            .await;
            let w = self.nodes.borrow_mut()[me]
                .red_inbox
                .remove(&key)
                .expect("operand must be present");
            cpu.compute(self.config().reduce_combine);
            acc = combine(acc, w);
        }
        if v == 0 {
            cpu.phase_mark();
            Some(acc)
        } else {
            let parent = abs_rank(shape.parent(v, n).expect("non-root has a parent"), root, n);
            cpu.compute(self.config().am_send_overhead + self.config().collective_msg_overhead);
            cpu.count(Counter::ActiveMessages, 1);
            self.send_packet(
                cpu,
                Packet {
                    src: cpu.id(),
                    dest: parent,
                    tag: tag::RED_VAL,
                    meta: seq,
                    words: acc,
                    data_bytes: 8,
                    sent_at: 0,
                    seq: 0,
                },
            );
            cpu.phase_mark();
            None
        }
    }

    /// A software broadcast of raw payload words from `root`.
    ///
    /// Non-roots wait (polling) for the value from their parent and forward
    /// it down; everyone returns the broadcast words.
    pub async fn bcast_raw(
        self: &Rc<Self>,
        cpu: &Cpu,
        shape: TreeShape,
        root: usize,
        words: [u32; 4],
    ) -> [u32; 4] {
        let _sc = cpu.scope(Scope::Broadcast);
        cpu.count(Counter::Broadcasts, 1);
        let n = self.nprocs();
        let me = cpu.id().index();
        let v = vrank(me, root, n);
        let seq = {
            let mut nodes = self.nodes.borrow_mut();
            let s = nodes[me].bc_seq;
            nodes[me].bc_seq = s.wrapping_add(1) & 0xff_ffff;
            s
        };
        let w = if v == 0 {
            words
        } else {
            self.poll_loop(cpu, move |m| {
                m.nodes.borrow()[me].bc_inbox.contains_key(&seq)
            })
            .await;
            self.nodes.borrow_mut()[me]
                .bc_inbox
                .remove(&seq)
                .expect("value must be present")
        };
        for c in shape.children(v, n) {
            cpu.compute(self.config().am_send_overhead + self.config().collective_msg_overhead);
            cpu.count(Counter::ActiveMessages, 1);
            self.send_packet(
                cpu,
                Packet {
                    src: cpu.id(),
                    dest: abs_rank(c, root, n),
                    tag: tag::BC_VAL,
                    meta: seq,
                    words: w,
                    data_bytes: 8,
                    sent_at: 0,
                    seq: 0,
                },
            );
        }
        cpu.phase_mark();
        w
    }

    /// Reduction of an `f64` maximum, also identifying the rank holding the
    /// maximum (used by Gauss's pivot selection). Root-only result.
    pub async fn reduce_max_f64_index(
        self: &Rc<Self>,
        cpu: &Cpu,
        shape: TreeShape,
        root: usize,
        value: f64,
        rank: usize,
    ) -> Option<(f64, usize)> {
        let [lo, hi] = pack_f64(value);
        let words = [lo, hi, rank as u32, 0];
        self.reduce_raw(cpu, shape, root, words, |a, b| {
            let va = unpack_f64(a[0], a[1]);
            let vb = unpack_f64(b[0], b[1]);
            if vb > va || (vb == va && b[2] < a[2]) {
                b
            } else {
                a
            }
        })
        .await
        .map(|w| (unpack_f64(w[0], w[1]), w[2] as usize))
    }

    /// Reduction of an `f64` sum to `root`.
    pub async fn reduce_sum_f64(
        self: &Rc<Self>,
        cpu: &Cpu,
        shape: TreeShape,
        root: usize,
        value: f64,
    ) -> Option<f64> {
        let [lo, hi] = pack_f64(value);
        self.reduce_raw(cpu, shape, root, [lo, hi, 0, 0], |a, b| {
            let [lo, hi] = pack_f64(unpack_f64(a[0], a[1]) + unpack_f64(b[0], b[1]));
            [lo, hi, 0, 0]
        })
        .await
        .map(|w| unpack_f64(w[0], w[1]))
    }

    /// Broadcast of one `f64` from `root`; every node returns the value.
    pub async fn bcast_f64(
        self: &Rc<Self>,
        cpu: &Cpu,
        shape: TreeShape,
        root: usize,
        value: f64,
    ) -> f64 {
        let [lo, hi] = pack_f64(value);
        let w = self.bcast_raw(cpu, shape, root, [lo, hi, 0, 0]).await;
        unpack_f64(w[0], w[1])
    }

    /// Bulk broadcast from `root`: `bytes` bytes of `root`'s local memory
    /// at `buf_off` are store-and-forwarded down the tree a packet at a
    /// time and land at `buf_off` in every node's local memory. Returns the
    /// message length (non-roots pass `bytes = 0` and learn the length).
    ///
    /// # Panics
    ///
    /// Panics on the root if `bytes` is zero or exceeds the 14-bit packet
    /// index range (~196 KB).
    pub async fn bcast_bulk(
        self: &Rc<Self>,
        cpu: &Cpu,
        shape: TreeShape,
        root: usize,
        buf_off: u64,
        bytes: u32,
    ) -> u32 {
        let _sc = cpu.scope(Scope::Broadcast);
        cpu.count(Counter::Broadcasts, 1);
        let n = self.nprocs();
        let me = cpu.id().index();
        let v = vrank(me, root, n);
        let seq = {
            let mut nodes = self.nodes.borrow_mut();
            let s = nodes[me].bcb_seq;
            nodes[me].bcb_seq = s.wrapping_add(1) & 0xff_ffff;
            s
        };
        if v == 0 {
            assert!(bytes > 0, "root must broadcast at least one byte");
            let npkts = bytes.div_ceil(BULK_DATA_BYTES);
            assert!(
                npkts < (1 << 14),
                "bulk broadcast of {bytes} bytes too large"
            );
            self.touch_read(cpu, buf_off, bytes as u64);
            cpu.count(Counter::MessagesSent, 1);
            let children = shape.children(0, n);
            // One logical bulk transfer per child, as the paper's
            // channel-based row broadcast counts them (Table 10).
            cpu.count(Counter::ChannelWrites, children.len() as u64);
            cpu.compute(self.config().collective_msg_overhead * children.len() as u64);
            for idx in 0..npkts {
                let chunk = (bytes - idx * BULK_DATA_BYTES).min(BULK_DATA_BYTES);
                let mut words = [0u32; 4];
                words[0] = pack_subhdr(root, shape, idx == npkts - 1, chunk, idx);
                for w in 0..3u32 {
                    if w * 4 < chunk {
                        words[(w + 1) as usize] = self.peek_u32(
                            cpu.id(),
                            buf_off + (idx * BULK_DATA_BYTES) as u64 + (w * 4) as u64,
                        );
                    }
                }
                cpu.compute(self.config().chan_packet_overhead);
                for &c in &children {
                    self.send_packet(
                        cpu,
                        Packet {
                            src: cpu.id(),
                            dest: abs_rank(c, root, n),
                            tag: tag::BC_BULK,
                            meta: seq,
                            words,
                            data_bytes: chunk,
                            sent_at: 0,
                            seq: 0,
                        },
                    );
                }
            }
            cpu.phase_mark();
            bytes
        } else {
            self.poll_loop(cpu, move |m| {
                m.nodes.borrow()[me]
                    .bcb_stash
                    .get(&seq)
                    .is_some_and(|s| s.done())
            })
            .await;
            let st = self.nodes.borrow_mut()[me]
                .bcb_stash
                .remove(&seq)
                .expect("stash must be present");
            let total = st.total.expect("stash complete");
            // Copy the assembled message into the local buffer.
            {
                let mut nodes = self.nodes.borrow_mut();
                let node = &mut nodes[me];
                for (i, &b) in st.data.iter().enumerate().take(total as usize) {
                    let off = buf_off + i as u64;
                    let word = node.mem.read_u32(off & !3);
                    let shift = ((off & 3) * 8) as u32;
                    let word = (word & !(0xffu32 << shift)) | ((b as u32) << shift);
                    node.mem.write_u32(off & !3, word);
                }
            }
            self.touch_write(cpu, buf_off, total as u64);
            cpu.phase_mark();
            total
        }
    }

    pub(crate) fn handle_bc_bulk(self: &Rc<Self>, cpu: &Cpu, pkt: &Packet) {
        let (root, shape, last, nbytes, idx) = unpack_subhdr(pkt.words[0]);
        let n = self.nprocs();
        let me = cpu.id().index();
        cpu.compute(self.config().chan_recv_packet_overhead);
        {
            let mut nodes = self.nodes.borrow_mut();
            let st = nodes[me].bcb_stash.entry(pkt.meta).or_default();
            let base = (idx * BULK_DATA_BYTES) as usize;
            if st.data.len() < base + nbytes as usize {
                st.data.resize(base + nbytes as usize, 0);
            }
            for b in 0..nbytes {
                let word = pkt.words[1 + (b / 4) as usize];
                st.data[base + b as usize] = ((word >> ((b % 4) * 8)) & 0xff) as u8;
            }
            st.pkts += 1;
            if last {
                st.total = Some(idx * BULK_DATA_BYTES + nbytes);
            }
        }
        // Store-and-forward to our children in the (relabeled) tree.
        let v = vrank(me, root, n);
        let children = shape.children(v, n);
        if last {
            cpu.count(Counter::ChannelWrites, children.len() as u64);
            cpu.compute(self.config().collective_msg_overhead * (children.len() as u64 + 1));
        }
        for c in children {
            self.send_packet(
                cpu,
                Packet {
                    src: cpu.id(),
                    dest: abs_rank(c, root, n),
                    tag: tag::BC_BULK,
                    meta: pkt.meta,
                    words: pkt.words,
                    data_bytes: pkt.data_bytes,
                    sent_at: 0,
                    seq: 0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpConfig;
    use wwt_sim::{Engine, SimConfig};

    #[test]
    fn tree_shapes_are_consistent() {
        for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::Lopsided] {
            for n in [1usize, 2, 3, 8, 17, 32] {
                let mut seen = vec![false; n];
                seen[0] = true;
                // parent/children agree and cover all ranks exactly once.
                for v in 0..n {
                    for c in shape.children(v, n) {
                        assert_eq!(shape.parent(c, n), Some(v), "{shape:?} n={n} c={c}");
                        assert!(!seen[c], "{shape:?} n={n}: rank {c} reached twice");
                        seen[c] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "{shape:?} n={n}: unreached ranks");
            }
        }
    }

    #[test]
    fn lopsided_root_sends_largest_subtree_first() {
        let kids = TreeShape::Lopsided.children(0, 32);
        assert_eq!(kids, vec![16, 8, 4, 2, 1]);
        // Node 8's children in a 32-node tree.
        assert_eq!(TreeShape::Lopsided.children(8, 32), vec![12, 10, 9]);
        assert_eq!(TreeShape::Lopsided.parent(12, 32), Some(8));
    }

    fn run_collective(n: usize, shape: TreeShape, root: usize) -> (Vec<f64>, wwt_sim::SimReport) {
        let mut e = Engine::new(n, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let results = Rc::new(std::cell::RefCell::new(vec![0.0f64; n]));
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            let results = Rc::clone(&results);
            e.spawn(p, async move {
                let mine = (p.index() + 1) as f64;
                // max reduction then broadcast of the result
                let red = m
                    .reduce_max_f64_index(&cpu, shape, root, mine, p.index())
                    .await;
                let val = if p.index() == root {
                    let (v, r) = red.expect("root sees the result");
                    assert_eq!(r, m.nprocs() - 1);
                    v
                } else {
                    0.0
                };
                let out = m.bcast_f64(&cpu, shape, root, val).await;
                results.borrow_mut()[p.index()] = out;
                m.barrier(&cpu).await;
            });
        }
        let r = e.run();
        let out = results.borrow().clone();
        (out, r)
    }

    #[test]
    fn reduce_then_broadcast_agrees_everywhere() {
        for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::Lopsided] {
            for root in [0usize, 3] {
                let (vals, _) = run_collective(8, shape, root);
                assert!(
                    vals.iter().all(|&v| v == 8.0),
                    "{shape:?} root={root}: {vals:?}"
                );
            }
        }
    }

    #[test]
    fn lopsided_beats_flat_broadcast_in_elapsed_time() {
        let (_, flat) = run_collective(32, TreeShape::Flat, 0);
        let (_, lop) = run_collective(32, TreeShape::Lopsided, 0);
        assert!(
            lop.elapsed() < flat.elapsed(),
            "lop-sided {} !< flat {}",
            lop.elapsed(),
            flat.elapsed()
        );
    }

    #[test]
    fn sum_reduction_is_exact_for_integers() {
        let n = 16;
        let mut e = Engine::new(n, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let total = Rc::new(std::cell::Cell::new(0.0f64));
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            let total = Rc::clone(&total);
            e.spawn(p, async move {
                if let Some(s) = m
                    .reduce_sum_f64(&cpu, TreeShape::Lopsided, 0, (p.index() + 1) as f64)
                    .await
                {
                    total.set(s);
                }
            });
        }
        e.run();
        assert_eq!(total.get(), (n * (n + 1) / 2) as f64);
    }

    #[test]
    fn bulk_broadcast_delivers_bytes_to_all() {
        let n = 8;
        let root = 2usize;
        let bytes = 1000u32;
        let mut e = Engine::new(n, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let mut bufs = Vec::new();
        for p in 0..n {
            bufs.push(m.alloc(ProcId::new(p), bytes as u64 + 8, 32));
        }
        // All nodes must use the same offset for this test's simplicity.
        let buf = bufs[0];
        assert!(bufs.iter().all(|&b| b == buf));
        for i in 0..bytes as u64 / 8 {
            m.poke_f64(ProcId::new(root), buf + i * 8, i as f64 * 0.5);
        }
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            e.spawn(p, async move {
                let b = if p.index() == root { bytes } else { 0 };
                let got = m.bcast_bulk(&cpu, TreeShape::Lopsided, root, buf, b).await;
                assert_eq!(got, bytes);
            });
        }
        e.run();
        for p in 0..n {
            for i in 0..bytes as u64 / 8 {
                assert_eq!(
                    m.peek_f64(ProcId::new(p), buf + i * 8),
                    i as f64 * 0.5,
                    "node {p} word {i}"
                );
            }
        }
    }
}
