//! CMMD-style virtual channels.
//!
//! A channel is a pre-negotiated, one-way bulk-transfer path between a
//! fixed (sender, receiver) pair. The receiver allocates the channel
//! (destination buffer + capacity) and announces it to the sender; after
//! that, every [`MpMachine::channel_write`] moves a message without any
//! per-transfer handshake — the sender initiates, data is sent in bulk,
//! and the receive side stores packets straight into the destination
//! buffer. This is the mechanism the paper credits for EM3D-MP's cheap
//! producer–consumer communication.

use std::rc::Rc;

use wwt_sim::{Counter, Cpu, Kind, ProcId, SimError};

use crate::machine::MpMachine;
use crate::packet::{tag, Packet, PACKET_PAYLOAD_BYTES};

/// Identifier of a receive channel on its owning node.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// The raw channel index on the receiving node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The sender's end of a bound channel.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SendChannel {
    /// Receiving node.
    pub dest: ProcId,
    /// Channel id on the receiving node.
    pub id: ChannelId,
    /// Maximum message size in bytes.
    pub capacity: u32,
}

pub(crate) struct RecvChannel {
    pub(crate) src: ProcId,
    pub(crate) buf_off: u64,
    pub(crate) capacity: u32,
    pub(crate) msgs_done: u64,
    pub(crate) msgs_waited: u64,
    pub(crate) last_bytes: u32,
}

const IDX_BITS: u32 = 12;
const IDX_MASK: u32 = (1 << IDX_BITS) - 1;

impl MpMachine {
    /// Opens a receive channel from `src` into `[buf_off, buf_off + capacity)`
    /// of the caller's local memory and announces it to the sender.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `capacity` exceeds the 64 KB
    /// per-message limit implied by the packet index field.
    pub fn channel_open_recv(
        self: &Rc<Self>,
        cpu: &Cpu,
        src: ProcId,
        buf_off: u64,
        capacity: u32,
    ) -> Result<ChannelId, SimError> {
        let max = (IDX_MASK as u64 + 1) * PACKET_PAYLOAD_BYTES as u64;
        if capacity as u64 > max {
            return Err(SimError::Config(format!(
                "channel capacity {capacity} exceeds the {max}-byte \
                 per-message limit of the packet index field"
            )));
        }
        let _lib = self.lib_scope(cpu);
        cpu.compute(self.config().chan_write_overhead);
        let id = {
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[cpu.id().index()];
            node.rchans.push(RecvChannel {
                src,
                buf_off,
                capacity,
                msgs_done: 0,
                msgs_waited: 0,
                last_bytes: 0,
            });
            ChannelId((node.rchans.len() - 1) as u32)
        };
        self.send_packet(
            cpu,
            Packet {
                src: cpu.id(),
                dest: src,
                tag: tag::CHAN_ANNOUNCE,
                meta: id.0,
                words: [capacity, 0, 0, 0],
                data_bytes: 0,
                sent_at: 0,
                seq: 0,
            },
        );
        Ok(id)
    }

    /// Waits for a channel announcement from `dest` and returns the bound
    /// sender end. Announcements from the same peer bind in open order.
    pub async fn channel_bind(self: &Rc<Self>, cpu: &Cpu, dest: ProcId) -> SendChannel {
        let _lib = self.lib_scope(cpu);
        let me = cpu.id().index();
        let d = dest.index();
        self.poll_loop(cpu, move |m| !m.nodes.borrow()[me].announces[d].is_empty())
            .await;
        let (id, capacity) = self.nodes.borrow_mut()[me].announces[d]
            .pop_front()
            .expect("announcement must be present");
        SendChannel {
            dest,
            id: ChannelId(id),
            capacity,
        }
    }

    /// Writes one message of `bytes` bytes from local memory at `src_off`
    /// over the channel. The sender does not block for the receiver; the
    /// data packets are followed by an end-of-message marker that completes
    /// the receiver's matching [`MpMachine::channel_wait`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or exceeds the channel capacity.
    pub fn channel_write(self: &Rc<Self>, cpu: &Cpu, ch: &SendChannel, src_off: u64, bytes: u32) {
        assert!(bytes > 0, "empty channel write");
        assert!(
            bytes <= ch.capacity,
            "message of {bytes} bytes exceeds channel capacity {}",
            ch.capacity
        );
        let _lib = self.lib_scope(cpu);
        let cfg = self.config();
        cpu.compute(cfg.chan_write_overhead);
        cpu.count(Counter::ChannelWrites, 1);
        cpu.count(Counter::MessagesSent, 1);
        self.touch_read(cpu, src_off, bytes as u64);

        let payload = PACKET_PAYLOAD_BYTES;
        let npkts = bytes.div_ceil(payload);
        for idx in 0..npkts {
            let chunk = (bytes - idx * payload).min(payload);
            let mut words = [0u32; 4];
            for (w, word) in words.iter_mut().enumerate() {
                let off = src_off + (idx * payload) as u64 + (w as u64) * 4;
                if (w as u32) * 4 < chunk {
                    *word = self.peek_u32(cpu.id(), off);
                }
            }
            cpu.compute(cfg.chan_packet_overhead);
            self.send_packet(
                cpu,
                Packet {
                    src: cpu.id(),
                    dest: ch.dest,
                    tag: tag::CHAN_DATA,
                    meta: (ch.id.0 << IDX_BITS) | idx,
                    words,
                    data_bytes: chunk,
                    sent_at: 0,
                    seq: 0,
                },
            );
        }
        self.send_packet(
            cpu,
            Packet {
                src: cpu.id(),
                dest: ch.dest,
                tag: tag::CHAN_DONE,
                meta: ch.id.0,
                words: [bytes, 0, 0, 0],
                data_bytes: 0,
                sent_at: 0,
                seq: 0,
            },
        );
    }

    /// Waits (polling and dispatching) for the next message on the receive
    /// channel `id`, returning its length in bytes.
    pub async fn channel_wait(self: &Rc<Self>, cpu: &Cpu, id: ChannelId) -> u32 {
        let _lib = self.lib_scope(cpu);
        let me = cpu.id().index();
        let target = {
            let mut nodes = self.nodes.borrow_mut();
            let ch = &mut nodes[me].rchans[id.index()];
            ch.msgs_waited += 1;
            ch.msgs_waited
        };
        self.poll_loop(cpu, move |m| {
            m.nodes.borrow()[me].rchans[id.index()].msgs_done >= target
        })
        .await;
        self.nodes.borrow()[me].rchans[id.index()].last_bytes
    }

    /// Messages already completed on channel `id` (non-blocking probe).
    pub fn channel_messages_done(&self, node: ProcId, id: ChannelId) -> u64 {
        self.nodes.borrow()[node.index()].rchans[id.index()].msgs_done
    }

    pub(crate) fn handle_chan_announce(&self, cpu: &Cpu, pkt: &Packet) {
        let me = cpu.id().index();
        self.nodes.borrow_mut()[me].announces[pkt.src.index()].push_back((pkt.meta, pkt.words[0]));
    }

    pub(crate) fn handle_chan_data(self: &Rc<Self>, cpu: &Cpu, pkt: &Packet) {
        let cfg = self.config();
        cpu.compute(cfg.chan_recv_packet_overhead);
        let idx = pkt.meta & IDX_MASK;
        let id = (pkt.meta >> IDX_BITS) as usize;
        let (buf_off, capacity) = {
            let nodes = self.nodes.borrow();
            let ch = &nodes[cpu.id().index()].rchans[id];
            debug_assert_eq!(ch.src, pkt.src, "channel data from unexpected source");
            (ch.buf_off, ch.capacity)
        };
        let base = buf_off + (idx * PACKET_PAYLOAD_BYTES) as u64;
        let chunk = pkt
            .data_bytes
            .min(capacity - (idx * PACKET_PAYLOAD_BYTES).min(capacity));
        // Store the payload into the destination buffer.
        for w in 0..4u32 {
            if w * 4 < chunk {
                self.poke_u32(cpu.id(), base + (w as u64) * 4, pkt.words[w as usize]);
            }
        }
        self.touch_write(cpu, base, chunk.max(1) as u64);
        let _ = Kind::Wait; // (kind used by poll_loop; kept for clarity)
    }

    pub(crate) fn handle_chan_done(self: &Rc<Self>, cpu: &Cpu, pkt: &Packet) {
        let me = cpu.id().index();
        {
            let mut nodes = self.nodes.borrow_mut();
            let ch = &mut nodes[me].rchans[pkt.meta as usize];
            ch.msgs_done += 1;
            ch.last_bytes = pkt.words[0];
        }
        // A synchronous receive may be parked on this channel.
        self.finish_sync(cpu, pkt.meta as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpConfig;
    use wwt_sim::{Engine, SimConfig};

    #[test]
    fn channel_transfers_message_bytes_exactly() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let n = 100usize; // 800 bytes -> 50 data packets
        let src_buf = m.alloc(ProcId::new(0), (n * 8) as u64, 32);
        let dst_buf = m.alloc(ProcId::new(1), (n * 8) as u64, 32);
        for i in 0..n {
            m.poke_f64(ProcId::new(0), src_buf + (i * 8) as u64, i as f64 * 1.5);
        }
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let ch = m0.channel_bind(&c0, ProcId::new(1)).await;
            m0.channel_write(&c0, &ch, src_buf, (n * 8) as u32);
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let id = m1
                .channel_open_recv(&c1, ProcId::new(0), dst_buf, (n * 8) as u32)
                .expect("capacity within the channel limit");
            let got = m1.channel_wait(&c1, id).await;
            assert_eq!(got, (n * 8) as u32);
        });
        let r = e.run();
        for i in 0..n {
            assert_eq!(
                m.peek_f64(ProcId::new(1), dst_buf + (i * 8) as u64),
                i as f64 * 1.5
            );
        }
        let sender = r.proc(ProcId::new(0));
        // 50 data packets + 1 done + (1 announce from the receiver side).
        assert_eq!(sender.counters.get(Counter::PacketsSent), 51);
        assert_eq!(sender.counters.get(Counter::BytesData), 800);
        assert_eq!(sender.counters.get(Counter::BytesControl), 50 * 4 + 20);
        assert_eq!(sender.counters.get(Counter::ChannelWrites), 1);
    }

    #[test]
    fn channel_is_reusable_for_repeated_messages() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let src_buf = m.alloc(ProcId::new(0), 64, 32);
        let dst_buf = m.alloc(ProcId::new(1), 64, 32);
        let rounds = 5;
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let ch = m0.channel_bind(&c0, ProcId::new(1)).await;
            for k in 0..rounds {
                m0.poke_f64(ProcId::new(0), src_buf, k as f64);
                m0.channel_write(&c0, &ch, src_buf, 64);
            }
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let id = m1
                .channel_open_recv(&c1, ProcId::new(0), dst_buf, 64)
                .expect("capacity within the channel limit");
            for _ in 0..rounds {
                assert_eq!(m1.channel_wait(&c1, id).await, 64);
            }
        });
        e.run();
        assert_eq!(m.peek_f64(ProcId::new(1), dst_buf), (rounds - 1) as f64);
    }

    #[test]
    fn short_message_single_packet() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let src_buf = m.alloc(ProcId::new(0), 8, 8);
        let dst_buf = m.alloc(ProcId::new(1), 8, 8);
        m.poke_f64(ProcId::new(0), src_buf, 7.25);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let ch = m0.channel_bind(&c0, ProcId::new(1)).await;
            m0.channel_write(&c0, &ch, src_buf, 8);
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let id = m1
                .channel_open_recv(&c1, ProcId::new(0), dst_buf, 8)
                .expect("capacity within the channel limit");
            assert_eq!(m1.channel_wait(&c1, id).await, 8);
        });
        let r = e.run();
        assert_eq!(m.peek_f64(ProcId::new(1), dst_buf), 7.25);
        // 1 data packet carrying 8 data bytes.
        assert_eq!(r.proc(ProcId::new(0)).counters.get(Counter::BytesData), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds channel capacity")]
    fn oversized_write_panics() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let src_buf = m.alloc(ProcId::new(0), 128, 32);
        let dst_buf = m.alloc(ProcId::new(1), 64, 32);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let ch = m0.channel_bind(&c0, ProcId::new(1)).await;
            m0.channel_write(&c0, &ch, src_buf, 128);
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let id = m1
                .channel_open_recv(&c1, ProcId::new(0), dst_buf, 64)
                .expect("capacity within the channel limit");
            m1.channel_wait(&c1, id).await;
        });
        e.run();
    }
}
