//! Integration tests of the message-passing machine: channel semantics
//! under pipelining, handler-driven replies, collective composition, and
//! cost-model arithmetic.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use wwt_mp::{tag, MpConfig, MpMachine, TreeShape};
use wwt_sim::{Counter, Cpu, Engine, Kind, ProcId, Scope, SimConfig};

fn setup(n: usize) -> (Engine, Rc<MpMachine>) {
    let e = Engine::new(n, SimConfig::default());
    let m = MpMachine::new(&e, MpConfig::default());
    (e, m)
}

#[test]
fn pipelined_channel_writes_are_consumed_in_order() {
    // The sender fires several messages back-to-back before the receiver
    // waits for any of them; each wait must observe one message, in order.
    let (mut e, m) = setup(2);
    let rounds = 8u64;
    let src = m.alloc(ProcId::new(0), 8, 8);
    let dst = m.alloc(ProcId::new(1), 8, 8);
    let seen: Rc<RefCell<Vec<f64>>> = Rc::default();
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        let ch = m0.channel_bind(&c0, ProcId::new(1)).await;
        for k in 0..rounds {
            m0.poke_f64(ProcId::new(0), src, k as f64);
            m0.channel_write(&c0, &ch, src, 8);
            // Long enough for each message to land before the next: the
            // receive buffer is single-entry, and the app-level contract
            // is consume-before-overwrite.
            c0.compute(10_000);
        }
    });
    let m1 = Rc::clone(&m);
    let c1 = e.cpu(ProcId::new(1));
    let seen2 = Rc::clone(&seen);
    e.spawn(ProcId::new(1), async move {
        let id = m1
            .channel_open_recv(&c1, ProcId::new(0), dst, 8)
            .expect("capacity within the channel limit");
        for _ in 0..rounds {
            m1.channel_wait(&c1, id).await;
            seen2.borrow_mut().push(m1.peek_f64(ProcId::new(1), dst));
        }
    });
    e.run();
    let got = seen.borrow().clone();
    assert_eq!(got, (0..rounds).map(|k| k as f64).collect::<Vec<_>>());
}

#[test]
fn handler_reply_round_trip() {
    // Request/response through a user handler that replies with an AM,
    // the structure MSE-MP uses for its solution requests.
    let (mut e, m) = setup(2);
    const REQ: u8 = tag::USER_BASE;
    const REP: u8 = tag::USER_BASE + 1;
    let got: Rc<Cell<u32>> = Rc::default();
    m.set_handler(REQ, |a| {
        // Reply with twice the payload.
        a.machine
            .am_send_from_handler(a.cpu, a.src, REP, 0, [a.words[0] * 2, 0, 0, 0], 4);
    });
    {
        let got = Rc::clone(&got);
        m.set_handler(REP, move |a| got.set(a.words[0]));
    }
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        m0.am_send(&c0, ProcId::new(1), REQ, 0, [21, 0, 0, 0]).await;
        m0.poll_until(&c0, |n| n >= 1).await; // wait for the reply
    });
    let m1 = Rc::clone(&m);
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        m1.poll_until(&c1, |n| n >= 1).await; // serve the request
    });
    e.run();
    assert_eq!(got.get(), 42);
}

#[test]
fn poll_until_with_drains_application_conditions() {
    let (mut e, m) = setup(3);
    let served: Rc<Cell<u64>> = Rc::default();
    {
        let served = Rc::clone(&served);
        m.set_handler(tag::USER_BASE, move |_| served.set(served.get() + 1));
    }
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = e.cpu(p);
        let served = Rc::clone(&served);
        e.spawn(p, async move {
            if p.index() == 0 {
                // Node 0 only serves: two requests will arrive.
                m.poll_until_with(&cpu, move || served.get() >= 2).await;
            } else {
                cpu.compute(1_000 * p.index() as u64);
                m.am_send(&cpu, ProcId::new(0), tag::USER_BASE, 0, [0; 4])
                    .await;
            }
        });
    }
    e.run();
    assert_eq!(served.get(), 2);
}

#[test]
fn collectives_compose_with_rotating_roots() {
    // Reduce/broadcast with a different root each round, over every shape.
    for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::Lopsided] {
        let n = 7;
        let (mut e, m) = setup(n);
        let sums: Rc<RefCell<Vec<f64>>> = Rc::default();
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            let sums = Rc::clone(&sums);
            e.spawn(p, async move {
                for round in 0..5usize {
                    let root = round % m.nprocs();
                    let red = m
                        .reduce_sum_f64(&cpu, shape, root, (p.index() + round) as f64)
                        .await;
                    let v = if p.index() == root { red.unwrap() } else { 0.0 };
                    let out = m.bcast_f64(&cpu, shape, root, v).await;
                    if p.index() == 0 {
                        sums.borrow_mut().push(out);
                    }
                }
            });
        }
        e.run();
        let expect: Vec<f64> = (0..5)
            .map(|r| (0..7).map(|p| (p + r) as f64).sum())
            .collect();
        assert_eq!(*sums.borrow(), expect, "{shape:?}");
    }
}

#[test]
fn send_costs_match_table_2() {
    // One active message costs exactly: send overhead (compute) plus
    // tag+destination (5) plus 5-word send (15) at the NI.
    let (mut e, m) = setup(2);
    m.set_handler(tag::USER_BASE, |_| {});
    let cfg = *m.config();
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        m0.am_send(&c0, ProcId::new(1), tag::USER_BASE, 0, [0; 4])
            .await;
    });
    let m1 = Rc::clone(&m);
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        m1.poll_until(&c1, |n| n >= 1).await;
    });
    let r = e.run();
    let sender = r.proc(ProcId::new(0));
    assert_eq!(
        sender.matrix.by_kind(Kind::NetAccess),
        cfg.ni_tag_dest + cfg.ni_send
    );
    assert_eq!(
        sender.matrix.get(Scope::Lib, Kind::Compute),
        cfg.am_send_overhead
    );
    assert_eq!(
        sender.clock,
        cfg.am_send_overhead + cfg.ni_tag_dest + cfg.ni_send
    );
}

#[test]
fn barrier_and_channels_interleave_across_many_nodes() {
    // A ring: everyone sends to the right neighbor, waits for the left,
    // then barriers; values rotate all the way around.
    let n = 8;
    let rounds = n;
    let (mut e, m) = setup(n);
    let finals: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; n]));
    let mut bufs = Vec::new();
    for p in 0..n {
        let src = m.alloc(ProcId::new(p), 8, 8);
        let dst = m.alloc(ProcId::new(p), 8, 8);
        bufs.push((src, dst));
    }
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = e.cpu(p);
        let finals = Rc::clone(&finals);
        let (src, dst) = bufs[p.index()];
        e.spawn(p, async move {
            let me = p.index();
            let right = ProcId::new((me + 1) % n);
            let left = ProcId::new((me + n - 1) % n);
            let id = m
                .channel_open_recv(&cpu, left, dst, 8)
                .expect("capacity within the channel limit");
            let out = m.channel_bind(&cpu, right).await;
            let mut v = me as f64;
            for _ in 0..rounds {
                m.poke_f64(p, src, v);
                m.channel_write(&cpu, &out, src, 8);
                m.channel_wait(&cpu, id).await;
                v = m.peek_f64(p, dst);
                m.barrier(&cpu).await;
            }
            finals.borrow_mut()[me] = v;
        });
    }
    e.run();
    // After n rotations everyone holds their own original value again.
    let got = finals.borrow().clone();
    assert_eq!(got, (0..n).map(|p| p as f64).collect::<Vec<_>>());
}

#[test]
fn byte_accounting_distinguishes_data_and_control() {
    let (mut e, m) = setup(2);
    let src = m.alloc(ProcId::new(0), 160, 32);
    let dst = m.alloc(ProcId::new(1), 160, 32);
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        let ch = m0.channel_bind(&c0, ProcId::new(1)).await;
        m0.channel_write(&c0, &ch, src, 160); // 10 data packets + done
    });
    let m1 = Rc::clone(&m);
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        let id = m1
            .channel_open_recv(&c1, ProcId::new(0), dst, 160)
            .expect("capacity within the channel limit");
        m1.channel_wait(&c1, id).await;
    });
    let r = e.run();
    let s = r.proc(ProcId::new(0));
    assert_eq!(s.counters.get(Counter::BytesData), 160);
    // 10 data packets x 4 header bytes + one 20-byte done marker.
    assert_eq!(s.counters.get(Counter::BytesControl), 10 * 4 + 20);
    assert_eq!(s.counters.get(Counter::PacketsSent), 11);
}

#[test]
fn deterministic_under_heavy_cross_traffic() {
    let run = || {
        let (mut e, m) = setup(6);
        m.set_handler(tag::USER_BASE, |_| {});
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu: Cpu = e.cpu(p);
            e.spawn(p, async move {
                let n = m.nprocs();
                for k in 0..50u32 {
                    let dest = ProcId::new((p.index() + 1 + (k as usize % (n - 1))) % n);
                    m.am_send(&cpu, dest, tag::USER_BASE, k, [k, 1, 2, 3]).await;
                    cpu.compute((k as u64 * 13) % 97);
                }
                m.poll_until(&cpu, |got| got >= 50).await;
                m.barrier(&cpu).await;
            });
        }
        let r = e.run();
        (r.elapsed(), r.events_processed())
    };
    assert_eq!(run(), run());
}

#[test]
fn ni_accept_gap_serializes_incasts() {
    // Many nodes blast one receiver: with a positive acceptance gap the
    // last packet arrives later than in the contention-free model.
    let elapsed_with_gap = |gap: u64| {
        let n = 9;
        let mut e = Engine::new(n, SimConfig::default());
        let m = MpMachine::new(
            &e,
            MpConfig {
                ni_accept_gap: gap,
                ..MpConfig::default()
            },
        );
        m.set_handler(tag::USER_BASE, |_| {});
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            e.spawn(p, async move {
                if p.index() == 0 {
                    m.poll_until(&cpu, |got| got >= 8 * 10).await;
                } else {
                    for k in 0..10 {
                        m.am_send(&cpu, ProcId::new(0), tag::USER_BASE, k, [0; 4])
                            .await;
                    }
                }
            });
        }
        e.run().elapsed()
    };
    let free = elapsed_with_gap(0);
    // The receiver dispatches a packet in well under 200 cycles, so a
    // 200-cycle acceptance gap makes arrival the bottleneck.
    let congested = elapsed_with_gap(200);
    assert!(
        congested > free + 8 * 10 * 100,
        "gap must slow the incast: {congested} vs {free}"
    );
}
