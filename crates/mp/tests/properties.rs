//! Property-based tests of the message-passing machine.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use wwt_mp::{MpConfig, MpMachine, TreeShape};
use wwt_sim::{Counter, Engine, ProcId, SimConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A channel transfers any message byte-exactly, regardless of length
    /// (packet-boundary straddles included).
    #[test]
    fn channel_transfers_any_payload(len_words in 1usize..200, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vals: Vec<f64> = (0..len_words).map(|_| rng.gen_range(-1e12..1e12)).collect();
        let bytes = (len_words * 8) as u32;

        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let src = m.alloc(ProcId::new(0), bytes as u64, 32);
        let dst = m.alloc(ProcId::new(1), bytes as u64, 32);
        m.poke_f64s(ProcId::new(0), src, &vals);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let ch = m0.channel_bind(&c0, ProcId::new(1)).await;
            m0.channel_write(&c0, &ch, src, bytes);
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let id = m1.channel_open_recv(&c1, ProcId::new(0), dst, bytes).expect("capacity within the channel limit");
            let got = m1.channel_wait(&c1, id).await;
            assert_eq!(got, bytes);
        });
        let r = e.run();
        let mut got = vec![0.0f64; len_words];
        m.peek_f64s(ProcId::new(1), dst, &mut got);
        for (a, b) in vals.iter().zip(&got) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // Data-byte accounting is exact.
        prop_assert_eq!(
            r.proc(ProcId::new(0)).counters.get(Counter::BytesData),
            bytes as u64
        );
    }

    /// Reductions compute the exact max over any machine size, shape, and
    /// root, with the correct owner.
    #[test]
    fn reduce_max_is_exact(
        n in 2usize..12,
        root_sel in 0usize..12,
        seed in 0u64..1000,
        shape_sel in 0usize..3,
    ) {
        use rand::{Rng, SeedableRng};
        let root = root_sel % n;
        let shape = [TreeShape::Flat, TreeShape::Binary, TreeShape::Lopsided][shape_sel];
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vals: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let expect = vals
            .iter()
            .cloned()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();

        let mut e = Engine::new(n, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let result: Rc<RefCell<Option<(f64, usize)>>> = Rc::default();
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            let result = Rc::clone(&result);
            let v = vals[p.index()];
            e.spawn(p, async move {
                if let Some(r) = m.reduce_max_f64_index(&cpu, shape, root, v, p.index()).await {
                    *result.borrow_mut() = Some(r);
                }
                m.barrier(&cpu).await;
            });
        }
        e.run();
        let (got_v, got_i) = result.borrow().expect("root sees the result");
        prop_assert_eq!(got_v, expect.1);
        prop_assert_eq!(got_i, expect.0);
    }

    /// Synchronous send/receive pairs rendezvous correctly in any posting
    /// order over several tags.
    #[test]
    fn sync_messages_match_by_tag(perm_seed in 0u64..1000, nmsgs in 1usize..5) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(perm_seed);
        let mut recv_order: Vec<u32> = (0..nmsgs as u32).collect();
        recv_order.shuffle(&mut rng);

        let mut e = Engine::new(2, SimConfig::default());
        let m = MpMachine::new(&e, MpConfig::default());
        let srcs: Vec<u64> = (0..nmsgs).map(|_| m.alloc(ProcId::new(0), 8, 8)).collect();
        let dsts: Vec<u64> = (0..nmsgs).map(|_| m.alloc(ProcId::new(1), 8, 8)).collect();
        for (t, &s) in srcs.iter().enumerate() {
            m.poke_f64(ProcId::new(0), s, 100.0 + t as f64);
        }
        // Synchronous sends block until matched, so both sides must use a
        // compatible order; the shuffled tag sequence still exercises the
        // tag-matching path.
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        let srcs0 = srcs.clone();
        let order0 = recv_order.clone();
        e.spawn(ProcId::new(0), async move {
            for &t in &order0 {
                m0.send_sync(&c0, ProcId::new(1), t, srcs0[t as usize], 8).await;
            }
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        let dsts1 = dsts.clone();
        let order = recv_order.clone();
        e.spawn(ProcId::new(1), async move {
            for &t in &order {
                m1.recv_sync(&c1, ProcId::new(0), t, dsts1[t as usize], 8).await;
            }
        });
        e.run();
        for (t, &d) in dsts.iter().enumerate() {
            prop_assert_eq!(m.peek_f64(ProcId::new(1), d), 100.0 + t as f64);
        }
    }
}
