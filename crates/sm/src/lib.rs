//! Dir_nNB cache-coherent shared-memory machine model.
//!
//! This crate reproduces the shared-memory side of the paper's paired
//! simulators (Section 4.2):
//!
//! * a full-map, write-invalidate **directory protocol** (`Dir_nNB`,
//!   Agarwal et al.) providing sequentially consistent shared memory, with
//!   the per-operation costs of Table 3 and *directory occupancy* so that
//!   contention queues requests (the paper measures ~200-cycle queueing
//!   delays in Gauss),
//! * a **parmacs-style programming layer**: `gmalloc` with round-robin or
//!   local allocation (the EM3D Table-17 ablation), a start-up gate
//!   matching `create(f)`, MCS locks, MCS-style software reductions and
//!   flag-based broadcast, and the CM-5-style hardware barrier,
//! * an optional **bulk-update protocol** mode (the Section 5.3.4
//!   extension from Falsafi et al.) that replaces invalidations with data
//!   updates for producer–consumer sharing.
//!
//! Accesses to shared data run through a local cache model; misses become
//! protocol transactions simulated message-by-message on the event queue,
//! and the requesting processor stalls for the transaction latency
//! (sequential consistency). All costs land in the paper's breakdown
//! categories: shared misses (local/remote), write faults, TLB misses,
//! locks, barriers, reductions, and start-up wait.
//!
//! # Example
//!
//! ```
//! use std::rc::Rc;
//! use wwt_sim::{Engine, SimConfig};
//! use wwt_sm::{SmConfig, SmMachine};
//!
//! let mut engine = Engine::new(2, SimConfig::default());
//! let m = SmMachine::new(&engine, SmConfig::default());
//! let x = m.gmalloc_on(0, 8, 8); // one shared f64 homed on node 0
//! let m0 = Rc::clone(&m);
//! let c0 = engine.cpu(0.into());
//! engine.spawn(0.into(), async move {
//!     m0.write_f64(&c0, x, 41.0).await;
//!     m0.barrier(&c0).await;
//! });
//! let m1 = Rc::clone(&m);
//! let c1 = engine.cpu(1.into());
//! engine.spawn(1.into(), async move {
//!     m1.barrier(&c1).await;
//!     let v = m1.read_f64(&c1, x).await;
//!     assert_eq!(v, 41.0);
//! });
//! engine.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod machine;
pub mod parmacs;
pub mod protocol;

pub use config::{AllocPolicy, ProtocolMode, SmConfig};
pub use machine::SmMachine;
pub use parmacs::{CreateGate, McsLock, SmCollectives};
pub use wwt_arch::ArchParams;
