//! The shared-memory machine: nodes, global allocation, and the costed
//! shared/private access paths.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use wwt_mem::{AccessKind, Cache, GAddr, LineState, NodeMem, Segment, Tlb};
use wwt_sim::{
    CellPool, Counter, Cpu, Cycles, Engine, FastMap, FastSet, HwBarrier, Kind, ProcId, Sim,
    WaitCell,
};

use crate::config::{AllocPolicy, ProtocolMode, SmConfig};
use crate::protocol::{DirState, Directory};

pub(crate) struct SmNode {
    pub(crate) mem: NodeMem,
    pub(crate) cache: Cache,
    pub(crate) tlb: Tlb,
    pub(crate) dir: Directory,
    pub(crate) dir_busy: Cycles,
    /// Outstanding prefetches: block -> completion cell (MSHR-style, so
    /// demand misses merge into in-flight prefetches instead of issuing
    /// duplicate transactions).
    pub(crate) pending_prefetch: FastMap<u64, WaitCell>,
    /// Blocks parked in local memory by the Stache policy.
    pub(crate) stache: FastSet<u64>,
}

impl SmNode {
    fn new(config: &SmConfig, seed: u64) -> Self {
        SmNode {
            mem: NodeMem::new(),
            cache: Cache::new(config.arch.cache, seed),
            tlb: Tlb::new(config.arch.tlb_entries),
            dir: Directory::new(config.arch.cache.block_bytes),
            dir_busy: 0,
            pending_prefetch: FastMap::default(),
            stache: FastSet::default(),
        }
    }
}

/// The simulated `Dir_nNB` shared-memory machine.
///
/// Create one per [`Engine`] and hand `Rc<SmMachine>` clones plus
/// [`Cpu`] handles to the per-processor tasks. Shared data is allocated
/// with [`SmMachine::gmalloc`] and accessed through the costed async
/// accessors ([`SmMachine::read_f64`], [`SmMachine::touch_write`], ...),
/// which stall the calling processor for coherence transactions exactly as
/// a sequentially consistent machine would.
pub struct SmMachine {
    sim: Rc<Sim>,
    config: SmConfig,
    pub(crate) nodes: RefCell<Vec<SmNode>>,
    barrier: HwBarrier,
    rr_next: Cell<usize>,
    watchers: RefCell<FastMap<u64, Vec<WaitCell>>>,
    /// Recycled completion cells for the per-miss transact path.
    pub(crate) cell_pool: CellPool,
}

impl fmt::Debug for SmMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmMachine")
            .field("nprocs", &self.nprocs())
            .field("config", &self.config)
            .finish()
    }
}

impl SmMachine {
    /// Creates a shared-memory machine bound to `engine`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has more than 128 nodes (the full-map
    /// directory width).
    pub fn new(engine: &Engine, config: SmConfig) -> Rc<Self> {
        let sim = Rc::clone(engine.sim());
        let n = sim.nprocs();
        assert!(n <= 128, "Dir_nNB full map supports up to 128 nodes");
        let seed = sim.config().seed;
        Rc::new(SmMachine {
            sim,
            nodes: RefCell::new(
                (0..n)
                    .map(|i| SmNode::new(&config, seed.wrapping_add(0x5a5a + i as u64)))
                    .collect(),
            ),
            barrier: HwBarrier::new(n, config.arch.barrier_latency),
            config,
            rr_next: Cell::new(0),
            watchers: RefCell::new(FastMap::default()),
            cell_pool: CellPool::new(),
        })
    }

    /// Number of nodes.
    pub fn nprocs(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// The machine configuration.
    pub fn config(&self) -> &SmConfig {
        &self.config
    }

    /// The simulator handle.
    pub fn sim(&self) -> &Rc<Sim> {
        &self.sim
    }

    // ----- allocation -------------------------------------------------------

    /// Allocates shared memory according to the configured
    /// [`AllocPolicy`]: round-robin across nodes per allocation (the
    /// paper's parmacs default), or on the requesting node (`requester`)
    /// under the local policy of Table 17.
    pub fn gmalloc(&self, requester: usize, bytes: u64, align: u64) -> GAddr {
        let node = match self.config.alloc_policy {
            AllocPolicy::RoundRobin => {
                let n = self.rr_next.get();
                self.rr_next.set((n + 1) % self.nprocs());
                n
            }
            AllocPolicy::Local => requester,
        };
        self.gmalloc_on(node, bytes, align)
    }

    /// Allocates shared memory homed on a specific node (the "local
    /// allocation" policy of Table 17 when `node` is the toucher).
    pub fn gmalloc_on(&self, node: usize, bytes: u64, align: u64) -> GAddr {
        let off = self.nodes.borrow_mut()[node]
            .mem
            .alloc(bytes, align.max(32));
        GAddr::new(Segment::Shared, node, off)
    }

    /// Allocates private (incoherent, node-local) memory on `node`.
    pub fn alloc_private(&self, node: usize, bytes: u64, align: u64) -> GAddr {
        let off = self.nodes.borrow_mut()[node].mem.alloc(bytes, align.max(8));
        GAddr::new(Segment::Private, node, off)
    }

    // ----- uncosted backing-store access (setup / verification) ------------

    /// Reads an `f64` without simulated cost.
    pub fn peek_f64(&self, ga: GAddr) -> f64 {
        self.nodes.borrow()[ga.node()].mem.read_f64(ga.offset())
    }

    /// Writes an `f64` without simulated cost.
    pub fn poke_f64(&self, ga: GAddr, v: f64) {
        self.nodes.borrow_mut()[ga.node()]
            .mem
            .write_f64(ga.offset(), v)
    }

    /// Reads a `u64` without simulated cost.
    pub fn peek_u64(&self, ga: GAddr) -> u64 {
        self.nodes.borrow()[ga.node()].mem.read_u64(ga.offset())
    }

    /// Writes a `u64` without simulated cost.
    pub fn poke_u64(&self, ga: GAddr, v: u64) {
        self.nodes.borrow_mut()[ga.node()]
            .mem
            .write_u64(ga.offset(), v)
    }

    /// Bulk-reads `f64`s without simulated cost (pair with
    /// [`SmMachine::touch_read`] for the memory-system charge).
    pub fn peek_f64s(&self, ga: GAddr, dst: &mut [f64]) {
        self.nodes.borrow()[ga.node()]
            .mem
            .read_f64s(ga.offset(), dst)
    }

    /// Bulk-writes `f64`s without simulated cost (pair with
    /// [`SmMachine::touch_write`] for the memory-system charge).
    pub fn poke_f64s(&self, ga: GAddr, src: &[f64]) {
        self.nodes.borrow_mut()[ga.node()]
            .mem
            .write_f64s(ga.offset(), src)
    }

    /// Reads a `u32` without simulated cost.
    pub fn peek_u32(&self, ga: GAddr) -> u32 {
        self.nodes.borrow()[ga.node()].mem.read_u32(ga.offset())
    }

    /// Writes a `u32` without simulated cost.
    pub fn poke_u32(&self, ga: GAddr, v: u32) {
        self.nodes.borrow_mut()[ga.node()]
            .mem
            .write_u32(ga.offset(), v)
    }

    // ----- protocol state accessors (used by protocol.rs) ------------------

    pub(crate) fn dir_state(&self, home: usize, block: GAddr) -> DirState {
        self.nodes.borrow()[home].dir.get(block)
    }

    pub(crate) fn set_dir_state(&self, home: usize, block: GAddr, st: DirState) {
        self.nodes.borrow_mut()[home].dir.set(block, st);
    }

    /// Directory state of `block` plus its home's busy horizon, read under
    /// one borrow (the entry read of every `dir_service` request).
    pub(crate) fn dir_read(&self, home: usize, block: GAddr) -> (DirState, Cycles) {
        let nodes = self.nodes.borrow();
        let node = &nodes[home];
        (node.dir.get(block), node.dir_busy)
    }

    /// Writes `block`'s new directory state and the home's busy horizon
    /// under one borrow (the exit write of every `dir_service` request).
    pub(crate) fn dir_write(&self, home: usize, block: GAddr, st: DirState, busy: Cycles) {
        let mut nodes = self.nodes.borrow_mut();
        let node = &mut nodes[home];
        node.dir_busy = busy;
        node.dir.set(block, st);
    }

    pub(crate) fn cache_invalidate(&self, node: usize, block: GAddr) {
        let mut nodes = self.nodes.borrow_mut();
        nodes[node].cache.invalidate(block.raw());
        // An invalidation also voids any staled copy in local memory.
        nodes[node].stache.remove(&block.raw());
    }

    pub(crate) fn cache_downgrade(&self, node: usize, block: GAddr) {
        self.nodes.borrow_mut()[node].cache.downgrade(block.raw());
    }

    pub(crate) fn clear_pending_prefetch(&self, node: usize, block: GAddr) {
        self.nodes.borrow_mut()[node]
            .pending_prefetch
            .remove(&block.raw());
    }

    /// Installs a clean copy of `block` at `node` (prefetch arrival),
    /// returning any displaced valid victim.
    pub(crate) fn cache_fill_clean(&self, node: usize, block: GAddr) -> Option<(u64, LineState)> {
        self.nodes.borrow_mut()[node]
            .cache
            .fill(block.raw(), LineState::Clean)
            .map(|ev| (ev.block, ev.state))
    }

    // ----- costed access paths ----------------------------------------------

    /// Charges the memory-system cost of reading `bytes` at `ga`
    /// (private data: local cache simulation; shared data: coherence
    /// transactions that stall the caller). Returns the number of cache
    /// misses the access took, so callers modeling value staleness can
    /// tell a (possibly stale) hit from a refreshing miss.
    pub async fn touch_read(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, bytes: u64) -> u32 {
        self.access(cpu, ga, bytes, AccessKind::Read).await
    }

    /// Charges the memory-system cost of writing `bytes` at `ga`.
    /// Returns the number of cache misses (including upgrades).
    pub async fn touch_write(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, bytes: u64) -> u32 {
        self.access(cpu, ga, bytes, AccessKind::Write).await
    }

    pub(crate) async fn access(
        self: &Rc<Self>,
        cpu: &Cpu,
        ga: GAddr,
        bytes: u64,
        kind: AccessKind,
    ) -> u32 {
        match ga.segment() {
            Segment::Private => self.private_touch(cpu, ga, bytes, kind),
            Segment::Shared => self.shared_touch(cpu, ga, bytes, kind).await,
        }
    }

    fn private_touch(&self, cpu: &Cpu, ga: GAddr, bytes: u64, kind: AccessKind) -> u32 {
        debug_assert_eq!(ga.node(), cpu.id().index(), "private data is node-local");
        let out = {
            let mut nodes = self.nodes.borrow_mut();
            let node = &mut nodes[cpu.id().index()];
            wwt_mem::touch(&mut node.cache, &mut node.tlb, ga.raw(), bytes, kind)
        };
        if out.misses > 0 {
            // Private victims cost 1 cycle into the write buffer; shared
            // victims displaced by private fills still need protocol action.
            cpu.charge(
                Kind::PrivMiss,
                out.misses as Cycles * self.config.priv_miss_total(),
            );
            cpu.count(Counter::PrivMisses, out.misses as u64);
        }
        if out.tlb_misses > 0 {
            cpu.charge(
                Kind::TlbMiss,
                out.tlb_misses as Cycles * self.config.arch.tlb_miss,
            );
            cpu.count(Counter::TlbMisses, out.tlb_misses as u64);
        }
        out.misses + out.upgrades
    }

    async fn shared_touch(
        self: &Rc<Self>,
        cpu: &Cpu,
        ga: GAddr,
        bytes: u64,
        kind: AccessKind,
    ) -> u32 {
        if bytes == 0 {
            return 0;
        }
        // Catch up with global time before probing, so protocol events
        // (invalidations, prefetch arrivals) up to our local clock have
        // been applied to our cache.
        // Clock value certified by the resync. While the local clock still
        // equals it, another resync is provably a no-op (no charge has
        // happened and global time only moves forward), so the hit path
        // below can skip the second resync without changing any event's
        // order.
        let mut synced_at = cpu.resync_if_ahead().await;
        let cfg = &self.config;
        let me = cpu.id().index();
        let block_bytes = cfg.arch.cache.block_bytes;
        // In bulk-update mode shared writes do not take ownership; the
        // producer publishes explicitly with `bulk_publish`.
        let cache_kind = match (cfg.protocol, kind) {
            (ProtocolMode::BulkUpdate, AccessKind::Write) => AccessKind::Read,
            _ => kind,
        };
        let first = ga.raw() & !(block_bytes - 1);
        let last = (ga.raw() + bytes - 1) & !(block_bytes - 1);
        let mut block_raw = first;
        let mut misses = 0u32;
        loop {
            let block = GAddr::from_raw(block_raw);
            // TLB and cache probe, plus the directory check a hit needs,
            // all under one borrow of the node table.
            let page = block_raw & !(wwt_mem::PAGE_BYTES - 1);
            let (tlb_hit, result, listed) = {
                let mut nodes = self.nodes.borrow_mut();
                let node = &mut nodes[me];
                let tlb_hit = node.tlb.access(page);
                let result = node.cache.access(block_raw, cache_kind);
                // A hit counts only while the directory still attributes
                // the copy to us; otherwise an invalidation is posted (in
                // flight on the event queue) and the access races with it
                // in real time. We resolve that race in the invalidation's
                // favor — otherwise a deterministic lock-step program
                // could touch the line just before every arrival and never
                // observe any invalidation.
                let listed = result.hit
                    && !result.upgrade
                    && match nodes[block.node()].dir.get(block) {
                        DirState::Shared(s) => s.contains(me),
                        DirState::Exclusive(o) => o == me,
                        DirState::Uncached => false,
                    };
                (tlb_hit, result, listed)
            };
            if !tlb_hit {
                cpu.charge(Kind::TlbMiss, cfg.arch.tlb_miss);
                cpu.count(Counter::TlbMisses, 1);
            }
            let result = if result.hit && !result.upgrade && !listed {
                // Take the in-flight invalidation now and reload.
                self.cache_invalidate(me, block);
                self.nodes.borrow_mut()[me]
                    .cache
                    .access(block_raw, cache_kind)
            } else {
                result
            };
            if result.hit && !result.upgrade {
                if cpu.clock() != synced_at {
                    synced_at = cpu.resync_if_ahead().await;
                }
            } else {
                // Replacement of the victim displaced by this fill.
                if let Some(ev) = result.evicted {
                    let victim = GAddr::from_raw(ev.block);
                    match (victim.segment(), ev.state) {
                        (Segment::Private, _) => cpu.charge(Kind::PrivMiss, cfg.arch.replacement),
                        (Segment::Shared, state) => {
                            cpu.charge(
                                Kind::PrivMiss,
                                if state == LineState::Dirty {
                                    cfg.repl_shared_dirty
                                } else {
                                    cfg.repl_shared_clean
                                },
                            );
                            if cfg.stache {
                                // Park the block locally: the directory
                                // still lists us, no message is sent, and
                                // a re-miss refills from local memory.
                                self.nodes.borrow_mut()[me].stache.insert(victim.raw());
                            } else {
                                self.shared_eviction(cpu, victim, state);
                            }
                        }
                    }
                }
                let (charge_kind, counter) = if result.upgrade {
                    (Kind::WriteFault, Counter::WriteFaults)
                } else if block.node() == me {
                    (Kind::ShMissLocal, Counter::ShMissesLocal)
                } else {
                    (Kind::ShMissRemote, Counter::ShMissesRemote)
                };
                // A re-miss on a block parked in the local stache (and
                // still attributed to us by the directory) refills at
                // local-memory cost: no protocol transaction.
                if cfg.stache {
                    let parked = self.nodes.borrow()[me].stache.contains(&block_raw);
                    if parked {
                        let listed = match self.dir_state(block.node(), block) {
                            DirState::Shared(s) => s.contains(me),
                            DirState::Exclusive(o) => o == me,
                            DirState::Uncached => false,
                        };
                        if listed && cache_kind == AccessKind::Read {
                            cpu.charge(Kind::PrivMiss, cfg.priv_miss_total());
                            cpu.count(Counter::PrivMisses, 1);
                            if block_raw == last {
                                break;
                            }
                            block_raw += block_bytes;
                            continue;
                        }
                    }
                }
                // A read miss on a block with an in-flight prefetch merges
                // into it (MSHR behavior): wait for the prefetch response
                // instead of issuing a duplicate transaction.
                let inflight = (cache_kind == AccessKind::Read)
                    .then(|| {
                        self.nodes.borrow()[me]
                            .pending_prefetch
                            .get(&block_raw)
                            .cloned()
                    })
                    .flatten();
                misses += 1;
                if let Some(cell) = inflight {
                    cell.wait(cpu, charge_kind).await;
                } else {
                    cpu.count(counter, 1);
                    self.transact(cpu, block, cache_kind == AccessKind::Write, charge_kind)
                        .await;
                }
            }
            if block_raw == last {
                break;
            }
            block_raw += block_bytes;
        }
        misses
    }

    /// Costed shared/private read of an `f64`.
    pub async fn read_f64(self: &Rc<Self>, cpu: &Cpu, ga: GAddr) -> f64 {
        self.access(cpu, ga, 8, AccessKind::Read).await;
        self.peek_f64(ga)
    }

    /// Costed shared/private write of an `f64`.
    pub async fn write_f64(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, v: f64) {
        self.access(cpu, ga, 8, AccessKind::Write).await;
        self.poke_f64(ga, v);
        self.notify(cpu, ga);
    }

    /// Costed shared/private read of a `u64`.
    pub async fn read_u64(self: &Rc<Self>, cpu: &Cpu, ga: GAddr) -> u64 {
        self.access(cpu, ga, 8, AccessKind::Read).await;
        self.peek_u64(ga)
    }

    /// Costed shared/private write of a `u64`; wakes any watchers of `ga`.
    pub async fn write_u64(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, v: u64) {
        self.access(cpu, ga, 8, AccessKind::Write).await;
        self.poke_u64(ga, v);
        self.notify(cpu, ga);
    }

    /// The machine's atomic swap instruction: atomically exchanges the
    /// `u64` at `ga` with `v`, returning the previous value. Obtains the
    /// block exclusively, like a write.
    pub async fn swap_u64(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, v: u64) -> u64 {
        self.access(cpu, ga, 8, AccessKind::Write).await;
        let old = self.peek_u64(ga);
        self.poke_u64(ga, v);
        self.notify(cpu, ga);
        old
    }

    // ----- flag watching (spin-wait support) --------------------------------

    /// Registers interest in writes to `ga`; the returned cell completes at
    /// the next typed write to exactly this address.
    pub fn watch(&self, ga: GAddr) -> WaitCell {
        let cell = WaitCell::new();
        self.watchers
            .borrow_mut()
            .entry(ga.raw())
            .or_default()
            .push(cell.clone());
        cell
    }

    fn notify(&self, cpu: &Cpu, ga: GAddr) {
        let cells = self.watchers.borrow_mut().remove(&ga.raw());
        if let Some(cells) = cells {
            for c in cells {
                c.complete(&self.sim, cpu.clock());
            }
        }
    }

    /// Spins (in the MCS sense: blocked on a locally cached value, woken by
    /// the eventual invalidation) until the `u64` at `ga` is at least
    /// `target`, charging waits to `kind`. Every re-check performs a real,
    /// costed read, so the coherence traffic of the spin-and-invalidate
    /// pattern is modeled faithfully.
    pub async fn flag_wait(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, target: u64, kind: Kind) -> u64 {
        loop {
            let v = self.read_u64(cpu, ga).await;
            if v >= target {
                return v;
            }
            let cell = self.watch(ga);
            cell.wait(cpu, kind).await;
        }
    }

    // ----- flush and prefetch hints (Section 5.3.4 remedies) ---------------

    /// Flushes `[ga, ga + bytes)` from the caller's cache: each resident
    /// block is self-invalidated (a clean one sends a replacement hint, a
    /// dirty one writes back), turning the producer's later 2-message
    /// invalidation into a local replacement — the consumer-side remedy
    /// the paper discusses in Section 5.3.4. Returns blocks flushed.
    pub async fn flush(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, bytes: u64) -> u32 {
        if bytes == 0 {
            return 0;
        }
        cpu.resync().await;
        let cfg = &self.config;
        let me = cpu.id().index();
        let block_bytes = cfg.arch.cache.block_bytes;
        let first = ga.raw() & !(block_bytes - 1);
        let last = (ga.raw() + bytes - 1) & !(block_bytes - 1);
        let mut block_raw = first;
        let mut flushed = 0;
        loop {
            let state = self.nodes.borrow_mut()[me].cache.invalidate(block_raw);
            if let Some(st) = state {
                cpu.charge(Kind::PrivMiss, cfg.invalidate);
                self.shared_eviction(cpu, GAddr::from_raw(block_raw), st);
                flushed += 1;
            }
            if block_raw == last {
                break;
            }
            block_raw += block_bytes;
        }
        flushed
    }

    /// Issues non-binding prefetches for `[ga, ga + bytes)`: missing
    /// blocks are requested from their homes without stalling the caller
    /// (the cooperative-prefetch remedy of Section 5.3.4 — a consumer can
    /// issue these arbitrarily early). The traffic is charged and counted
    /// exactly like demand misses; only the processor stall disappears.
    /// Returns the number of blocks requested.
    pub async fn prefetch(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, bytes: u64) -> u32 {
        if bytes == 0 {
            return 0;
        }
        cpu.resync().await;
        let cfg = &self.config;
        let me = cpu.id().index();
        let block_bytes = cfg.arch.cache.block_bytes;
        let first = ga.raw() & !(block_bytes - 1);
        let last = (ga.raw() + bytes - 1) & !(block_bytes - 1);
        let mut block_raw = first;
        let mut issued = 0;
        loop {
            let block = GAddr::from_raw(block_raw);
            let listed = match self.dir_state(block.node(), block) {
                DirState::Shared(s) => s.contains(me),
                DirState::Exclusive(o) => o == me,
                DirState::Uncached => false,
            };
            let resident = self.nodes.borrow()[me].cache.state_of(block_raw).is_some() && listed;
            if !resident {
                // A couple of cycles to issue the prefetch instruction;
                // the line is installed only when the response arrives,
                // so a prefetch issued too late hides nothing.
                cpu.compute(2);
                let counter = if block.node() == me {
                    Counter::ShMissesLocal
                } else {
                    Counter::ShMissesRemote
                };
                cpu.count(counter, 1);
                let cell = wwt_sim::WaitCell::new();
                self.nodes.borrow_mut()[me]
                    .pending_prefetch
                    .insert(block_raw, cell.clone());
                cpu.count(Counter::BytesControl, cfg.ctrl_msg_bytes);
                let arrive = cpu.clock() + cfg.latency(me, block.node());
                let this = Rc::clone(self);
                self.sim()
                    .call_at_for(
                        ProcId::new(block.node()),
                        arrive.max(self.sim().now()),
                        move || {
                            this.dir_service_prefetch(me, block, cell);
                        },
                    )
                    .expect("arrival is clamped to the present");
                issued += 1;
            }
            if block_raw == last {
                break;
            }
            block_raw += block_bytes;
        }
        issued
    }

    /// Application-specific *push broadcast* (the Section 5.3.4 remark
    /// that "similar protocol changes could benefit ... the broadcasts in
    /// Gauss"): the producer pushes `[ga, ga + bytes)` to **every** other
    /// node's cache with one update message per (node, block), so the
    /// consumers' subsequent reads hit instead of converging on the
    /// owner's directory. Works under either protocol mode.
    pub async fn push_broadcast(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, bytes: u64) {
        if bytes == 0 {
            return;
        }
        cpu.resync().await;
        let cfg = &self.config;
        let me = cpu.id().index();
        let n = self.nprocs();
        let block_bytes = cfg.arch.cache.block_bytes;
        let first = ga.raw() & !(block_bytes - 1);
        let last = (ga.raw() + bytes - 1) & !(block_bytes - 1);
        let mut block_raw = first;
        loop {
            let block = GAddr::from_raw(block_raw);
            // The producer keeps a read-only copy; everyone becomes a
            // sharer at once.
            self.nodes.borrow_mut()[me].cache.downgrade(block_raw);
            let mut sharers = crate::protocol::Sharers::empty();
            for q in 0..n {
                sharers.insert(q);
            }
            self.set_dir_state(block.node(), block, DirState::Shared(sharers));
            for q in 0..n {
                if q == me {
                    continue;
                }
                cpu.charge(Kind::NetAccess, cfg.dir_send_msg);
                cpu.count(Counter::BytesData, cfg.data_msg_bytes);
                cpu.count(Counter::BytesControl, cfg.ctrl_msg_bytes);
                cpu.count(Counter::MessagesSent, 1);
                let arrive = cpu.clock() + cfg.latency(me, q);
                let this = Rc::clone(self);
                self.sim()
                    .call_at_for(ProcId::new(q), arrive.max(self.sim().now()), move || {
                        this.install_copy(q, block);
                    })
                    .expect("arrival is clamped to the present");
            }
            if block_raw == last {
                break;
            }
            block_raw += block_bytes;
        }
    }

    // ----- bulk-update extension --------------------------------------------

    /// Publishes `[ga, ga + bytes)` to all current sharers under the
    /// bulk-update protocol (Section 5.3.4): one data message per
    /// (block, consumer) pair instead of the invalidate/miss 4-message
    /// pattern. A no-op charge-wise under the invalidate protocol.
    pub async fn bulk_publish(self: &Rc<Self>, cpu: &Cpu, ga: GAddr, bytes: u64) {
        if self.config.protocol != ProtocolMode::BulkUpdate || bytes == 0 {
            return;
        }
        cpu.resync().await;
        let cfg = &self.config;
        let me = cpu.id().index();
        let block_bytes = cfg.arch.cache.block_bytes;
        let first = ga.raw() & !(block_bytes - 1);
        let last = (ga.raw() + bytes - 1) & !(block_bytes - 1);
        let mut block_raw = first;
        loop {
            let block = GAddr::from_raw(block_raw);
            let h = block.node();
            if let DirState::Shared(s) = self.dir_state(h, block) {
                let consumers = s.iter().filter(|&o| o != me).count() as u64;
                if consumers > 0 {
                    cpu.compute(cfg.dir_base);
                    cpu.charge(Kind::NetAccess, consumers * cfg.dir_send_msg);
                    cpu.count(Counter::BytesData, consumers * cfg.data_msg_bytes);
                    cpu.count(Counter::BytesControl, consumers * cfg.ctrl_msg_bytes);
                    cpu.count(Counter::MessagesSent, consumers);
                }
            }
            if block_raw == last {
                break;
            }
            block_raw += block_bytes;
        }
    }

    // ----- invariants ---------------------------------------------------------

    /// Checks the protocol's cache/directory invariants and returns a
    /// description of every violation (empty when coherent):
    ///
    /// * a node holding a valid shared line must be listed by the home
    ///   directory (as a sharer or as the exclusive owner),
    /// * a dirty shared line implies exclusive ownership,
    /// * an exclusive owner in the directory must not coexist with other
    ///   holders.
    pub fn coherence_violations(&self) -> Vec<String> {
        let nodes = self.nodes.borrow();
        let mut out = Vec::new();
        for (n, node) in nodes.iter().enumerate() {
            for (raw, state) in node.cache.resident() {
                let ga = GAddr::from_raw(raw);
                if ga.segment() != Segment::Shared {
                    continue;
                }
                let dir = nodes[ga.node()].dir.get(ga);
                let listed = match dir {
                    DirState::Uncached => false,
                    DirState::Shared(s) => s.contains(n),
                    DirState::Exclusive(o) => o == n,
                };
                if !listed {
                    out.push(format!(
                        "node {n} holds {ga:?} ({state:?}) but the directory says {dir:?}"
                    ));
                }
                if state == wwt_mem::LineState::Dirty && dir != DirState::Exclusive(n) {
                    out.push(format!(
                        "node {n} holds {ga:?} dirty but the directory says {dir:?}"
                    ));
                }
            }
        }
        out
    }

    // ----- barrier ------------------------------------------------------------

    /// Waits at the machine's hardware barrier.
    pub async fn barrier(&self, cpu: &Cpu) {
        self.barrier.wait(cpu, Kind::BarrierWait).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_sim::{Engine, ProcId, Scope, SimConfig};

    fn setup(n: usize) -> (Engine, Rc<SmMachine>) {
        let e = Engine::new(n, SimConfig::default());
        let m = SmMachine::new(&e, SmConfig::default());
        (e, m)
    }

    #[test]
    fn gmalloc_round_robins_across_nodes() {
        let (_e, m) = setup(4);
        let homes: Vec<usize> = (0..8).map(|_| m.gmalloc(0, 64, 8).node()).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn local_policy_allocates_on_requested_node() {
        let (_e, m) = setup(4);
        let a = m.gmalloc_on(2, 64, 8);
        assert_eq!(a.node(), 2);
        assert_eq!(a.segment(), Segment::Shared);
    }

    #[test]
    fn first_shared_read_misses_then_hits() {
        let (mut e, m) = setup(2);
        let x = m.gmalloc_on(1, 8, 8);
        m.poke_f64(x, 6.5);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let v = m0.read_f64(&c0, x).await;
            assert_eq!(v, 6.5);
            let stall = c0.clock();
            // tlb miss 20 + remote miss: 19 + req 100 + occupancy 23 + resp 100
            assert_eq!(stall, 262);
            let v2 = m0.read_f64(&c0, x).await;
            assert_eq!(v2, 6.5);
            assert_eq!(c0.clock(), stall, "second read must hit");
        });
        let r = e.run();
        let p = r.proc(ProcId::new(0));
        assert_eq!(p.counters.get(Counter::ShMissesRemote), 1);
        assert_eq!(p.matrix.by_kind(Kind::ShMissRemote), 242);
        // request 8 + response 40 bytes
        assert_eq!(p.counters.get(Counter::BytesControl), 16);
        assert_eq!(p.counters.get(Counter::BytesData), 32);
    }

    #[test]
    fn local_shared_miss_is_cheaper_than_remote() {
        let (mut e, m) = setup(2);
        let local = m.gmalloc_on(0, 8, 8);
        let remote = m.gmalloc_on(1, 8, 8);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            let t0 = c0.clock();
            m0.read_f64(&c0, local).await;
            let local_cost = c0.clock() - t0;
            let t1 = c0.clock();
            m0.read_f64(&c0, remote).await;
            let remote_cost = c0.clock() - t1;
            assert!(local_cost < remote_cost, "{local_cost} !< {remote_cost}");
            // tlb miss 20 + local: 19 + 10 + 23 + 10 = 82
            assert_eq!(local_cost, 82);
        });
        let r = e.run();
        assert_eq!(
            r.proc(ProcId::new(0)).counters.get(Counter::ShMissesLocal),
            1
        );
    }

    #[test]
    fn producer_consumer_costs_four_messages_per_update() {
        // The EM3D pathology: producer writes, consumer reads, repeatedly.
        let (mut e, m) = setup(2);
        let x = m.gmalloc_on(0, 8, 8);
        let rounds = 10u64;
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            for k in 0..rounds {
                m0.write_f64(&c0, x, k as f64).await;
                m0.barrier(&c0).await;
                m0.barrier(&c0).await;
            }
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            for k in 0..rounds {
                m1.barrier(&c1).await;
                let v = m1.read_f64(&c1, x).await;
                assert_eq!(v, k as f64);
                m1.barrier(&c1).await;
            }
        });
        let r = e.run();
        let producer = r.proc(ProcId::new(0));
        let consumer = r.proc(ProcId::new(1));
        // After the first round each write upgrades (write fault w/
        // invalidation) and each read misses remotely.
        assert_eq!(consumer.counters.get(Counter::ShMissesRemote), rounds);
        assert!(producer.counters.get(Counter::WriteFaults) >= rounds - 1);
    }

    #[test]
    fn write_fault_counts_upgrade_without_data_transfer() {
        let (mut e, m) = setup(1);
        let x = m.gmalloc_on(0, 8, 8);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            m0.read_f64(&c0, x).await; // miss, Clean
            m0.write_f64(&c0, x, 1.0).await; // upgrade: write fault
            m0.write_f64(&c0, x, 2.0).await; // hit dirty: free
        });
        let r = e.run();
        let p = r.proc(ProcId::new(0));
        assert_eq!(p.counters.get(Counter::WriteFaults), 1);
        assert_eq!(p.counters.get(Counter::ShMissesLocal), 1);
        assert!(p.matrix.by_kind(Kind::WriteFault) > 0);
    }

    #[test]
    fn directory_contention_queues_requests() {
        // Many processors reading distinct cold blocks homed on node 0 at
        // the same time must see queuing delay beyond the uncontended cost.
        let n = 16;
        let (mut e, m) = setup(n);
        let base = m.gmalloc_on(0, (n * 32) as u64, 32);
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            e.spawn(p, async move {
                let my = base.offset_by((p.index() * 32) as u64);
                m.read_f64(&cpu, my).await;
            });
        }
        let r = e.run();
        let uncontended = 242; // from first_shared_read_misses_then_hits
        let slowest = (0..n).map(|i| r.proc(ProcId::new(i)).clock).max().unwrap();
        assert!(
            slowest > uncontended + 200,
            "expected queuing delay, slowest {slowest}"
        );
    }

    #[test]
    fn flag_wait_wakes_on_write_and_recharges_miss() {
        let (mut e, m) = setup(2);
        let flag = m.gmalloc_on(1, 8, 8);
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            c0.compute(5_000);
            m0.write_u64(&c0, flag, 1).await;
        });
        let m1 = Rc::clone(&m);
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let _sync = c1.scope(Scope::Sync);
            let v = m1.flag_wait(&c1, flag, 1, Kind::Wait).await;
            assert_eq!(v, 1);
            assert!(c1.clock() > 5_000);
        });
        let r = e.run();
        let waiter = r.proc(ProcId::new(1));
        assert!(waiter.matrix.get(Scope::Sync, Kind::Wait) > 4_000);
        // Initial read + re-read after the writer's invalidation; the flag
        // is homed on the waiter's own node, so these are local misses.
        assert!(waiter.counters.get(Counter::ShMissesLocal) >= 2);
    }

    #[test]
    fn swap_is_atomic_and_returns_old_value() {
        let (mut e, m) = setup(2);
        let x = m.gmalloc_on(0, 8, 8);
        let done = Rc::new(Cell::new(0u64));
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            let done = Rc::clone(&done);
            e.spawn(p, async move {
                let old = m.swap_u64(&cpu, x, (p.index() + 1) as u64).await;
                done.set(done.get() + old);
            });
        }
        e.run();
        // One of the two swaps saw 0, the other saw the first one's value.
        assert!(done.get() == 1 || done.get() == 2);
    }

    #[test]
    fn bulk_update_mode_elides_write_faults() {
        let e = Engine::new(2, SimConfig::default());
        let cfg = SmConfig {
            protocol: ProtocolMode::BulkUpdate,
            ..SmConfig::default()
        };
        let m = SmMachine::new(&e, cfg);
        let x = m.gmalloc_on(0, 8, 8);
        let mut e = e;
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            m0.read_f64(&c0, x).await;
            for k in 0..10 {
                m0.write_f64(&c0, x, k as f64).await;
                m0.bulk_publish(&c0, x, 8).await;
            }
        });
        let r = e.run();
        assert_eq!(r.proc(ProcId::new(0)).counters.get(Counter::WriteFaults), 0);
    }
}
