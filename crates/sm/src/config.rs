//! Shared-memory machine parameters (Tables 1 and 3 of the paper).

use wwt_arch::ArchParams;
use wwt_sim::{Cycles, SimConfig};

/// Shared-data allocation policy for `gmalloc`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AllocPolicy {
    /// Round-robin across nodes per allocation (the paper's default; the
    /// source of EM3D's remote-miss pathology in Table 15).
    RoundRobin,
    /// Allocate on the requesting node (the Table-17 variant that cuts
    /// EM3D-SM remote misses from 97% to 10% of misses).
    Local,
}

/// Coherence protocol variant.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtocolMode {
    /// Full-map write-invalidate `Dir_nNB` (the paper's machine).
    Invalidate,
    /// The Section 5.3.4 extension: writes push updates to sharers instead
    /// of invalidating them, turning the 4-message producer-consumer
    /// pattern into single update messages.
    BulkUpdate,
}

/// Configuration of the shared-memory machine.
///
/// The hardware base both machines share (Table 1: cache, TLB, network,
/// barrier, DRAM) lives in [`ArchParams`]; this struct adds the
/// SM-specific coherence-protocol costs (Table 3).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SmConfig {
    /// Engine-level settings (quantum, seed, profiling).
    pub sim: SimConfig,
    /// The shared hardware base (Table 1), common to both machines. The
    /// Table-16 EM3D variant sets `cache` to
    /// [`wwt_mem::CacheGeometry::one_megabyte`].
    pub arch: ArchParams,
    /// Processor-side cost of a shared cache miss, excluding the network
    /// round trip and replacement (Table 3: 19).
    pub shared_miss: Cycles,
    /// Cache-side cost of handling an invalidation (Table 3: 3).
    pub invalidate: Cycles,
    /// Replacement cost of a shared clean block (Table 3: 5).
    pub repl_shared_clean: Cycles,
    /// Replacement cost of a shared dirty block (Table 3: 13).
    pub repl_shared_dirty: Cycles,
    /// Directory occupancy base (Table 3: 10).
    pub dir_base: Cycles,
    /// Additional directory occupancy when a cache block is received
    /// (Table 3: +8).
    pub dir_recv_block: Cycles,
    /// Additional directory occupancy per protocol message sent
    /// (Table 3: +5).
    pub dir_send_msg: Cycles,
    /// Additional directory occupancy when a cache block is sent
    /// (Table 3: +8).
    pub dir_send_block: Cycles,
    /// Bytes of a protocol message without data (header only).
    pub ctrl_msg_bytes: u64,
    /// Data payload bytes of a block-carrying message (the block size; the
    /// message totals `ctrl_msg_bytes + block` = 40 bytes as in Section 4).
    pub data_msg_bytes: u64,
    /// Allocation policy for `gmalloc`.
    pub alloc_policy: AllocPolicy,
    /// Coherence protocol variant.
    pub protocol: ProtocolMode,
    /// Enable the Stache policy (Reinhardt, Larus & Wood, cited in
    /// Section 5.3.4): shared blocks evicted from the cache are kept in
    /// local memory instead of returning to their home node, so re-misses
    /// refill at local-DRAM cost and dirty evictions send no write-back
    /// message.
    pub stache: bool,
    /// Instructions charged per software-reduction combine step.
    pub reduce_combine: Cycles,
    /// Instructions charged per lock/flag bookkeeping step.
    pub sync_overhead: Cycles,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            sim: SimConfig::default(),
            arch: ArchParams::default(),
            shared_miss: 19,
            invalidate: 3,
            repl_shared_clean: 5,
            repl_shared_dirty: 13,
            dir_base: 10,
            dir_recv_block: 8,
            dir_send_msg: 5,
            dir_send_block: 8,
            ctrl_msg_bytes: 8,
            data_msg_bytes: 32,
            alloc_policy: AllocPolicy::RoundRobin,
            protocol: ProtocolMode::Invalidate,
            stache: false,
            reduce_combine: 12,
            sync_overhead: 10,
        }
    }
}

impl SmConfig {
    /// The default machine on an explicit hardware base and engine
    /// configuration — the entry point for architecture sweeps.
    pub fn with_arch(arch: ArchParams, sim: SimConfig) -> Self {
        SmConfig {
            sim,
            arch,
            ..SmConfig::default()
        }
    }

    /// Full cost of a private cache miss (miss handling plus DRAM).
    pub fn priv_miss_total(&self) -> Cycles {
        self.arch.priv_miss_total()
    }

    /// One-way latency between nodes `a` and `b` (delegates to the
    /// shared [`ArchParams::latency`] implementation, so the MP and SM
    /// machines can never drift on the one number the paper holds
    /// constant).
    pub fn latency(&self, a: usize, b: usize) -> Cycles {
        self.arch.latency(a, b)
    }

    /// Total bytes of a block-carrying protocol message.
    pub fn block_msg_bytes(&self) -> u64 {
        self.ctrl_msg_bytes + self.data_msg_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table_3() {
        let c = SmConfig::default();
        assert_eq!(c.arch.msg_to_self, 10);
        assert_eq!(c.shared_miss, 19);
        assert_eq!(c.invalidate, 3);
        assert_eq!(c.arch.replacement, 1);
        assert_eq!(c.repl_shared_clean, 5);
        assert_eq!(c.repl_shared_dirty, 13);
        assert_eq!(c.dir_base, 10);
        assert_eq!(c.dir_recv_block, 8);
        assert_eq!(c.dir_send_msg, 5);
        assert_eq!(c.dir_send_block, 8);
        assert_eq!(c.block_msg_bytes(), 40);
    }

    #[test]
    fn latency_distinguishes_self_messages() {
        let c = SmConfig::default();
        assert_eq!(c.latency(3, 3), 10);
        assert_eq!(c.latency(3, 4), 100);
    }
}
