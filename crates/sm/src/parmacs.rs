//! The parmacs-style programming layer: start-up gate (`create`),
//! MCS locks, and MCS-style software reductions / broadcast.
//!
//! Shared-memory programs in the paper use the parmacs macros: `gmalloc`
//! for shared allocation (on [`crate::SmMachine`]), `create(f)`
//! to fork onto all nodes after node 0's serial initialization, MCS locks
//! for mutual exclusion, and the hardware barrier. Gauss-SM additionally
//! uses reductions built like the upward phase of an MCS barrier, and
//! broadcasts values by writing them and letting every processor read
//! after a barrier.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use wwt_mem::GAddr;
use wwt_sim::{Counter, Cpu, Cycles, Kind, Mark, Metric, ProcId, Scope, TraceWhat, WaitCell};

use crate::machine::SmMachine;

/// The `create(f)` start-up gate.
///
/// In the parmacs model only node 0 executes at first; after preliminary
/// serial initialization it calls `create(f)`, which starts all other
/// nodes. Time the other nodes spend blocked here is the paper's
/// "Start-up Wait" row (80M cycles in MSE-SM, Table 5).
pub struct CreateGate {
    cells: RefCell<Vec<WaitCell>>,
    released_at: Cell<Option<u64>>,
}

impl fmt::Debug for CreateGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CreateGate")
            .field("released_at", &self.released_at.get())
            .finish()
    }
}

impl Default for CreateGate {
    fn default() -> Self {
        Self::new()
    }
}

impl CreateGate {
    /// Creates an unreleased gate.
    pub fn new() -> Self {
        CreateGate {
            cells: RefCell::new(Vec::new()),
            released_at: Cell::new(None),
        }
    }

    /// Blocks a non-zero node until node 0 releases the gate; the wait is
    /// charged to the start-up scope. A node that arrives after the release
    /// still starts no earlier than the release time (in the parmacs model
    /// the other nodes do not exist before `create`).
    pub async fn wait(&self, cpu: &Cpu) {
        let _sc = cpu.scope(Scope::Startup);
        if let Some(t) = self.released_at.get() {
            cpu.wait_until(t, Kind::Wait);
            return;
        }
        let cell = WaitCell::new();
        self.cells.borrow_mut().push(cell.clone());
        cell.wait(cpu, Kind::Wait).await;
    }

    /// Releases the gate (node 0, after serial initialization).
    pub fn release(&self, m: &SmMachine, cpu: &Cpu) {
        self.released_at.set(Some(cpu.clock()));
        for c in self.cells.borrow_mut().drain(..) {
            c.complete(m.sim(), cpu.clock());
        }
    }
}

/// An MCS queue lock over shared memory.
///
/// The cost structure follows Mellor-Crummey & Scott: the tail pointer is
/// swapped remotely on acquire; a blocked acquirer spins on a *locally
/// homed* queue node, so a release performs exactly one remote write to
/// hand the lock off, and the wakeing spinner re-reads its local flag.
pub struct McsLock {
    tail: GAddr,
    qnodes: Vec<GAddr>,
    holder: Cell<Option<ProcId>>,
    queue: RefCell<VecDeque<(ProcId, WaitCell)>>,
    /// Holder's clock at acquisition (valid while `holder` is `Some`);
    /// powers the lock-hold-time histogram.
    held_since: Cell<Cycles>,
}

impl fmt::Debug for McsLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McsLock")
            .field("holder", &self.holder.get())
            .field("waiters", &self.queue.borrow().len())
            .finish()
    }
}

impl McsLock {
    /// Allocates a lock: the tail word in shared memory (round-robin home)
    /// and one queue node per processor, homed locally.
    pub fn new(m: &SmMachine) -> Self {
        let n = m.nprocs();
        McsLock {
            tail: m.gmalloc(0, 8, 8),
            qnodes: (0..n).map(|p| m.gmalloc_on(p, 8, 8)).collect(),
            holder: Cell::new(None),
            queue: RefCell::new(VecDeque::new()),
            held_since: Cell::new(0),
        }
    }

    /// Acquires the lock, blocking (MCS-spinning) if it is held.
    pub async fn acquire(&self, m: &Rc<SmMachine>, cpu: &Cpu) {
        let _sc = cpu.scope(Scope::Lock);
        cpu.count(Counter::LockAcquires, 1);
        let entry = cpu.clock();
        cpu.compute(m.config().sync_overhead);
        // Swap ourselves onto the tail (remote write transaction).
        let _prev = m
            .swap_u64(cpu, self.tail, cpu.id().index() as u64 + 1)
            .await;
        if self.holder.get().is_none() {
            self.holder.set(Some(cpu.id()));
            self.trace_acquired(cpu, entry);
            return;
        }
        let cell = WaitCell::new();
        self.queue.borrow_mut().push_back((cpu.id(), cell.clone()));
        cell.wait(cpu, Kind::LockWait).await;
        // Woken by the releaser's remote write to our (locally homed)
        // queue node: the spin re-read is a cheap local transaction.
        m.read_u64(cpu, self.qnodes[cpu.id().index()]).await;
        debug_assert_eq!(self.holder.get(), Some(cpu.id()));
        self.trace_acquired(cpu, entry);
    }

    fn trace_acquired(&self, cpu: &Cpu, entry: Cycles) {
        self.held_since.set(cpu.clock());
        if cpu.tracing() {
            cpu.trace(TraceWhat::Instant(Mark::LockAcquire));
            cpu.sim()
                .trace_sample(Metric::LockWait, cpu.clock() - entry);
        }
    }

    /// Releases the lock, handing it to the oldest waiter if any.
    ///
    /// # Panics
    ///
    /// Panics if the caller does not hold the lock.
    pub async fn release(&self, m: &Rc<SmMachine>, cpu: &Cpu) {
        assert_eq!(
            self.holder.get(),
            Some(cpu.id()),
            "release by non-holder {}",
            cpu.id()
        );
        let _sc = cpu.scope(Scope::Lock);
        if cpu.tracing() {
            cpu.trace(TraceWhat::Instant(Mark::LockRelease));
            cpu.sim()
                .trace_sample(Metric::LockHold, cpu.clock() - self.held_since.get());
        }
        cpu.compute(m.config().sync_overhead);
        let next = self.queue.borrow_mut().pop_front();
        match next {
            Some((succ, cell)) => {
                self.holder.set(Some(succ));
                // Terminate the successor's spin with one remote write.
                m.write_u64(cpu, self.qnodes[succ.index()], 1).await;
                cell.complete(m.sim(), cpu.clock());
            }
            None => {
                self.holder.set(None);
                // Reset the tail (compare-and-swap in real MCS).
                m.swap_u64(cpu, self.tail, 0).await;
            }
        }
    }
}

fn binomial_children(v: usize, n: usize) -> Vec<usize> {
    let lsb = if v == 0 {
        usize::MAX
    } else {
        v & v.wrapping_neg()
    };
    let mut kids = Vec::new();
    let mut bit = 1usize;
    while bit < lsb && v + bit < n {
        kids.push(v + bit);
        bit <<= 1;
    }
    kids
}

/// Shared-memory software collectives: MCS-style tree reductions and
/// write/barrier/read broadcast.
///
/// Each processor owns a locally homed (value, tag, generation) slot; a
/// reduction walks a binomial tree rooted at node 0, parents spinning on
/// their children's generation flags (each spin terminated by the child's
/// flag write, costing the invalidate + re-read pattern).
pub struct SmCollectives {
    vals: Vec<GAddr>,
    gens: Vec<GAddr>,
    // Two broadcast slots, used alternately. The barrier inside each
    // broadcast keeps processors within one broadcast of each other, so
    // double buffering suffices to keep the next root's write from
    // clobbering a value a lagging processor has yet to read.
    bc_val: [GAddr; 2],
    my_gen: RefCell<Vec<u64>>,
    my_bc: RefCell<Vec<u64>>,
}

impl fmt::Debug for SmCollectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmCollectives")
            .field("parties", &self.vals.len())
            .finish()
    }
}

impl SmCollectives {
    /// Allocates the collective slots for all processors of `m`.
    pub fn new(m: &SmMachine) -> Self {
        let n = m.nprocs();
        SmCollectives {
            vals: (0..n).map(|p| m.gmalloc_on(p, 16, 32)).collect(),
            gens: (0..n).map(|p| m.gmalloc_on(p, 8, 32)).collect(),
            bc_val: [m.gmalloc_on(0, 8, 32), m.gmalloc_on(0, 8, 32)],
            my_gen: RefCell::new(vec![0; n]),
            my_bc: RefCell::new(vec![0; n]),
        }
    }

    /// MCS-style maximum reduction of `(value, rank)` pairs to node 0.
    /// Returns `Some((max, argmax_rank))` on node 0, `None` elsewhere.
    pub async fn reduce_max_f64_index(
        &self,
        m: &Rc<SmMachine>,
        cpu: &Cpu,
        value: f64,
        rank: usize,
    ) -> Option<(f64, usize)> {
        self.reduce(m, cpu, value, rank as u64, |a, b| {
            if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
                b
            } else {
                a
            }
        })
        .await
    }

    /// MCS-style sum reduction to node 0.
    pub async fn reduce_sum_f64(&self, m: &Rc<SmMachine>, cpu: &Cpu, value: f64) -> Option<f64> {
        self.reduce(m, cpu, value, 0, |a, b| (a.0 + b.0, 0))
            .await
            .map(|(v, _)| v)
    }

    async fn reduce(
        &self,
        m: &Rc<SmMachine>,
        cpu: &Cpu,
        value: f64,
        tag: u64,
        combine: impl Fn((f64, u64), (f64, u64)) -> (f64, u64),
    ) -> Option<(f64, usize)> {
        let _sc = cpu.scope(Scope::Reduction);
        cpu.count(Counter::Reductions, 1);
        let me = cpu.id().index();
        let n = m.nprocs();
        let gen = {
            let mut g = self.my_gen.borrow_mut();
            g[me] += 1;
            g[me]
        };
        let mut acc = (value, tag);
        for c in binomial_children(me, n) {
            m.flag_wait(cpu, self.gens[c], gen, Kind::Wait).await;
            let v = m.read_f64(cpu, self.vals[c]).await;
            let t = m.read_u64(cpu, self.vals[c].offset_by(8)).await;
            cpu.compute(m.config().reduce_combine);
            acc = combine(acc, (v, t));
        }
        if me == 0 {
            Some((acc.0, acc.1 as usize))
        } else {
            m.write_f64(cpu, self.vals[me], acc.0).await;
            m.write_u64(cpu, self.vals[me].offset_by(8), acc.1).await;
            m.write_u64(cpu, self.gens[me], gen).await;
            None
        }
    }

    /// The Gauss-SM broadcast idiom: `root` writes the value, everyone
    /// waits at the barrier (so the write and its invalidations complete),
    /// then everyone reads it — the reads contend at the home directory,
    /// which is exactly the effect Table 11 measures.
    pub async fn bcast_f64(&self, m: &Rc<SmMachine>, cpu: &Cpu, root: usize, value: f64) -> f64 {
        let slot = {
            let mut counts = self.my_bc.borrow_mut();
            let me = cpu.id().index();
            let c = counts[me];
            counts[me] += 1;
            self.bc_val[(c % 2) as usize]
        };
        if cpu.id().index() == root {
            m.write_f64(cpu, slot, value).await;
        }
        m.barrier(cpu).await;
        m.read_f64(cpu, slot).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmConfig;
    use wwt_sim::{Engine, SimConfig};

    #[test]
    fn create_gate_charges_startup_wait() {
        let mut e = Engine::new(3, SimConfig::default());
        let m = SmMachine::new(&e, SmConfig::default());
        let gate = Rc::new(CreateGate::new());
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let gate = Rc::clone(&gate);
            let cpu = e.cpu(p);
            e.spawn(p, async move {
                if p.index() == 0 {
                    cpu.compute(10_000); // serial init
                    gate.release(&m, &cpu);
                } else {
                    gate.wait(&cpu).await;
                    assert_eq!(cpu.clock(), 10_000);
                }
            });
        }
        let r = e.run();
        assert_eq!(
            r.proc(ProcId::new(1))
                .matrix
                .get(Scope::Startup, Kind::Wait),
            10_000
        );
        assert_eq!(r.proc(ProcId::new(0)).matrix.by_scope(Scope::Startup), 0);
    }

    #[test]
    fn mcs_lock_provides_mutual_exclusion() {
        let n = 8;
        let rounds = 5;
        let mut e = Engine::new(n, SimConfig::default());
        let m = SmMachine::new(&e, SmConfig::default());
        let lock = Rc::new(McsLock::new(&m));
        let counter = m.gmalloc_on(0, 8, 8);
        let in_cs = Rc::new(Cell::new(false));
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let lock = Rc::clone(&lock);
            let cpu = e.cpu(p);
            let in_cs = Rc::clone(&in_cs);
            e.spawn(p, async move {
                for _ in 0..rounds {
                    lock.acquire(&m, &cpu).await;
                    assert!(!in_cs.get(), "two holders in the critical section");
                    in_cs.set(true);
                    let v = m.read_u64(&cpu, counter).await;
                    cpu.compute(50);
                    m.write_u64(&cpu, counter, v + 1).await;
                    in_cs.set(false);
                    lock.release(&m, &cpu).await;
                }
            });
        }
        let r = e.run();
        assert_eq!(m.peek_u64(counter), (n * rounds) as u64);
        let total_acquires: u64 = (0..n)
            .map(|i| r.proc(ProcId::new(i)).counters.get(Counter::LockAcquires))
            .sum();
        assert_eq!(total_acquires, (n * rounds) as u64);
        // Contended acquires charge LockWait.
        let lock_wait: u64 = (0..n)
            .map(|i| r.proc(ProcId::new(i)).matrix.by_kind(Kind::LockWait))
            .sum();
        assert!(lock_wait > 0);
    }

    #[test]
    fn reduction_finds_global_max_and_rank() {
        let n = 16;
        let mut e = Engine::new(n, SimConfig::default());
        let m = SmMachine::new(&e, SmConfig::default());
        let coll = Rc::new(SmCollectives::new(&m));
        let result = Rc::new(Cell::new((0.0f64, 0usize)));
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let coll = Rc::clone(&coll);
            let cpu = e.cpu(p);
            let result = Rc::clone(&result);
            e.spawn(p, async move {
                // values 1..=n, max at rank n-1
                let v = (p.index() + 1) as f64;
                if let Some(r) = coll.reduce_max_f64_index(&m, &cpu, v, p.index()).await {
                    result.set(r);
                }
                m.barrier(&cpu).await;
            });
        }
        e.run();
        assert_eq!(result.get(), (n as f64, n - 1));
    }

    #[test]
    fn repeated_reductions_use_generations() {
        let n = 4;
        let mut e = Engine::new(n, SimConfig::default());
        let m = SmMachine::new(&e, SmConfig::default());
        let coll = Rc::new(SmCollectives::new(&m));
        let sums = Rc::new(RefCell::new(Vec::new()));
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let coll = Rc::clone(&coll);
            let cpu = e.cpu(p);
            let sums = Rc::clone(&sums);
            e.spawn(p, async move {
                for round in 0..5u64 {
                    let v = (round * n as u64) as f64 + p.index() as f64;
                    if let Some(s) = coll.reduce_sum_f64(&m, &cpu, v).await {
                        sums.borrow_mut().push(s);
                    }
                    m.barrier(&cpu).await;
                }
            });
        }
        e.run();
        let expect: Vec<f64> = (0..5u64)
            .map(|r| (0..n as u64).map(|p| (r * n as u64 + p) as f64).sum())
            .collect();
        assert_eq!(*sums.borrow(), expect);
    }

    #[test]
    fn broadcast_reaches_every_node() {
        let n = 8;
        let mut e = Engine::new(n, SimConfig::default());
        let m = SmMachine::new(&e, SmConfig::default());
        let coll = Rc::new(SmCollectives::new(&m));
        let got = Rc::new(RefCell::new(vec![0.0f64; n]));
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let coll = Rc::clone(&coll);
            let cpu = e.cpu(p);
            let got = Rc::clone(&got);
            e.spawn(p, async move {
                let v = coll
                    .bcast_f64(&m, &cpu, 3, 12.5 * ((p.index() == 3) as u64 as f64))
                    .await;
                got.borrow_mut()[p.index()] = v;
            });
        }
        e.run();
        assert!(got.borrow().iter().all(|&v| v == 12.5));
    }

    #[test]
    #[should_panic(expected = "release by non-holder")]
    fn release_by_non_holder_panics() {
        let mut e = Engine::new(2, SimConfig::default());
        let m = SmMachine::new(&e, SmConfig::default());
        let lock = Rc::new(McsLock::new(&m));
        let c0 = e.cpu(ProcId::new(0));
        let l0 = Rc::clone(&lock);
        let m0 = Rc::clone(&m);
        e.spawn(ProcId::new(0), async move {
            l0.release(&m0, &c0).await;
        });
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let _ = c1;
        });
        e.run();
    }
}
