//! The full-map write-invalidate directory protocol (`Dir_nNB`).
//!
//! Transactions are simulated message-by-message on the event queue with
//! the costs of Table 3: a miss sends a request to the block's home node,
//! whose directory (a server with *occupancy*, so contended requests
//! queue) possibly recalls or invalidates other caches before responding.
//! The requesting processor stalls for the whole transaction (the machine
//! is sequentially consistent).

use std::fmt;
use std::rc::Rc;

use wwt_mem::{GAddr, LineState};
use wwt_sim::{Counter, Cpu, Kind, Mark, Metric, ProcId, TraceWhat, WaitCell, WaitTarget};

use crate::machine::SmMachine;

/// A compact set of sharer processor ids (up to 128 nodes).
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct Sharers(u128);

impl Sharers {
    /// The empty set.
    pub fn empty() -> Self {
        Sharers(0)
    }

    /// A singleton set.
    pub fn one(p: usize) -> Self {
        let mut s = Sharers(0);
        s.insert(p);
        s
    }

    /// Inserts a processor.
    pub fn insert(&mut self, p: usize) {
        assert!(p < 128, "Dir_nNB full map supports up to 128 nodes");
        self.0 |= 1 << p;
    }

    /// Removes a processor.
    pub fn remove(&mut self, p: usize) {
        self.0 &= !(1u128 << p);
    }

    /// Membership test.
    pub fn contains(&self, p: usize) -> bool {
        (self.0 >> p) & 1 == 1
    }

    /// Number of sharers.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..128).filter(move |&p| self.contains(p))
    }
}

impl fmt::Debug for Sharers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Directory state of one cache block at its home node.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum DirState {
    /// No cached copies exist.
    #[default]
    Uncached,
    /// Read-only copies exist at the given nodes.
    Shared(Sharers),
    /// One node holds the block exclusively (possibly dirty).
    Exclusive(usize),
}

/// A home node's directory: per-block [`DirState`], directly indexed by
/// block number.
///
/// Shared offsets come from a bump allocator, so a node's shared blocks
/// are dense from offset 0 — a flat vector beats a hash map on the
/// hottest path in the whole simulator (every shared cache *hit* probes
/// the directory to resolve the race with in-flight invalidations).
/// Unindexed blocks read as [`DirState::Uncached`]; the vector grows on
/// first write past its end.
pub(crate) struct Directory {
    block_shift: u32,
    states: Vec<DirState>,
}

impl Directory {
    pub(crate) fn new(block_bytes: u64) -> Self {
        Directory {
            block_shift: block_bytes.trailing_zeros(),
            states: Vec::new(),
        }
    }

    #[inline]
    fn index(&self, block: GAddr) -> usize {
        (block.offset() >> self.block_shift) as usize
    }

    #[inline]
    pub(crate) fn get(&self, block: GAddr) -> DirState {
        self.states
            .get(self.index(block))
            .copied()
            .unwrap_or_default()
    }

    pub(crate) fn set(&mut self, block: GAddr, st: DirState) {
        let idx = self.index(block);
        if idx >= self.states.len() {
            self.states.resize(idx + 1, DirState::Uncached);
        }
        self.states[idx] = st;
    }
}

impl SmMachine {
    /// Runs a coherence transaction for `block` on behalf of processor
    /// `cpu`, stalling it until the response arrives. `write` selects a
    /// read-shared or write-exclusive request. The stall is charged to
    /// `kind`.
    pub(crate) async fn transact(
        self: &Rc<Self>,
        cpu: &Cpu,
        block: GAddr,
        write: bool,
        kind: Kind,
    ) {
        cpu.resync().await;
        let p = cpu.id().index();
        let h = block.node();
        let cfg = self.config();
        let start = cpu.clock();
        if cpu.tracing() {
            cpu.trace(TraceWhat::Instant(Mark::MissStart { kind }));
        }
        // Processor-side miss handling (Table 3: 19 cycles).
        cpu.charge(kind, cfg.shared_miss);
        // Fault-plan network jitter: the SM machine has no packets to drop,
        // so perturbation degrades into extra shared-miss service latency.
        let jitter = self.sim().fault_miss_jitter();
        if jitter > 0 {
            cpu.charge(kind, jitter);
        }
        // Request message.
        cpu.count(Counter::BytesControl, cfg.ctrl_msg_bytes);
        let cell = self.cell_pool.take();
        let arrive = cpu.clock() + cfg.latency(p, h);
        let this = Rc::clone(self);
        let cell2 = cell.clone();
        self.sim()
            .call_at_for(ProcId::new(h), arrive.max(self.sim().now()), move || {
                this.dir_service(ProcId::new(p), block, write, cell2)
            })
            .expect("arrival is clamped to the present");
        cell.wait_labeled(
            cpu,
            kind,
            "coherence reply",
            WaitTarget::Proc(ProcId::new(h)),
        )
        .await;
        self.cell_pool.put(cell);
        if cpu.tracing() {
            cpu.trace(TraceWhat::Instant(Mark::MissEnd { kind }));
            cpu.sim()
                .trace_sample(Metric::ShMissService, cpu.clock() - start);
        }
    }

    /// Directory service for one request, at the home node. Computes the
    /// full message path (occupancy, recalls, invalidations,
    /// acknowledgements) and completes `cell` at the response time.
    fn dir_service(self: &Rc<Self>, req: ProcId, block: GAddr, write: bool, cell: WaitCell) {
        let cfg = self.config();
        let p = req.index();
        let h = block.node();
        let now = self.sim().now();
        self.sim().count(ProcId::new(h), Counter::DirRequests, 1);

        let (state, busy) = self.dir_read(h, block);
        let ts = now.max(busy);

        // Helper to attribute traffic to the requester.
        let bytes = |this: &Self, data_msgs: u64, ctrl_msgs: u64| {
            this.sim()
                .count(req, Counter::BytesData, data_msgs * cfg.data_msg_bytes);
            this.sim().count(
                req,
                Counter::BytesControl,
                (data_msgs + ctrl_msgs) * cfg.ctrl_msg_bytes,
            );
        };

        match (write, state) {
            (false, DirState::Uncached) => {
                let occ = cfg.dir_base + cfg.dir_send_msg + cfg.dir_send_block;
                self.dir_write(h, block, DirState::Shared(Sharers::one(p)), ts + occ);
                bytes(self, 1, 0);
                cell.complete(self.sim(), ts + occ + cfg.latency(h, p));
            }
            (false, DirState::Shared(mut s)) => {
                let occ = cfg.dir_base + cfg.dir_send_msg + cfg.dir_send_block;
                s.insert(p);
                self.dir_write(h, block, DirState::Shared(s), ts + occ);
                bytes(self, 1, 0);
                cell.complete(self.sim(), ts + occ + cfg.latency(h, p));
            }
            (_, DirState::Exclusive(o)) if o == p => {
                // The requester re-misses on a block the directory still
                // thinks it owns (its writeback is in flight). Serve as if
                // the block were home.
                let occ = cfg.dir_base + cfg.dir_send_msg + cfg.dir_send_block;
                let st = if write {
                    DirState::Exclusive(p)
                } else {
                    DirState::Shared(Sharers::one(p))
                };
                self.dir_write(h, block, st, ts + occ);
                bytes(self, 1, 0);
                cell.complete(self.sim(), ts + occ + cfg.latency(h, p));
            }
            (_, DirState::Exclusive(o)) => {
                // 4-hop: recall from the owner, write back, then respond.
                // All state changes (cache and directory) apply now, so
                // state serialization follows directory-arrival order; the
                // message-path arithmetic below shapes only the response
                // latency and the directory's future occupancy.
                let occ1 = cfg.dir_base + cfg.dir_send_msg;
                let occ2 = cfg.dir_base + cfg.dir_recv_block + cfg.dir_send_block;
                let recall_at = ts + occ1 + cfg.latency(h, o);
                let wb_at = recall_at + cfg.invalidate + cfg.latency(o, h);
                let ts2 = wb_at.max(ts + occ1);
                if write {
                    self.cache_invalidate(o, block);
                    self.dir_write(h, block, DirState::Exclusive(p), ts2 + occ2);
                } else {
                    self.cache_downgrade(o, block);
                    let mut s = Sharers::one(p);
                    s.insert(o);
                    self.dir_write(h, block, DirState::Shared(s), ts2 + occ2);
                }
                cell.complete(self.sim(), ts2 + occ2 + cfg.latency(h, p));
                // recall (ctrl) + writeback (data) + response (data)
                bytes(self, 2, 1);
            }
            (true, DirState::Uncached) => {
                let occ = cfg.dir_base + cfg.dir_send_msg + cfg.dir_send_block;
                self.dir_write(h, block, DirState::Exclusive(p), ts + occ);
                bytes(self, 1, 0);
                cell.complete(self.sim(), ts + occ + cfg.latency(h, p));
            }
            (true, DirState::Shared(s)) => {
                let upgrade = s.contains(p);
                let k = u64::from(s.count()) - u64::from(upgrade);
                if k == 0 {
                    // Sole sharer: grant ownership without data.
                    let occ = cfg.dir_base + cfg.dir_send_msg;
                    self.dir_write(h, block, DirState::Exclusive(p), ts + occ);
                    bytes(self, 0, 1);
                    cell.complete(self.sim(), ts + occ + cfg.latency(h, p));
                } else {
                    let occ = cfg.dir_base
                        + k * cfg.dir_send_msg
                        + if upgrade {
                            cfg.dir_send_msg
                        } else {
                            cfg.dir_send_block
                        };
                    let mut last_ack = 0;
                    for (i, o) in s.iter().filter(|&o| o != p).enumerate() {
                        let inv_at = ts
                            + cfg.dir_base
                            + (i as u64 + 1) * cfg.dir_send_msg
                            + cfg.latency(h, o);
                        self.cache_invalidate(o, block);
                        last_ack = last_ack.max(inv_at + cfg.invalidate + cfg.latency(o, h));
                    }
                    self.dir_write(h, block, DirState::Exclusive(p), ts + occ);
                    // invalidations + acks (ctrl) + response
                    bytes(
                        self,
                        if upgrade { 0 } else { 1 },
                        2 * k + if upgrade { 1 } else { 0 },
                    );
                    let depart = (ts + occ).max(last_ack);
                    cell.complete(self.sim(), depart + cfg.latency(h, p));
                }
            }
        }
    }

    /// Directory service for a non-binding prefetch: identical to a read
    /// request, except nobody stalls — the line is installed in the
    /// requester's cache when the response arrives.
    pub(crate) fn dir_service_prefetch(self: &Rc<Self>, p: usize, block: GAddr, cell: WaitCell) {
        self.dir_service(ProcId::new(p), block, false, cell.clone());
        let resp = cell
            .completion_time()
            .expect("dir_service completes synchronously");
        let this = Rc::clone(self);
        let sim = Rc::clone(self.sim());
        self.sim()
            .call_at_for(ProcId::new(p), resp.max(self.sim().now()), move || {
                this.install_prefetched(p, block);
                let _ = &sim;
            })
            .expect("response time is clamped to the present");
    }

    /// Installs a prefetched block on arrival; a displaced shared victim
    /// still notifies its home (no processor stall is charged — the
    /// replacement happens off the critical path).
    fn install_prefetched(self: &Rc<Self>, p: usize, block: GAddr) {
        self.clear_pending_prefetch(p, block);
        self.install_copy(p, block);
    }

    /// Installs a clean copy of `block` at `p`, fixing up the directory
    /// for any displaced shared victim (used by prefetch arrivals and
    /// push-broadcast updates).
    pub(crate) fn install_copy(self: &Rc<Self>, p: usize, block: GAddr) {
        let evicted = self.cache_fill_clean(p, block);
        if let Some((victim_raw, state)) = evicted {
            let victim = GAddr::from_raw(victim_raw);
            if victim.segment() == wwt_mem::Segment::Shared {
                let h = victim.node();
                let st = self.dir_state(h, victim);
                let new = match st {
                    DirState::Exclusive(o) if o == p => DirState::Uncached,
                    DirState::Shared(mut s) => {
                        s.remove(p);
                        if s.is_empty() {
                            DirState::Uncached
                        } else {
                            DirState::Shared(s)
                        }
                    }
                    other => other,
                };
                self.set_dir_state(h, victim, new);
                let _ = state;
            }
        }
    }

    /// Handles the replacement of a *shared* block evicted from processor
    /// `p`'s cache: a dirty victim is written back (data message), a clean
    /// victim sends a replacement hint so the full map stays exact.
    pub(crate) fn shared_eviction(self: &Rc<Self>, cpu: &Cpu, victim: GAddr, state: LineState) {
        let cfg = self.config();
        let p = cpu.id().index();
        let h = victim.node();
        match state {
            LineState::Dirty => {
                cpu.count(Counter::BytesData, cfg.data_msg_bytes);
                cpu.count(Counter::BytesControl, cfg.ctrl_msg_bytes);
            }
            LineState::Clean => {
                cpu.count(Counter::BytesControl, cfg.ctrl_msg_bytes);
            }
        }
        let arrive = cpu.clock() + cfg.latency(p, h);
        let this = Rc::clone(self);
        self.sim()
            .call_at_for(ProcId::new(h), arrive.max(self.sim().now()), move || {
                let st = this.dir_state(h, victim);
                let new = match st {
                    DirState::Exclusive(o) if o == p => DirState::Uncached,
                    DirState::Shared(mut s) => {
                        s.remove(p);
                        if s.is_empty() {
                            DirState::Uncached
                        } else {
                            DirState::Shared(s)
                        }
                    }
                    other => other,
                };
                this.set_dir_state(h, victim, new);
            })
            .expect("arrival is clamped to the present");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharers_set_semantics() {
        let mut s = Sharers::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(5);
        s.insert(127);
        assert!(s.contains(5) && !s.contains(6));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 127]);
        s.remove(5);
        assert_eq!(s.count(), 2);
        s.remove(5); // idempotent
        assert_eq!(s.count(), 2);
    }

    #[test]
    #[should_panic(expected = "up to 128 nodes")]
    fn sharers_reject_large_ids() {
        Sharers::empty().insert(128);
    }

    #[test]
    fn dir_state_default_is_uncached() {
        assert_eq!(DirState::default(), DirState::Uncached);
    }
}
