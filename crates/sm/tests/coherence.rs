//! Integration tests of the shared-memory machine: protocol state
//! transitions, cost arithmetic against Table 3, contention, and the
//! parmacs layer under stress.

use std::cell::RefCell;
use std::rc::Rc;

use wwt_mem::CacheGeometry;
use wwt_sim::{Counter, Engine, Kind, ProcId, SimConfig};
use wwt_sm::{AllocPolicy, ArchParams, McsLock, ProtocolMode, SmCollectives, SmConfig, SmMachine};

fn setup(n: usize) -> (Engine, Rc<SmMachine>) {
    let e = Engine::new(n, SimConfig::default());
    let m = SmMachine::new(&e, SmConfig::default());
    (e, m)
}

#[test]
fn four_hop_read_costs_more_than_clean_read() {
    // Reading a block that is dirty in a third node's cache takes the
    // recall/write-back path: strictly slower than reading a clean copy.
    let (mut e, m) = setup(3);
    let x = m.gmalloc_on(0, 8, 8);
    let clean_cost: Rc<RefCell<u64>> = Rc::default();
    let dirty_cost: Rc<RefCell<u64>> = Rc::default();
    // Node 1 dirties the block, then node 2 reads it (4-hop), then after
    // a barrier node 2's clean copy is read... measured on node 2.
    let m1 = Rc::clone(&m);
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        m1.write_f64(&c1, x, 1.0).await; // miss -> Exclusive(1), dirty
        m1.barrier(&c1).await;
        m1.barrier(&c1).await;
    });
    let m2 = Rc::clone(&m);
    let c2 = e.cpu(ProcId::new(2));
    let d2 = Rc::clone(&dirty_cost);
    e.spawn(ProcId::new(2), async move {
        m2.barrier(&c2).await;
        let t0 = c2.clock();
        m2.read_f64(&c2, x).await; // 4-hop: recall node 1
        *d2.borrow_mut() = c2.clock() - t0;
        m2.barrier(&c2).await;
    });
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    let cl0 = Rc::clone(&clean_cost);
    e.spawn(ProcId::new(0), async move {
        m0.barrier(&c0).await;
        m0.barrier(&c0).await;
        let t0 = c0.clock();
        m0.read_f64(&c0, x).await; // block now Shared: 2-hop to self-home
        *cl0.borrow_mut() = c0.clock() - t0;
    });
    e.run();
    assert!(
        *dirty_cost.borrow() > *clean_cost.borrow(),
        "4-hop {} !> clean {}",
        dirty_cost.borrow(),
        clean_cost.borrow()
    );
}

#[test]
fn upgrade_cost_scales_with_sharer_count() {
    // A write to a widely shared block must wait for more invalidation
    // acknowledgements than a write to a narrowly shared one.
    let time_with_readers = |readers: usize| {
        let n = readers + 1;
        let mut e = Engine::new(n, SimConfig::default());
        let m = SmMachine::new(&e, SmConfig::default());
        let x = m.gmalloc_on(0, 8, 8);
        let cost: Rc<RefCell<u64>> = Rc::default();
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = e.cpu(p);
            let cost = Rc::clone(&cost);
            e.spawn(p, async move {
                if p.index() == 0 {
                    m.read_f64(&cpu, x).await;
                    m.barrier(&cpu).await;
                    let t0 = cpu.clock();
                    m.write_f64(&cpu, x, 1.0).await; // upgrade + invalidations
                    *cost.borrow_mut() = cpu.clock() - t0;
                } else {
                    m.read_f64(&cpu, x).await;
                    m.barrier(&cpu).await;
                }
            });
        }
        e.run();
        let v = *cost.borrow();
        v
    };
    let narrow = time_with_readers(1);
    let wide = time_with_readers(8);
    assert!(wide > narrow, "8 sharers {wide} !> 1 sharer {narrow}");
}

#[test]
fn dirty_eviction_writes_back_and_frees_the_directory() {
    // Fill a tiny cache with dirty shared blocks until eviction; the
    // machine stays coherent and counts the write-back traffic.
    let mut e = Engine::new(2, SimConfig::default());
    let cfg = SmConfig {
        arch: ArchParams {
            cache: CacheGeometry {
                size_bytes: 512,
                ways: 2,
                block_bytes: 32,
            },
            ..ArchParams::default()
        },
        ..SmConfig::default()
    };
    let m = SmMachine::new(&e, cfg);
    let region = m.gmalloc_on(1, 4096, 32);
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        for i in 0..128u64 {
            m0.write_f64(&c0, region.offset_by(i * 32), i as f64).await;
        }
    });
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        let _ = c1;
    });
    let r = e.run();
    let p0 = r.proc(ProcId::new(0));
    // 128 blocks through a 16-line cache: most fills evicted a dirty
    // victim, each costing a write-back message (32 data + 8 ctrl).
    assert!(p0.counters.get(Counter::BytesData) > 128 * 32 + 100 * 32);
    assert!(m.coherence_violations().is_empty());
    // Values survive the write-back churn.
    for i in 0..128u64 {
        assert_eq!(m.peek_f64(region.offset_by(i * 32)), i as f64);
    }
}

#[test]
fn local_allocation_policy_homes_on_requester() {
    let e = Engine::new(4, SimConfig::default());
    let m = SmMachine::new(
        &e,
        SmConfig {
            alloc_policy: AllocPolicy::Local,
            ..SmConfig::default()
        },
    );
    for q in 0..4 {
        assert_eq!(m.gmalloc(q, 64, 8).node(), q);
    }
}

#[test]
fn bulk_update_publishes_to_sharers_only() {
    let mut e = Engine::new(4, SimConfig::default());
    let m = SmMachine::new(
        &e,
        SmConfig {
            protocol: ProtocolMode::BulkUpdate,
            ..SmConfig::default()
        },
    );
    let x = m.gmalloc_on(0, 32, 32);
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = e.cpu(p);
        e.spawn(p, async move {
            if p.index() == 0 {
                m.barrier(&cpu).await; // consumers read first
                let before = cpu.sim().snapshot()[0].2.get(Counter::BytesData);
                m.write_f64(&cpu, x, 5.0).await;
                m.bulk_publish(&cpu, x, 8).await;
                let after = cpu.sim().snapshot()[0].2.get(Counter::BytesData);
                // The write's own miss fill (32 bytes) plus one 32-byte
                // update per consumer (nodes 1 and 2 read it; node 3 not).
                assert_eq!(after - before, 32 + 2 * 32);
                m.barrier(&cpu).await;
            } else if p.index() < 3 {
                m.read_f64(&cpu, x).await;
                m.barrier(&cpu).await;
                m.barrier(&cpu).await;
            } else {
                // Node 3 never touches the block.
                m.barrier(&cpu).await;
                m.barrier(&cpu).await;
            }
        });
    }
    e.run();
}

#[test]
fn mcs_lock_hands_off_in_fifo_order() {
    let n = 6;
    let (mut e, m) = setup(n);
    let lock = Rc::new(McsLock::new(&m));
    let order: Rc<RefCell<Vec<usize>>> = Rc::default();
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let lock = Rc::clone(&lock);
        let cpu = e.cpu(p);
        let order = Rc::clone(&order);
        e.spawn(p, async move {
            // Stagger arrivals so the queue order is deterministic.
            cpu.compute(1_000 * p.index() as u64);
            lock.acquire(&m, &cpu).await;
            order.borrow_mut().push(p.index());
            cpu.compute(50_000); // hold long enough that everyone queues
            lock.release(&m, &cpu).await;
        });
    }
    e.run();
    assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn collectives_and_locks_share_the_machine() {
    // Reductions running while other processors fight over a lock: the
    // two synchronization mechanisms must not interfere.
    let n = 8;
    let (mut e, m) = setup(n);
    let coll = Rc::new(SmCollectives::new(&m));
    let lock = Rc::new(McsLock::new(&m));
    let counter = m.gmalloc_on(0, 8, 8);
    let sum: Rc<RefCell<f64>> = Rc::default();
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let coll = Rc::clone(&coll);
        let lock = Rc::clone(&lock);
        let cpu = e.cpu(p);
        let sum = Rc::clone(&sum);
        e.spawn(p, async move {
            for _ in 0..5 {
                lock.acquire(&m, &cpu).await;
                let v = m.read_u64(&cpu, counter).await;
                m.write_u64(&cpu, counter, v + 1).await;
                lock.release(&m, &cpu).await;
                if let Some(s) = coll.reduce_sum_f64(&m, &cpu, 1.0).await {
                    *sum.borrow_mut() += s;
                }
                m.barrier(&cpu).await;
            }
        });
    }
    e.run();
    assert_eq!(m.peek_u64(counter), (n * 5) as u64);
    assert_eq!(*sum.borrow(), (n * 5) as f64);
    assert!(m.coherence_violations().is_empty());
}

#[test]
fn remote_miss_cost_matches_table_3_arithmetic() {
    let (mut e, m) = setup(2);
    let cfg = *m.config();
    let x = m.gmalloc_on(1, 8, 8);
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        let t0 = c0.clock();
        m0.read_f64(&c0, x).await;
        let cost = c0.clock() - t0;
        // tlb + miss handling + request latency + directory occupancy
        // (base + send msg + send block) + response latency.
        let expect = cfg.arch.tlb_miss
            + cfg.shared_miss
            + cfg.arch.net_latency
            + (cfg.dir_base + cfg.dir_send_msg + cfg.dir_send_block)
            + cfg.arch.net_latency;
        assert_eq!(cost, expect);
    });
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        let _ = c1;
    });
    e.run();
}

#[test]
fn directory_requests_are_counted_at_the_home() {
    let (mut e, m) = setup(3);
    let x = m.gmalloc_on(2, 8, 8);
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = e.cpu(p);
        e.spawn(p, async move {
            if p.index() < 2 {
                m.read_f64(&cpu, x).await;
            }
            m.barrier(&cpu).await;
        });
    }
    let r = e.run();
    assert_eq!(r.proc(ProcId::new(2)).counters.get(Counter::DirRequests), 2);
    assert_eq!(r.proc(ProcId::new(0)).counters.get(Counter::DirRequests), 0);
}

#[test]
fn startup_gate_then_collectives_then_locks_is_deterministic() {
    let run = || {
        let n = 5;
        let (mut e, m) = setup(n);
        let gate = Rc::new(wwt_sm::CreateGate::new());
        let coll = Rc::new(SmCollectives::new(&m));
        for p in e.proc_ids() {
            let m = Rc::clone(&m);
            let gate = Rc::clone(&gate);
            let coll = Rc::clone(&coll);
            let cpu = e.cpu(p);
            e.spawn(p, async move {
                if p.index() == 0 {
                    cpu.compute(12_345);
                    gate.release(&m, &cpu);
                } else {
                    gate.wait(&cpu).await;
                }
                let s = coll.reduce_sum_f64(&m, &cpu, 1.0).await;
                let v = coll.bcast_f64(&m, &cpu, 0, s.unwrap_or(0.0)).await;
                assert_eq!(v, 5.0);
                m.barrier(&cpu).await;
            });
        }
        let r = e.run();
        (r.elapsed(), r.events_processed())
    };
    assert_eq!(run(), run());
}

#[test]
fn flag_wait_kind_lands_in_the_callers_matrix() {
    let (mut e, m) = setup(2);
    let flag = m.gmalloc_on(0, 8, 8);
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        c0.compute(3_000);
        m0.write_u64(&c0, flag, 1).await;
    });
    let m1 = Rc::clone(&m);
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        m1.flag_wait(&c1, flag, 1, Kind::LockWait).await;
    });
    let r = e.run();
    assert!(r.proc(ProcId::new(1)).matrix.by_kind(Kind::LockWait) > 2_000);
}

#[test]
fn flush_turns_invalidation_into_local_replacement() {
    // A consumer that flushes its copy spares the producer the
    // invalidation round-trip: the producer's next write misses (the
    // directory dropped the consumer) instead of write-faulting against
    // a sharer.
    let (mut e, m) = setup(2);
    let x = m.gmalloc_on(0, 32, 32);
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        m0.write_f64(&c0, x, 1.0).await;
        m0.barrier(&c0).await; // consumer reads
        m0.barrier(&c0).await; // consumer flushed
        let t0 = c0.clock();
        m0.write_f64(&c0, x, 2.0).await;
        let cost = c0.clock() - t0;
        // The write should find no sharers to invalidate: its stall is a
        // plain 4-hop-free upgrade-after-recall... in fact the producer
        // still owns the line if the consumer flushed: a cheap write.
        assert!(cost < 100, "write after flush cost {cost}");
    });
    let m1 = Rc::clone(&m);
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        m1.barrier(&c1).await;
        m1.read_f64(&c1, x).await;
        let flushed = m1.flush(&c1, x, 8).await;
        assert_eq!(flushed, 1);
        m1.barrier(&c1).await;
    });
    e.run();
    assert!(m.coherence_violations().is_empty());
}

#[test]
fn prefetch_hides_latency_when_issued_early() {
    let (mut e, m) = setup(2);
    let region = m.gmalloc_on(1, 256, 32);
    // Warm: node 1 owns its region.
    let demand_cost: Rc<RefCell<u64>> = Rc::default();
    let prefetched_cost: Rc<RefCell<u64>> = Rc::default();
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    let d = Rc::clone(&demand_cost);
    let pf = Rc::clone(&prefetched_cost);
    e.spawn(ProcId::new(0), async move {
        // Demand read of a cold remote block.
        let t0 = c0.clock();
        m0.read_f64(&c0, region).await;
        *d.borrow_mut() = c0.clock() - t0;
        // Prefetch the next block, compute past the round trip, then read.
        m0.prefetch(&c0, region.offset_by(32), 32).await;
        c0.compute(1_000);
        let t1 = c0.clock();
        m0.read_f64(&c0, region.offset_by(32)).await;
        *pf.borrow_mut() = c0.clock() - t1;
    });
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        let _ = c1;
    });
    e.run();
    assert!(
        *prefetched_cost.borrow() < *demand_cost.borrow() / 4,
        "prefetched {} !<< demand {}",
        prefetched_cost.borrow(),
        demand_cost.borrow()
    );
    assert!(m.coherence_violations().is_empty());
}

#[test]
fn prefetch_issued_too_late_hides_nothing() {
    let (mut e, m) = setup(2);
    let region = m.gmalloc_on(1, 64, 32);
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        m0.prefetch(&c0, region, 32).await;
        // Read immediately: the response has not arrived, so this is a
        // full demand miss.
        let t0 = c0.clock();
        m0.read_f64(&c0, region).await;
        assert!(c0.clock() - t0 > 150, "late prefetch must not be free");
    });
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        let _ = c1;
    });
    e.run();
    assert!(m.coherence_violations().is_empty());
}

#[test]
fn stache_refills_evicted_remote_blocks_locally() {
    // A tiny cache forces capacity evictions of remote blocks; with the
    // Stache policy re-misses refill from local memory (cheap) instead of
    // re-crossing the network, and no write-back traffic is sent.
    let run_with = |stache: bool| {
        let mut e = Engine::new(2, SimConfig::default());
        let cfg = SmConfig {
            arch: ArchParams {
                cache: CacheGeometry {
                    size_bytes: 512,
                    ways: 2,
                    block_bytes: 32,
                },
                ..ArchParams::default()
            },
            stache,
            ..SmConfig::default()
        };
        let m = SmMachine::new(&e, cfg);
        let region = m.gmalloc_on(1, 4096, 32); // 128 blocks, remote to node 0
        let m0 = Rc::clone(&m);
        let c0 = e.cpu(ProcId::new(0));
        e.spawn(ProcId::new(0), async move {
            // Stream the remote region repeatedly: the 16-line cache
            // cannot hold it, so every pass re-misses on most blocks.
            for _ in 0..5 {
                for i in 0..128u64 {
                    m0.read_f64(&c0, region.offset_by(i * 32)).await;
                }
            }
        });
        let c1 = e.cpu(ProcId::new(1));
        e.spawn(ProcId::new(1), async move {
            let _ = c1;
        });
        let r = e.run();
        assert!(m.coherence_violations().is_empty());
        (
            r.proc(ProcId::new(0)).clock,
            r.proc(ProcId::new(0)).counters.get(Counter::ShMissesRemote),
        )
    };
    let (t_base, misses_base) = run_with(false);
    let (t_stache, misses_stache) = run_with(true);
    assert!(t_stache < t_base / 2, "stache {t_stache} !<< base {t_base}");
    assert!(
        misses_stache < misses_base / 2,
        "stache remote misses {misses_stache} !<< {misses_base}"
    );
}

#[test]
fn stache_copies_still_get_invalidated() {
    // A producer's write must invalidate a consumer's staled copy too:
    // the consumer re-reads through the protocol and sees the new value
    // with a remote miss, not a (stale) local refill.
    let mut e = Engine::new(2, SimConfig::default());
    let cfg = SmConfig {
        arch: ArchParams {
            cache: CacheGeometry {
                size_bytes: 256,
                ways: 2,
                block_bytes: 32,
            },
            ..ArchParams::default()
        },
        stache: true,
        ..SmConfig::default()
    };
    let m = SmMachine::new(&e, cfg);
    let x = m.gmalloc_on(0, 8, 8);
    let filler = m.gmalloc_on(0, 4096, 32);
    let m0 = Rc::clone(&m);
    let c0 = e.cpu(ProcId::new(0));
    e.spawn(ProcId::new(0), async move {
        m0.barrier(&c0).await; // consumer cached + staled x
        m0.write_f64(&c0, x, 9.0).await;
        m0.barrier(&c0).await;
    });
    let m1 = Rc::clone(&m);
    let c1 = e.cpu(ProcId::new(1));
    e.spawn(ProcId::new(1), async move {
        m1.read_f64(&c1, x).await;
        // Evict x into the stache by streaming the filler region.
        for i in 0..128u64 {
            m1.read_f64(&c1, filler.offset_by(i * 32)).await;
        }
        m1.barrier(&c1).await;
        m1.barrier(&c1).await;
        let before = c1.clock();
        let v = m1.read_f64(&c1, x).await;
        assert_eq!(v, 9.0, "must observe the producer's write");
        // And it must have been a real protocol transaction, not a cheap
        // local refill of a stale copy.
        assert!(c1.clock() - before > 100, "stale local refill suspected");
    });
    e.run();
    assert!(m.coherence_violations().is_empty());
}
