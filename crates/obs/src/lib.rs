//! Host-side self-observability: what is the **simulator** doing, in wall
//! time, while it simulates?
//!
//! The guest side of the reproduction is thoroughly instrumented —
//! `wwt-sim`'s trace sink attributes every simulated cycle — but the
//! simulator itself was a black box: no events/sec per scheduler shard,
//! no calendar-queue depths, no run-cache hit rates, no `ParEngine`
//! barrier-stall share. This crate is the process-global metrics registry
//! those numbers live in, plus the machinery to get them out:
//!
//! * **Instruments.** Named counters ([`Ctr`]), per-shard counters
//!   ([`ShardCtr`]) and high-water gauges ([`ShardGauge`]), and one log2
//!   histogram of per-experiment wall time (the same bucket scheme as
//!   `wwt-sim`'s guest latency histograms). Everything is a plain
//!   `AtomicU64` updated with `Relaxed` ordering — no locks anywhere near
//!   an engine hot path.
//! * **Gating.** The registry is off by default. Gated update paths load
//!   one `AtomicBool` and branch — the same zero-cost-when-disabled
//!   discipline as `SimConfig::trace`. The run-cache counters are the one
//!   deliberate exception ([`count_always`]): they tick a handful of
//!   times per experiment, and the grid runner's end-of-run cache summary
//!   must work without `--obs`.
//! * **Flight recorder.** A periodic sampler snapshots the registry into
//!   a bounded ring buffer; the last few snapshots are attached to every
//!   `SimError` diagnostic so a deadlocked run carries "what was the
//!   simulator doing just before it died".
//! * **Exporters.** A human-readable self-profile table
//!   ([`render_table`]), machine-readable JSON snapshots
//!   ([`render_json`]), and Prometheus text exposition
//!   ([`render_prometheus`]).
//!
//! Host metrics are strictly off the determinism path: nothing in the
//! simulation ever *reads* this registry, so simulated output is
//! byte-identical whether observability is enabled or not, at any shard
//! count, clean or faulted.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-shard instruments track up to this many scheduler shards; higher
/// shard indices clamp onto the last slot (runs that wide are aggregate
/// anyway).
pub const MAX_SHARDS: usize = 64;

/// Snapshots the flight recorder retains (oldest evicted first).
pub const FLIGHT_RECORDER_CAP: usize = 8;

/// Process-global scalar counters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Ctr {
    /// Scheduled callbacks whose captures fit `SmallCall`'s inline buffer.
    SimCallInline,
    /// Scheduled callbacks that fell back to a boxed closure.
    SimCallBoxed,
    /// `CellPool::take` calls served from a recycled allocation.
    SimPoolTakeRecycled,
    /// `CellPool::take` calls that had to allocate a fresh cell.
    SimPoolTakeFresh,
    /// `CellPool::put` calls that recycled the cell.
    SimPoolPutRecycled,
    /// `CellPool::put` calls that dropped an escaped cell instead.
    SimPoolPutDropped,
    /// `ParEngine` envelopes delivered to the sending shard.
    ParMsgsSameShard,
    /// `ParEngine` envelopes that crossed a shard boundary.
    ParMsgsCrossShard,
    /// Run-cache lookups served from disk.
    CacheHits,
    /// Run-cache lookups that missed (absent entry or damage).
    CacheMisses,
    /// Bytes of cache entries read (hits only).
    CacheBytesRead,
    /// Damaged (unreadable/truncated/corrupt) entries recovered by
    /// re-simulation.
    CacheCorruptRecovered,
    /// Experiments the grid runner produced artifacts for.
    GridExperimentsRun,
    /// Of those, how many replayed from the run cache.
    GridExperimentsCached,
    /// Grid jobs re-attempted after a transient failure (store IO error
    /// or watchdog expiry).
    GridJobRetries,
    /// Grid jobs whose experiment panicked (caught at the job boundary
    /// and reported as a failed cell).
    GridJobPanics,
    /// Corrupt store entries moved to quarantine by an fsck pass.
    StoreFsckQuarantined,
    /// Orphaned temp files and stale lock files garbage-collected by an
    /// fsck pass.
    StoreFsckSwept,
    /// Stale writer locks broken and taken over.
    StoreLockTakeovers,
    /// Host faults the `StoreFaults` harness actually injected.
    StoreFaultsInjected,
}

impl Ctr {
    /// Every counter, in index order.
    pub const ALL: [Ctr; 20] = [
        Ctr::SimCallInline,
        Ctr::SimCallBoxed,
        Ctr::SimPoolTakeRecycled,
        Ctr::SimPoolTakeFresh,
        Ctr::SimPoolPutRecycled,
        Ctr::SimPoolPutDropped,
        Ctr::ParMsgsSameShard,
        Ctr::ParMsgsCrossShard,
        Ctr::CacheHits,
        Ctr::CacheMisses,
        Ctr::CacheBytesRead,
        Ctr::CacheCorruptRecovered,
        Ctr::GridExperimentsRun,
        Ctr::GridExperimentsCached,
        Ctr::GridJobRetries,
        Ctr::GridJobPanics,
        Ctr::StoreFsckQuarantined,
        Ctr::StoreFsckSwept,
        Ctr::StoreLockTakeovers,
        Ctr::StoreFaultsInjected,
    ];

    /// Stable snake_case name (the JSON/Prometheus key).
    pub fn label(&self) -> &'static str {
        match self {
            Ctr::SimCallInline => "sim_call_inline",
            Ctr::SimCallBoxed => "sim_call_boxed",
            Ctr::SimPoolTakeRecycled => "sim_pool_take_recycled",
            Ctr::SimPoolTakeFresh => "sim_pool_take_fresh",
            Ctr::SimPoolPutRecycled => "sim_pool_put_recycled",
            Ctr::SimPoolPutDropped => "sim_pool_put_dropped",
            Ctr::ParMsgsSameShard => "par_msgs_same_shard",
            Ctr::ParMsgsCrossShard => "par_msgs_cross_shard",
            Ctr::CacheHits => "cache_hits",
            Ctr::CacheMisses => "cache_misses",
            Ctr::CacheBytesRead => "cache_bytes_read",
            Ctr::CacheCorruptRecovered => "cache_corrupt_recovered",
            Ctr::GridExperimentsRun => "grid_experiments_run",
            Ctr::GridExperimentsCached => "grid_experiments_cached",
            Ctr::GridJobRetries => "grid_job_retries",
            Ctr::GridJobPanics => "grid_job_panics",
            Ctr::StoreFsckQuarantined => "store_fsck_quarantined",
            Ctr::StoreFsckSwept => "store_fsck_swept",
            Ctr::StoreLockTakeovers => "store_lock_takeovers",
            Ctr::StoreFaultsInjected => "store_faults_injected",
        }
    }
}

/// Per-scheduler-shard counters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardCtr {
    /// Events pushed onto this shard's calendar queue.
    SimEventsPushed,
    /// Events popped from this shard's calendar queue.
    SimEventsPopped,
    /// Quantum windows this `ParEngine` shard processed.
    ParQuanta,
    /// Nanoseconds this `ParEngine` shard spent inside barrier waits.
    ParBarrierWaitNs,
    /// Nanoseconds this `ParEngine` shard spent processing its window.
    ParBusyNs,
}

impl ShardCtr {
    /// Every per-shard counter, in index order.
    pub const ALL: [ShardCtr; 5] = [
        ShardCtr::SimEventsPushed,
        ShardCtr::SimEventsPopped,
        ShardCtr::ParQuanta,
        ShardCtr::ParBarrierWaitNs,
        ShardCtr::ParBusyNs,
    ];

    /// Stable snake_case name (the JSON/Prometheus key).
    pub fn label(&self) -> &'static str {
        match self {
            ShardCtr::SimEventsPushed => "sim_events_pushed",
            ShardCtr::SimEventsPopped => "sim_events_popped",
            ShardCtr::ParQuanta => "par_quanta",
            ShardCtr::ParBarrierWaitNs => "par_barrier_wait_ns",
            ShardCtr::ParBusyNs => "par_busy_ns",
        }
    }
}

/// Per-scheduler-shard high-water gauges (monotone max).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardGauge {
    /// Calendar-queue depth high-water mark.
    SimQueueDepthHwm,
}

impl ShardGauge {
    /// Every per-shard gauge, in index order.
    pub const ALL: [ShardGauge; 1] = [ShardGauge::SimQueueDepthHwm];

    /// Stable snake_case name (the JSON/Prometheus key).
    pub fn label(&self) -> &'static str {
        match self {
            ShardGauge::SimQueueDepthHwm => "sim_queue_depth_hwm",
        }
    }
}

// Deliberately `const`, not `static`: these exist only as repeatable
// array initializers for the registry below — each use site gets its own
// fresh atomic, which is exactly the semantics clippy warns about.
#[allow(clippy::declare_interior_mutable_const)]
const Z: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZROW: [AtomicU64; MAX_SHARDS] = [Z; MAX_SHARDS];

struct Registry {
    enabled: AtomicBool,
    started: Mutex<Option<Instant>>,
    counters: [AtomicU64; Ctr::ALL.len()],
    shard_counters: [[AtomicU64; MAX_SHARDS]; ShardCtr::ALL.len()],
    shard_gauges: [[AtomicU64; MAX_SHARDS]; ShardGauge::ALL.len()],
    /// Grid runner: workers currently inside an experiment, and the peak.
    jobs_active: AtomicU64,
    jobs_peak: AtomicU64,
    /// Log2 histogram of per-experiment wall time, in microseconds (same
    /// bucket scheme as the guest-side `wwt_sim::Histogram`: bucket 0
    /// holds zero, bucket i holds values of bit length i).
    wall_us_buckets: [AtomicU64; 65],
    wall_us_count: AtomicU64,
    wall_us_sum: AtomicU64,
    wall_us_max: AtomicU64,
}

static REGISTRY: Registry = Registry {
    enabled: AtomicBool::new(false),
    started: Mutex::new(None),
    counters: [Z; Ctr::ALL.len()],
    shard_counters: [ZROW; ShardCtr::ALL.len()],
    shard_gauges: [ZROW; ShardGauge::ALL.len()],
    jobs_active: AtomicU64::new(0),
    jobs_peak: AtomicU64::new(0),
    wall_us_buckets: [Z; 65],
    wall_us_count: AtomicU64::new(0),
    wall_us_sum: AtomicU64::new(0),
    wall_us_max: AtomicU64::new(0),
};

static RECORDER: Mutex<Vec<ObsSnapshot>> = Mutex::new(Vec::new());

/// Turns host metrics collection on for the rest of the process (or until
/// [`disable`]). Idempotent; the first call anchors the elapsed-time
/// origin that snapshots report against.
pub fn enable() {
    let mut started = REGISTRY.started.lock().unwrap();
    if started.is_none() {
        *started = Some(Instant::now());
    }
    REGISTRY.enabled.store(true, Ordering::Relaxed);
}

/// Turns gated collection back off (tests use this to compare disabled
/// and enabled runs in one process). Accumulated values are kept; see
/// [`reset`].
pub fn disable() {
    REGISTRY.enabled.store(false, Ordering::Relaxed);
}

/// Whether gated instruments are live. One `Relaxed` load — hot paths
/// that cannot cache the flag call this directly.
#[inline]
pub fn enabled() -> bool {
    REGISTRY.enabled.load(Ordering::Relaxed)
}

/// Zeroes every instrument, clears the flight recorder, and re-anchors
/// the elapsed-time origin. For tests and long-lived processes that want
/// per-phase profiles; the enabled flag is left as-is.
pub fn reset() {
    for c in &REGISTRY.counters {
        c.store(0, Ordering::Relaxed);
    }
    for row in &REGISTRY.shard_counters {
        for c in row {
            c.store(0, Ordering::Relaxed);
        }
    }
    for row in &REGISTRY.shard_gauges {
        for c in row {
            c.store(0, Ordering::Relaxed);
        }
    }
    REGISTRY.jobs_active.store(0, Ordering::Relaxed);
    REGISTRY.jobs_peak.store(0, Ordering::Relaxed);
    for b in &REGISTRY.wall_us_buckets {
        b.store(0, Ordering::Relaxed);
    }
    REGISTRY.wall_us_count.store(0, Ordering::Relaxed);
    REGISTRY.wall_us_sum.store(0, Ordering::Relaxed);
    REGISTRY.wall_us_max.store(0, Ordering::Relaxed);
    RECORDER.lock().unwrap().clear();
    *REGISTRY.started.lock().unwrap() = Some(Instant::now());
}

/// Milliseconds since [`enable`] (or the last [`reset`]); zero before
/// either.
pub fn elapsed_ms() -> u64 {
    REGISTRY
        .started
        .lock()
        .unwrap()
        .map_or(0, |t| t.elapsed().as_millis() as u64)
}

/// Adds `n` to a counter. No-op while disabled.
#[inline]
pub fn count(c: Ctr, n: u64) {
    if enabled() {
        REGISTRY.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Adds `n` to a counter **regardless of the enabled flag**. Reserved for
/// cold, per-experiment events (the run-cache stats behind the grid
/// runner's always-on summary) — never call this from an engine hot path.
#[inline]
pub fn count_always(c: Ctr, n: u64) {
    REGISTRY.counters[c as usize].fetch_add(n, Ordering::Relaxed);
}

/// Current value of a counter.
pub fn counter(c: Ctr) -> u64 {
    REGISTRY.counters[c as usize].load(Ordering::Relaxed)
}

/// Adds `n` to a per-shard counter. No-op while disabled; shard indices
/// past [`MAX_SHARDS`] clamp onto the last slot.
#[inline]
pub fn shard_count(c: ShardCtr, shard: usize, n: u64) {
    if enabled() {
        REGISTRY.shard_counters[c as usize][shard.min(MAX_SHARDS - 1)]
            .fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of a per-shard counter.
pub fn shard_counter(c: ShardCtr, shard: usize) -> u64 {
    REGISTRY.shard_counters[c as usize][shard.min(MAX_SHARDS - 1)].load(Ordering::Relaxed)
}

/// Raises a per-shard high-water gauge to at least `v`. No-op while
/// disabled.
#[inline]
pub fn shard_max(g: ShardGauge, shard: usize, v: u64) {
    if enabled() {
        REGISTRY.shard_gauges[g as usize][shard.min(MAX_SHARDS - 1)]
            .fetch_max(v, Ordering::Relaxed);
    }
}

/// Current value of a per-shard gauge.
pub fn shard_gauge(g: ShardGauge, shard: usize) -> u64 {
    REGISTRY.shard_gauges[g as usize][shard.min(MAX_SHARDS - 1)].load(Ordering::Relaxed)
}

/// Marks a grid worker as inside an experiment, maintaining the
/// occupancy high-water mark. No-op while disabled.
pub fn job_enter() {
    if enabled() {
        let now = REGISTRY.jobs_active.fetch_add(1, Ordering::Relaxed) + 1;
        REGISTRY.jobs_peak.fetch_max(now, Ordering::Relaxed);
    }
}

/// Marks a grid worker as done with an experiment. No-op while disabled.
pub fn job_exit() {
    if enabled() {
        // Saturating: an enable() racing a grid in flight may see an exit
        // without its enter.
        let _ = REGISTRY
            .jobs_active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }
}

/// Records one per-experiment wall time, in microseconds. No-op while
/// disabled.
pub fn record_wall_us(v: u64) {
    if enabled() {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        REGISTRY.wall_us_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        REGISTRY.wall_us_count.fetch_add(1, Ordering::Relaxed);
        REGISTRY.wall_us_sum.fetch_add(v, Ordering::Relaxed);
        REGISTRY.wall_us_max.fetch_max(v, Ordering::Relaxed);
    }
}

/// Approximate percentile (0..=100) of the wall-time histogram: the
/// midpoint of the log2 bucket the target rank falls in. Zero when empty.
fn wall_us_percentile(q: u64) -> u64 {
    let count = REGISTRY.wall_us_count.load(Ordering::Relaxed);
    if count == 0 {
        return 0;
    }
    let target = (count * q).div_ceil(100).max(1);
    let mut cum = 0;
    for (i, b) in REGISTRY.wall_us_buckets.iter().enumerate() {
        cum += b.load(Ordering::Relaxed);
        if cum >= target {
            if i == 0 {
                return 0;
            }
            let lo = 1u64 << (i - 1);
            let hi = 1u64.checked_shl(i as u32).unwrap_or(u64::MAX);
            // The bucket midpoint can overshoot the largest recorded
            // value; a reported percentile must never exceed the max.
            return (lo + (hi - lo) / 2).min(REGISTRY.wall_us_max.load(Ordering::Relaxed));
        }
    }
    REGISTRY.wall_us_max.load(Ordering::Relaxed)
}

/// One metric in a snapshot: a stable name, an optional shard index, and
/// the value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsSample {
    /// Stable snake_case metric name.
    pub name: &'static str,
    /// Scheduler shard, for per-shard instruments.
    pub shard: Option<usize>,
    /// Value at snapshot time.
    pub value: u64,
}

/// A point-in-time copy of every **nonzero** instrument.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Milliseconds since [`enable`] when the snapshot was taken.
    pub elapsed_ms: u64,
    /// Nonzero instruments, in registry order (scalar counters, then
    /// per-shard counters by shard, then gauges, then derived histogram
    /// and occupancy stats).
    pub samples: Vec<ObsSample>,
}

/// Takes a snapshot of the registry right now (without recording it into
/// the flight recorder — see [`record_snapshot`]).
pub fn snapshot_now() -> ObsSnapshot {
    let mut samples = Vec::new();
    let mut push = |name: &'static str, shard: Option<usize>, value: u64| {
        if value != 0 {
            samples.push(ObsSample { name, shard, value });
        }
    };
    for c in Ctr::ALL {
        push(c.label(), None, counter(c));
    }
    for c in ShardCtr::ALL {
        for shard in 0..MAX_SHARDS {
            push(c.label(), Some(shard), shard_counter(c, shard));
        }
    }
    for g in ShardGauge::ALL {
        for shard in 0..MAX_SHARDS {
            push(g.label(), Some(shard), shard_gauge(g, shard));
        }
    }
    push(
        "grid_jobs_peak",
        None,
        REGISTRY.jobs_peak.load(Ordering::Relaxed),
    );
    let count = REGISTRY.wall_us_count.load(Ordering::Relaxed);
    push("grid_exp_wall_us_count", None, count);
    if count > 0 {
        push(
            "grid_exp_wall_us_sum",
            None,
            REGISTRY.wall_us_sum.load(Ordering::Relaxed),
        );
        push("grid_exp_wall_us_p50", None, wall_us_percentile(50));
        push("grid_exp_wall_us_p90", None, wall_us_percentile(90));
        push(
            "grid_exp_wall_us_max",
            None,
            REGISTRY.wall_us_max.load(Ordering::Relaxed),
        );
    }
    ObsSnapshot {
        elapsed_ms: elapsed_ms(),
        samples,
    }
}

/// Takes a snapshot and appends it to the flight recorder ring (evicting
/// the oldest past [`FLIGHT_RECORDER_CAP`]).
pub fn record_snapshot() {
    let snap = snapshot_now();
    let mut ring = RECORDER.lock().unwrap();
    if ring.len() == FLIGHT_RECORDER_CAP {
        ring.remove(0);
    }
    ring.push(snap);
}

/// The flight recorder's current contents, oldest first.
pub fn recent_snapshots() -> Vec<ObsSnapshot> {
    RECORDER.lock().unwrap().clone()
}

/// The snapshots a failure diagnostic should carry: the flight recorder's
/// contents plus one fresh snapshot taken now. Empty while disabled, so
/// error paths can attach this unconditionally.
pub fn failure_snapshots() -> Vec<ObsSnapshot> {
    if !enabled() {
        return Vec::new();
    }
    let mut snaps = recent_snapshots();
    snaps.push(snapshot_now());
    snaps
}

/// Spawns a detached sampler thread that records a flight-recorder
/// snapshot every `period_ms` until the registry is disabled (or the
/// process exits). Call after [`enable`].
pub fn start_sampler(period_ms: u64) {
    std::thread::Builder::new()
        .name("wwt-obs-sampler".into())
        .spawn(move || {
            while enabled() {
                std::thread::sleep(std::time::Duration::from_millis(period_ms));
                if !enabled() {
                    break;
                }
                record_snapshot();
            }
        })
        .expect("spawning the obs sampler thread");
}

/// Renders one snapshot as the single flight-recorder line:
/// `[t+MSms] name=value name{shard=N}=value ...` (nonzero metrics only).
pub fn render_snapshot_line(s: &ObsSnapshot) -> String {
    let mut out = format!("[t+{}ms]", s.elapsed_ms);
    for smp in &s.samples {
        match smp.shard {
            Some(sh) => {
                let _ = write!(out, " {}{{shard={sh}}}={}", smp.name, smp.value);
            }
            None => {
                let _ = write!(out, " {}={}", smp.name, smp.value);
            }
        }
    }
    if s.samples.is_empty() {
        out.push_str(" (all metrics zero)");
    }
    out
}

/// Renders the "simulator state at failure" section attached to stalled
/// runs: a header plus one indented [`render_snapshot_line`] per
/// snapshot, oldest first. No trailing newline. The format is pinned by
/// a golden test — change it deliberately.
pub fn render_flight_recorder(snaps: &[ObsSnapshot]) -> String {
    let mut out = format!(
        "simulator state at failure (flight recorder, {} snapshot{}, oldest first):",
        snaps.len(),
        if snaps.len() == 1 { "" } else { "s" }
    );
    for s in snaps {
        let _ = write!(out, "\n  {}", render_snapshot_line(s));
    }
    out
}

/// Value of `name` (with optional shard) in a snapshot; zero if absent.
fn get(s: &ObsSnapshot, name: &str, shard: Option<usize>) -> u64 {
    s.samples
        .iter()
        .find(|m| m.name == name && m.shard == shard)
        .map_or(0, |m| m.value)
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Renders the human-readable self-profile table (`make_tables --obs`).
/// Sections whose instruments never fired are omitted.
pub fn render_table(s: &ObsSnapshot) -> String {
    let mut out = String::new();
    let secs = (s.elapsed_ms.max(1)) as f64 / 1000.0;
    let _ = writeln!(
        out,
        "simulator self-profile (host wall-time metrics, t+{}ms)",
        s.elapsed_ms
    );

    // Engine: per-shard event throughput and queue depths.
    let shards_used: Vec<usize> = (0..MAX_SHARDS)
        .filter(|&sh| {
            get(s, "sim_events_popped", Some(sh)) != 0 || get(s, "sim_events_pushed", Some(sh)) != 0
        })
        .collect();
    if !shards_used.is_empty() {
        let popped: u64 = shards_used
            .iter()
            .map(|&sh| get(s, "sim_events_popped", Some(sh)))
            .sum();
        let pushed: u64 = shards_used
            .iter()
            .map(|&sh| get(s, "sim_events_pushed", Some(sh)))
            .sum();
        let _ = writeln!(
            out,
            "  engine     events popped {popped} ({:.0}/s), pushed {pushed}, shards {}",
            popped as f64 / secs,
            shards_used.len()
        );
        for &sh in &shards_used {
            let p = get(s, "sim_events_popped", Some(sh));
            let _ = writeln!(
                out,
                "             shard {sh}: popped {p} ({:.0}/s), depth high-water {}",
                p as f64 / secs,
                get(s, "sim_queue_depth_hwm", Some(sh))
            );
        }
    }

    let inline = get(s, "sim_call_inline", None);
    let boxed = get(s, "sim_call_boxed", None);
    if inline + boxed > 0 {
        let _ = writeln!(
            out,
            "  calls      inline {inline} ({:.1}%), boxed {boxed}",
            pct(inline, inline + boxed)
        );
    }

    let take_r = get(s, "sim_pool_take_recycled", None);
    let take_f = get(s, "sim_pool_take_fresh", None);
    let put_r = get(s, "sim_pool_put_recycled", None);
    let put_d = get(s, "sim_pool_put_dropped", None);
    if take_r + take_f + put_r + put_d > 0 {
        let _ = writeln!(
            out,
            "  pool       takes {} ({:.1}% recycled), puts {} ({:.1}% recycled)",
            take_r + take_f,
            pct(take_r, take_r + take_f),
            put_r + put_d,
            pct(put_r, put_r + put_d)
        );
    }

    // ParEngine: barrier-wait share of shard time, per shard.
    let par_shards: Vec<usize> = (0..MAX_SHARDS)
        .filter(|&sh| get(s, "par_quanta", Some(sh)) != 0)
        .collect();
    if !par_shards.is_empty() {
        let same = get(s, "par_msgs_same_shard", None);
        let cross = get(s, "par_msgs_cross_shard", None);
        let quanta: u64 = par_shards
            .iter()
            .map(|&sh| get(s, "par_quanta", Some(sh)))
            .sum();
        let _ = writeln!(
            out,
            "  parengine  quanta {quanta}, mailbox traffic same-shard {same} / cross-shard {cross}",
        );
        for &sh in &par_shards {
            let wait = get(s, "par_barrier_wait_ns", Some(sh));
            let busy = get(s, "par_busy_ns", Some(sh));
            let _ = writeln!(
                out,
                "             shard {sh}: quanta {}, barrier wait {:.1}ms ({:.1}% of shard time)",
                get(s, "par_quanta", Some(sh)),
                wait as f64 / 1e6,
                pct(wait, wait + busy)
            );
        }
    }

    let hits = get(s, "cache_hits", None);
    let misses = get(s, "cache_misses", None);
    if hits + misses > 0 {
        let _ = writeln!(
            out,
            "  cache      hits {hits}, misses {misses}, bytes read {}, corrupt recovered {}",
            get(s, "cache_bytes_read", None),
            get(s, "cache_corrupt_recovered", None)
        );
    }

    let runs = get(s, "grid_experiments_run", None);
    if runs > 0 {
        let _ = writeln!(
            out,
            "  grid       experiments {runs} (cached {}), peak jobs {}, wall/exp p50 {}us p90 {}us max {}us",
            get(s, "grid_experiments_cached", None),
            get(s, "grid_jobs_peak", None),
            get(s, "grid_exp_wall_us_p50", None),
            get(s, "grid_exp_wall_us_p90", None),
            get(s, "grid_exp_wall_us_max", None)
        );
    }
    out
}

/// Renders flight-recorder snapshots as machine-readable JSON:
/// `{"snapshots":[{"elapsed_ms":N,"samples":[{"name":..,"shard":..,"value":..},..]},..]}`.
pub fn render_json(snaps: &[ObsSnapshot]) -> String {
    let mut out = String::from("{\"snapshots\":[");
    for (i, s) in snaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"elapsed_ms\":{},\"samples\":[", s.elapsed_ms);
        for (j, m) in s.samples.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match m.shard {
                Some(sh) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"shard\":{sh},\"value\":{}}}",
                        m.name, m.value
                    );
                }
                None => {
                    let _ = write!(out, "{{\"name\":\"{}\",\"value\":{}}}", m.name, m.value);
                }
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders one snapshot as Prometheus text exposition (`wwt_`-prefixed
/// gauges; per-shard instruments become a `shard` label).
pub fn render_prometheus(s: &ObsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for m in &s.samples {
        if m.name != last_name {
            let _ = writeln!(out, "# TYPE wwt_{} gauge", m.name);
            last_name = m.name;
        }
        match m.shard {
            Some(sh) => {
                let _ = writeln!(out, "wwt_{}{{shard=\"{sh}\"}} {}", m.name, m.value);
            }
            None => {
                let _ = writeln!(out, "wwt_{} {}", m.name, m.value);
            }
        }
    }
    let _ = writeln!(out, "wwt_obs_elapsed_ms {}", s.elapsed_ms);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that reset or toggle the global registry.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_gated_updates_are_dropped() {
        let _g = LOCK.lock().unwrap();
        disable();
        let before = counter(Ctr::SimCallInline);
        count(Ctr::SimCallInline, 5);
        shard_count(ShardCtr::SimEventsPopped, 0, 5);
        shard_max(ShardGauge::SimQueueDepthHwm, 0, 999_999);
        record_wall_us(123);
        assert_eq!(counter(Ctr::SimCallInline), before);
        // Ungated cache counters tick anyway.
        let cb = counter(Ctr::CacheHits);
        count_always(Ctr::CacheHits, 2);
        assert_eq!(counter(Ctr::CacheHits), cb + 2);
    }

    #[test]
    fn enabled_counters_and_gauges_accumulate() {
        let _g = LOCK.lock().unwrap();
        enable();
        reset();
        count(Ctr::SimCallBoxed, 3);
        shard_count(ShardCtr::SimEventsPushed, 2, 7);
        shard_max(ShardGauge::SimQueueDepthHwm, 2, 40);
        shard_max(ShardGauge::SimQueueDepthHwm, 2, 10); // below HWM: no-op
        assert_eq!(counter(Ctr::SimCallBoxed), 3);
        assert_eq!(shard_counter(ShardCtr::SimEventsPushed, 2), 7);
        assert_eq!(shard_gauge(ShardGauge::SimQueueDepthHwm, 2), 40);
        // Out-of-range shards clamp instead of panicking.
        shard_count(ShardCtr::SimEventsPushed, MAX_SHARDS + 10, 1);
        assert_eq!(shard_counter(ShardCtr::SimEventsPushed, MAX_SHARDS - 1), 1);
        disable();
    }

    #[test]
    fn snapshot_carries_only_nonzero_samples() {
        let _g = LOCK.lock().unwrap();
        enable();
        reset();
        count(Ctr::SimCallInline, 10);
        shard_count(ShardCtr::SimEventsPopped, 1, 4);
        let s = snapshot_now();
        assert!(s.samples.iter().all(|m| m.value != 0), "{s:?}");
        assert_eq!(get(&s, "sim_call_inline", None), 10);
        assert_eq!(get(&s, "sim_events_popped", Some(1)), 4);
        assert_eq!(get(&s, "sim_events_popped", Some(0)), 0);
        disable();
    }

    #[test]
    fn flight_recorder_is_a_bounded_ring() {
        let _g = LOCK.lock().unwrap();
        enable();
        reset();
        for i in 0..(FLIGHT_RECORDER_CAP + 3) {
            count(Ctr::GridExperimentsRun, 1);
            record_snapshot();
            let snaps = recent_snapshots();
            assert!(snaps.len() <= FLIGHT_RECORDER_CAP, "round {i}");
        }
        let snaps = recent_snapshots();
        assert_eq!(snaps.len(), FLIGHT_RECORDER_CAP);
        // Oldest first: the retained run counts are the *last* N.
        let runs: Vec<u64> = snaps
            .iter()
            .map(|s| get(s, "grid_experiments_run", None))
            .collect();
        assert!(runs.windows(2).all(|w| w[0] < w[1]), "{runs:?}");
        assert_eq!(*runs.last().unwrap(), (FLIGHT_RECORDER_CAP + 3) as u64);
        disable();
    }

    #[test]
    fn failure_snapshots_empty_when_disabled() {
        let _g = LOCK.lock().unwrap();
        disable();
        assert!(failure_snapshots().is_empty());
        enable();
        reset();
        count(Ctr::SimCallInline, 1);
        let snaps = failure_snapshots();
        assert_eq!(snaps.len(), 1, "recorder empty: just the fresh snapshot");
        record_snapshot();
        assert_eq!(failure_snapshots().len(), 2);
        disable();
    }

    #[test]
    fn snapshot_line_format_is_stable() {
        let s = ObsSnapshot {
            elapsed_ms: 120,
            samples: vec![
                ObsSample {
                    name: "sim_events_popped",
                    shard: Some(0),
                    value: 42,
                },
                ObsSample {
                    name: "cache_hits",
                    shard: None,
                    value: 3,
                },
            ],
        };
        assert_eq!(
            render_snapshot_line(&s),
            "[t+120ms] sim_events_popped{shard=0}=42 cache_hits=3"
        );
        assert_eq!(
            render_snapshot_line(&ObsSnapshot::default()),
            "[t+0ms] (all metrics zero)"
        );
    }

    #[test]
    fn exporters_render_valid_shapes() {
        let s = ObsSnapshot {
            elapsed_ms: 5,
            samples: vec![
                ObsSample {
                    name: "cache_hits",
                    shard: None,
                    value: 3,
                },
                ObsSample {
                    name: "sim_events_popped",
                    shard: Some(1),
                    value: 9,
                },
            ],
        };
        let json = render_json(std::slice::from_ref(&s));
        assert!(json.starts_with("{\"snapshots\":["));
        assert!(json.contains("\"name\":\"sim_events_popped\",\"shard\":1,\"value\":9"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let prom = render_prometheus(&s);
        assert!(prom.contains("# TYPE wwt_cache_hits gauge"));
        assert!(prom.contains("wwt_cache_hits 3"));
        assert!(prom.contains("wwt_sim_events_popped{shard=\"1\"} 9"));
    }

    #[test]
    fn wall_histogram_percentiles_are_monotone() {
        let _g = LOCK.lock().unwrap();
        enable();
        reset();
        for v in [100u64, 200, 400, 800, 100_000] {
            record_wall_us(v);
        }
        let p50 = wall_us_percentile(50);
        let p90 = wall_us_percentile(90);
        assert!(p50 > 0 && p50 <= p90, "p50={p50} p90={p90}");
        let s = snapshot_now();
        assert_eq!(get(&s, "grid_exp_wall_us_count", None), 5);
        assert!(get(&s, "grid_exp_wall_us_max", None) >= 100_000);
        disable();
    }

    #[test]
    fn jobs_occupancy_tracks_the_peak() {
        let _g = LOCK.lock().unwrap();
        enable();
        reset();
        job_enter();
        job_enter();
        job_exit();
        job_enter();
        let s = snapshot_now();
        assert_eq!(get(&s, "grid_jobs_peak", None), 2);
        job_exit();
        job_exit();
        job_exit(); // extra exits saturate at zero
        disable();
    }
}
