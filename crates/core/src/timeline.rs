//! ASCII activity timelines: *where* in time each processor's cycles go.
//!
//! The paper's tables answer "where is time spent" in aggregate; a
//! timeline shows the same attribution resolved over the run. Enable
//! profiling with [`run_experiment_with`](crate::run_experiment_with)
//! (set [`wwt_sim::SimConfig::profile_bucket`]) and render with
//! [`render_timeline`].

use std::fmt::Write as _;
use std::{error, fmt};

use wwt_sim::{CycleMatrix, Kind, Scope, SimReport};

/// Why a timeline could not be rendered.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TimelineError {
    /// The run recorded no time-resolved profile: it was executed without
    /// [`wwt_sim::SimConfig::profile_bucket`].
    NotProfiled,
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::NotProfiled => write!(
                f,
                "run was not profiled: set SimConfig::profile_bucket \
                 (e.g. via run_experiment_with) and re-run"
            ),
        }
    }
}

impl error::Error for TimelineError {}

/// The display categories of a timeline cell, most-specific first.
const LEGEND: &[(char, &str)] = &[
    ('#', "computation"),
    ('L', "library / collective computation"),
    ('n', "network interface access"),
    ('m', "local (private) misses"),
    ('S', "shared misses"),
    ('W', "write faults"),
    ('B', "barrier wait"),
    ('l', "lock wait"),
    ('s', "start-up wait"),
    ('.', "other waiting"),
    (' ', "idle / finished"),
];

fn classify(m: &CycleMatrix) -> char {
    // Pick the dominant category of the bucket.
    let app_comp = m.get(Scope::App, Kind::Compute);
    let lib_comp: u64 = [Scope::Lib, Scope::Broadcast, Scope::Reduction, Scope::Sync]
        .into_iter()
        .map(|s| m.get(s, Kind::Compute) + m.get(s, Kind::Wait))
        .sum();
    let net = m.by_kind(Kind::NetAccess);
    let priv_miss = m.by_kind(Kind::PrivMiss) + m.by_kind(Kind::TlbMiss);
    let shared = m.by_kind(Kind::ShMissLocal) + m.by_kind(Kind::ShMissRemote);
    let wfault = m.by_kind(Kind::WriteFault);
    let barrier = m.by_kind(Kind::BarrierWait);
    let lock = m.by_scope(Scope::Lock) + m.by_kind(Kind::LockWait);
    let startup = m.by_scope(Scope::Startup);
    let wait = m.get(Scope::App, Kind::Wait);
    let cats = [
        (app_comp, '#'),
        (lib_comp, 'L'),
        (net, 'n'),
        (priv_miss, 'm'),
        (shared, 'S'),
        (wfault, 'W'),
        (barrier, 'B'),
        (lock, 'l'),
        (startup, 's'),
        (wait, '.'),
    ];
    cats.into_iter()
        .max_by_key(|&(v, _)| v)
        .filter(|&(v, _)| v > 0)
        .map(|(_, c)| c)
        .unwrap_or(' ')
}

/// Renders per-processor activity timelines from a profiled run.
///
/// `bucket` must be the [`wwt_sim::SimConfig::profile_bucket`] the run was
/// profiled with; `cols` is the output width (profile buckets are
/// re-aggregated to fit). Fails with [`TimelineError::NotProfiled`] if the
/// run recorded no profile.
pub fn render_timeline(
    report: &SimReport,
    bucket: u64,
    cols: usize,
) -> Result<String, TimelineError> {
    let elapsed = report.elapsed().max(1);
    if report.procs().all(|p| p.profile.is_empty()) {
        return Err(TimelineError::NotProfiled);
    }
    let cols = cols.max(10);
    let per_col = elapsed.div_ceil(cols as u64); // cycles per output column
    let mut out = String::new();
    let _ = writeln!(
        out,
        "activity timeline — {} cycles/column, {} cycles total",
        per_col, elapsed
    );
    for p in report.procs() {
        let mut row = String::with_capacity(cols);
        for c in 0..cols {
            let t0 = c as u64 * per_col;
            let t1 = (t0 + per_col).min(elapsed);
            if t0 >= report.proc(p.id).clock {
                row.push(' ');
                continue;
            }
            // Merge the profile buckets overlapping [t0, t1).
            let mut merged = CycleMatrix::new();
            let b0 = (t0 / bucket) as usize;
            let b1 = (t1.saturating_sub(1) / bucket) as usize;
            for b in b0..=b1.min(p.profile.len().saturating_sub(1)) {
                if let Some(m) = p.profile.get(b) {
                    merged.merge(m);
                }
            }
            row.push(classify(&merged));
        }
        let _ = writeln!(out, "{:>4} |{row}|", p.id.to_string());
    }
    let _ = writeln!(out, "\nlegend:");
    for (c, label) in LEGEND {
        let _ = writeln!(out, "  '{c}' {label}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment_with, Experiment, Scale};
    use wwt_sim::SimConfig;

    #[test]
    fn profiled_run_renders_a_timeline() {
        let sim = SimConfig {
            profile_bucket: Some(2_000),
            ..SimConfig::default()
        };
        let out = run_experiment_with(Experiment::GaussSm, Scale::Test, sim);
        let t = render_timeline(&out.run.report, 2_000, 80).unwrap();
        assert!(t.contains("activity timeline"));
        assert!(t.contains('#'), "computation must appear:\n{t}");
        // One row per processor plus header and legend.
        let rows = t.lines().filter(|l| l.contains('|')).count();
        assert_eq!(rows, out.run.report.nprocs());
    }

    #[test]
    fn unprofiled_run_is_a_clear_error() {
        let out = crate::run_experiment(Experiment::GaussMp, Scale::Test);
        let err = render_timeline(&out.run.report, 1_000, 80).unwrap_err();
        assert_eq!(err, TimelineError::NotProfiled);
        assert!(err.to_string().contains("profile_bucket"), "{err}");
    }

    #[test]
    fn profile_buckets_sum_to_the_total_matrix() {
        let sim = SimConfig {
            profile_bucket: Some(1_000),
            ..SimConfig::default()
        };
        let out = run_experiment_with(Experiment::LcpSm, Scale::Test, sim);
        for p in out.run.report.procs() {
            let mut sum = CycleMatrix::new();
            for b in &p.profile {
                sum.merge(b);
            }
            assert_eq!(sum, p.matrix, "{}: profile must cover every charge", p.id);
        }
    }

    #[test]
    fn classify_prefers_the_dominant_category() {
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 10);
        m.add(Scope::App, Kind::BarrierWait, 90);
        assert_eq!(classify(&m), 'B');
        assert_eq!(classify(&CycleMatrix::new()), ' ');
    }

    #[test]
    fn classify_covers_every_legend_category() {
        let cases: [(&[(Scope, Kind)], char); 10] = [
            (&[(Scope::App, Kind::Compute)], '#'),
            (&[(Scope::Lib, Kind::Compute)], 'L'),
            (&[(Scope::App, Kind::NetAccess)], 'n'),
            (&[(Scope::App, Kind::PrivMiss)], 'm'),
            (&[(Scope::App, Kind::ShMissRemote)], 'S'),
            (&[(Scope::App, Kind::WriteFault)], 'W'),
            (&[(Scope::App, Kind::BarrierWait)], 'B'),
            (&[(Scope::Lock, Kind::LockWait)], 'l'),
            (&[(Scope::Startup, Kind::Wait)], 's'),
            (&[(Scope::App, Kind::Wait)], '.'),
        ];
        for (cells, want) in cases {
            let mut m = CycleMatrix::new();
            for &(s, k) in cells {
                m.add(s, k, 100);
            }
            assert_eq!(classify(&m), want, "cells {cells:?}");
            // Every classification character appears in the legend.
            assert!(LEGEND.iter().any(|&(c, _)| c == want));
        }
    }

    #[test]
    fn classify_breaks_ties_toward_the_later_category() {
        // max_by_key keeps the last maximum, so on an exact tie the
        // later (more wait-like) category wins. This is load-bearing for
        // rendering: a bucket evenly split between compute and barrier
        // shows as barrier.
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 50);
        m.add(Scope::App, Kind::BarrierWait, 50);
        assert_eq!(classify(&m), 'B');
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 50);
        m.add(Scope::Lib, Kind::Compute, 50);
        assert_eq!(classify(&m), 'L');
    }

    #[test]
    fn classify_ignores_zero_filled_matrices() {
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 0);
        assert_eq!(classify(&m), ' ', "explicit zeros are still idle");
    }
}
