//! The experiment grid runner: run-once artifact derivation, experiment-
//! level parallelism, and a persistent run cache.
//!
//! Reproducing the paper means running an 18-experiment grid, and every
//! downstream consumer — the breakdown report, the activity timelines,
//! the Perfetto trace, the latency histograms, the JSON export — used to
//! re-simulate the experiment from scratch. This module fixes all three
//! costs at once:
//!
//! * **Run-once reuse.** [`run_grid`] simulates each selected experiment
//!   exactly once, with the *union* [`wwt_sim::SimConfig`] of everything
//!   requested (time-resolved profiling for timelines, structured tracing
//!   for exports), and derives every artifact from that single
//!   [`ExperimentOutput`](crate::ExperimentOutput).
//! * **Grid fan-out.** The engine is deliberately single-threaded
//!   (`Rc`/`RefCell` target tasks), so parallelism lives at the
//!   experiment level: [`RunnerConfig::jobs`] workers pull experiments
//!   from a shared queue and results are re-assembled in registry order.
//!   Because each simulation is deterministic and rendering happens from
//!   per-experiment summaries, the rendered report is **byte-identical
//!   regardless of job count**.
//! * **Run caching.** With [`RunnerConfig::cache_dir`] set, each
//!   experiment's artifacts persist keyed by (experiment, scale, engine
//!   config hash); a repeated invocation with an unchanged configuration
//!   replays from disk without simulating. See [`crate::cache`].
//!
//! Wall-clock timing per experiment is reported in
//! [`ExperimentArtifacts::wall_secs`] so callers can surface grid timing
//! (e.g. `make_tables`' `BENCH_grid.json`) without touching the
//! deterministic report text.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use wwt_arch::ArchParams;

use crate::cache;
use crate::experiment::{
    try_run_experiment_with_arch, Experiment, ExperimentSummary, Scale, ENGINE_FAILURE_PREFIX,
};
use crate::paper::{headline_checks, paper_reference};
use crate::timeline::render_timeline;

/// How [`run_grid`] executes a set of experiments.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Workload scale for every experiment.
    pub scale: Scale,
    /// Worker threads. `1` runs sequentially; values are clamped to the
    /// number of selected experiments.
    pub jobs: usize,
    /// Render a per-processor activity timeline for every experiment
    /// (enables time-resolved profiling in the engine).
    pub timeline: bool,
    /// Produce trace artifacts (Perfetto JSON, latency histograms, result
    /// JSON) for every experiment. Requires the `trace-json` feature; the
    /// flag is ignored without it.
    pub trace: bool,
    /// When set, persist and reuse per-experiment artifacts under this
    /// directory (created on demand).
    pub cache_dir: Option<PathBuf>,
    /// Deterministic fault-injection plan, applied to every experiment.
    /// Participates in the run-cache key (through the engine
    /// configuration), so faulted and fault-free artifacts never mix.
    pub faults: Option<wwt_sim::FaultConfig>,
    /// The hardware base every experiment runs on (the paper's Table-1
    /// machine by default). Participates in the run-cache key, so
    /// different architecture points never mix.
    pub arch: ArchParams,
    /// Record phase marks at barriers/collectives and derive a
    /// [`wwt_diff::RunProfile`] per experiment (the `--diff` input).
    /// Participates in the run-cache key through the engine
    /// configuration.
    pub phases: bool,
    /// Scheduler shards per simulation (`SimConfig::sim_threads`): the
    /// quantum-synchronized engine's per-processor event-queue sharding.
    /// Results are byte-identical for every value; it composes with
    /// `jobs`, which parallelizes across experiments. Participates in the
    /// run-cache key through the engine configuration.
    pub sim_threads: usize,
    /// How many times a transiently-failed job (watchdog expiry — the
    /// stall class that can clear on a re-run) is re-attempted before its
    /// cell is reported failed. Deterministic failures (deadlock, config
    /// errors, panics) are never retried.
    pub retries: u32,
    /// Backoff before the first retry, doubling per attempt. Milliseconds.
    pub retry_backoff_ms: u64,
}

impl RunnerConfig {
    /// A sequential, artifact-free, uncached configuration — exactly what
    /// the plain breakdown report needs.
    pub fn new(scale: Scale) -> Self {
        RunnerConfig {
            scale,
            jobs: 1,
            timeline: false,
            trace: false,
            cache_dir: None,
            faults: None,
            arch: ArchParams::default(),
            phases: false,
            sim_threads: 1,
            retries: 2,
            retry_backoff_ms: 50,
        }
    }

    /// The union engine configuration: one simulation that can feed every
    /// requested artifact.
    pub(crate) fn sim_config(&self) -> wwt_sim::SimConfig {
        wwt_sim::SimConfig {
            profile_bucket: self.timeline.then(|| timeline_bucket(self.scale)),
            trace: self.trace && cfg!(feature = "trace-json"),
            phase_marks: self.phases,
            faults: self.faults,
            // Faulted runs can stall in ways fault-free runs cannot
            // (e.g. a permanent fail window silences one node), so give
            // them a progress watchdog instead of an open-ended hang.
            watchdog: self.faults.is_some().then_some(10_000_000),
            sim_threads: self.sim_threads.max(1),
            ..wwt_sim::SimConfig::default()
        }
    }
}

/// The profile bucket used for timeline rendering: a few hundred samples
/// at either scale.
pub fn timeline_bucket(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 200_000,
        Scale::Test => 2_000,
    }
}

/// Trace-derived artifacts of one experiment run (the `--trace`,
/// `--metrics`, and `--json` outputs of `make_tables`).
#[cfg(feature = "trace-json")]
#[derive(Clone, Debug, PartialEq)]
pub struct TraceArtifacts {
    /// Chrome trace-event / Perfetto JSON.
    pub perfetto: String,
    /// Latency histograms as JSON.
    pub metrics_json: String,
    /// Latency histograms as an ASCII table.
    pub metrics_table: String,
    /// The experiment result (tables, validation, summary) as JSON.
    pub experiment_json: String,
}

/// Everything one experiment contributes to a grid run: the reportable
/// summary plus any requested rendered artifacts, all derived from a
/// single simulation (or replayed from the run cache).
#[derive(Clone, Debug)]
pub struct ExperimentArtifacts {
    /// Which experiment.
    pub experiment: Experiment,
    /// The reportable projection of the run.
    pub summary: ExperimentSummary,
    /// The rendered timeline section, when requested.
    pub timeline: Option<String>,
    /// Trace exports, when requested.
    #[cfg(feature = "trace-json")]
    pub trace: Option<TraceArtifacts>,
    /// The phase-structured run profile (the `--diff` input), when
    /// requested via [`RunnerConfig::phases`].
    pub phases: Option<wwt_diff::RunProfile>,
    /// Wall-clock seconds this invocation spent producing the artifacts
    /// (near zero on a cache hit).
    pub wall_secs: f64,
    /// Whether the artifacts were replayed from the run cache.
    pub from_cache: bool,
}

/// Does a (possibly cached) artifact set cover everything `cfg` asks for?
fn covers(a: &ExperimentArtifacts, cfg: &RunnerConfig) -> bool {
    if cfg.timeline && a.timeline.is_none() {
        return false;
    }
    #[cfg(feature = "trace-json")]
    if cfg.trace && a.trace.is_none() {
        return false;
    }
    if cfg.phases && a.phases.is_none() {
        return false;
    }
    true
}

/// Runs one experiment and derives every requested artifact from the
/// single simulation, consulting the cache first. The job boundary is
/// where the grid's resilience lives: a panicking experiment is caught
/// and reported as a failed cell (never a dead grid), and transient
/// failures are re-attempted with exponential backoff.
fn run_one(e: Experiment, cfg: &RunnerConfig) -> ExperimentArtifacts {
    let start = Instant::now();
    wwt_obs::job_enter();
    let (mut art, mut transient) = run_one_caught(e, cfg, start);
    let mut attempt = 0;
    while transient && attempt < cfg.retries {
        attempt += 1;
        wwt_obs::count_always(wwt_obs::Ctr::GridJobRetries, 1);
        eprintln!(
            "warning: {} failed transiently ({}); retry {attempt}/{}",
            e.id(),
            art.summary.validation_detail,
            cfg.retries
        );
        // Exponential backoff: transient stalls and IO hiccups often
        // share a cause with their neighbors (a loaded host); spreading
        // retries out beats hammering.
        std::thread::sleep(std::time::Duration::from_millis(
            cfg.retry_backoff_ms.saturating_mul(1 << (attempt - 1)),
        ));
        (art, transient) = run_one_caught(e, cfg, start);
    }
    wwt_obs::job_exit();
    wwt_obs::count_always(wwt_obs::Ctr::GridExperimentsRun, 1);
    if art.from_cache {
        wwt_obs::count_always(wwt_obs::Ctr::GridExperimentsCached, 1);
    }
    wwt_obs::record_wall_us(start.elapsed().as_micros() as u64);
    art
}

/// [`run_one_inner`] behind `catch_unwind`: a panic anywhere in the
/// simulation or artifact derivation becomes a failed cell. The closure
/// only touches `&`-captures and builds its state from scratch, so
/// `AssertUnwindSafe` is sound — nothing observable survives the unwind.
fn run_one_caught(
    e: Experiment,
    cfg: &RunnerConfig,
    start: Instant,
) -> (ExperimentArtifacts, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_one_inner(e, cfg, start)
    })) {
        Ok(result) => result,
        Err(payload) => {
            wwt_obs::count_always(wwt_obs::Ctr::GridJobPanics, 1);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            // Panics are deterministic bugs, not transient weather:
            // report the cell failed, don't retry.
            (panic_artifacts(e, cfg, &msg, start), false)
        }
    }
}

/// Runs the job once. The second return value is whether a failure is
/// *transient* — worth retrying.
fn run_one_inner(e: Experiment, cfg: &RunnerConfig, start: Instant) -> (ExperimentArtifacts, bool) {
    // Test hook: panic inside the job for the named experiment, proving
    // the catch_unwind boundary turns panics into failed cells.
    if std::env::var("WWT_TEST_PANIC_EXPERIMENT").is_ok_and(|id| id == e.id()) {
        panic!("injected test panic in {}", e.id());
    }
    let sim = cfg.sim_config();
    let fixup = |mut hit: ExperimentArtifacts| {
        hit.wall_secs = start.elapsed().as_secs_f64();
        hit.from_cache = true;
        hit
    };
    // The lock guard must outlive the commit in `cache::save`, so it
    // lives at function scope.
    let _write_lock;
    if let Some(dir) = &cfg.cache_dir {
        if let Some(hit) =
            cache::load(dir, e, cfg.scale, &sim, &cfg.arch).filter(|hit| covers(hit, cfg))
        {
            return (fixup(hit), false);
        }
        // Miss: take the per-entry writer lock so concurrent runners
        // (worker threads or separate processes) simulate this point
        // once. Whoever loses the race blocks here, then replays the
        // winner's entry on the re-check below.
        let name = cache::entry_name(e, cfg.scale, &sim, &cfg.arch);
        _write_lock = wwt_store::Store::open(dir).lock(&name);
        if let Some(hit) =
            cache::load_recheck(dir, e, cfg.scale, &sim, &cfg.arch).filter(|hit| covers(hit, cfg))
        {
            return (fixup(hit), false);
        }
    }

    let out = match try_run_experiment_with_arch(e, cfg.scale, sim, cfg.arch) {
        Ok(out) => out,
        Err(err) => {
            // Watchdog expiry is the stall class that can clear on a
            // re-run (it is a bound on progress, not proof of a cycle);
            // deadlocks and config errors are deterministic.
            let transient = matches!(err, wwt_sim::SimError::Livelock { .. });
            return (failure_artifacts(e, cfg, &err, start), transient);
        }
    };
    let timeline = cfg.timeline.then(|| {
        let bucket = timeline_bucket(cfg.scale);
        let rendered = render_timeline(&out.run.report, bucket, 100)
            .expect("run was profiled, so a timeline must render");
        format!("\n### {} — timeline\n{}", e.id(), rendered)
    });
    #[cfg(feature = "trace-json")]
    let trace = (cfg.trace).then(|| {
        let report = &out.run.report;
        let data = report.trace().expect("tracing was enabled");
        TraceArtifacts {
            perfetto: wwt_trace::chrome_trace_json(report).expect("tracing was enabled"),
            metrics_json: wwt_trace::metrics_json(&data.metrics),
            metrics_table: wwt_trace::metrics_table(&data.metrics),
            experiment_json: crate::export::experiment_json(&out),
        }
    });
    let phases = cfg
        .phases
        .then(|| wwt_diff::RunProfile::from_report(&out.run.report));
    let art = ExperimentArtifacts {
        experiment: e,
        summary: out.summary(),
        timeline,
        #[cfg(feature = "trace-json")]
        trace,
        phases,
        wall_secs: start.elapsed().as_secs_f64(),
        from_cache: false,
    };
    if let Some(dir) = &cfg.cache_dir {
        // Best-effort: a full disk or read-only tree must not fail the
        // run. The write lock is still held here, so concurrent racers
        // observe either no entry or this complete commit.
        let _ = cache::save(dir, &art, &sim, &cfg.arch);
    }
    (art, false)
}

/// Artifacts for an experiment whose job panicked: the panic message
/// lands in `validation_detail` behind the engine-failure prefix, so the
/// failed cell flows through reporting (and `engine_failed()`) exactly
/// like a stalled simulation. Never cached, never retried.
fn panic_artifacts(
    e: Experiment,
    cfg: &RunnerConfig,
    msg: &str,
    start: Instant,
) -> ExperimentArtifacts {
    ExperimentArtifacts {
        experiment: e,
        summary: ExperimentSummary {
            experiment: e,
            scale: cfg.scale,
            validation_passed: false,
            validation_detail: format!("{ENGINE_FAILURE_PREFIX}panic: {msg}"),
            stats: Vec::new(),
            imbalance: 0.0,
            wait_fraction: 0.0,
            tables: Vec::new(),
            events: Vec::new(),
        },
        timeline: None,
        #[cfg(feature = "trace-json")]
        trace: None,
        phases: None,
        wall_secs: start.elapsed().as_secs_f64(),
        from_cache: false,
    }
}

/// Artifacts for an experiment whose simulation stalled (deadlock,
/// livelock, or watchdog expiry): the structured stall report lands in
/// `validation_detail` with `validation_passed = false`, so the grid can
/// finish the remaining experiments and the report shows exactly which
/// run failed and why. Failure artifacts are **never cached** — a retry
/// after a fix must re-simulate.
fn failure_artifacts(
    e: Experiment,
    cfg: &RunnerConfig,
    err: &wwt_sim::SimError,
    start: Instant,
) -> ExperimentArtifacts {
    ExperimentArtifacts {
        experiment: e,
        summary: ExperimentSummary {
            experiment: e,
            scale: cfg.scale,
            validation_passed: false,
            validation_detail: format!("{ENGINE_FAILURE_PREFIX}{err}"),
            stats: Vec::new(),
            imbalance: 0.0,
            wait_fraction: 0.0,
            tables: Vec::new(),
            events: Vec::new(),
        },
        timeline: None,
        #[cfg(feature = "trace-json")]
        trace: None,
        phases: None,
        wall_secs: start.elapsed().as_secs_f64(),
        from_cache: false,
    }
}

/// Runs every experiment in `experiments`, fanning out across
/// [`RunnerConfig::jobs`] worker threads, and returns the artifacts **in
/// input order** — the caller renders them without caring how the work
/// was scheduled.
pub fn run_grid(experiments: &[Experiment], cfg: &RunnerConfig) -> Vec<ExperimentArtifacts> {
    let jobs = cfg.jobs.clamp(1, experiments.len().max(1));
    let arts: Vec<ExperimentArtifacts> = if jobs == 1 {
        experiments.iter().map(|&e| run_one(e, cfg)).collect()
    } else {
        // The engine is single-threaded by design (Rc/RefCell target
        // tasks), so parallelize across experiments: a shared index is
        // the work queue, and each result lands in its input slot.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ExperimentArtifacts>>> =
            experiments.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&e) = experiments.get(i) else {
                        break;
                    };
                    let art = run_one(e, cfg);
                    *slots[i].lock().unwrap() = Some(art);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("every slot is filled before the scope joins")
            })
            .collect()
    };
    // Close the grid with a stderr summary of every cell that stayed
    // failed after retries — one place to look instead of scrolling back
    // through interleaved worker output. Stdout stays artifact-only.
    let failed: Vec<&ExperimentArtifacts> =
        arts.iter().filter(|a| a.summary.engine_failed()).collect();
    if !failed.is_empty() {
        eprintln!(
            "grid: {}/{} cells failed after {} retr{}:",
            failed.len(),
            arts.len(),
            cfg.retries,
            if cfg.retries == 1 { "y" } else { "ies" }
        );
        for a in &failed {
            eprintln!("  {}: {}", a.experiment.id(), a.summary.validation_detail);
        }
    }
    arts
}

/// Renders one experiment's report section (validation, stats, load
/// balance, and its breakdown and event tables).
pub fn render_section(s: &ExperimentSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n### {} ({})",
        s.experiment.id(),
        s.experiment.paper_tables()
    );
    let _ = writeln!(
        out,
        "validation: {} — {}",
        if s.validation_passed { "PASS" } else { "FAIL" },
        s.validation_detail
    );
    for (name, v) in &s.stats {
        let _ = writeln!(out, "stat: {name} = {v}");
    }
    let _ = writeln!(
        out,
        "load imbalance: {:.1}%; waiting: {:.0}% of all cycles",
        100.0 * s.imbalance,
        100.0 * s.wait_fraction
    );
    for t in &s.tables {
        let _ = writeln!(out, "\n{t}");
    }
    for t in &s.events {
        let _ = writeln!(out, "\n{t}");
    }
    out
}

/// Assembles the full grid report from per-experiment artifacts: the
/// measured sections in order, the paper's published values for the
/// experiments present, and the headline shape checks. Purely a function
/// of the summaries, so the text is identical whether the artifacts came
/// from one worker, many, or the run cache.
pub fn render_report(artifacts: &[ExperimentArtifacts], scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "WWT reproduction — {} scale\n{}",
        scale.name(),
        "=".repeat(70)
    );
    let mut results: HashMap<Experiment, ExperimentSummary> = HashMap::new();
    for a in artifacts {
        out.push_str(&render_section(&a.summary));
        results.insert(a.experiment, a.summary.clone());
    }

    let _ = writeln!(
        out,
        "\n{}\nPaper-published values (for comparison)\n{0}",
        "-".repeat(70)
    );
    for t in paper_reference() {
        if results.contains_key(&t.experiment) {
            let _ = writeln!(
                out,
                "\nPaper Table {}: {} (total {:.1}M)",
                t.number, t.title, t.total
            );
            for (label, v) in t.rows {
                let _ = writeln!(out, "  {label:<28} {v:>8.1}M {:>4.0}%", 100.0 * v / t.total);
            }
        }
    }

    let _ = writeln!(out, "\n{}\nHeadline shape checks\n{0}", "-".repeat(70));
    let checks = headline_checks(&results);
    let passed = checks.iter().filter(|c| c.pass).count();
    for c in &checks {
        let _ = writeln!(out, "\n{c}");
    }
    let _ = writeln!(out, "\n{passed}/{} headline checks pass", checks.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_grid_renders_sections_in_input_order() {
        let cfg = RunnerConfig::new(Scale::Test);
        let es = [Experiment::GaussSm, Experiment::GaussMp];
        let arts = run_grid(&es, &cfg);
        assert_eq!(arts.len(), 2);
        assert_eq!(arts[0].experiment, Experiment::GaussSm);
        assert_eq!(arts[1].experiment, Experiment::GaussMp);
        let report = render_report(&arts, Scale::Test);
        let sm = report.find("### gauss-sm").unwrap();
        let mp = report.find("### gauss-mp").unwrap();
        assert!(sm < mp, "sections must follow input order");
    }

    #[test]
    fn timeline_artifacts_only_appear_when_requested() {
        let mut cfg = RunnerConfig::new(Scale::Test);
        let arts = run_grid(&[Experiment::LcpMp], &cfg);
        assert!(arts[0].timeline.is_none());
        cfg.timeline = true;
        let arts = run_grid(&[Experiment::LcpMp], &cfg);
        let t = arts[0].timeline.as_deref().unwrap();
        assert!(t.contains("### lcp-mp — timeline"));
        assert!(t.contains('|'));
    }
}
