//! The paper's reported numbers and the headline shape checks.
//!
//! Absolute cycle counts cannot be expected to match — the substrate is a
//! reimplementation, not the authors' instrumented SPARC binaries — but
//! the paper's *conclusions* are relations between measurements: who
//! wins, by roughly what factor, and where the time goes. This module
//! records the paper's table values for side-by-side reporting and
//! encodes the conclusions as machine-checkable relations.

use std::collections::HashMap;
use std::fmt;

use crate::experiment::{Experiment, ExperimentSummary};

/// One of the paper's tables, as published (cycle values in millions).
#[derive(Clone, Debug, PartialEq)]
pub struct PaperTable {
    /// Table number in the paper.
    pub number: u32,
    /// Caption.
    pub title: &'static str,
    /// The experiment that reproduces it.
    pub experiment: Experiment,
    /// (row label, millions of cycles) as published.
    pub rows: &'static [(&'static str, f64)],
    /// Total in millions of cycles.
    pub total: f64,
}

/// The paper's execution-time breakdown tables (Tables 4–21, cycles in
/// millions, 32 processors).
pub fn paper_reference() -> Vec<PaperTable> {
    vec![
        PaperTable {
            number: 4,
            title: "MSE Message Passing (MSE-MP)",
            experiment: Experiment::MseMp,
            rows: &[
                ("Computation", 1115.9),
                ("Local Misses", 53.2),
                ("Communication", 72.0),
                ("Lib Comp", 69.9),
                ("Network Access", 2.1),
            ],
            total: 1241.1,
        },
        PaperTable {
            number: 5,
            title: "MSE Shared Memory (MSE-SM)",
            experiment: Experiment::MseSm,
            rows: &[
                ("Computation", 1043.8),
                ("Cache Misses", 62.7),
                ("Synchronization", 161.3),
                ("Barriers", 76.0),
                ("Start-up Wait", 80.0),
            ],
            total: 1267.8,
        },
        PaperTable {
            number: 8,
            title: "Gauss Message Passing (Gauss-MP)",
            experiment: Experiment::GaussMp,
            rows: &[
                ("Computation", 40.8),
                ("Local Misses", 0.2),
                ("Broadcast/Reduction", 30.0),
                ("Lib Comp", 23.6),
                ("Barriers", 1.2),
                ("Network Access", 4.7),
            ],
            total: 71.0,
        },
        PaperTable {
            number: 9,
            title: "Gauss Shared Memory (Gauss-SM)",
            experiment: Experiment::GaussSm,
            rows: &[
                ("Computation", 39.5),
                ("Cache Misses", 17.1),
                ("Reductions", 4.5),
                ("Barriers", 11.6),
            ],
            total: 72.7,
        },
        PaperTable {
            number: 12,
            title: "EM3D Message Passing (EM3D-MP), total",
            experiment: Experiment::Em3dMp,
            rows: &[
                ("Computation", 50.5),
                ("Local Misses", 15.0),
                ("Communication", 21.0),
                ("Lib Comp", 16.8),
                ("Network Access", 3.9),
            ],
            total: 86.4,
        },
        PaperTable {
            number: 14,
            title: "EM3D Shared Memory (EM3D-SM), total",
            experiment: Experiment::Em3dSm,
            rows: &[
                ("Computation", 43.7),
                ("Data Access", 109.8),
                ("Shared Misses", 97.0),
                ("Write Faults", 12.2),
                ("Synchronization", 18.4),
                ("Locks", 6.9),
                ("Barriers", 10.3),
            ],
            total: 172.1,
        },
        PaperTable {
            number: 16,
            title: "EM3D-SM, 1 MB cache (main loop)",
            experiment: Experiment::Em3dSm1Mb,
            rows: &[
                ("Computation", 26.5),
                ("Data Access", 33.1),
                ("Shared Misses", 22.1),
                ("Write Faults", 10.9),
            ],
            total: 61.0,
        },
        PaperTable {
            number: 17,
            title: "EM3D-SM, local allocation (main loop)",
            experiment: Experiment::Em3dSmLocal,
            rows: &[
                ("Computation", 26.5),
                ("Data Access", 58.9),
                ("Shared Misses", 52.3),
            ],
            total: 86.3,
        },
        PaperTable {
            number: 18,
            title: "LCP Message Passing (LCP-MP)",
            experiment: Experiment::LcpMp,
            rows: &[
                ("Computation", 41.1),
                ("Communication", 15.6),
                ("Lib Comp", 12.6),
                ("Network Access", 2.7),
            ],
            total: 56.8,
        },
        PaperTable {
            number: 19,
            title: "LCP Shared Memory (LCP-SM)",
            experiment: Experiment::LcpSm,
            rows: &[
                ("Computation", 41.3),
                ("Cache Misses", 13.4),
                ("Synchronization", 11.3),
                ("Barriers", 8.0),
            ],
            total: 66.0,
        },
        PaperTable {
            number: 20,
            title: "Asynchronous LCP Message Passing (ALCP-MP)",
            experiment: Experiment::AlcpMp,
            rows: &[
                ("Computation", 32.9),
                ("Communication", 59.8),
                ("Lib Comp", 46.5),
                ("Network Access", 12.9),
            ],
            total: 92.7,
        },
        PaperTable {
            number: 21,
            title: "Asynchronous LCP Shared Memory (ALCP-SM)",
            experiment: Experiment::AlcpSm,
            rows: &[
                ("Computation", 32.0),
                ("Cache Misses", 62.9),
                ("Synchronization", 3.8),
            ],
            total: 98.7,
        },
    ]
}

/// Outcome of one headline shape check.
#[derive(Clone, Debug, PartialEq)]
pub struct HeadlineCheck {
    /// What relation is being checked.
    pub name: String,
    /// What the paper reports.
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measured shape matches the paper's conclusion.
    pub pass: bool,
}

impl fmt::Display for HeadlineCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}\n    paper:    {}\n    measured: {}",
            if self.pass { "PASS" } else { "FAIL" },
            self.name,
            self.paper,
            self.measured
        )
    }
}

fn total(out: &ExperimentSummary) -> f64 {
    out.tables.first().map(|t| t.total).unwrap_or(0.0)
}

fn computation(out: &ExperimentSummary) -> f64 {
    out.tables
        .first()
        .and_then(|t| t.row("Computation"))
        .unwrap_or(0.0)
}

/// Evaluates every headline conclusion of the paper against the
/// experiments present in `results` (checks whose inputs are missing are
/// skipped). Takes [`ExperimentSummary`] values — the cache-stable
/// projection of a run — so checks render identically whether the runs
/// were fresh or replayed from the run cache.
pub fn headline_checks(results: &HashMap<Experiment, ExperimentSummary>) -> Vec<HeadlineCheck> {
    let mut checks = Vec::new();
    // A summary whose simulation stalled has no tables and must not feed
    // (or crash) a shape check; its failure is already front and center
    // in the report section above.
    let get = |e: Experiment| results.get(&e).filter(|s| !s.engine_failed());

    // 1. Computation time is nearly equal within each pair; 2. total
    //    ratios match the paper's direction.
    let pairs = [
        ("MSE", Experiment::MseMp, Experiment::MseSm, 1.02, 0.8, 1.35),
        (
            "Gauss",
            Experiment::GaussMp,
            Experiment::GaussSm,
            1.02,
            0.8,
            1.35,
        ),
        ("LCP", Experiment::LcpMp, Experiment::LcpSm, 1.16, 0.95, 1.6),
        (
            "EM3D",
            Experiment::Em3dMp,
            Experiment::Em3dSm,
            2.0,
            1.5,
            3.5,
        ),
    ];
    for (name, mp, sm, paper_ratio, lo, hi) in pairs {
        if let (Some(a), Some(b)) = (get(mp), get(sm)) {
            let ca = computation(a);
            let cb = computation(b);
            let rel = (ca - cb).abs() / ca.max(cb).max(1.0);
            checks.push(HeadlineCheck {
                name: format!("{name}: computation nearly equal in both versions"),
                paper: "within a few percent".into(),
                measured: format!(
                    "MP {:.1}M vs SM {:.1}M ({:.0}% apart)",
                    ca / 1e6,
                    cb / 1e6,
                    100.0 * rel
                ),
                pass: rel < 0.3,
            });
            let ratio = total(b) / total(a).max(1.0);
            checks.push(HeadlineCheck {
                name: format!("{name}: SM/MP total time ratio"),
                paper: format!("{paper_ratio:.2}"),
                measured: format!("{ratio:.2}"),
                pass: ratio >= lo && ratio <= hi,
            });
        }
    }

    // 3. MSE is computation-bound in both versions.
    for (e, label) in [(Experiment::MseMp, "MSE-MP"), (Experiment::MseSm, "MSE-SM")] {
        if let Some(out) = get(e) {
            let share = 100.0 * computation(out) / total(out).max(1.0);
            checks.push(HeadlineCheck {
                name: format!("{label}: computation dominates"),
                paper: "82-90% of time".into(),
                measured: format!("{share:.0}%"),
                pass: share >= 70.0,
            });
        }
    }

    // 4. The collective ablation ordering.
    if let Some(out) = get(Experiment::GaussAblation) {
        if let Some(t) = out.events.first() {
            let flat = t.row("Flat, CMMD-level messages").unwrap_or(0.0);
            let binary = t.row("Binary tree, CMMD-level messages").unwrap_or(0.0);
            let lop = t.row("Lop-sided tree, active messages").unwrap_or(f64::MAX);
            checks.push(HeadlineCheck {
                name: "Gauss collectives: flat > binary > lop-sided".into(),
                paper: "119.3M > 40.9M > 30.1M cycles".into(),
                measured: format!(
                    "{:.1}M > {:.1}M > {:.1}M",
                    flat / 1e6,
                    binary / 1e6,
                    lop / 1e6
                ),
                pass: flat > binary && binary > lop,
            });
        }
    }

    // 5. ALCP: fewer steps; communication per step rises sharply. For
    //    MP the extra communication swamps the gain and the program is
    //    slower overall, as in the paper. (Our ALCP-SM converges in fewer
    //    steps than the paper's did, so its total does not rise; see
    //    EXPERIMENTS.md.)
    for (name, sync, async_, check_total) in [
        ("MP", Experiment::LcpMp, Experiment::AlcpMp, true),
        ("SM", Experiment::LcpSm, Experiment::AlcpSm, false),
    ] {
        if let (Some(s), Some(a)) = (get(sync), get(async_)) {
            let ss = s.stat("steps").unwrap_or(0.0);
            let sa = a.stat("steps").unwrap_or(0.0);
            let bytes = |o: &ExperimentSummary| {
                o.events
                    .first()
                    .and_then(|t| t.row("Bytes Transmitted"))
                    .unwrap_or(0.0)
            };
            let per_step_s = bytes(s) / ss.max(1.0);
            let per_step_a = bytes(a) / sa.max(1.0);
            let pass =
                sa < ss && per_step_a > 2.0 * per_step_s && (!check_total || total(a) > total(s));
            checks.push(HeadlineCheck {
                name: format!(
                    "ALCP-{name}: fewer steps than LCP-{name}, far more communication{}",
                    if check_total { ", slower overall" } else { "" }
                ),
                paper: "43 steps -> 34/35; bytes ~4x; total rises ~1.5x".into(),
                measured: format!(
                    "{ss:.0} -> {sa:.0} steps; bytes/step {:.0} -> {:.0}; total {:.1}M -> {:.1}M",
                    per_step_s,
                    per_step_a,
                    total(s) / 1e6,
                    total(a) / 1e6
                ),
                pass,
            });
        }
    }

    // 6. EM3D variants recover the gap.
    if let (Some(base), Some(mb)) = (get(Experiment::Em3dSm), get(Experiment::Em3dSm1Mb)) {
        let (Some(bm), Some(mm)) = (
            base.tables.iter().find(|t| t.title.contains("main loop")),
            mb.tables.iter().find(|t| t.title.contains("main loop")),
        ) else {
            unreachable!("EM3D outputs phase tables")
        };
        let bm_miss = bm.row("Shared Misses").unwrap_or(0.0);
        let mm_miss = mm.row("Shared Misses").unwrap_or(f64::MAX);
        checks.push(HeadlineCheck {
            name: "EM3D-SM: 1 MB cache removes the capacity misses".into(),
            paper: "main loop 130.0M -> 61.0M (misses 83.6M -> 22.1M)".into(),
            measured: format!(
                "main loop {:.1}M -> {:.1}M (misses {:.1}M -> {:.1}M)",
                bm.total / 1e6,
                mm.total / 1e6,
                bm_miss / 1e6,
                mm_miss / 1e6
            ),
            pass: mm.total < 0.9 * bm.total && mm_miss < 0.65 * bm_miss,
        });
    }
    if let (Some(base), Some(local)) = (get(Experiment::Em3dSm), get(Experiment::Em3dSmLocal)) {
        let (Some(bm), Some(lm)) = (
            base.tables.iter().find(|t| t.title.contains("main loop")),
            local.tables.iter().find(|t| t.title.contains("main loop")),
        ) else {
            unreachable!("EM3D outputs phase tables")
        };
        checks.push(HeadlineCheck {
            name: "EM3D-SM: local allocation runs the main loop in ~2/3 the time".into(),
            paper: "130.0M -> 86.3M".into(),
            measured: format!("{:.1}M -> {:.1}M", bm.total / 1e6, lm.total / 1e6),
            pass: lm.total < 0.85 * bm.total,
        });
    }
    if let (Some(base), Some(bulk), Some(mp)) = (
        get(Experiment::Em3dSm),
        get(Experiment::Em3dSmBulk),
        get(Experiment::Em3dMp),
    ) {
        checks.push(HeadlineCheck {
            name: "EM3D-SM: bulk-update protocol approaches EM3D-MP".into(),
            paper: "performed equivalently with EM3D-MP (Falsafi et al.)".into(),
            measured: format!(
                "invalidate {:.1}M, bulk {:.1}M, MP {:.1}M",
                total(base) / 1e6,
                total(bulk) / 1e6,
                total(mp) / 1e6
            ),
            pass: total(bulk) < total(base) && total(bulk) < 1.5 * total(mp),
        });
    }

    // 6b. Extension remedies (Section 5.3.4 discussion).
    if let (Some(base), Some(stache)) = (get(Experiment::Em3dSm), get(Experiment::Em3dSmStache)) {
        if let (Some(bm), Some(sm_)) = (
            base.tables.iter().find(|t| t.title.contains("main loop")),
            stache.tables.iter().find(|t| t.title.contains("main loop")),
        ) {
            checks.push(HeadlineCheck {
                name: "EM3D-SM: Stache converts remote re-misses into local refills".into(),
                paper: "discussed (Reinhardt, Larus & Wood)".into(),
                measured: format!(
                    "main loop {:.1}M -> {:.1}M",
                    bm.total / 1e6,
                    sm_.total / 1e6
                ),
                pass: sm_.total < 0.85 * bm.total,
            });
        }
    }
    if let (Some(base), Some(push), Some(mp)) = (
        get(Experiment::GaussSm),
        get(Experiment::GaussSmPush),
        get(Experiment::GaussMp),
    ) {
        checks.push(HeadlineCheck {
            name: "Gauss-SM: push-broadcast pivot rows remove the read contention".into(),
            paper: "\"similar protocol changes could benefit ... the broadcasts in Gauss\"".into(),
            measured: format!(
                "Gauss-SM {:.1}M -> {:.1}M (Gauss-MP: {:.1}M)",
                total(base) / 1e6,
                total(push) / 1e6,
                total(mp) / 1e6
            ),
            pass: total(push) < total(base),
        });
    }

    // 7. MP library overhead is visible (3-42% of time).
    for (e, label) in [
        (Experiment::MseMp, "MSE-MP"),
        (Experiment::GaussMp, "Gauss-MP"),
        (Experiment::Em3dMp, "EM3D-MP"),
        (Experiment::LcpMp, "LCP-MP"),
    ] {
        if let Some(out) = get(e) {
            let lib = out
                .tables
                .first()
                .and_then(|t| t.row("Lib Comp"))
                .unwrap_or(0.0);
            let share = 100.0 * lib / total(out).max(1.0);
            checks.push(HeadlineCheck {
                name: format!("{label}: time in communication library routines"),
                paper: "3-42% of program time".into(),
                measured: format!("{share:.0}%"),
                pass: (1.0..60.0).contains(&share),
            });
        }
    }

    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, Scale};

    #[test]
    fn paper_reference_rows_do_not_exceed_totals() {
        for t in paper_reference() {
            for (label, v) in t.rows {
                assert!(
                    *v <= t.total + 1e-9,
                    "table {}: row {} = {} > total {}",
                    t.number,
                    label,
                    v,
                    t.total
                );
            }
        }
    }

    #[test]
    fn paper_reference_covers_every_breakdown_experiment() {
        let covered: Vec<Experiment> = paper_reference().iter().map(|t| t.experiment).collect();
        for e in [
            Experiment::MseMp,
            Experiment::GaussSm,
            Experiment::Em3dSm,
            Experiment::AlcpSm,
        ] {
            assert!(covered.contains(&e), "{e} missing from the reference");
        }
    }

    #[test]
    fn lcp_headline_checks_are_generated() {
        // The "slower overall" half of the ALCP relation only emerges at
        // paper scale (31-way star sends per sweep); at test scale we
        // check the checks exist and the fewer-steps half holds.
        let mut results = HashMap::new();
        for e in [
            Experiment::LcpMp,
            Experiment::LcpSm,
            Experiment::AlcpMp,
            Experiment::AlcpSm,
        ] {
            results.insert(e, run_experiment(e, Scale::Test).summary());
        }
        let checks = headline_checks(&results);
        let alcp: Vec<&HeadlineCheck> = checks
            .iter()
            .filter(|c| c.name.starts_with("ALCP"))
            .collect();
        assert_eq!(alcp.len(), 2);
        let steps = |e: Experiment| results[&e].stat("steps").unwrap();
        assert!(steps(Experiment::AlcpMp) < steps(Experiment::LcpMp));
        assert!(steps(Experiment::AlcpSm) < steps(Experiment::LcpSm));
    }
}
