//! JSON export of experiment results (behind the `trace-json` feature).
//!
//! [`experiment_json`] serializes an [`ExperimentOutput`] — run summary,
//! breakdown tables, and event tables — for downstream tooling;
//! [`breakdown_json`] serializes one table. The trace itself exports via
//! [`wwt_trace::chrome_trace_json`] and the histograms via
//! [`wwt_trace::metrics_json`].

use std::fmt::Write as _;

use wwt_trace::json::{escape, num_f64};

use crate::experiment::ExperimentOutput;
use crate::table::{BreakdownTable, EventTable};

/// Serializes one breakdown table.
pub fn breakdown_json(t: &BreakdownTable) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"title\":\"{}\",\"total\":{},\"rows\":[",
        escape(&t.title),
        num_f64(t.total)
    );
    for (i, r) in t.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"cycles\":{},\"indent\":{}}}",
            escape(&r.label),
            num_f64(r.cycles),
            r.indent
        );
    }
    out.push_str("]}");
    out
}

fn event_table_json(t: &EventTable) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"title\":\"{}\",\"rows\":[", escape(&t.title));
    for (i, (label, v)) in t.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"value\":{}}}",
            escape(label),
            num_f64(*v)
        );
    }
    out.push_str("]}");
    out
}

/// Serializes a full experiment result: identification, run summary,
/// validation, stats, and all tables.
pub fn experiment_json(out: &ExperimentOutput) -> String {
    let r = &out.run.report;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"experiment\":\"{}\",\"scale\":\"{}\",\"paper_tables\":\"{}\",\
         \"nprocs\":{},\"elapsed_cycles\":{},\"events_processed\":{},\
         \"imbalance\":{},\"wait_fraction\":{},\
         \"validation\":{{\"passed\":{},\"detail\":\"{}\"}},",
        out.experiment.id(),
        out.scale.name(),
        escape(out.experiment.paper_tables()),
        r.nprocs(),
        r.elapsed(),
        r.events_processed(),
        num_f64(r.imbalance()),
        num_f64(r.wait_fraction()),
        out.run.validation.passed,
        escape(&out.run.validation.detail),
    );
    s.push_str("\"stats\":{");
    for (i, (name, v)) in out.run.stats.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", escape(name), num_f64(*v));
    }
    s.push_str("},\"tables\":[");
    for (i, t) in out.tables.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&breakdown_json(t));
    }
    s.push_str("],\"events\":[");
    for (i, t) in out.events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&event_table_json(t));
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, Experiment, Scale};

    #[test]
    fn experiment_json_contains_tables_and_summary() {
        let out = run_experiment(Experiment::GaussMp, Scale::Test);
        let s = experiment_json(&out);
        assert!(s.starts_with("{\"experiment\":\"gauss-mp\""));
        assert!(s.contains("\"scale\":\"test\""));
        assert!(s.contains("\"passed\":true"));
        assert!(s.contains("\"label\":\"Computation\""));
        // Balanced braces as a cheap well-formedness check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn breakdown_json_round_trips_labels() {
        let out = run_experiment(Experiment::LcpMp, Scale::Test);
        let s = breakdown_json(&out.tables[0]);
        for r in &out.tables[0].rows {
            assert!(s.contains(&format!("\"label\":\"{}\"", r.label)));
        }
    }
}
