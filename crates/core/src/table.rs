//! Projection of the engine's (scope × kind) cycle matrices into the
//! paper's breakdown and event-count tables.

use std::fmt;

use wwt_sim::{Counter, Counters, CycleMatrix, Kind, Scope};

/// One row of a breakdown table.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Row label, as printed in the paper's tables.
    pub label: String,
    /// Average cycles per processor.
    pub cycles: f64,
    /// Nesting depth for display (sub-rows of a group are indented).
    pub indent: usize,
}

/// A paper-style execution-time breakdown (cycles and percentage per
/// category, averaged over processors).
#[derive(Clone, Debug, PartialEq)]
pub struct BreakdownTable {
    /// Table caption.
    pub title: String,
    /// Rows in display order. Indented rows are included in their parent
    /// group row, so only `indent == 0` rows sum to the total.
    pub rows: Vec<Row>,
    /// Total cycles (average per processor).
    pub total: f64,
}

impl BreakdownTable {
    /// The cycles of a row by label, if present.
    pub fn row(&self, label: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.cycles)
    }

    /// A row's share of the total, in percent.
    pub fn pct(&self, label: &str) -> Option<f64> {
        self.row(label).map(|c| 100.0 * c / self.total.max(1.0))
    }
}

impl BreakdownTable {
    /// Renders the table as GitHub-flavored markdown (used to regenerate
    /// the EXPERIMENTS.md comparisons).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str("| Category | Cycles (M) | % |\n|---|---:|---:|\n");
        for r in &self.rows {
            let pad = if r.indent > 0 { "&nbsp;&nbsp;" } else { "" };
            out.push_str(&format!(
                "| {}{} | {:.1} | {:.0}% |\n",
                pad,
                r.label,
                r.cycles / 1e6,
                100.0 * r.cycles / self.total.max(1.0)
            ));
        }
        out.push_str(&format!(
            "| **Total** | **{:.1}** | 100% |\n",
            self.total / 1e6
        ));
        out
    }
}

impl fmt::Display for BreakdownTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(f, "  {:<28} {:>10} {:>5}", "Category", "Cycles (M)", "%")?;
        for r in &self.rows {
            let pad = "  ".repeat(r.indent);
            writeln!(
                f,
                "  {pad}{:<width$} {:>10.1} {:>4.0}%",
                r.label,
                r.cycles / 1e6,
                100.0 * r.cycles / self.total.max(1.0),
                width = 28 - 2 * r.indent,
            )?;
        }
        writeln!(
            f,
            "  {:<28} {:>10.1} {:>4.0}%",
            "Total",
            self.total / 1e6,
            100.0
        )
    }
}

fn scopes_lib() -> [Scope; 4] {
    [Scope::Lib, Scope::Broadcast, Scope::Reduction, Scope::Sync]
}

fn cells(m: &CycleMatrix, scopes: &[Scope], kinds: &[Kind]) -> f64 {
    scopes
        .iter()
        .flat_map(|&s| kinds.iter().map(move |&k| m.get(s, k)))
        .sum::<u64>() as f64
}

/// Projects a message-passing run's average matrix into the paper's MP
/// breakdown (Tables 4, 8, 12, 18, 20). `comm_label` names the
/// communication group ("Communication" for most programs,
/// "Broadcast/Reduction" for Gauss).
pub fn breakdown_mp(title: &str, m: &CycleMatrix, comm_label: &str) -> BreakdownTable {
    let computation = cells(m, &[Scope::App, Scope::Startup], &[Kind::Compute]);
    let local_misses = cells(m, &[Scope::App], &[Kind::PrivMiss, Kind::TlbMiss]);
    let lib = scopes_lib();
    let lib_comp = cells(m, &lib, &[Kind::Compute, Kind::Wait, Kind::LockWait]);
    let lib_miss = cells(m, &lib, &[Kind::PrivMiss, Kind::TlbMiss]);
    let net = cells(m, &Scope::ALL, &[Kind::NetAccess]);
    let barrier = cells(m, &Scope::ALL, &[Kind::BarrierWait]);
    let retry = cells(m, &Scope::ALL, &[Kind::Retry]);
    let covered = computation + local_misses + lib_comp + lib_miss + net + barrier + retry;
    let other = m.total() as f64 - covered;
    let comm = lib_comp + lib_miss + net + barrier + retry;
    let mut rows = vec![
        Row {
            label: "Computation".into(),
            cycles: computation,
            indent: 0,
        },
        Row {
            label: "Local Misses".into(),
            cycles: local_misses,
            indent: 0,
        },
        Row {
            label: comm_label.into(),
            cycles: comm,
            indent: 0,
        },
        Row {
            label: "Lib Comp".into(),
            cycles: lib_comp,
            indent: 1,
        },
        Row {
            label: "Lib Misses".into(),
            cycles: lib_miss,
            indent: 1,
        },
        Row {
            label: "Barriers".into(),
            cycles: barrier,
            indent: 1,
        },
        Row {
            label: "Network Access".into(),
            cycles: net,
            indent: 1,
        },
    ];
    // Reliable-delivery recovery cost: only present under fault injection,
    // so fault-free tables stay byte-identical to the paper layout.
    if retry > 0.0 {
        rows.push(Row {
            label: "Retries".into(),
            cycles: retry,
            indent: 1,
        });
    }
    if other > 0.0 {
        rows.push(Row {
            label: "Other".into(),
            cycles: other,
            indent: 0,
        });
    }
    BreakdownTable {
        title: title.into(),
        rows,
        total: m.total() as f64,
    }
}

/// Projects a shared-memory run's average matrix into the paper's SM
/// breakdown (Tables 5, 9, 14, 19, 21).
pub fn breakdown_sm(title: &str, m: &CycleMatrix) -> BreakdownTable {
    let computation = cells(m, &[Scope::App], &[Kind::Compute]);
    let shared = cells(m, &[Scope::App], &[Kind::ShMissLocal, Kind::ShMissRemote]);
    let wfaults = cells(m, &[Scope::App], &[Kind::WriteFault]);
    let tlb = cells(m, &[Scope::App], &[Kind::TlbMiss]);
    let private = cells(m, &[Scope::App], &[Kind::PrivMiss]);
    let barriers = cells(m, &[Scope::App, Scope::Sync], &[Kind::BarrierWait]);
    let locks = m.by_scope(Scope::Lock) as f64;
    let reductions = m.by_scope(Scope::Reduction) as f64;
    let startup = m.by_scope(Scope::Startup) as f64;
    let sync_comp = cells(m, &[Scope::Sync], &[Kind::Compute]);
    let sync_other =
        m.by_scope(Scope::Sync) as f64 - sync_comp - cells(m, &[Scope::Sync], &[Kind::BarrierWait]);
    let covered = computation
        + shared
        + wfaults
        + tlb
        + private
        + barriers
        + locks
        + reductions
        + startup
        + sync_comp
        + sync_other;
    let other = m.total() as f64 - covered;
    let data_access = shared + wfaults + tlb + private;
    let sync_total = barriers + locks + reductions + startup + sync_comp + sync_other;
    let mut rows = vec![
        Row {
            label: "Computation".into(),
            cycles: computation,
            indent: 0,
        },
        Row {
            label: "Data Access".into(),
            cycles: data_access,
            indent: 0,
        },
        Row {
            label: "Shared Misses".into(),
            cycles: shared,
            indent: 1,
        },
        Row {
            label: "Write Faults".into(),
            cycles: wfaults,
            indent: 1,
        },
        Row {
            label: "TLB Misses".into(),
            cycles: tlb,
            indent: 1,
        },
        Row {
            label: "Private Misses".into(),
            cycles: private,
            indent: 1,
        },
        Row {
            label: "Synchronization".into(),
            cycles: sync_total,
            indent: 0,
        },
        Row {
            label: "Sync Comp".into(),
            cycles: sync_comp + sync_other,
            indent: 1,
        },
        Row {
            label: "Reductions".into(),
            cycles: reductions,
            indent: 1,
        },
        Row {
            label: "Locks".into(),
            cycles: locks,
            indent: 1,
        },
        Row {
            label: "Barriers".into(),
            cycles: barriers,
            indent: 1,
        },
        Row {
            label: "Start-up Wait".into(),
            cycles: startup,
            indent: 1,
        },
    ];
    if other > 0.0 {
        rows.push(Row {
            label: "Other".into(),
            cycles: other,
            indent: 0,
        });
    }
    BreakdownTable {
        title: title.into(),
        rows,
        total: m.total() as f64,
    }
}

/// A paper-style per-processor event-count table.
#[derive(Clone, Debug, PartialEq)]
pub struct EventTable {
    /// Table caption.
    pub title: String,
    /// (label, per-processor value) rows.
    pub rows: Vec<(String, f64)>,
}

impl EventTable {
    /// The value of a row by label, if present.
    pub fn row(&self, label: &str) -> Option<f64> {
        self.rows.iter().find(|(l, _)| l == label).map(|&(_, v)| v)
    }
}

impl fmt::Display for EventTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        for (label, v) in &self.rows {
            if *v >= 1e6 {
                writeln!(f, "  {label:<30} {:>10.1}M", v / 1e6)?;
            } else {
                writeln!(f, "  {label:<30} {v:>10.0}")?;
            }
        }
        Ok(())
    }
}

fn comp_per_data_byte(m: &CycleMatrix, c: &Counters, nprocs: usize) -> f64 {
    let comp = cells(m, &[Scope::App], &[Kind::Compute]);
    let data = c.get(Counter::BytesData) as f64 / nprocs as f64;
    if data > 0.0 {
        comp / data
    } else {
        f64::INFINITY
    }
}

/// Builds the paper's MP event table (Tables 6, 10, 13, 22) from
/// machine-wide counters and the average cycle matrix.
pub fn events_mp(
    title: &str,
    avg_matrix: &CycleMatrix,
    total: &Counters,
    nprocs: usize,
) -> EventTable {
    let per = |c: Counter| total.get(c) as f64 / nprocs as f64;
    let mut rows = vec![
        ("Local Misses".into(), per(Counter::PrivMisses)),
        ("Messages sent".into(), per(Counter::MessagesSent)),
        ("Channel Writes".into(), per(Counter::ChannelWrites)),
        ("Active Messages".into(), per(Counter::ActiveMessages)),
        ("Packets sent".into(), per(Counter::PacketsSent)),
        (
            "Bytes Transmitted".into(),
            per(Counter::BytesData) + per(Counter::BytesControl),
        ),
        ("Data".into(), per(Counter::BytesData)),
        ("Control".into(), per(Counter::BytesControl)),
        (
            "Computation Cycles Per Data Byte".into(),
            comp_per_data_byte(avg_matrix, total, nprocs),
        ),
    ];
    // Reliable-delivery traffic: emitted only under fault injection so
    // fault-free tables keep the paper's exact row set.
    for (label, c) in [
        ("Retransmits", Counter::Retransmits),
        ("Acks sent", Counter::AcksSent),
        ("Nacks sent", Counter::NacksSent),
    ] {
        if total.get(c) > 0 {
            rows.push((label.into(), per(c)));
        }
    }
    EventTable {
        title: title.into(),
        rows,
    }
}

/// Builds the paper's SM event table (Tables 7, 11, 15, 23).
pub fn events_sm(
    title: &str,
    avg_matrix: &CycleMatrix,
    total: &Counters,
    nprocs: usize,
) -> EventTable {
    let per = |c: Counter| total.get(c) as f64 / nprocs as f64;
    EventTable {
        title: title.into(),
        rows: vec![
            ("Private Misses".into(), per(Counter::PrivMisses)),
            (
                "Shared Misses".into(),
                per(Counter::ShMissesLocal) + per(Counter::ShMissesRemote),
            ),
            ("Local".into(), per(Counter::ShMissesLocal)),
            ("Remote".into(), per(Counter::ShMissesRemote)),
            ("Write Faults".into(), per(Counter::WriteFaults)),
            (
                "Bytes Transmitted".into(),
                per(Counter::BytesData) + per(Counter::BytesControl),
            ),
            ("Data".into(), per(Counter::BytesData)),
            ("Control".into(), per(Counter::BytesControl)),
            ("Lock Acquires".into(), per(Counter::LockAcquires)),
            (
                "Computation Cycles Per Data Byte".into(),
                comp_per_data_byte(avg_matrix, total, nprocs),
            ),
        ],
    }
}

/// Subtracts snapshot `a` from snapshot `b` cell-wise (per-phase values).
pub fn phase_delta(
    b: &[(u64, CycleMatrix, Counters)],
    a: &[(u64, CycleMatrix, Counters)],
) -> (CycleMatrix, Counters) {
    let n = b.len().max(1) as u64;
    let mut dm = CycleMatrix::new();
    let mut dc = Counters::new();
    for (pb, pa) in b.iter().zip(a) {
        for (s, k, c) in pb.1.iter() {
            let prev = pa.1.get(s, k);
            dm.add(s, k, c - prev);
        }
        for (c, v) in pb.2.iter() {
            dc.add(c, v - pa.2.get(c));
        }
    }
    // Average the matrix over processors (the counters stay machine-wide).
    let mut avg = CycleMatrix::new();
    for s in Scope::ALL {
        for k in Kind::ALL {
            avg.add(s, k, dm.get(s, k) / n);
        }
    }
    (avg, dc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_matrix() -> CycleMatrix {
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 900);
        m.add(Scope::App, Kind::PrivMiss, 40);
        m.add(Scope::Lib, Kind::Compute, 30);
        m.add(Scope::Lib, Kind::Wait, 10);
        m.add(Scope::Lib, Kind::NetAccess, 15);
        m.add(Scope::App, Kind::BarrierWait, 5);
        m
    }

    #[test]
    fn mp_rows_cover_the_total() {
        let m = demo_matrix();
        let t = breakdown_mp("t", &m, "Communication");
        let top: f64 = t
            .rows
            .iter()
            .filter(|r| r.indent == 0)
            .map(|r| r.cycles)
            .sum();
        assert!(
            (top - t.total).abs() < 1e-9,
            "top rows {top} != total {}",
            t.total
        );
        assert_eq!(t.row("Computation"), Some(900.0));
        assert_eq!(t.row("Lib Comp"), Some(40.0));
        assert_eq!(t.row("Network Access"), Some(15.0));
    }

    #[test]
    fn sm_rows_cover_the_total() {
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 500);
        m.add(Scope::App, Kind::ShMissRemote, 100);
        m.add(Scope::App, Kind::WriteFault, 20);
        m.add(Scope::Lock, Kind::LockWait, 30);
        m.add(Scope::Reduction, Kind::Wait, 25);
        m.add(Scope::Startup, Kind::Wait, 40);
        m.add(Scope::App, Kind::BarrierWait, 15);
        let t = breakdown_sm("t", &m);
        let top: f64 = t
            .rows
            .iter()
            .filter(|r| r.indent == 0)
            .map(|r| r.cycles)
            .sum();
        assert!((top - t.total).abs() < 1e-9);
        assert_eq!(t.row("Shared Misses"), Some(100.0));
        assert_eq!(t.row("Locks"), Some(30.0));
        assert_eq!(t.row("Start-up Wait"), Some(40.0));
        assert_eq!(t.row("Barriers"), Some(15.0));
    }

    #[test]
    fn empty_matrix_projects_to_zero_tables() {
        let m = CycleMatrix::new();
        for t in [
            breakdown_mp("t", &m, "Communication"),
            breakdown_sm("t", &m),
        ] {
            assert_eq!(t.total, 0.0);
            assert!(t.rows.iter().all(|r| r.cycles == 0.0), "{t}");
            // No phantom "Other" row appears for an all-zero matrix.
            assert!(t.row("Other").is_none());
            // Percentages stay finite (guarded by the max(1.0) divisor).
            assert_eq!(t.pct("Computation"), Some(0.0));
        }
    }

    #[test]
    fn uncovered_cells_surface_as_other() {
        // A charge no category claims (startup compute is claimed by MP's
        // Computation row but not by SM's rows outside Startup scope) must
        // not vanish: both projections account for every cell.
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 100);
        m.add(Scope::Broadcast, Kind::ShMissRemote, 40);
        let t = breakdown_sm("t", &m);
        let top: f64 = t
            .rows
            .iter()
            .filter(|r| r.indent == 0)
            .map(|r| r.cycles)
            .sum();
        assert_eq!(top, t.total);
        assert_eq!(t.row("Other"), Some(40.0));
    }

    #[test]
    fn pct_is_relative_to_total() {
        let m = demo_matrix();
        let t = breakdown_mp("t", &m, "Communication");
        assert!((t.pct("Computation").unwrap() - 90.0).abs() < 0.1);
    }

    #[test]
    fn display_renders_every_row() {
        let t = breakdown_mp("Demo", &demo_matrix(), "Communication");
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("Computation"));
        assert!(s.contains("Total"));
    }

    #[test]
    fn phase_delta_subtracts() {
        let mut m1 = CycleMatrix::new();
        m1.add(Scope::App, Kind::Compute, 100);
        let mut c1 = Counters::new();
        c1.add(Counter::PacketsSent, 5);
        let mut m2 = CycleMatrix::new();
        m2.add(Scope::App, Kind::Compute, 250);
        let mut c2 = Counters::new();
        c2.add(Counter::PacketsSent, 8);
        let (dm, dc) = phase_delta(&[(250, m2, c2)], &[(100, m1, c1)]);
        assert_eq!(dm.get(Scope::App, Kind::Compute), 150);
        assert_eq!(dc.get(Counter::PacketsSent), 3);
    }
}

#[cfg(test)]
mod markdown_tests {
    use super::*;

    #[test]
    fn markdown_renders_rows_and_total() {
        let mut m = CycleMatrix::new();
        m.add(Scope::App, Kind::Compute, 2_000_000);
        m.add(Scope::Lib, Kind::NetAccess, 500_000);
        let t = breakdown_mp("Demo", &m, "Communication");
        let md = t.to_markdown();
        assert!(md.contains("| Category |"));
        assert!(md.contains("Computation | 2.0 | 80%"));
        assert!(md.contains("**2.5**"));
    }
}
