//! The persistent run cache: experiment artifacts keyed by
//! (experiment, scale, engine-config hash).
//!
//! A paper-scale grid takes minutes; most `make_tables` invocations
//! re-run experiments whose inputs did not change. The runner therefore
//! persists each experiment's [`ExperimentArtifacts`] — the reportable
//! summary plus any rendered timeline/trace artifacts — to one file per
//! (experiment, scale, config) triple and replays it on the next
//! invocation.
//!
//! Two properties carry the design:
//!
//! * **Exactness.** Every `f64` is stored as its IEEE-754 bit pattern, so
//!   a report rendered from a cached summary is byte-identical to one
//!   rendered from the fresh run (the simulator itself is deterministic,
//!   so the cached numbers *are* the numbers a re-run would produce).
//! * **Invalidation by construction.** The file name embeds an FNV-1a
//!   hash of the full engine configuration (quantum, seed, profiling,
//!   tracing) plus a format version; changing any of them simply misses
//!   the cache, and stale entries are inert.
//!
//! The format is a versioned, line-oriented text file with length-
//! prefixed blobs for rendered artifacts. Any parse failure — truncation,
//! version skew, hand-editing — is treated as a cache miss, never an
//! error.
//!
//! Since format version 3 the serialized text is the *payload* of a
//! `wwt-store` entry: the store wraps it in a checksummed container,
//! commits it atomically (temp + rename + dir fsync), and verifies the
//! checksum on every read, so torn writes and bit rot surface as typed
//! corruption — a warned miss — instead of a silent misparse. This module
//! keeps the keying and (de)serialization; all file handling lives in
//! [`wwt_store`].

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use wwt_store::{fnv1a, warn_once, ReadError, Store};

use wwt_arch::ArchParams;

use crate::experiment::{Experiment, ExperimentSummary, Scale};
use crate::runner::ExperimentArtifacts;
use crate::table::{BreakdownTable, EventTable, Row};

/// Bump when the serialization format or the meaning of cached fields
/// changes; old entries then miss instead of misparsing.
/// Version 2: phase-profile blobs, percentile fields in metrics blobs.
/// Version 3: entries live inside checksummed `wwt-store` containers
/// (pre-store files keep their old names and are simply never read;
/// `--fsck` quarantines them).
const FORMAT_VERSION: u32 = 3;

/// The cache key hash: experiment, scale, full engine config, the full
/// hardware base, both machines' full configurations, and the format
/// version. `SimConfig`, `MpConfig`, and `SmConfig` are `Copy + Debug`
/// with stable field order, so their debug renderings are faithful
/// canonical forms; [`ArchParams::canonical`] is canonical by
/// construction. Hashing the complete machine configurations (not just
/// the swept base) means *any* future machine-cost change misses the
/// cache instead of replaying a stale result — a swept run can never
/// replay a cached default-config artifact.
pub fn config_hash(
    e: Experiment,
    scale: Scale,
    sim: &wwt_sim::SimConfig,
    arch: &ArchParams,
) -> u64 {
    let mp = wwt_mp::MpConfig::with_arch(*arch, *sim);
    let sm = wwt_sm::SmConfig::with_arch(*arch, *sim);
    let key = format!(
        "v{FORMAT_VERSION}|{}|{}|{:?}|{}|{mp:?}|{sm:?}",
        e.id(),
        scale.name(),
        sim,
        arch.canonical(),
    );
    fnv1a(key.as_bytes())
}

/// The store entry name (file name within the cache directory) for one
/// (experiment, scale, config, arch) tuple — also the name the runner
/// locks while simulating the point.
pub fn entry_name(
    e: Experiment,
    scale: Scale,
    sim: &wwt_sim::SimConfig,
    arch: &ArchParams,
) -> String {
    format!(
        "{}-{}-{:016x}.run",
        e.id(),
        scale.name(),
        config_hash(e, scale, sim, arch)
    )
}

/// The cache file path for one (experiment, scale, config, arch) tuple.
pub fn entry_path(
    dir: &Path,
    e: Experiment,
    scale: Scale,
    sim: &wwt_sim::SimConfig,
    arch: &ArchParams,
) -> PathBuf {
    dir.join(entry_name(e, scale, sim, arch))
}

fn push_f64(out: &mut String, tag: &str, v: f64) {
    let _ = writeln!(out, "{tag} {:016x}", v.to_bits());
}

fn push_blob(out: &mut String, name: &str, body: &str) {
    let _ = writeln!(out, "blob {name} {}", body.len());
    out.push_str(body);
    out.push('\n');
}

/// Serializes one artifact set. Returns `None` when the data cannot be
/// represented (a newline inside a single-line field) — the caller just
/// skips caching that run.
fn serialize(a: &ExperimentArtifacts) -> Option<String> {
    let s = &a.summary;
    let single_line = |t: &str| !t.contains('\n');
    if !single_line(&s.validation_detail)
        || s.stats.iter().any(|(n, _)| !single_line(n))
        || s.tables
            .iter()
            .any(|t| !single_line(&t.title) || t.rows.iter().any(|r| !single_line(&r.label)))
        || s.events
            .iter()
            .any(|t| !single_line(&t.title) || t.rows.iter().any(|(l, _)| !single_line(l)))
    {
        return None;
    }

    let mut out = String::new();
    let _ = writeln!(out, "wwt-run-cache {FORMAT_VERSION}");
    let _ = writeln!(out, "experiment {}", s.experiment.id());
    let _ = writeln!(out, "scale {}", s.scale.name());
    let _ = writeln!(out, "passed {}", s.validation_passed);
    let _ = writeln!(out, "detail {}", s.validation_detail);
    push_f64(&mut out, "imbalance", s.imbalance);
    push_f64(&mut out, "wait", s.wait_fraction);
    push_f64(&mut out, "wall", a.wall_secs);
    let _ = writeln!(out, "stats {}", s.stats.len());
    for (name, v) in &s.stats {
        let _ = writeln!(out, "stat {:016x} {name}", v.to_bits());
    }
    let _ = writeln!(out, "tables {}", s.tables.len());
    for t in &s.tables {
        let _ = writeln!(
            out,
            "table {} {:016x} {}",
            t.rows.len(),
            t.total.to_bits(),
            t.title
        );
        for r in &t.rows {
            let _ = writeln!(
                out,
                "row {} {:016x} {}",
                r.indent,
                r.cycles.to_bits(),
                r.label
            );
        }
    }
    let _ = writeln!(out, "events {}", s.events.len());
    for t in &s.events {
        let _ = writeln!(out, "event {} {}", t.rows.len(), t.title);
        for (label, v) in &t.rows {
            let _ = writeln!(out, "erow {:016x} {label}", v.to_bits());
        }
    }
    if let Some(t) = &a.timeline {
        push_blob(&mut out, "timeline", t);
    }
    if let Some(p) = &a.phases {
        push_blob(&mut out, "phases", &p.to_text());
    }
    #[cfg(feature = "trace-json")]
    if let Some(t) = &a.trace {
        push_blob(&mut out, "perfetto", &t.perfetto);
        push_blob(&mut out, "metrics_json", &t.metrics_json);
        push_blob(&mut out, "metrics_table", &t.metrics_table);
        push_blob(&mut out, "experiment_json", &t.experiment_json);
    }
    out.push_str("end\n");
    Some(out)
}

/// Persists one artifact set through the store: checksummed container,
/// atomic temp-write + rename + dir fsync, no temp file left behind on
/// failure. Best-effort: errors (and unrepresentable data) are reported
/// but expected to be ignored by the caller.
pub fn save(
    dir: &Path,
    a: &ExperimentArtifacts,
    sim: &wwt_sim::SimConfig,
    arch: &ArchParams,
) -> std::io::Result<()> {
    let Some(body) = serialize(a) else {
        return Ok(()); // unrepresentable: skip caching, never fail the run
    };
    let name = entry_name(a.experiment, a.summary.scale, sim, arch);
    Store::open(dir).commit(&name, body.as_bytes())
}

/// A forgiving cursor over the cache text. Every accessor returns
/// `Option`; `None` anywhere surfaces as a cache miss.
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn line(&mut self) -> Option<&'a str> {
        let (line, rest) = self.rest.split_once('\n')?;
        self.rest = rest;
        Some(line)
    }

    /// Next line, split as `tag rest-of-line` with the given tag.
    fn tagged(&mut self, tag: &str) -> Option<&'a str> {
        let line = self.line()?;
        let (t, rest) = line.split_once(' ').unwrap_or((line, ""));
        (t == tag).then_some(rest)
    }

    fn f64_field(&mut self, tag: &str) -> Option<f64> {
        let bits = u64::from_str_radix(self.tagged(tag)?, 16).ok()?;
        Some(f64::from_bits(bits))
    }

    fn count(&mut self, tag: &str) -> Option<usize> {
        self.tagged(tag)?.parse().ok()
    }

    /// Takes exactly `len` bytes followed by a newline.
    fn blob_body(&mut self, len: usize) -> Option<&'a str> {
        if !self.rest.is_char_boundary(len) || self.rest.len() < len + 1 {
            return None;
        }
        let (body, rest) = self.rest.split_at(len);
        let rest = rest.strip_prefix('\n')?;
        self.rest = rest;
        Some(body)
    }
}

/// `bits label` → (label, value).
fn labeled_f64(line: &str) -> Option<(String, f64)> {
    let (bits, label) = line.split_once(' ')?;
    let v = f64::from_bits(u64::from_str_radix(bits, 16).ok()?);
    Some((label.to_string(), v))
}

fn parse(text: &str, e: Experiment, scale: Scale) -> Option<ExperimentArtifacts> {
    let mut c = Cursor { rest: text };
    let version: u32 = c.tagged("wwt-run-cache")?.parse().ok()?;
    if version != FORMAT_VERSION {
        return None;
    }
    if c.tagged("experiment")? != e.id() || c.tagged("scale")? != scale.name() {
        return None;
    }
    let validation_passed = match c.tagged("passed")? {
        "true" => true,
        "false" => false,
        _ => return None,
    };
    let validation_detail = c.tagged("detail")?.to_string();
    let imbalance = c.f64_field("imbalance")?;
    let wait_fraction = c.f64_field("wait")?;
    let wall_secs = c.f64_field("wall")?;

    let nstats = c.count("stats")?;
    let mut stats = Vec::with_capacity(nstats);
    for _ in 0..nstats {
        stats.push(labeled_f64(c.tagged("stat")?)?);
    }

    let ntables = c.count("tables")?;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let header = c.tagged("table")?;
        let (nrows, header) = header.split_once(' ')?;
        let (total_bits, title) = header.split_once(' ')?;
        let nrows: usize = nrows.parse().ok()?;
        let total = f64::from_bits(u64::from_str_radix(total_bits, 16).ok()?);
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let line = c.tagged("row")?;
            let (indent, line) = line.split_once(' ')?;
            let (label, cycles) = labeled_f64(line)?;
            rows.push(Row {
                label,
                cycles,
                indent: indent.parse().ok()?,
            });
        }
        tables.push(BreakdownTable {
            title: title.to_string(),
            rows,
            total,
        });
    }

    let nevents = c.count("events")?;
    let mut events = Vec::with_capacity(nevents);
    for _ in 0..nevents {
        let header = c.tagged("event")?;
        let (nrows, title) = header.split_once(' ')?;
        let nrows: usize = nrows.parse().ok()?;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            rows.push(labeled_f64(c.tagged("erow")?)?);
        }
        events.push(EventTable {
            title: title.to_string(),
            rows,
        });
    }

    let mut timeline = None;
    let mut phases = None;
    let mut blobs: Vec<(String, String)> = Vec::new();
    loop {
        let line = c.line()?;
        if line == "end" {
            break;
        }
        let rest = line.strip_prefix("blob ")?;
        let (name, len) = rest.split_once(' ')?;
        let body = c.blob_body(len.parse().ok()?)?.to_string();
        if name == "timeline" {
            timeline = Some(body);
        } else if name == "phases" {
            // A damaged profile blob poisons the whole entry: better to
            // re-simulate than to diff against garbage.
            phases = Some(wwt_diff::RunProfile::from_text(&body)?);
        } else {
            blobs.push((name.to_string(), body));
        }
    }

    #[cfg(feature = "trace-json")]
    let trace = {
        let take = |name: &str| {
            blobs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| b.clone())
        };
        match (
            take("perfetto"),
            take("metrics_json"),
            take("metrics_table"),
            take("experiment_json"),
        ) {
            (Some(perfetto), Some(metrics_json), Some(metrics_table), Some(experiment_json)) => {
                Some(crate::runner::TraceArtifacts {
                    perfetto,
                    metrics_json,
                    metrics_table,
                    experiment_json,
                })
            }
            _ => None,
        }
    };
    #[cfg(not(feature = "trace-json"))]
    let _ = blobs;

    Some(ExperimentArtifacts {
        experiment: e,
        summary: ExperimentSummary {
            experiment: e,
            scale,
            validation_passed,
            validation_detail,
            stats,
            imbalance,
            wait_fraction,
            tables,
            events,
        },
        timeline,
        #[cfg(feature = "trace-json")]
        trace,
        phases,
        wall_secs,
        from_cache: true,
    })
}

/// Loads a cache entry directly by file path (the `--diff <path>` form),
/// recovering the experiment and scale from the entry header instead of
/// requiring the caller to know the key. `None` on any damage.
pub fn load_path(path: &Path) -> Option<ExperimentArtifacts> {
    let text = String::from_utf8(wwt_store::read_entry_file(path)?).ok()?;
    let mut lines = text.lines();
    let _header = lines.next()?;
    let e = Experiment::from_id(lines.next()?.strip_prefix("experiment ")?)?;
    let scale = match lines.next()?.strip_prefix("scale ")? {
        "paper" => Scale::Paper,
        "test" => Scale::Test,
        _ => return None,
    };
    parse(&text, e, scale)
}

/// Loads the cached artifacts for one (experiment, scale, config) triple.
/// Any missing, truncated, or version-skewed entry is a miss (`None`).
/// A file that exists but cannot be read or parsed additionally warns on
/// stderr — the entry is damaged, not merely absent — and the runner then
/// re-simulates and overwrites it.
pub fn load(
    dir: &Path,
    e: Experiment,
    scale: Scale,
    sim: &wwt_sim::SimConfig,
    arch: &ArchParams,
) -> Option<ExperimentArtifacts> {
    load_counting(dir, e, scale, sim, arch, true)
}

/// [`load`] for the runner's post-lock re-check: a hit still counts (the
/// race loser replays the winner's entry), but a miss is not re-counted —
/// the lookup already counted its miss before taking the writer lock, and
/// one cold cell is one miss.
pub fn load_recheck(
    dir: &Path,
    e: Experiment,
    scale: Scale,
    sim: &wwt_sim::SimConfig,
    arch: &ArchParams,
) -> Option<ExperimentArtifacts> {
    load_counting(dir, e, scale, sim, arch, false)
}

fn load_counting(
    dir: &Path,
    e: Experiment,
    scale: Scale,
    sim: &wwt_sim::SimConfig,
    arch: &ArchParams,
    count_miss: bool,
) -> Option<ExperimentArtifacts> {
    let name = entry_name(e, scale, sim, arch);
    let path = dir.join(&name);
    // Cache counters are always-on (a few ticks per experiment, nowhere
    // near a hot path): the grid runner's end-of-run cache summary works
    // without `--obs`.
    use wwt_obs::{count_always, Ctr};
    // Repeated warnings for the same damaged path are deduplicated (the
    // first prints, repeats only count): a grid retries and re-reads, and
    // one bad entry must not flood stderr.
    let damaged = |why: &str| {
        let first = warn_once(
            &path.to_string_lossy(),
            &format!("run cache entry {} is {why}; re-running", path.display()),
        );
        if count_miss {
            count_always(Ctr::CacheMisses, 1);
        }
        // One corruption event per path: the runner re-reads a damaged
        // entry (miss check, then the post-lock re-check) before
        // recommitting, and that is still a single recovery.
        if first {
            count_always(Ctr::CacheCorruptRecovered, 1);
        }
    };
    let payload = match Store::open(dir).read(&name) {
        Ok(payload) => payload,
        Err(ReadError::NotFound) => {
            if count_miss {
                count_always(Ctr::CacheMisses, 1);
            }
            return None;
        }
        Err(err @ ReadError::Io(_)) => {
            // Includes injected transient EIOs: degrade to a miss — the
            // simulator is deterministic, so re-running reproduces the
            // exact bytes the unreadable entry held.
            damaged(&format!("unreadable ({err})"));
            return None;
        }
        Err(ReadError::Corrupt(why)) => {
            damaged(&format!("damaged ({why})"));
            return None;
        }
    };
    let Ok(text) = String::from_utf8(payload) else {
        damaged("damaged (payload is not UTF-8)");
        return None;
    };
    let parsed = parse(&text, e, scale);
    match &parsed {
        Some(_) => {
            count_always(Ctr::CacheHits, 1);
            count_always(Ctr::CacheBytesRead, text.len() as u64);
        }
        None => damaged("truncated or corrupt"),
    }
    parsed
}

/// The process-wide run-cache totals, as
/// `(hits, misses, bytes_read, corrupt_recovered)`. Backed by the
/// always-on `wwt_obs` counters, so it works without `--obs`.
pub fn stats() -> (u64, u64, u64, u64) {
    use wwt_obs::{counter, Ctr};
    (
        counter(Ctr::CacheHits),
        counter(Ctr::CacheMisses),
        counter(Ctr::CacheBytesRead),
        counter(Ctr::CacheCorruptRecovered),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn sample_artifacts() -> ExperimentArtifacts {
        ExperimentArtifacts {
            experiment: Experiment::GaussMp,
            summary: ExperimentSummary {
                experiment: Experiment::GaussMp,
                scale: Scale::Test,
                validation_passed: true,
                validation_detail: "residual 1.2e-9 below 1e-6".into(),
                stats: vec![("steps".into(), 43.0), ("residual".into(), 1.25e-9)],
                imbalance: 0.0123456789,
                wait_fraction: 0.25,
                tables: vec![BreakdownTable {
                    title: "Gauss-MP (Tables 8 and 10)".into(),
                    rows: vec![
                        Row {
                            label: "Computation".into(),
                            cycles: 40.8e6,
                            indent: 0,
                        },
                        Row {
                            label: "Lib Comp".into(),
                            cycles: 23.6e6,
                            indent: 1,
                        },
                    ],
                    total: 71.0e6,
                }],
                events: vec![EventTable {
                    title: "Gauss-MP — events".into(),
                    rows: vec![("Messages Sent".into(), 1234.5)],
                }],
            },
            timeline: Some("\n### gauss-mp — timeline\nP0 |##SS|\n".into()),
            #[cfg(feature = "trace-json")]
            trace: None,
            phases: Some(wwt_diff::RunProfile {
                nprocs: 2,
                phases: vec![wwt_diff::Phase {
                    segments: 3,
                    per_proc: vec![[7; wwt_sim::Kind::COUNT]; 2],
                }],
            }),
            wall_secs: 1.5,
            from_cache: false,
        }
    }

    #[test]
    fn round_trips_exactly() {
        let a = sample_artifacts();
        let text = serialize(&a).unwrap();
        let b = parse(&text, a.experiment, a.summary.scale).unwrap();
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.wall_secs, b.wall_secs);
        assert!(b.from_cache);
    }

    #[test]
    fn load_path_recovers_entry_without_the_key() {
        let dir = std::env::temp_dir().join(format!("wwt-cache-bypath-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = sample_artifacts();
        let sim = wwt_sim::SimConfig::default();
        let arch = ArchParams::default();
        save(&dir, &a, &sim, &arch).unwrap();
        let path = entry_path(&dir, a.experiment, Scale::Test, &sim, &arch);
        let b = load_path(&path).unwrap();
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.phases, b.phases);
        assert!(load_path(&dir.join("missing.run")).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trips_non_finite_and_exact_bits() {
        let mut a = sample_artifacts();
        a.summary.stats = vec![
            ("inf".into(), f64::INFINITY),
            ("tiny".into(), 5e-324),
            ("neg".into(), -0.0),
        ];
        let text = serialize(&a).unwrap();
        let b = parse(&text, a.experiment, a.summary.scale).unwrap();
        for ((_, x), (_, y)) in a.summary.stats.iter().zip(&b.summary.stats) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn truncated_or_mismatched_entries_miss() {
        let a = sample_artifacts();
        let text = serialize(&a).unwrap();
        assert!(parse(&text[..text.len() / 2], a.experiment, Scale::Test).is_none());
        assert!(parse(&text, Experiment::GaussSm, Scale::Test).is_none());
        assert!(parse(&text, a.experiment, Scale::Paper).is_none());
        assert!(parse("wwt-run-cache 999\n", a.experiment, Scale::Test).is_none());
        assert!(parse("", a.experiment, Scale::Test).is_none());
    }

    #[test]
    fn config_hash_separates_engine_configs() {
        let base = wwt_sim::SimConfig::default();
        let arch = ArchParams::default();
        let traced = wwt_sim::SimConfig {
            trace: true,
            ..base
        };
        let profiled = wwt_sim::SimConfig {
            profile_bucket: Some(2_000),
            ..base
        };
        let e = Experiment::Em3dSm;
        let h = |sim: &wwt_sim::SimConfig| config_hash(e, Scale::Test, sim, &arch);
        assert_ne!(h(&base), h(&traced));
        assert_ne!(h(&base), h(&profiled));
        assert_ne!(
            config_hash(Experiment::Em3dSm, Scale::Test, &base, &arch),
            config_hash(Experiment::Em3dMp, Scale::Test, &base, &arch)
        );
        assert_ne!(
            config_hash(e, Scale::Test, &base, &arch),
            config_hash(e, Scale::Paper, &base, &arch)
        );
    }

    /// The regression the sweep depends on: two architecture points must
    /// produce distinct cache keys for every experiment, or a swept run
    /// could replay a cached default-config result.
    #[test]
    fn config_hash_separates_arch_points() {
        let sim = wwt_sim::SimConfig::default();
        let paper = ArchParams::default();
        let fast = ArchParams::parse("net_latency=50").unwrap();
        let big = ArchParams::parse("1mb-cache").unwrap();
        for e in Experiment::ALL {
            let h = |arch: &ArchParams| config_hash(e, Scale::Test, &sim, arch);
            assert_ne!(h(&paper), h(&fast), "{e}: net_latency must key the cache");
            assert_ne!(h(&paper), h(&big), "{e}: cache size must key the cache");
            assert_ne!(h(&fast), h(&big), "{e}");
        }
        // Same point, spelled differently: same key.
        let fast2 = ArchParams::parse("paper,net_latency=50").unwrap();
        assert_eq!(
            config_hash(Experiment::MseMp, Scale::Test, &sim, &fast),
            config_hash(Experiment::MseMp, Scale::Test, &sim, &fast2)
        );
    }

    #[test]
    fn corrupt_entry_is_a_miss_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("wwt-cache-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = sample_artifacts();
        let sim = wwt_sim::SimConfig::default();
        let arch = ArchParams::default();
        save(&dir, &a, &sim, &arch).unwrap();
        let path = entry_path(&dir, a.experiment, Scale::Test, &sim, &arch);
        let text = fs::read_to_string(&path).unwrap();
        // Truncated entry: miss, never a panic or error.
        fs::write(&path, &text[..text.len() / 3]).unwrap();
        assert!(load(&dir, a.experiment, Scale::Test, &sim, &arch).is_none());
        // Arbitrary garbage: same.
        fs::write(&path, b"not a cache file\x00\xff garbage").unwrap();
        assert!(load(&dir, a.experiment, Scale::Test, &sim, &arch).is_none());
        // A fresh save repairs the entry.
        save(&dir, &a, &sim, &arch).unwrap();
        assert!(load(&dir, a.experiment, Scale::Test, &sim, &arch).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("wwt-cache-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = sample_artifacts();
        let sim = wwt_sim::SimConfig::default();
        let arch = ArchParams::default();
        assert!(load(&dir, a.experiment, Scale::Test, &sim, &arch).is_none());
        save(&dir, &a, &sim, &arch).unwrap();
        let b = load(&dir, a.experiment, Scale::Test, &sim, &arch).unwrap();
        assert_eq!(a.summary, b.summary);
        // A different engine config misses.
        let traced = wwt_sim::SimConfig { trace: true, ..sim };
        assert!(load(&dir, a.experiment, Scale::Test, &traced, &arch).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
