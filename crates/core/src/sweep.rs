//! Architecture sweeps: the experiment grid evaluated at many points of
//! the shared hardware parameter space, with a per-point MP vs SM
//! comparison table.
//!
//! The paper pins one machine (Table 1) and asks where time goes; its
//! sensitivity studies (the 1 MB cache of Table 16, the local allocation
//! of Table 17) are single hand-picked points. A sweep runs the same
//! experiment grid at every point of a parameter cross product
//! ([`wwt_arch::sweep_points`]) and condenses each point into one row:
//! total cycles per machine, the share of those cycles spent outside
//! pure computation (the paper's "where is time spent" number), and the
//! SM/MP ratio — how the verdict moves as the hardware varies.
//!
//! Every point reuses the parallel grid runner and the run cache (each
//! point has a distinct cache key through
//! [`crate::cache::config_hash`]), and rendering is a pure function of
//! the per-experiment summaries, so sweep output is byte-identical for
//! any `--jobs` count.

use std::fmt::Write as _;

use wwt_arch::ArchParams;

use crate::experiment::{Machine, Scale};
use crate::runner::{run_grid, ExperimentArtifacts, RunnerConfig};
use crate::Experiment;

/// One evaluated sweep point: the swept assignments, the full parameter
/// set, and the grid's artifacts at that point.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The swept assignments (`net_latency=50` or
    /// `net_latency=50,dram=5`), unique per point.
    pub label: String,
    /// The full parameter set of this point.
    pub arch: ArchParams,
    /// Grid artifacts, in experiment order.
    pub artifacts: Vec<ExperimentArtifacts>,
}

/// Runs the experiment grid at every sweep point, in order. Each point
/// inherits everything from `base` (scale, jobs, cache, faults) except
/// the hardware parameters.
pub fn run_sweep(
    experiments: &[Experiment],
    base: &RunnerConfig,
    points: &[(String, ArchParams)],
) -> Vec<SweepOutcome> {
    points
        .iter()
        .map(|(label, arch)| {
            let cfg = RunnerConfig {
                arch: *arch,
                ..base.clone()
            };
            SweepOutcome {
                label: label.clone(),
                arch: *arch,
                artifacts: run_grid(experiments, &cfg),
            }
        })
        .collect()
}

/// Per-machine aggregate of one sweep point: total cycles and the share
/// spent outside pure computation.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
struct MachineAgg {
    total: f64,
    computation: f64,
    experiments: usize,
}

impl MachineAgg {
    fn overhead_pct(&self) -> f64 {
        if self.total > 0.0 {
            100.0 * (self.total - self.computation) / self.total
        } else {
            0.0
        }
    }
}

fn aggregate(artifacts: &[ExperimentArtifacts]) -> (MachineAgg, MachineAgg, usize, usize) {
    let mut mp = MachineAgg::default();
    let mut sm = MachineAgg::default();
    let mut valid = 0;
    for a in artifacts {
        if a.summary.validation_passed {
            valid += 1;
        }
        // The whole-program breakdown is always tables[0]; experiments
        // without one (the collective ablation) carry no totals.
        let Some(t) = a.summary.tables.first() else {
            continue;
        };
        let agg = match a.experiment.machine() {
            Machine::MessagePassing => &mut mp,
            Machine::SharedMemory => &mut sm,
        };
        agg.total += t.total;
        agg.computation += t.row("Computation").unwrap_or(0.0);
        agg.experiments += 1;
    }
    (mp, sm, valid, artifacts.len())
}

/// Renders the sweep comparison report: one row per parameter point.
///
/// `MP total` / `SM total` sum the whole-program breakdown totals of the
/// selected experiments on each machine (average cycles per processor,
/// in millions); `ovh%` is the share of those cycles spent outside pure
/// computation; `SM/MP` is the headline ratio; `arch` is the point's
/// [`ArchParams::stable_hash`], matching the hash embedded in
/// `results/cache/` entry keys so rows can be cross-referenced against
/// cached runs by eye. With `delta_vs_base` set, a `Δtot%` column
/// reports how the point's combined MP+SM total moved against the first
/// row. Purely a function of the summaries, so the text is identical for
/// any job count and whether artifacts came fresh or from the run cache.
pub fn render_sweep_report(
    outcomes: &[SweepOutcome],
    scale: Scale,
    base: &ArchParams,
    delta_vs_base: bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "WWT arch sweep — {} scale\nbase: {}\n{}",
        scale.name(),
        base.canonical(),
        "=".repeat(70)
    );
    let width = outcomes
        .iter()
        .map(|o| o.label.len())
        .chain(std::iter::once("point".len()))
        .max()
        .unwrap_or(5);
    let _ = write!(
        out,
        "\n{:<width$} {:>10} {:>6} {:>10} {:>6} {:>6} {:>7} {:>16}",
        "point", "MP total", "ovh%", "SM total", "ovh%", "SM/MP", "valid", "arch"
    );
    let _ = writeln!(out, "{}", if delta_vs_base { "   Δtot%" } else { "" });
    let base_total = outcomes
        .first()
        .map(|o| {
            let (mp, sm, ..) = aggregate(&o.artifacts);
            mp.total + sm.total
        })
        .unwrap_or(0.0);
    for o in outcomes {
        let (mp, sm, valid, n) = aggregate(&o.artifacts);
        let ratio = if mp.total > 0.0 {
            sm.total / mp.total
        } else {
            0.0
        };
        let _ = write!(
            out,
            "{:<width$} {:>9.2}M {:>6.1} {:>9.2}M {:>6.1} {:>6.2} {:>4}/{} {:016x}",
            o.label,
            mp.total / 1e6,
            mp.overhead_pct(),
            sm.total / 1e6,
            sm.overhead_pct(),
            ratio,
            valid,
            n,
            o.arch.stable_hash()
        );
        if delta_vs_base {
            let total = mp.total + sm.total;
            if base_total > 0.0 {
                let _ = write!(out, " {:>+7.1}", 100.0 * (total - base_total) / base_total);
            } else {
                let _ = write!(out, " {:>7}", "n/a");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_arch::{sweep_points, ArchSweep};

    #[test]
    fn sweep_produces_one_row_per_point_and_reacts_to_latency() {
        let base = RunnerConfig::new(Scale::Test);
        let sweeps = [ArchSweep::parse("net_latency=50,100").unwrap()];
        let points = sweep_points(&base.arch, &sweeps).unwrap();
        let es = [Experiment::Em3dMp, Experiment::Em3dSm];
        let outcomes = run_sweep(&es, &base, &points);
        assert_eq!(outcomes.len(), 2);

        let report = render_sweep_report(&outcomes, Scale::Test, &base.arch, false);
        assert_eq!(
            report
                .lines()
                .filter(|l| l.starts_with("net_latency="))
                .count(),
            2,
            "one comparison row per point:\n{report}"
        );
        // Every row carries its point's arch hash for cache
        // cross-referencing.
        for o in &outcomes {
            let hash = format!("{:016x}", o.arch.stable_hash());
            assert!(report.contains(&hash), "missing {hash}:\n{report}");
        }
        // The delta column appears on request and pins the base row at 0.
        let with_delta = render_sweep_report(&outcomes, Scale::Test, &base.arch, true);
        assert!(with_delta.contains("Δtot%"), "{with_delta}");
        assert!(with_delta.contains("+0.0"), "{with_delta}");
        assert!(!report.contains("Δtot%"));

        // A slower network can only cost cycles. EM3D's MP version may
        // hide the latency entirely behind bulk transfers (totals tie),
        // but SM pays a round trip per remote miss, so it must lose
        // cycles outright.
        let (mp50, sm50, valid, n) = aggregate(&outcomes[0].artifacts);
        let (mp100, sm100, ..) = aggregate(&outcomes[1].artifacts);
        assert_eq!((valid, n), (2, 2));
        assert!(
            mp50.total <= mp100.total,
            "{} vs {}",
            mp50.total,
            mp100.total
        );
        assert!(
            sm50.total < sm100.total,
            "{} vs {}",
            sm50.total,
            sm100.total
        );

        // And the 100-cycle point is exactly the paper machine.
        assert!(outcomes[1].arch.is_paper());
    }
}
