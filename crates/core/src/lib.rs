//! Experiment registry, cost-breakdown tables, and paper comparison for
//! the WWT reproduction.
//!
//! This crate is the public entry point of the reproduction. It knows
//! every experiment of the paper's evaluation (Tables 4–23 plus the
//! Section 5.2 collective ablation and the Section 5.3.4 bulk-update
//! extension), runs them at paper scale or test scale, projects the
//! engine's (scope × kind) cycle matrices into the paper's per-table row
//! sets, and compares the measured *shape* — who wins, by what factor,
//! where the time goes — against the numbers the paper reports.
//!
//! # Example
//!
//! ```
//! use wwt_core::{Experiment, Scale};
//!
//! let out = wwt_core::run_experiment(Experiment::GaussMp, Scale::Test);
//! assert!(out.run.validation.passed);
//! println!("{}", out.tables[0]); // the Table-8-style breakdown
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod experiment;
#[cfg(feature = "trace-json")]
pub mod export;
pub mod paper;
pub mod runner;
pub mod sweep;
pub mod table;
pub mod timeline;

pub use experiment::{
    run_experiment, run_experiment_with, run_experiment_with_arch, simulations_performed,
    try_run_experiment_with_arch, Experiment, ExperimentOutput, ExperimentSummary, Machine, Scale,
};
#[cfg(feature = "trace-json")]
pub use export::{breakdown_json, experiment_json};
pub use paper::{headline_checks, paper_reference, HeadlineCheck, PaperTable};
#[cfg(feature = "trace-json")]
pub use runner::TraceArtifacts;
pub use runner::{
    render_report, render_section, run_grid, timeline_bucket, ExperimentArtifacts, RunnerConfig,
};
pub use sweep::{render_sweep_report, run_sweep, SweepOutcome};
pub use table::{
    breakdown_mp, breakdown_sm, events_mp, events_sm, BreakdownTable, EventTable, Row,
};
pub use timeline::{render_timeline, TimelineError};

// Re-export the component crates so downstream users need only one
// dependency.
pub use wwt_apps as apps;
pub use wwt_arch as arch;
pub use wwt_diff as diff;
pub use wwt_mem as mem;
pub use wwt_mp as mp;
pub use wwt_obs as obs;
pub use wwt_sim as sim;
pub use wwt_sm as sm;
pub use wwt_store as store;
pub use wwt_trace as trace;
