//! The experiment registry: every table and figure of the paper's
//! evaluation, runnable at paper scale or test scale.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use wwt_apps::common::AppRun;
use wwt_apps::{em3d, gauss, lcp, mse};
use wwt_arch::ArchParams;
use wwt_mp::{MpConfig, TreeShape};
use wwt_sm::{AllocPolicy, ProtocolMode, SmConfig};

use crate::table::{
    breakdown_mp, breakdown_sm, events_mp, events_sm, phase_delta, BreakdownTable, EventTable,
};

/// Every experiment of the paper's evaluation section.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Experiment {
    /// MSE-MP (Tables 4 and 6).
    MseMp,
    /// MSE-SM (Tables 5 and 7).
    MseSm,
    /// Gauss-MP with lop-sided active-message collectives (Tables 8, 10).
    GaussMp,
    /// Gauss-SM (Tables 9 and 11).
    GaussSm,
    /// The Section 5.2 collective ablation (flat/binary CMMD-level vs
    /// lop-sided active messages: 119.3M / 40.9M / 30.1M cycles).
    GaussAblation,
    /// Gauss-SM with push-broadcast pivot rows (the Section 5.3.4
    /// suggestion that protocol changes "could benefit ... the broadcasts
    /// in Gauss").
    GaussSmPush,
    /// EM3D-MP (Tables 12 and 13, with init/main phase split).
    Em3dMp,
    /// EM3D-SM (Tables 14 and 15).
    Em3dSm,
    /// EM3D-SM with a 1 MB cache (Table 16, main loop).
    Em3dSm1Mb,
    /// EM3D-SM with local allocation (Table 17, main loop).
    Em3dSmLocal,
    /// EM3D-SM under the bulk-update protocol (Section 5.3.4 extension).
    Em3dSmBulk,
    /// EM3D-SM with consumer flush hints (Section 5.3.4 extension).
    Em3dSmFlush,
    /// EM3D-SM with cooperative prefetch (Section 5.3.4 extension).
    Em3dSmPrefetch,
    /// EM3D-SM with the Stache policy (Section 5.3.4 extension): evicted
    /// shared blocks park in local memory instead of returning home.
    Em3dSmStache,
    /// Synchronous LCP-MP (Tables 18 and 22).
    LcpMp,
    /// Synchronous LCP-SM (Tables 19 and 23).
    LcpSm,
    /// Asynchronous ALCP-MP (Tables 20 and 22).
    AlcpMp,
    /// Asynchronous ALCP-SM (Tables 21 and 23).
    AlcpSm,
}

impl Experiment {
    /// All experiments, in paper order.
    pub const ALL: [Experiment; 18] = [
        Experiment::MseMp,
        Experiment::MseSm,
        Experiment::GaussMp,
        Experiment::GaussSm,
        Experiment::GaussAblation,
        Experiment::GaussSmPush,
        Experiment::Em3dMp,
        Experiment::Em3dSm,
        Experiment::Em3dSm1Mb,
        Experiment::Em3dSmLocal,
        Experiment::Em3dSmBulk,
        Experiment::Em3dSmFlush,
        Experiment::Em3dSmPrefetch,
        Experiment::Em3dSmStache,
        Experiment::LcpMp,
        Experiment::LcpSm,
        Experiment::AlcpMp,
        Experiment::AlcpSm,
    ];

    /// Stable identifier (command-line friendly).
    pub fn id(self) -> &'static str {
        match self {
            Experiment::MseMp => "mse-mp",
            Experiment::MseSm => "mse-sm",
            Experiment::GaussMp => "gauss-mp",
            Experiment::GaussSm => "gauss-sm",
            Experiment::GaussAblation => "gauss-ablation",
            Experiment::GaussSmPush => "gauss-sm-push",
            Experiment::Em3dMp => "em3d-mp",
            Experiment::Em3dSm => "em3d-sm",
            Experiment::Em3dSm1Mb => "em3d-sm-1mb",
            Experiment::Em3dSmLocal => "em3d-sm-local",
            Experiment::Em3dSmBulk => "em3d-sm-bulk",
            Experiment::Em3dSmFlush => "em3d-sm-flush",
            Experiment::Em3dSmPrefetch => "em3d-sm-prefetch",
            Experiment::Em3dSmStache => "em3d-sm-stache",
            Experiment::LcpMp => "lcp-mp",
            Experiment::LcpSm => "lcp-sm",
            Experiment::AlcpMp => "alcp-mp",
            Experiment::AlcpSm => "alcp-sm",
        }
    }

    /// Parses an [`Experiment::id`].
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::ALL.into_iter().find(|e| e.id() == id)
    }

    /// Which machine model this experiment runs on.
    pub fn machine(self) -> Machine {
        match self {
            Experiment::MseMp
            | Experiment::GaussMp
            | Experiment::GaussAblation
            | Experiment::Em3dMp
            | Experiment::LcpMp
            | Experiment::AlcpMp => Machine::MessagePassing,
            Experiment::MseSm
            | Experiment::GaussSm
            | Experiment::GaussSmPush
            | Experiment::Em3dSm
            | Experiment::Em3dSm1Mb
            | Experiment::Em3dSmLocal
            | Experiment::Em3dSmBulk
            | Experiment::Em3dSmFlush
            | Experiment::Em3dSmPrefetch
            | Experiment::Em3dSmStache
            | Experiment::LcpSm
            | Experiment::AlcpSm => Machine::SharedMemory,
        }
    }

    /// Which of the paper's tables this experiment reproduces.
    pub fn paper_tables(self) -> &'static str {
        match self {
            Experiment::MseMp => "Tables 4 and 6",
            Experiment::MseSm => "Tables 5 and 7",
            Experiment::GaussMp => "Tables 8 and 10",
            Experiment::GaussSm => "Tables 9 and 11",
            Experiment::GaussAblation => "Section 5.2 (119.3M / 40.9M / 30.1M)",
            Experiment::GaussSmPush => "Section 5.3.4 (push-broadcast pivot rows)",
            Experiment::Em3dMp => "Tables 12 and 13",
            Experiment::Em3dSm => "Tables 14 and 15",
            Experiment::Em3dSm1Mb => "Table 16",
            Experiment::Em3dSmLocal => "Table 17",
            Experiment::Em3dSmBulk => "Section 5.3.4 (Falsafi et al.)",
            Experiment::Em3dSmFlush => "Section 5.3.4 (consumer flush hint)",
            Experiment::Em3dSmPrefetch => "Section 5.3.4 (cooperative prefetch)",
            Experiment::Em3dSmStache => "Section 5.3.4 (Stache policy)",
            Experiment::LcpMp => "Tables 18 and 22",
            Experiment::LcpSm => "Tables 19 and 23",
            Experiment::AlcpMp => "Tables 20 and 22",
            Experiment::AlcpSm => "Tables 21 and 23",
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The two machine models of the paired-simulator comparison.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Machine {
    /// The CM-5-like message-passing machine (`wwt-mp`).
    MessagePassing,
    /// The Dir_nNB cache-coherent shared-memory machine (`wwt-sm`).
    SharedMemory,
}

/// Workload scale.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The paper's workload sizes (32 processors, full problem sizes).
    Paper,
    /// Scaled-down workloads for tests and quick runs.
    Test,
}

impl Scale {
    /// Stable lowercase name (used in reports, exports, and cache keys).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Test => "test",
        }
    }
}

/// Everything an experiment run produces.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Which experiment ran.
    pub experiment: Experiment,
    /// At which scale.
    pub scale: Scale,
    /// The primary application run.
    pub run: AppRun,
    /// Ablation variants: (label, run).
    pub extra_runs: Vec<(String, AppRun)>,
    /// Paper-style breakdown tables (whole program, plus per phase where
    /// the paper splits them).
    pub tables: Vec<BreakdownTable>,
    /// Paper-style per-processor event tables.
    pub events: Vec<EventTable>,
}

impl ExperimentOutput {
    /// Projects the run into its reportable [`ExperimentSummary`]: every
    /// number the report renderer and the headline checks consume, and
    /// nothing tied to the live engine state. Summaries round-trip through
    /// the run cache exactly, so a report built from cached summaries is
    /// byte-identical to one built from fresh runs.
    pub fn summary(&self) -> ExperimentSummary {
        ExperimentSummary {
            experiment: self.experiment,
            scale: self.scale,
            validation_passed: self.run.validation.passed,
            validation_detail: self.run.validation.detail.clone(),
            stats: self.run.stats.clone(),
            imbalance: self.run.report.imbalance(),
            wait_fraction: self.run.report.wait_fraction(),
            tables: self.tables.clone(),
            events: self.events.clone(),
        }
    }
}

/// The reportable projection of an [`ExperimentOutput`]: validation,
/// stats, load balance, and the paper-style tables — everything the
/// report renderer and [`crate::headline_checks`] need, detached from the
/// engine's [`wwt_sim::SimReport`] so it can be persisted and reloaded by
/// the run cache.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSummary {
    /// Which experiment ran.
    pub experiment: Experiment,
    /// At which scale.
    pub scale: Scale,
    /// Did the run's self-validation pass?
    pub validation_passed: bool,
    /// Human-readable validation detail.
    pub validation_detail: String,
    /// Application-level stats, in recorded order.
    pub stats: Vec<(String, f64)>,
    /// Load imbalance across processors (fraction).
    pub imbalance: f64,
    /// Waiting cycles as a fraction of all cycles.
    pub wait_fraction: f64,
    /// Paper-style breakdown tables.
    pub tables: Vec<BreakdownTable>,
    /// Paper-style per-processor event tables.
    pub events: Vec<EventTable>,
}

/// Prefix the grid runner stamps on [`ExperimentSummary::validation_detail`]
/// when the simulation itself stalled (as opposed to completing with a
/// wrong answer).
pub(crate) const ENGINE_FAILURE_PREFIX: &str = "engine failure: ";

impl ExperimentSummary {
    /// An application stat by name, if recorded.
    pub fn stat(&self, name: &str) -> Option<f64> {
        self.stats.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Did the simulation stall (deadlock, livelock, watchdog expiry)
    /// rather than complete? Such summaries come from the grid runner's
    /// failure path and carry the engine's structured stall report in
    /// [`ExperimentSummary::validation_detail`]; they have no tables and
    /// are never cached.
    pub fn engine_failed(&self) -> bool {
        !self.validation_passed && self.validation_detail.starts_with(ENGINE_FAILURE_PREFIX)
    }
}

fn mse_params(scale: Scale) -> mse::MseParams {
    match scale {
        Scale::Paper => mse::MseParams::default(),
        Scale::Test => mse::MseParams::small(),
    }
}

fn gauss_params(scale: Scale) -> gauss::GaussParams {
    match scale {
        Scale::Paper => gauss::GaussParams::default(),
        Scale::Test => gauss::GaussParams::small(),
    }
}

fn em3d_params(scale: Scale) -> em3d::Em3dParams {
    match scale {
        Scale::Paper => em3d::Em3dParams::default(),
        Scale::Test => em3d::Em3dParams::small(),
    }
}

fn lcp_params(scale: Scale) -> lcp::LcpParams {
    match scale {
        Scale::Paper => lcp::LcpParams::default(),
        Scale::Test => lcp::LcpParams::small(),
    }
}

fn whole_program_mp(
    e: Experiment,
    scale: Scale,
    run: AppRun,
    comm_label: &str,
    title: &str,
) -> ExperimentOutput {
    let avg = run.report.avg_matrix();
    let totals = run.report.counters_merged();
    let n = run.report.nprocs();
    let tables = vec![breakdown_mp(title, &avg, comm_label)];
    let events = vec![events_mp(&format!("{title} — events"), &avg, &totals, n)];
    ExperimentOutput {
        experiment: e,
        scale,
        run,
        extra_runs: Vec::new(),
        tables,
        events,
    }
}

fn whole_program_sm(e: Experiment, scale: Scale, run: AppRun, title: &str) -> ExperimentOutput {
    let avg = run.report.avg_matrix();
    let totals = run.report.counters_merged();
    let n = run.report.nprocs();
    let tables = vec![breakdown_sm(title, &avg)];
    let events = vec![events_sm(&format!("{title} — events"), &avg, &totals, n)];
    ExperimentOutput {
        experiment: e,
        scale,
        run,
        extra_runs: Vec::new(),
        tables,
        events,
    }
}

/// Adds init/main phase tables for runs that record them (EM3D).
fn add_phase_tables(out: &mut ExperimentOutput, title: &str, sm: bool) {
    let (Some(init), Some(main)) = (out.run.phase("init"), out.run.phase("main")) else {
        return;
    };
    let n = init.snapshot.len();
    let zero = vec![(0u64, wwt_sim::CycleMatrix::new(), wwt_sim::Counters::new()); n];
    let (init_m, init_c) = phase_delta(&init.snapshot, &zero);
    let (main_m, main_c) = phase_delta(&main.snapshot, &init.snapshot);
    let mk = |t: &str, m: &wwt_sim::CycleMatrix| {
        if sm {
            breakdown_sm(t, m)
        } else {
            breakdown_mp(t, m, "Communication")
        }
    };
    out.tables
        .push(mk(&format!("{title} — initialization"), &init_m));
    out.tables
        .push(mk(&format!("{title} — main loop"), &main_m));
    // The paper splits EM3D's event tables by phase as well (the
    // initialization phase communicates very differently from the main
    // loop), so emit both.
    let (ev_init, ev_main) = if sm {
        (
            events_sm(
                &format!("{title} — initialization events"),
                &init_m,
                &init_c,
                n,
            ),
            events_sm(&format!("{title} — main loop events"), &main_m, &main_c, n),
        )
    } else {
        (
            events_mp(
                &format!("{title} — initialization events"),
                &init_m,
                &init_c,
                n,
            ),
            events_mp(&format!("{title} — main loop events"), &main_m, &main_c, n),
        )
    };
    out.events.push(ev_init);
    out.events.push(ev_main);
}

/// Runs one experiment at the given scale.
pub fn run_experiment(e: Experiment, scale: Scale) -> ExperimentOutput {
    run_experiment_with(e, scale, wwt_sim::SimConfig::default())
}

/// Runs one experiment with explicit engine settings on the paper's
/// hardware base.
pub fn run_experiment_with(
    e: Experiment,
    scale: Scale,
    sim: wwt_sim::SimConfig,
) -> ExperimentOutput {
    run_experiment_with_arch(e, scale, sim, ArchParams::default())
}

static SIMULATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of experiment simulations performed (calls to
/// [`run_experiment`] / [`run_experiment_with`]). A diagnostic hook: the
/// runner's tests use it to assert that one `make_tables` invocation
/// simulates each experiment exactly once, however many artifacts it
/// exports.
pub fn simulations_performed() -> u64 {
    SIMULATIONS.load(Ordering::Relaxed)
}

/// Runs one experiment with explicit engine settings (e.g. time-resolved
/// profiling for [`crate::render_timeline`]) on an explicit hardware
/// base — the entry point for architecture sweeps. Experiments that
/// themselves vary the hardware (e.g. the Table-16 1 MB cache) apply
/// their variation on top of `arch`.
///
/// Panics if the simulation stalls; [`try_run_experiment_with_arch`] is
/// the fallible variant a grid runner should prefer.
pub fn run_experiment_with_arch(
    e: Experiment,
    scale: Scale,
    sim: wwt_sim::SimConfig,
    arch: ArchParams,
) -> ExperimentOutput {
    try_run_experiment_with_arch(e, scale, sim, arch).unwrap_or_else(|err| panic!("{e}: {err}"))
}

/// Fallible variant of [`run_experiment_with_arch`]: an engine failure
/// (deadlock, livelock, watchdog expiry) surfaces as a structured
/// [`wwt_sim::SimError`] naming the stalled processors instead of
/// panicking, so a grid run can report the failing experiment and still
/// finish the others.
pub fn try_run_experiment_with_arch(
    e: Experiment,
    scale: Scale,
    sim: wwt_sim::SimConfig,
    arch: ArchParams,
) -> Result<ExperimentOutput, wwt_sim::SimError> {
    SIMULATIONS.fetch_add(1, Ordering::Relaxed);
    let mp_base = MpConfig::with_arch(arch, sim);
    let sm_base = SmConfig::with_arch(arch, sim);
    Ok(match e {
        Experiment::MseMp => whole_program_mp(
            e,
            scale,
            mse::mp::try_run(&mse_params(scale), mp_base)?,
            "Communication",
            "MSE-MP (Microstructure Electrostatics, Message Passing)",
        ),
        Experiment::MseSm => whole_program_sm(
            e,
            scale,
            mse::sm::try_run(&mse_params(scale), sm_base)?,
            "MSE-SM (Microstructure Electrostatics, Shared Memory)",
        ),
        Experiment::GaussMp => whole_program_mp(
            e,
            scale,
            gauss::mp::try_run(&gauss_params(scale), mp_base, TreeShape::Lopsided)?,
            "Broadcast/Reduction",
            "Gauss-MP (Gaussian Elimination, Message Passing)",
        ),
        Experiment::GaussSm => whole_program_sm(
            e,
            scale,
            gauss::sm::try_run(&gauss_params(scale), sm_base)?,
            "Gauss-SM (Gaussian Elimination, Shared Memory)",
        ),
        Experiment::GaussAblation => {
            let p = gauss_params(scale);
            let cmmd = MpConfig {
                collective_msg_overhead: 250,
                ..mp_base
            };
            let flat = gauss::mp::try_run(&p, cmmd, TreeShape::Flat)?;
            let binary = gauss::mp::try_run(&p, cmmd, TreeShape::Binary)?;
            let lop = gauss::mp::try_run(&p, mp_base, TreeShape::Lopsided)?;
            let coll_cycles = |r: &AppRun| {
                let m = r.report.avg_matrix();
                (m.by_scope(wwt_sim::Scope::Reduction) + m.by_scope(wwt_sim::Scope::Broadcast))
                    as f64
            };
            let events = vec![EventTable {
                title: "Gauss collective implementations (cycles in reductions + broadcasts, per processor)".into(),
                rows: vec![
                    ("Flat, CMMD-level messages".into(), coll_cycles(&flat)),
                    ("Binary tree, CMMD-level messages".into(), coll_cycles(&binary)),
                    ("Lop-sided tree, active messages".into(), coll_cycles(&lop)),
                ],
            }];
            ExperimentOutput {
                experiment: e,
                scale,
                run: lop,
                extra_runs: vec![("flat-cmmd".into(), flat), ("binary-cmmd".into(), binary)],
                tables: Vec::new(),
                events,
            }
        }
        Experiment::GaussSmPush => {
            let params = gauss::GaussParams {
                sm_push_broadcast: true,
                ..gauss_params(scale)
            };
            whole_program_sm(
                e,
                scale,
                gauss::sm::try_run(&params, sm_base)?,
                "Gauss-SM, push-broadcast pivot rows",
            )
        }
        Experiment::Em3dMp => {
            let mut out = whole_program_mp(
                e,
                scale,
                em3d::mp::try_run(&em3d_params(scale), mp_base)?,
                "Communication",
                "EM3D-MP (Electromagnetic Propagation, Message Passing)",
            );
            add_phase_tables(&mut out, "EM3D-MP", false);
            out
        }
        Experiment::Em3dSm => {
            let mut out = whole_program_sm(
                e,
                scale,
                em3d::sm::try_run(&em3d_params(scale), sm_base)?,
                "EM3D-SM (Electromagnetic Propagation, Shared Memory)",
            );
            add_phase_tables(&mut out, "EM3D-SM", true);
            out
        }
        Experiment::Em3dSm1Mb => {
            let cfg = SmConfig {
                arch: ArchParams {
                    cache: wwt_mem::CacheGeometry::one_megabyte(),
                    ..sm_base.arch
                },
                ..sm_base
            };
            let mut out = whole_program_sm(
                e,
                scale,
                em3d::sm::try_run(&em3d_params(scale), cfg)?,
                "EM3D-SM, 1 MB cache",
            );
            add_phase_tables(&mut out, "EM3D-SM (1 MB cache)", true);
            out
        }
        Experiment::Em3dSmLocal => {
            let cfg = SmConfig {
                alloc_policy: AllocPolicy::Local,
                ..sm_base
            };
            let mut out = whole_program_sm(
                e,
                scale,
                em3d::sm::try_run(&em3d_params(scale), cfg)?,
                "EM3D-SM, local allocation",
            );
            add_phase_tables(&mut out, "EM3D-SM (local allocation)", true);
            out
        }
        Experiment::Em3dSmBulk => {
            // The Section 5.3.4 result (Falsafi et al.) replaces the
            // invalidation protocol with application-specific bulk update;
            // an application-specific protocol also places data sensibly,
            // so this variant combines bulk update with local allocation.
            let cfg = SmConfig {
                protocol: ProtocolMode::BulkUpdate,
                alloc_policy: AllocPolicy::Local,
                ..sm_base
            };
            let mut out = whole_program_sm(
                e,
                scale,
                em3d::sm::try_run(&em3d_params(scale), cfg)?,
                "EM3D-SM, bulk-update protocol",
            );
            add_phase_tables(&mut out, "EM3D-SM (bulk update)", true);
            out
        }
        Experiment::Em3dSmFlush => {
            let cfg = SmConfig {
                alloc_policy: AllocPolicy::Local,
                ..sm_base
            };
            let params = em3d::Em3dParams {
                hint: em3d::Em3dHint::Flush,
                ..em3d_params(scale)
            };
            let mut out = whole_program_sm(
                e,
                scale,
                em3d::sm::try_run(&params, cfg)?,
                "EM3D-SM, consumer flush hint (+ local allocation)",
            );
            add_phase_tables(&mut out, "EM3D-SM (flush hint)", true);
            out
        }
        Experiment::Em3dSmPrefetch => {
            let cfg = SmConfig {
                alloc_policy: AllocPolicy::Local,
                ..sm_base
            };
            let params = em3d::Em3dParams {
                hint: em3d::Em3dHint::Prefetch,
                ..em3d_params(scale)
            };
            let mut out = whole_program_sm(
                e,
                scale,
                em3d::sm::try_run(&params, cfg)?,
                "EM3D-SM, cooperative prefetch (+ local allocation)",
            );
            add_phase_tables(&mut out, "EM3D-SM (prefetch)", true);
            out
        }
        Experiment::Em3dSmStache => {
            // Stache attacks exactly the base configuration's pathology:
            // capacity evictions of round-robin-homed (mostly remote)
            // blocks; keep the paper's cache and allocation policy.
            let cfg = SmConfig {
                stache: true,
                ..sm_base
            };
            let mut out = whole_program_sm(
                e,
                scale,
                em3d::sm::try_run(&em3d_params(scale), cfg)?,
                "EM3D-SM, Stache policy",
            );
            add_phase_tables(&mut out, "EM3D-SM (Stache)", true);
            out
        }
        Experiment::LcpMp => whole_program_mp(
            e,
            scale,
            lcp::mp::try_run(&lcp_params(scale), mp_base, lcp::LcpMode::Synchronous)?,
            "Communication",
            "LCP-MP (Linear Complementarity, Message Passing)",
        ),
        Experiment::LcpSm => whole_program_sm(
            e,
            scale,
            lcp::sm::try_run(&lcp_params(scale), sm_base, lcp::LcpMode::Synchronous)?,
            "LCP-SM (Linear Complementarity, Shared Memory)",
        ),
        Experiment::AlcpMp => whole_program_mp(
            e,
            scale,
            lcp::mp::try_run(&lcp_params(scale), mp_base, lcp::LcpMode::Asynchronous)?,
            "Communication",
            "ALCP-MP (Asynchronous LCP, Message Passing)",
        ),
        Experiment::AlcpSm => whole_program_sm(
            e,
            scale,
            lcp::sm::try_run(&lcp_params(scale), sm_base, lcp::LcpMode::Asynchronous)?,
            "ALCP-SM (Asynchronous LCP, Shared Memory)",
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
        }
        assert_eq!(Experiment::from_id("nonsense"), None);
    }

    #[test]
    fn gauss_pair_runs_and_validates_at_test_scale() {
        for e in [Experiment::GaussMp, Experiment::GaussSm] {
            let out = run_experiment(e, Scale::Test);
            assert!(
                out.run.validation.passed,
                "{e}: {}",
                out.run.validation.detail
            );
            assert!(!out.tables.is_empty());
            assert!(out.tables[0].total > 0.0);
        }
    }

    #[test]
    fn em3d_outputs_phase_tables() {
        let out = run_experiment(Experiment::Em3dMp, Scale::Test);
        assert_eq!(out.tables.len(), 3, "whole-program + init + main");
        let whole = out.tables[0].total;
        let init = out.tables[1].total;
        let main = out.tables[2].total;
        assert!(
            (init + main - whole).abs() / whole < 0.05,
            "phases {init}+{main} != total {whole}"
        );
        // Event tables split by phase too: whole-program + init + main.
        assert_eq!(out.events.len(), 3, "whole-program + init + main events");
        let ev_init = &out.events[1];
        let ev_main = &out.events[2];
        assert!(
            ev_init.title.contains("initialization events"),
            "{}",
            ev_init.title
        );
        assert!(
            ev_main.title.contains("main loop events"),
            "{}",
            ev_main.title
        );
        // EM3D's init phase builds the bipartite graph and exchanges
        // boundary descriptions — it must record real events, not zeros.
        assert!(
            ev_init.rows.iter().any(|&(_, v)| v > 0.0),
            "init phase recorded no events: {ev_init}"
        );
    }

    #[test]
    fn summary_projects_the_reportable_fields() {
        let out = run_experiment(Experiment::GaussSm, Scale::Test);
        let s = out.summary();
        assert_eq!(s.experiment, Experiment::GaussSm);
        assert_eq!(s.scale, Scale::Test);
        assert_eq!(s.validation_passed, out.run.validation.passed);
        assert_eq!(s.tables, out.tables);
        assert_eq!(s.events, out.events);
        assert_eq!(s.imbalance, out.run.report.imbalance());
        for (name, v) in &out.run.stats {
            assert_eq!(s.stat(name), Some(*v));
        }
    }

    #[test]
    fn ablation_orders_flat_binary_lopsided() {
        let out = run_experiment(Experiment::GaussAblation, Scale::Test);
        let t = &out.events[0];
        let flat = t.row("Flat, CMMD-level messages").unwrap();
        let binary = t.row("Binary tree, CMMD-level messages").unwrap();
        let lop = t.row("Lop-sided tree, active messages").unwrap();
        assert!(lop < binary && binary < flat, "{lop} / {binary} / {flat}");
    }
}
