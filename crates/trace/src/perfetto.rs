//! Chrome trace-event (Perfetto-loadable) JSON export.
//!
//! The output follows the Trace Event Format's JSON array form: one
//! process (`pid` 0, the simulated machine), one thread per simulated
//! processor (`tid` = processor index), `B`/`E` duration events for scope
//! spans, and `i` instant events for packet, miss, barrier, and lock
//! marks. Timestamps are **raw simulated cycles** (the format nominally
//! uses microseconds; viewers only care that the unit is consistent).
//!
//! Load the file at <https://ui.perfetto.dev> or `chrome://tracing`.

use std::fmt::Write as _;

use wwt_sim::{Mark, SimReport, TraceData, TraceWhat};

use crate::json::escape;

/// Exports the trace of `report` as Chrome trace-event JSON, or `None` if
/// the run was not traced.
pub fn chrome_trace_json(report: &SimReport) -> Option<String> {
    report
        .trace()
        .map(|data| chrome_trace_json_from(data, report.nprocs()))
}

/// Exports `data` (with `nprocs` processor tracks) as Chrome trace-event
/// JSON.
pub fn chrome_trace_json_from(data: &TraceData, nprocs: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"wwt\"}}}}"
    );
    for p in 0..nprocs {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\
             \"args\":{{\"name\":\"cpu{p}\"}}}}"
        );
    }
    for ev in &data.events {
        let tid = ev.proc.index();
        let ts = ev.at;
        match ev.what {
            TraceWhat::SpanBegin(s) => {
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"{}\",\"cat\":\"scope\",\"ph\":\"B\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts}}}",
                    escape(s.label())
                );
            }
            TraceWhat::SpanEnd(_) => {
                let _ = write!(
                    out,
                    ",\n{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
                );
            }
            TraceWhat::Instant(m) => {
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"{}\",\"cat\":\"mark\",\"ph\":\"i\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"args\":{{{}}}}}",
                    escape(m.label()),
                    mark_args(&m)
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

fn mark_args(m: &Mark) -> String {
    match m {
        Mark::MsgSend { peer, tag }
        | Mark::MsgRecv { peer, tag }
        | Mark::MsgDispatch { peer, tag } => {
            format!("\"peer\":{},\"tag\":{tag}", peer.index())
        }
        Mark::MissStart { kind } | Mark::MissEnd { kind } => {
            format!("\"kind\":\"{}\"", escape(kind.label()))
        }
        Mark::FaultDrop { peer, tag } | Mark::FaultDup { peer, tag } => {
            format!("\"peer\":{},\"tag\":{tag}", peer.index())
        }
        Mark::FaultDelay { peer, extra } => {
            format!("\"peer\":{},\"extra\":{extra}", peer.index())
        }
        Mark::Retransmit { peer, count } => {
            format!("\"peer\":{},\"count\":{count}", peer.index())
        }
        Mark::BarrierArrive | Mark::BarrierRelease | Mark::LockAcquire | Mark::LockRelease => {
            String::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_sim::{ProcId, Scope, TraceEvent};

    #[test]
    fn exports_spans_instants_and_thread_names() {
        let data = TraceData {
            events: vec![
                TraceEvent {
                    proc: ProcId::new(1),
                    at: 10,
                    what: TraceWhat::SpanBegin(Scope::Lib),
                },
                TraceEvent {
                    proc: ProcId::new(1),
                    at: 12,
                    what: TraceWhat::Instant(Mark::MsgSend {
                        peer: ProcId::new(0),
                        tag: 7,
                    }),
                },
                TraceEvent {
                    proc: ProcId::new(1),
                    at: 30,
                    what: TraceWhat::SpanEnd(Scope::Lib),
                },
            ],
            metrics: Default::default(),
        };
        let s = chrome_trace_json_from(&data, 2);
        assert!(s.starts_with("{\"displayTimeUnit\""));
        assert!(s.contains("\"name\":\"cpu1\""));
        assert!(s.contains(
            "\"name\":\"lib\",\"cat\":\"scope\",\"ph\":\"B\",\"pid\":0,\"tid\":1,\"ts\":10"
        ));
        assert!(s.contains("\"ph\":\"E\",\"pid\":0,\"tid\":1,\"ts\":30"));
        assert!(s.contains("\"name\":\"msg_send\""));
        assert!(s.contains("\"peer\":0,\"tag\":7"));
        assert!(s.trim_end().ends_with("]}"));
    }

    #[test]
    fn begin_end_pairs_are_balanced() {
        let data = TraceData {
            events: vec![
                TraceEvent {
                    proc: ProcId::new(0),
                    at: 0,
                    what: TraceWhat::SpanBegin(Scope::Lock),
                },
                TraceEvent {
                    proc: ProcId::new(0),
                    at: 9,
                    what: TraceWhat::SpanEnd(Scope::Lock),
                },
            ],
            metrics: Default::default(),
        };
        let s = chrome_trace_json_from(&data, 1);
        assert_eq!(
            s.matches("\"ph\":\"B\"").count(),
            s.matches("\"ph\":\"E\"").count()
        );
    }
}
